//! # uic — Utility-driven Influence Cascades
//!
//! A production-quality Rust reproduction of *"Maximizing Welfare in
//! Social Networks under a Utility Driven Influence Diffusion Model"*
//! (Banerjee, Chen & Lakshmanan, SIGMOD 2019).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR influence graphs with compressed weight storage, traversal, SCC, stats, binary snapshots, I/O |
//! | [`items`] | itemsets, prices, supermodular valuations, noise, utility, adoption oracle, block accounting, GAP conversion |
//! | [`diffusion`] | IC / LT / UIC / Com-IC simulation, possible worlds, welfare estimation, [`SolveReport`](diffusion::SolveReport) |
//! | [`im`] | RR sets, NodeSelection, IMM, TIM⁺, SSA, OPIM-C, SKIM, **PRIMA**, CELF greedy |
//! | [`core`] | WelMax, **bundleGRD**, the [`Allocator`](core::Allocator) registry, block-accounting bounds, brute-force solver |
//! | [`baselines`] | item-disj, bundle-disj, RR-SIM+, RR-CIM, BDHS, pair-greedy, degree/PageRank |
//! | [`datasets`] | Table-2 network stand-ins, Table-3/4/5 configurations, config text format, auction learning |
//! | [`experiments`] | regenerators for every table and figure |
//! | [`util`] | hashing, bitsets, RNG, special functions, stats, tables |
//!
//! ## Quickstart
//!
//! Assemble a [`WelMaxInstance`](core::WelMaxInstance) with the
//! [`WelMax`](core::WelMax) builder, pick any solver from the registry by
//! name, and read the unified [`SolveReport`](diffusion::SolveReport):
//!
//! ```
//! use uic::prelude::*;
//! use std::sync::Arc;
//!
//! // A small social network with weighted-cascade probabilities.
//! let g = uic::datasets::generators::preferential_attachment(
//!     uic::datasets::PaOptions { n: 300, edges_per_node: 4, ..Default::default() },
//!     7,
//! );
//!
//! // Two complementary items: each unprofitable alone, great together.
//! let model = UtilityModel::new(
//!     Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 9.0])),
//!     Price::additive(vec![3.5, 4.5]),
//!     NoiseModel::iid_gaussian_var(2, 1.0),
//! );
//! let inst = WelMax::on(&g).model(model).budgets([10u32, 10]).build()?;
//!
//! // Any of the ten registered algorithms, by name. bundleGRD never
//! // reads the utilities — only the budgets (the power of bundling).
//! let solver = <dyn Allocator>::by_name("bundle-grd").unwrap();
//! let report = solver.solve(&inst, &SolveCtx::new(42).with_sims(500));
//!
//! assert!(report.allocation.respects_budgets(inst.budgets()));
//! println!("{}", report.summary()); // welfare mean ± CI, seeds, time
//! assert!(report.welfare_mean() >= 0.0);
//!
//! // Swapping algorithms is a string, not a new code path:
//! let disj = <dyn Allocator>::by_name("item-disj").unwrap();
//! let report_disj = disj.solve(&inst, &SolveCtx::new(42).with_sims(500));
//! assert!(report_disj.welfare_mean().is_finite());
//! # Ok::<(), uic::core::InstanceError>(())
//! ```

pub use uic_baselines as baselines;
pub use uic_core as core;
pub use uic_datasets as datasets;
pub use uic_diffusion as diffusion;
pub use uic_experiments as experiments;
pub use uic_graph as graph;
pub use uic_im as im;
pub use uic_items as items;
pub use uic_serve as serve;
pub use uic_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use uic_baselines::{
        bdhs_concave_welfare, bdhs_step_welfare, bdhs_step_welfare_exact, best_bundle, pagerank,
    };
    pub use uic_core::{
        registry, solve_welmax_bruteforce, Allocator, InstanceError, ObjectiveSpec, SolveCtx,
        SolveReport, WelMax, WelMaxInstance,
    };
    pub use uic_datasets::{community_partition, SolverSpec, SpecMap};
    pub use uic_diffusion::{
        simulate_ic, simulate_triggering, simulate_uic, spread_mc, spread_triggering_mc,
        Allocation, Ces, IcTriggering, LtTriggering, Maximin, ObjectiveError, PerCommunity,
        TriggeringSampler, UniformSubsetTriggering, Utilitarian, WelfareEstimator,
        WelfareObjective,
    };
    pub use uic_graph::{CommunityLabels, Graph, GraphBuilder, GraphStats, NodeId, Weighting};
    pub use uic_im::{imm, opim_c, prima, skim, ssa, tim_plus, DiffusionModel, SkimOptions};
    pub use uic_items::{
        AdditiveValuation, AdoptionOracle, ConeValuation, CoverageValuation, GapParams,
        GapRelation, ItemSet, LevelWiseValuation, NoiseDistribution, NoiseModel,
        PairwiseSynergyValuation, Price, TableValuation, UtilityModel, UtilityTable, Valuation,
    };
    pub use uic_util::{Table, UicRng};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let g = crate::graph::Graph::from_edges(2, &[(0, 1, 1.0)]);
        assert_eq!(g.num_nodes(), 2);
        let s = crate::items::ItemSet::singleton(0);
        assert_eq!(s.len(), 1);
        assert_eq!(crate::core::registry().len(), 10);
    }
}
