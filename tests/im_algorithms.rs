//! Cross-crate integration tests for the influence-maximization
//! algorithm zoo: the prefix-preservation property (Definition 1) that
//! separates PRIMA and SKIM from IMM/TIM⁺/SSA/OPIM-C, the certificates
//! of the stop-and-stare family, and the proxy heuristics.

use uic::prelude::*;

fn network(n: u32, seed: u64) -> Graph {
    uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n,
            edges_per_node: 5,
            ..Default::default()
        },
        seed,
    )
}

/// A neutral RR judge none of the contestants sampled from.
fn judge(g: &Graph, sets: usize) -> uic::im::RrCollection {
    let mut j = uic::im::RrCollection::new(g, DiffusionModel::IC, 0xBEEF);
    j.extend_to(g, sets);
    j
}

#[test]
fn prima_prefixes_certify_every_budget_in_the_vector() {
    // Definition 1 end-to-end: the top-b_i prefix of PRIMA's single
    // ordering must be competitive with a dedicated IMM run per budget.
    let g = network(600, 5);
    let budgets = [40u32, 20, 8];
    let p = prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 11);
    let mut j = judge(&g, 30_000);
    for &k in &budgets {
        let prefix_spread = j.estimate_spread(p.seeds_for_budget(k));
        let dedicated = imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 13).seeds;
        let dedicated_spread = j.estimate_spread(&dedicated);
        assert!(
            prefix_spread >= 0.85 * dedicated_spread,
            "budget {k}: PRIMA prefix {prefix_spread} vs dedicated IMM {dedicated_spread}"
        );
    }
}

#[test]
fn skim_ordering_is_one_object_serving_all_budgets() {
    // SKIM produces one ordering; its prefixes must be competitive with
    // dedicated IMM runs — the §2.1 claim that motivated PRIMA.
    let g = network(600, 7);
    let s = skim(&g, 40, &SkimOptions::default(), 3);
    let mut j = judge(&g, 30_000);
    for &k in &[8usize, 20, 40] {
        let skim_spread = j.estimate_spread(s.prefix(k));
        let dedicated = imm(&g, k as u32, 0.5, 1.0, DiffusionModel::IC, 17).seeds;
        let dedicated_spread = j.estimate_spread(&dedicated);
        assert!(
            skim_spread >= 0.8 * dedicated_spread,
            "budget {k}: SKIM prefix {skim_spread} vs dedicated IMM {dedicated_spread}"
        );
    }
}

#[test]
fn per_budget_reruns_are_not_prefix_consistent_but_prima_is() {
    // The concrete failure PRIMA fixes: re-running a RIS algorithm at a
    // different budget re-derives its sample size, so the smaller-budget
    // seed set need not be a prefix of the larger one. PRIMA's contract
    // guarantees prefix consistency by construction.
    let g = network(600, 9);
    let budgets = [40u32, 20, 8];
    let p = prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 21);
    for &k in &budgets[1..] {
        assert_eq!(
            p.seeds_for_budget(k),
            &p.order[..k as usize],
            "PRIMA budget {k} must be a literal prefix"
        );
    }
    // IMM at k=8 vs k=40: sample sizes differ, so the greedy runs see
    // different collections. We only *document* the mechanism here —
    // sets may still coincide by luck — by checking the collections'
    // sizes genuinely differ (the root cause of prefix inconsistency).
    let small = imm(&g, 8, 0.5, 1.0, DiffusionModel::IC, 21);
    let large = imm(&g, 40, 0.5, 1.0, DiffusionModel::IC, 21);
    assert_ne!(
        small.rr_sets_final, large.rr_sets_final,
        "per-budget reruns use different sample sizes"
    );
}

#[test]
fn ssa_and_opim_match_imm_quality_on_a_real_shaped_network() {
    // At ε = 0.3 all three certify a comparable ratio; at the paper's
    // loose default ε = 0.5 OPIM stops very early (its certificate only
    // promises 1 − 1/e − 0.5 ≈ 0.13·OPT), so the comparison uses the
    // tighter setting.
    let g = network(600, 13);
    let k = 15u32;
    let mut j = judge(&g, 30_000);
    let imm_spread = j.estimate_spread(&imm(&g, k, 0.3, 1.0, DiffusionModel::IC, 3).seeds);
    let ssa_r = ssa(&g, k, 0.3, 1.0, DiffusionModel::IC, 3);
    let opim_r = opim_c(&g, k, 0.3, 1.0, DiffusionModel::IC, 3);
    let ssa_spread = j.estimate_spread(&ssa_r.seeds);
    let opim_spread = j.estimate_spread(&opim_r.seeds);
    assert!(
        ssa_spread >= 0.9 * imm_spread,
        "SSA {ssa_spread} vs IMM {imm_spread}"
    );
    assert!(
        opim_spread >= 0.9 * imm_spread,
        "OPIM {opim_spread} vs IMM {imm_spread}"
    );
}

#[test]
fn opim_certificate_is_consistent_with_the_judge() {
    let g = network(600, 17);
    let r = opim_c(&g, 15, 0.4, 1.0, DiffusionModel::IC, 5);
    let mut j = judge(&g, 60_000);
    let spread = j.estimate_spread(&r.seeds);
    // The certified lower bound must not exceed the judged spread by
    // more than sampling noise, and the upper bound must dominate it.
    assert!(
        r.spread_lower <= spread * 1.1,
        "lower bound {} vs judged {spread}",
        r.spread_lower
    );
    assert!(
        r.opt_upper >= spread * 0.9,
        "OPT upper {} vs judged {spread}",
        r.opt_upper
    );
}

#[test]
fn heuristics_trail_but_are_not_absurd_on_hub_heavy_graphs() {
    // On preferential-attachment graphs degree is a decent influence
    // proxy: the heuristics should land within a factor ~2 of IMM while
    // costing no sampling at all.
    let g = network(600, 19);
    let k = 15u32;
    let mut j = judge(&g, 30_000);
    let imm_spread = j.estimate_spread(&imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 7).seeds);
    let model = UtilityModel::new(
        std::sync::Arc::new(AdditiveValuation::new(vec![1.0])),
        Price::additive(vec![0.0]),
        NoiseModel::none(1),
    );
    let inst = WelMaxInstance::new(&g, model, vec![k]);
    let ctx = SolveCtx::new(1).with_sims(0);
    let deg = <dyn Allocator>::by_name("degree-top")
        .unwrap()
        .solve(&inst, &ctx);
    let pr = <dyn Allocator>::by_name("pagerank-top")
        .unwrap()
        .solve(&inst, &ctx);
    let deg_spread = j.estimate_spread(&deg.allocation.seeds_of_item(0));
    let pr_spread = j.estimate_spread(&pr.allocation.seeds_of_item(0));
    assert!(
        deg_spread >= 0.5 * imm_spread,
        "degree {deg_spread} vs IMM {imm_spread}"
    );
    assert!(
        pr_spread >= 0.5 * imm_spread,
        "PageRank {pr_spread} vs IMM {imm_spread}"
    );
}

#[test]
fn skim_and_prima_agree_on_the_obvious_hubs() {
    // Both prefix-preserving algorithms should put the same dominant
    // hubs in their short prefixes on a hub-heavy network.
    let g = network(600, 23);
    let p = prima(&g, &[10], 0.4, 1.0, DiffusionModel::IC, 29);
    let s = skim(
        &g,
        10,
        &SkimOptions {
            num_instances: 256,
            sketch_size: 64,
        },
        29,
    );
    assert_eq!(
        p.order[0], s.seeds[0],
        "both must open with the dominant hub"
    );
    // Beyond the top hub, spreads on PA graphs are nearly flat, so the
    // orderings legitimately diverge — but not completely.
    let overlap = p.order.iter().filter(|v| s.seeds.contains(v)).count();
    assert!(
        overlap >= 3,
        "top-10 overlap {overlap} too small: PRIMA {:?} vs SKIM {:?}",
        p.order,
        s.seeds
    );
}

#[test]
fn all_ris_algorithms_are_deterministic_and_budget_exact() {
    let g = network(400, 29);
    let k = 10u32;
    let a1 = ssa(&g, k, 0.5, 1.0, DiffusionModel::IC, 31);
    let a2 = ssa(&g, k, 0.5, 1.0, DiffusionModel::IC, 31);
    assert_eq!(a1.seeds, a2.seeds);
    assert_eq!(a1.seeds.len(), k as usize);
    let b1 = opim_c(&g, k, 0.5, 1.0, DiffusionModel::IC, 31);
    let b2 = opim_c(&g, k, 0.5, 1.0, DiffusionModel::IC, 31);
    assert_eq!(b1.seeds, b2.seeds);
    assert_eq!(b1.seeds.len(), k as usize);
    let c1 = skim(&g, k, &SkimOptions::default(), 31);
    let c2 = skim(&g, k, &SkimOptions::default(), 31);
    assert_eq!(c1.seeds, c2.seeds);
    assert_eq!(c1.seeds.len(), k as usize);
}
