//! Theory tests: the paper's propositions, counterexamples and worked
//! examples, encoded verbatim.

use std::sync::Arc;
use uic::prelude::*;

/// Theorem 1's **submodularity counterexample**: one node `u`, two items
/// with negative individual deterministic utility but positive joint
/// utility, bounded noise. Adding `(u, i2)` to `∅` gains nothing, while
/// adding it to `{(u, i1)}` gains the pair's utility — breaking
/// submodularity of `ρ`.
#[test]
fn welfare_is_not_submodular() {
    let g = Graph::from_edges(1, &[]);
    // P > V individually, V({i1,i2}) > P(i1) + P(i2); noise bounded by
    // |V − P| (uniform with half-width 1 = |3−4|).
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 9.0])),
        Price::additive(vec![4.0, 4.0]),
        NoiseModel::new(vec![
            NoiseDistribution::Uniform { half_width: 1.0 },
            NoiseDistribution::Uniform { half_width: 1.0 },
        ]),
    );
    let est = WelfareEstimator::new(&g, &model, 20_000, 3);
    let empty = Allocation::new();
    let s_prime = Allocation::from_item_seeds(&[vec![0], vec![]]); // {(u,i1)}
    let mut with_i2 = empty.clone();
    with_i2.assign(0, 1);
    let mut s_prime_i2 = s_prime.clone();
    s_prime_i2.assign(0, 1);

    let gain_at_empty = est.estimate(&with_i2) - est.estimate(&empty);
    let gain_at_sprime = est.estimate(&s_prime_i2) - est.estimate(&s_prime);
    assert!(
        gain_at_empty.abs() < 0.05,
        "adding i2 alone must add ≈ nothing, got {gain_at_empty}"
    );
    assert!(
        gain_at_sprime > 0.5,
        "adding i2 after i1 must add the pair's utility, got {gain_at_sprime}"
    );
    assert!(
        gain_at_sprime > gain_at_empty + 0.3,
        "marginal gain grew with the base set: not submodular"
    );
}

/// Theorem 1's **supermodularity counterexample**: two nodes `v1 → v2`
/// with probability 1, one item with positive deterministic utility.
/// Adding `(v2, i)` to `∅` gains `E[U]⁺`-ish welfare; adding it to
/// `{(v1, i)}` gains nothing (v2 adopts via propagation anyway).
#[test]
fn welfare_is_not_supermodular() {
    let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(1, vec![0.0, 5.0])),
        Price::additive(vec![4.0]),
        NoiseModel::new(vec![NoiseDistribution::Uniform { half_width: 1.0 }]),
    );
    let est = WelfareEstimator::new(&g, &model, 20_000, 5);
    let empty = Allocation::new();
    let s_prime = Allocation::from_item_seeds(&[vec![0]]); // {(v1,i)}
    let mut v2_only = empty.clone();
    v2_only.assign(1, 0);
    let mut both = s_prime.clone();
    both.assign(1, 0);

    let gain_at_empty = est.estimate(&v2_only) - est.estimate(&empty);
    let gain_at_sprime = est.estimate(&both) - est.estimate(&s_prime);
    assert!(
        gain_at_empty > 0.5,
        "seeding v2 from scratch must create welfare, got {gain_at_empty}"
    );
    assert!(
        gain_at_sprime.abs() < 0.05,
        "seeding v2 after v1 changes nothing (reachability), got {gain_at_sprime}"
    );
}

/// Proposition 1's reduction: single item, `V = 1`, `P = 0`, zero noise
/// ⇒ WelMax *is* influence maximization (welfare = spread), so
/// bundleGRD's seeds must be IM-quality.
#[test]
fn welmax_subsumes_influence_maximization() {
    let g = uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 500,
            edges_per_node: 4,
            ..Default::default()
        },
        11,
    );
    let model = UtilityModel::new(
        Arc::new(AdditiveValuation::new(vec![1.0])),
        Price::additive(vec![0.0]),
        NoiseModel::none(1),
    );
    let inst = WelMax::on(&g)
        .model(model.clone())
        .budgets([10u32])
        .build()
        .unwrap();
    let r = uic::core::solver::BundleGrd {
        eps: 0.4,
        ell: 1.0,
        model: DiffusionModel::IC,
    }
    .solve(&inst, &SolveCtx::new(7).with_sims(0));
    let im = imm(&g, 10, 0.4, 1.0, DiffusionModel::IC, 7);
    assert_eq!(
        r.allocation.seeds_of_item(0),
        {
            let mut s = im.seeds.clone();
            s.sort_unstable();
            s
        },
        "single free item: bundleGRD degenerates to IMM"
    );
    let welfare = WelfareEstimator::new(&g, &model, 4_000, 9).estimate(&r.allocation);
    let spread = spread_mc(&g, &im.seeds, 4_000, 13);
    assert!(
        (welfare - spread).abs() / spread < 0.05,
        "welfare {welfare} == spread {spread}"
    );
}

/// Example 2 + Example 3/4 of the paper on an actual diffusion: blocks
/// ({i1,i3}, {i2}) with Δ = (1, 3), anchors at i3, and the Lemma 5
/// decomposition matching exact welfare on a concrete graph.
#[test]
fn worked_example_blocks_and_decomposition() {
    // Utilities exactly as Example 2 (encode via V with zero prices).
    let table = UtilityTable::from_values(3, vec![0.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 4.0]);
    let blocks = uic::items::generate_blocks(&table);
    assert_eq!(
        blocks.blocks,
        vec![ItemSet::from_items(&[0, 2]), ItemSet::singleton(1)]
    );
    assert!((blocks.gains[0] - 1.0).abs() < 1e-12);
    assert!((blocks.gains[1] - 3.0).abs() < 1e-12);

    // Budgets b1 > b2 > b3 as in Example 3; greedy order [0, 1, 2, 3].
    let budgets = [4u32, 3, 2];
    assert_eq!(blocks.effective_budget(0, &budgets), 2);
    assert_eq!(blocks.effective_budget(1, &budgets), 2);
    assert_eq!(blocks.anchor_item(1, &budgets), 2, "anchor is i3");

    // A path graph 0→1→2→3 (p=1): spreads are deterministic.
    let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
    let order = [0u32, 1, 2, 3];
    // Greedy allocation: item i gets top-b_i seeds.
    let mut alloc = Allocation::new();
    for (i, &b) in budgets.iter().enumerate() {
        for &v in order.iter().take(b as usize) {
            alloc.assign(v, i as u32);
        }
    }
    let exact = uic::diffusion::exact_welfare_given_noise(&g, &alloc, &table);
    let decomposed = uic::core::greedy_welfare_decomposition(&table, &budgets, &order, |s| {
        uic::diffusion::exact_spread(&g, s)
    });
    assert!(
        (exact - decomposed).abs() < 1e-9,
        "Lemma 5: exact {exact} vs decomposition {decomposed}"
    );
    // Hand check: effective seeds of both blocks = top-2 = {0,1};
    // σ({0,1}) = 4 (path, p=1); ρ = 4·1 + 4·3 = 16.
    assert!((exact - 16.0).abs() < 1e-9);
}

/// The bundling insight of §4.2.1: bundleGRD's allocation is
/// simultaneously near-optimal for *any* supermodular configuration —
/// check the same allocation against several utility models.
#[test]
fn one_allocation_serves_all_supermodular_configurations() {
    let g = uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 400,
            edges_per_node: 4,
            ..Default::default()
        },
        17,
    );
    let budgets = [10u32, 8];
    // Three very different supermodular settings.
    let models = [
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 8.0])),
            Price::additive(vec![3.0, 4.0]),
            NoiseModel::iid_gaussian_var(2, 1.0),
        ),
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 0.5, 0.5, 5.0])),
            Price::additive(vec![1.0, 1.0]),
            NoiseModel::none(2),
        ),
        UtilityModel::new(
            Arc::new(ConeValuation::new(2, 0, 4.0, 2.0)),
            Price::additive(vec![1.0, 0.5]),
            NoiseModel::iid_gaussian_var(2, 0.5),
        ),
    ];
    // One instance (the solver never reads its utility model), one
    // allocation, every configuration.
    let inst = WelMax::on(&g)
        .model(models[0].clone())
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(21).with_sims(0);
    let grd = uic::core::solver::BundleGrd {
        eps: 0.4,
        ell: 1.0,
        model: DiffusionModel::IC,
    };
    let r = grd.solve(&inst, &ctx);
    let disj = uic::core::solver::ItemDisj {
        eps: 0.4,
        ell: 1.0,
        model: DiffusionModel::IC,
    }
    .solve(&inst, &ctx);
    for (i, model) in models.iter().enumerate() {
        let est = WelfareEstimator::new(&g, model, 2_000, 31 + i as u64);
        let w_bundle = est.estimate(&r.allocation);
        let w_disj = est.estimate(&disj.allocation);
        assert!(
            w_bundle >= 0.9 * w_disj,
            "model {i}: bundleGRD {w_bundle} collapsed below item-disj {w_disj}"
        );
    }
}
