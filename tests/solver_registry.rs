//! Property-based tests (proptest) on the solver registry: every
//! registered allocator, on random small WelMax instances, returns a
//! budget-respecting allocation with a finite welfare estimate; the
//! registry keys round-trip through `by_name` and the config text
//! format; and `solve` is a pure function of `(instance, ctx)`.

use proptest::prelude::*;
use std::sync::Arc;
use uic::prelude::*;

/// Strategy: a random directed graph as an edge list over `n` nodes.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n, 0.05f32..=1.0), 1..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(n).dedup(true);
        for (u, v, p) in edges {
            if u != v {
                b.add_edge(u, v, p);
            }
        }
        b.build(Weighting::AsGiven, 0)
    })
}

/// Strategy: a random two-item utility model (two items so *every*
/// registered allocator, including the Com-IC pair, applies). Values are
/// supermodular-ish but unconstrained in sign; prices straddle them so
/// instances range from everything-profitable to everything-a-loss.
fn two_item_model() -> impl Strategy<Value = UtilityModel> {
    (
        0.5f64..6.0,
        0.5f64..6.0,
        0.0f64..4.0,
        0.1f64..5.0,
        0.1f64..5.0,
    )
        .prop_map(|(v1, v2, synergy, p1, p2)| {
            UtilityModel::new(
                Arc::new(TableValuation::from_table(
                    2,
                    vec![0.0, v1, v2, v1 + v2 + synergy],
                )),
                Price::additive(vec![p1, p2]),
                NoiseModel::iid_gaussian_var(2, 1.0),
            )
        })
}

proptest! {
    // Each case runs all ten allocators (mc-greedy included), so keep
    // the case count modest; graphs are ≤ 12 nodes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite contract: every registered allocator returns an
    /// allocation with `respects_budgets` true and a finite welfare
    /// estimate, and the report's bookkeeping is consistent.
    #[test]
    fn every_allocator_is_feasible_and_finite_on_random_instances(
        g in small_graph(12, 40),
        model in two_item_model(),
        b1 in 1u32..6,
        b2 in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let budgets = vec![b1.max(b2), b1.min(b2)];
        let inst = WelMax::on(&g)
            .model(model)
            .budgets(budgets.clone())
            .build()
            .unwrap();
        let ctx = SolveCtx::new(seed).with_sims(24);
        for entry in registry() {
            let solver = entry.default_allocator();
            prop_assert!(solver.supports(&inst).is_ok(), "{}", entry.name);
            let r = solver.solve(&inst, &ctx);
            prop_assert_eq!(r.algorithm, entry.name);
            prop_assert_eq!(r.seed, seed, "{}", entry.name);
            prop_assert!(
                r.allocation.respects_budgets(&budgets),
                "{} violated budgets {:?} (used {:?})",
                entry.name,
                &budgets,
                r.allocation.budgets_used(2)
            );
            prop_assert_eq!(
                r.budgets_used.clone(),
                r.allocation.budgets_used(2),
                "{} budget accounting",
                entry.name
            );
            let w = r.welfare_mean();
            prop_assert!(w.is_finite(), "{} welfare {w}", entry.name);
            prop_assert!(r.welfare_ci95().is_finite(), "{}", entry.name);
        }
    }

    /// Solving is deterministic: the same `(instance, ctx)` pair yields
    /// identical allocations and welfare statistics for every solver.
    #[test]
    fn solve_is_deterministic_on_random_instances(
        g in small_graph(10, 30),
        model in two_item_model(),
        seed in 0u64..1_000,
    ) {
        let inst = WelMax::on(&g)
            .model(model)
            .budgets([2u32, 1])
            .build()
            .unwrap();
        let ctx = SolveCtx::new(seed).with_sims(16);
        for entry in registry() {
            let a = entry.default_allocator().solve(&inst, &ctx);
            let b = entry.default_allocator().solve(&inst, &ctx);
            prop_assert_eq!(a.allocation, b.allocation, "{}", entry.name);
            prop_assert_eq!(a.welfare, b.welfare, "{}", entry.name);
        }
    }
}

/// Strategy: arbitrary printable-ish text biased toward spec syntax
/// (`=` signs, whitespace, digits), built from shim range primitives.
fn arbitrary_spec_text() -> impl Strategy<Value = String> {
    (0u64..u64::MAX, 0usize..600).prop_map(|(seed, len)| {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=== ..--++ee\t\n\"\\{}INFnan";
        let mut state = seed | 1;
        let mut next = move || {
            // SplitMix64 step: cheap, deterministic per-case stream.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..len)
            .map(|_| ALPHABET[(next() % ALPHABET.len() as u64) as usize] as char)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz-ish hardening check for the untrusted-input path (config
    /// files and `uic-serve` network frames): arbitrary text through
    /// the spec parsers and the registry's strict constructors returns
    /// typed errors — it never panics, and the spec size limits cap the
    /// work a hostile line can buy.
    #[test]
    fn spec_parsing_never_panics_on_arbitrary_text(text in arbitrary_spec_text()) {
        let _ = SpecMap::parse(&text);
        let _ = SolverSpec::parse(&text);
        let _ = <dyn Allocator>::parse(&text);
        let _ = <dyn Allocator>::parse_with_objective(&text);
    }

    /// Same property on well-formed-but-hostile lines: real registry
    /// heads and parameter keys paired with adversarial numerics (nan,
    /// inf, huge exponents) aimed at the range validators. Accepted
    /// specs must also re-serialize and re-parse.
    #[test]
    fn specish_text_never_panics_the_registry(
        head_i in 0usize..6,
        key_i in 0usize..8,
        value_i in 0usize..10,
    ) {
        let head = ["bundle-grd", "warm-grd", "pagerank-top", "mc-greedy", "rr-cim", "zzz"][head_i];
        let key = ["eps", "ell", "damping", "sims", "model", "objective", "iterations", "junk"][key_i];
        let value = ["nan", "inf", "-inf", "1e308", "-0", "", "0.5", "1e-320", "999999999999", "lt"][value_i];
        let line = format!("{head} {key}={value}");
        if let Ok((solver, _objective)) = <dyn Allocator>::parse_with_objective(&line) {
            // Serializing whatever was accepted must not panic either.
            // (Re-parsing is NOT guaranteed: an accepted subnormal like
            // eps=1e-320 Displays as 300+ digits, past the parse-side
            // token limit that polices untrusted text.)
            let _ = solver.spec().to_string();
        }
    }
}

/// `by_name` round-trips every registry key, and each allocator's spec
/// line survives a parse → build → spec cycle. (Deterministic, so a
/// plain test rather than a property.)
#[test]
fn by_name_and_spec_round_trip_every_registry_key() {
    for entry in registry() {
        let solver = <dyn Allocator>::by_name(entry.name).unwrap();
        assert_eq!(solver.name(), entry.name);
        let line = solver.spec().to_string();
        assert!(line.starts_with(entry.name), "{line}");
        let rebuilt = <dyn Allocator>::parse(&line).unwrap();
        assert_eq!(rebuilt.spec(), solver.spec());
    }
    assert!(<dyn Allocator>::by_name("not-an-algorithm").is_none());
}
