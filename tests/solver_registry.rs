//! Property-based tests (proptest) on the solver registry: every
//! registered allocator, on random small WelMax instances, returns a
//! budget-respecting allocation with a finite welfare estimate; the
//! registry keys round-trip through `by_name` and the config text
//! format; and `solve` is a pure function of `(instance, ctx)`.

use proptest::prelude::*;
use std::sync::Arc;
use uic::prelude::*;

/// Strategy: a random directed graph as an edge list over `n` nodes.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n, 0.05f32..=1.0), 1..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(n).dedup(true);
        for (u, v, p) in edges {
            if u != v {
                b.add_edge(u, v, p);
            }
        }
        b.build(Weighting::AsGiven, 0)
    })
}

/// Strategy: a random two-item utility model (two items so *every*
/// registered allocator, including the Com-IC pair, applies). Values are
/// supermodular-ish but unconstrained in sign; prices straddle them so
/// instances range from everything-profitable to everything-a-loss.
fn two_item_model() -> impl Strategy<Value = UtilityModel> {
    (
        0.5f64..6.0,
        0.5f64..6.0,
        0.0f64..4.0,
        0.1f64..5.0,
        0.1f64..5.0,
    )
        .prop_map(|(v1, v2, synergy, p1, p2)| {
            UtilityModel::new(
                Arc::new(TableValuation::from_table(
                    2,
                    vec![0.0, v1, v2, v1 + v2 + synergy],
                )),
                Price::additive(vec![p1, p2]),
                NoiseModel::iid_gaussian_var(2, 1.0),
            )
        })
}

proptest! {
    // Each case runs all nine allocators (mc-greedy included), so keep
    // the case count modest; graphs are ≤ 12 nodes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite contract: every registered allocator returns an
    /// allocation with `respects_budgets` true and a finite welfare
    /// estimate, and the report's bookkeeping is consistent.
    #[test]
    fn every_allocator_is_feasible_and_finite_on_random_instances(
        g in small_graph(12, 40),
        model in two_item_model(),
        b1 in 1u32..6,
        b2 in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let budgets = vec![b1.max(b2), b1.min(b2)];
        let inst = WelMax::on(&g)
            .model(model)
            .budgets(budgets.clone())
            .build()
            .unwrap();
        let ctx = SolveCtx::new(seed).with_sims(24);
        for entry in registry() {
            let solver = entry.default_allocator();
            prop_assert!(solver.supports(&inst).is_ok(), "{}", entry.name);
            let r = solver.solve(&inst, &ctx);
            prop_assert_eq!(r.algorithm, entry.name);
            prop_assert_eq!(r.seed, seed, "{}", entry.name);
            prop_assert!(
                r.allocation.respects_budgets(&budgets),
                "{} violated budgets {:?} (used {:?})",
                entry.name,
                &budgets,
                r.allocation.budgets_used(2)
            );
            prop_assert_eq!(
                r.budgets_used.clone(),
                r.allocation.budgets_used(2),
                "{} budget accounting",
                entry.name
            );
            let w = r.welfare_mean();
            prop_assert!(w.is_finite(), "{} welfare {w}", entry.name);
            prop_assert!(r.welfare_ci95().is_finite(), "{}", entry.name);
        }
    }

    /// Solving is deterministic: the same `(instance, ctx)` pair yields
    /// identical allocations and welfare statistics for every solver.
    #[test]
    fn solve_is_deterministic_on_random_instances(
        g in small_graph(10, 30),
        model in two_item_model(),
        seed in 0u64..1_000,
    ) {
        let inst = WelMax::on(&g)
            .model(model)
            .budgets([2u32, 1])
            .build()
            .unwrap();
        let ctx = SolveCtx::new(seed).with_sims(16);
        for entry in registry() {
            let a = entry.default_allocator().solve(&inst, &ctx);
            let b = entry.default_allocator().solve(&inst, &ctx);
            prop_assert_eq!(a.allocation, b.allocation, "{}", entry.name);
            prop_assert_eq!(a.welfare, b.welfare, "{}", entry.name);
        }
    }
}

/// `by_name` round-trips every registry key, and each allocator's spec
/// line survives a parse → build → spec cycle. (Deterministic, so a
/// plain test rather than a property.)
#[test]
fn by_name_and_spec_round_trip_every_registry_key() {
    for entry in registry() {
        let solver = <dyn Allocator>::by_name(entry.name).unwrap();
        assert_eq!(solver.name(), entry.name);
        let line = solver.spec().to_string();
        assert!(line.starts_with(entry.name), "{line}");
        let rebuilt = <dyn Allocator>::parse(&line).unwrap();
        assert_eq!(rebuilt.spec(), solver.spec());
    }
    assert!(<dyn Allocator>::by_name("not-an-algorithm").is_none());
}
