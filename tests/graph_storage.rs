//! Cross-representation equivalence: the compressed weight storages
//! (`InDegree`, `Constant`) are drop-in replacements for explicit
//! per-edge arrays — identical probabilities and **bit-identical**
//! simulator/solver outputs under fixed seeds — while allocating zero
//! per-edge weight bytes.

use uic::diffusion::{simulate_ic, UicSimulator, WelfareEstimator};
use uic::graph::{Graph, WeightClass, WeightSpec, Weighting};
use uic::im::{node_selection, DiffusionModel, RrCollection};
use uic::items::UtilityTable;
use uic::util::UicRng;

/// A weighted-cascade stand-in in its compact representation.
fn wc_graph() -> Graph {
    uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 800,
            edges_per_node: 5,
            ..Default::default()
        },
        11,
    )
}

/// The same graph under compact and per-edge storage. Both are built
/// from the **same arc list in the same order** (CSR slot assignment is
/// order-dependent), so every array except the weights coincides.
fn wc_pair() -> (Graph, Graph) {
    let g = wc_graph();
    let edges: Vec<_> = g.edges().collect();
    let arcs: Vec<_> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
    let compact = Graph::try_from_arcs(g.num_nodes(), &arcs, WeightSpec::InDegree).unwrap();
    let dense = Graph::from_edges(g.num_nodes(), &edges);
    (compact, dense)
}

/// The same graph with its probabilities materialized per edge
/// (valid only for graphs whose edge order equals `edges()` order —
/// anything built through `reweighted_as` or `from_edges` qualifies).
fn per_edge_copy(g: &Graph) -> Graph {
    let edges: Vec<_> = g.edges().collect();
    Graph::from_edges(g.num_nodes(), &edges)
}

#[test]
fn generators_use_compact_storage_with_zero_weight_bytes() {
    let g = wc_graph();
    assert_eq!(g.weight_class(), WeightClass::InDegree);
    assert_eq!(g.memory_footprint().weights, 0);
    let (compact, dense) = wc_pair();
    assert_eq!(dense.memory_footprint().weights, 8 * g.num_edges());
    // Every probability coincides bitwise.
    let a: Vec<_> = compact.edges().collect();
    let b: Vec<_> = dense.edges().collect();
    assert_eq!(a, b);
}

#[test]
fn uic_simulator_outputs_are_bit_identical_across_representations() {
    let (compact, dense) = wc_pair();
    let table = UtilityTable::from_values(2, vec![0.0, 0.4, -0.3, 0.9]);
    let mut alloc = uic::diffusion::Allocation::new();
    for v in [0u32, 3, 17, 101, 400] {
        alloc.assign(v % compact.num_nodes(), 0);
        alloc.assign((v * 7) % compact.num_nodes(), 1);
    }
    let mut sim_c = UicSimulator::new(&compact);
    let mut sim_d = UicSimulator::new(&dense);
    for seed in 0..50u64 {
        let out_c = sim_c.run(&compact, &alloc, &table, &mut UicRng::new(seed));
        let out_d = sim_d.run(&dense, &alloc, &table, &mut UicRng::new(seed));
        assert_eq!(out_c.adoptions, out_d.adoptions, "seed {seed}");
        assert_eq!(out_c.desires, out_d.desires, "seed {seed}");
        assert_eq!(out_c.steps, out_d.steps, "seed {seed}");
    }
}

#[test]
fn ic_cascades_are_bit_identical_across_representations() {
    let (compact, dense) = wc_pair();
    for seed in 0..100u64 {
        let a = simulate_ic(&compact, &[0, 5], &mut UicRng::new(seed));
        let b = simulate_ic(&dense, &[0, 5], &mut UicRng::new(seed));
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn node_selection_is_bit_identical_across_representations() {
    let (compact, dense) = wc_pair();
    for model in [DiffusionModel::IC, DiffusionModel::LT] {
        let mut coll_c = RrCollection::new(&compact, model, 42);
        let mut coll_d = RrCollection::new(&dense, model, 42);
        coll_c.extend_to(&compact, 5_000);
        coll_d.extend_to(&dense, 5_000);
        assert_eq!(coll_c, coll_d, "{model:?}: collections must coincide");
        assert_eq!(coll_c.total_width(), coll_d.total_width());
        let sel_c = node_selection(&mut coll_c, 20);
        let sel_d = node_selection(&mut coll_d, 20);
        assert_eq!(sel_c.seeds, sel_d.seeds, "{model:?}");
        assert_eq!(sel_c.covered, sel_d.covered, "{model:?}");
    }
}

#[test]
fn constant_representation_matches_its_per_edge_copy() {
    let topo = wc_graph();
    let compact = topo.reweighted_as(Weighting::Constant(0.05), 0);
    assert_eq!(compact.weight_class(), WeightClass::Constant(0.05));
    let dense = per_edge_copy(&compact);
    let mut coll_c = RrCollection::new(&compact, DiffusionModel::IC, 7);
    let mut coll_d = RrCollection::new(&dense, DiffusionModel::IC, 7);
    coll_c.extend_to(&compact, 3_000);
    coll_d.extend_to(&dense, 3_000);
    assert_eq!(coll_c, coll_d);
    let sel_c = node_selection(&mut coll_c, 10);
    let sel_d = node_selection(&mut coll_d, 10);
    assert_eq!(sel_c.seeds, sel_d.seeds);
    assert_eq!(sel_c.covered, sel_d.covered);
}

#[test]
fn welfare_estimates_are_bit_identical_across_representations() {
    let (compact, dense) = wc_pair();
    let model = uic::datasets::TwoItemConfig::new(1).model();
    let mut alloc = uic::diffusion::Allocation::new();
    for v in 0..10u32 {
        alloc.assign(v, v % 2);
    }
    let a = WelfareEstimator::new(&compact, &model, 200, 9).estimate(&alloc);
    let b = WelfareEstimator::new(&dense, &model, 200, 9).estimate(&alloc);
    assert_eq!(a, b, "welfare estimator must not see the representation");
}

#[test]
fn zero_copy_and_owned_loads_are_bit_identical_end_to_end() {
    // The zero-copy loader hands the pipelines borrowed section views
    // over the mapped snapshot; the owned loader copies into fresh
    // boxes. Simulator, welfare estimator, and greedy selection must
    // not be able to tell the storages apart — bit for bit.
    let g = wc_graph();
    let dir = std::env::temp_dir().join("uic-graph-storage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("zc-pin-{}.uicg", std::process::id()));
    uic::graph::save_snapshot(&g, &path).unwrap();
    let zc = uic::graph::load_snapshot(&path).unwrap();
    let owned = uic::graph::load_snapshot_owned(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!owned.is_zero_copy());
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    assert!(zc.is_zero_copy(), "mmap path must engage on this platform");
    assert_eq!(zc, owned);
    assert_eq!(zc, g);

    // Simulator outputs.
    let table = UtilityTable::from_values(2, vec![0.0, 0.4, -0.3, 0.9]);
    let mut alloc = uic::diffusion::Allocation::new();
    for v in [0u32, 3, 17, 101, 400] {
        alloc.assign(v % g.num_nodes(), 0);
        alloc.assign((v * 7) % g.num_nodes(), 1);
    }
    let mut sim_z = UicSimulator::new(&zc);
    let mut sim_o = UicSimulator::new(&owned);
    for seed in 0..25u64 {
        let a = sim_z.run(&zc, &alloc, &table, &mut UicRng::new(seed));
        let b = sim_o.run(&owned, &alloc, &table, &mut UicRng::new(seed));
        assert_eq!(a.adoptions, b.adoptions, "seed {seed}");
        assert_eq!(a.desires, b.desires, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
    }

    // Welfare estimator.
    let model = uic::datasets::TwoItemConfig::new(1).model();
    let wz = WelfareEstimator::new(&zc, &model, 200, 9).estimate(&alloc);
    let wo = WelfareEstimator::new(&owned, &model, 200, 9).estimate(&alloc);
    assert_eq!(wz, wo, "welfare estimator must not see the storage mode");

    // RR sampling + greedy selection.
    let mut coll_z = RrCollection::new(&zc, DiffusionModel::IC, 3);
    let mut coll_o = RrCollection::new(&owned, DiffusionModel::IC, 3);
    coll_z.extend_to(&zc, 3_000);
    coll_o.extend_to(&owned, 3_000);
    assert_eq!(coll_z, coll_o);
    let sel_z = node_selection(&mut coll_z, 10);
    let sel_o = node_selection(&mut coll_o, 10);
    assert_eq!(sel_z.seeds, sel_o.seeds);
    assert_eq!(sel_z.covered, sel_o.covered);
}

#[test]
fn snapshot_roundtrip_preserves_solver_outputs() {
    let g = wc_graph();
    let mut buf = Vec::new();
    uic::graph::write_snapshot(&g, &mut buf).unwrap();
    let loaded = uic::graph::read_snapshot(&buf[..]).unwrap();
    assert_eq!(loaded, g);
    let mut coll_a = RrCollection::new(&g, DiffusionModel::IC, 3);
    let mut coll_b = RrCollection::new(&loaded, DiffusionModel::IC, 3);
    coll_a.extend_to(&g, 2_000);
    coll_b.extend_to(&loaded, 2_000);
    let sel_a = node_selection(&mut coll_a, 10);
    let sel_b = node_selection(&mut coll_b, 10);
    assert_eq!(sel_a.seeds, sel_b.seeds);
    assert_eq!(sel_a.covered, sel_b.covered);
}
