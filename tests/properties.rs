//! Property-based tests (proptest) on the core invariants of the paper:
//! supermodularity machinery, block accounting, adoption semantics, and
//! the UIC possible-world lemmas — all checked against randomly
//! generated utility configurations and graphs.

use proptest::prelude::*;
use std::sync::Arc;
use uic::prelude::*;

/// Strategy: a random supermodular utility table over `n` items via the
/// level-wise construction with random singleton values and prices.
fn supermodular_model(n: u32) -> impl Strategy<Value = UtilityModel> {
    (0u64..1_000_000).prop_map(move |seed| {
        let mut rng = UicRng::new(seed);
        let singles: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0).collect();
        let v = LevelWiseValuation::generate(&singles, &mut rng);
        let prices: Vec<f64> = (0..n).map(|_| rng.next_f64() * 8.0).collect();
        UtilityModel::new(
            Arc::new(v),
            Price::additive(prices),
            NoiseModel::none(n as usize),
        )
    })
}

/// Strategy: a random small graph as an edge list over `n` nodes.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n, 0.0f32..=1.0), 0..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(n).dedup(true);
        for (u, v, p) in edges {
            if u != v {
                b.add_edge(u, v, p);
            }
        }
        b.build(Weighting::AsGiven, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The level-wise construction always yields supermodular, monotone
    /// valuations (Lemma 10) — hence supermodular utilities.
    #[test]
    fn generated_utilities_are_supermodular(model in supermodular_model(4)) {
        let table = model.deterministic_table();
        prop_assert!(table.is_supermodular());
    }

    /// Lemma 1: the union of two local maxima is a local maximum.
    #[test]
    fn union_of_local_maxima_is_local_maximum(model in supermodular_model(4)) {
        let table = model.deterministic_table();
        let full = ItemSet::full(4);
        for a in full.subsets() {
            for b in full.subsets() {
                if table.is_local_maximum(a) && table.is_local_maximum(b) {
                    prop_assert!(
                        table.is_local_maximum(a.union(b)),
                        "{a} ∪ {b} not a local max"
                    );
                }
            }
        }
    }

    /// The adoption oracle always returns a local maximum that sandwiches
    /// between the current adoption and the desire set (Lemma 2).
    #[test]
    fn adoption_oracle_invariants(model in supermodular_model(4)) {
        let table = model.deterministic_table();
        let mut oracle = AdoptionOracle::new(&table);
        let full = ItemSet::full(4);
        for desire in full.subsets() {
            for adopted in desire.subsets() {
                // Reachable model states: the current adoption set is a
                // non-negative local maximum (Lemma 2, inductively).
                if table.utility(adopted) < 0.0 || !table.is_local_maximum(adopted) {
                    continue;
                }
                let t = oracle.adopt(desire, adopted);
                prop_assert!(adopted.is_subset_of(t));
                prop_assert!(t.is_subset_of(desire));
                prop_assert!(table.is_local_maximum(t), "{t} not local max");
                prop_assert!(table.utility(t) >= table.utility(adopted) - 1e-9);
            }
        }
    }

    /// Block generation partitions I* with non-negative gains summing to
    /// U(I*) (Property 2), and partial-block gains never exceed the full
    /// gains (Property 3).
    #[test]
    fn block_accounting_properties(model in supermodular_model(5)) {
        let table = model.deterministic_table();
        let blocks = uic::items::generate_blocks(&table);
        let mut union = ItemSet::EMPTY;
        for (i, &b) in blocks.blocks.iter().enumerate() {
            prop_assert!(!b.is_empty());
            prop_assert!(union.is_disjoint_from(b), "block {i} overlaps");
            prop_assert!(blocks.gains[i] >= -1e-9);
            union = union.union(b);
        }
        prop_assert_eq!(union, blocks.istar);
        let total: f64 = blocks.gains.iter().sum();
        prop_assert!((total - table.utility(blocks.istar)).abs() < 1e-6);
    }

    /// Spread is monotone in the seed set on arbitrary graphs (exact
    /// computation on tiny instances).
    #[test]
    fn exact_spread_is_monotone(g in small_graph(6, 10), extra in 0u32..6) {
        prop_assume!(g.num_edges() <= 10);
        let base = uic::diffusion::exact_spread(&g, &[0]);
        let bigger = uic::diffusion::exact_spread(&g, &[0, extra.min(5)]);
        prop_assert!(bigger >= base - 1e-9);
    }

    /// Welfare in any fixed possible world is monotone in the allocation
    /// (the per-world argument behind Theorem 1).
    #[test]
    fn per_world_welfare_monotone(
        g in small_graph(5, 8),
        model in supermodular_model(3),
        mask in 0u32..(1 << 15),
    ) {
        prop_assume!(g.num_edges() <= 8);
        let table = model.deterministic_table();
        // Random allocation from the mask bits: pair (node v, item i)
        // present iff bit (v*3 + i) set.
        let mut small = Allocation::new();
        let mut large = Allocation::new();
        for v in 0..5u32 {
            for i in 0..3u32 {
                if mask >> (v * 3 + i) & 1 == 1 {
                    small.assign(v, i);
                }
                // large ⊇ small plus the diagonal pairs
                if (mask >> (v * 3 + i) & 1 == 1) || v == i {
                    large.assign(v, i);
                }
            }
        }
        for (world, _) in uic::diffusion::enumerate_edge_worlds(&g) {
            let w_small = uic::diffusion::simulate_uic_in_world(&g, &small, &table, &world)
                .welfare(&table);
            let w_large = uic::diffusion::simulate_uic_in_world(&g, &large, &table, &world)
                .welfare(&table);
            prop_assert!(
                w_large >= w_small - 1e-9,
                "welfare dropped {} → {}", w_small, w_large
            );
        }
    }

    /// Reachability lemma (Lemma 3) on random graphs and utilities: any
    /// item adopted at u is adopted by every world-reachable node.
    #[test]
    fn reachability_lemma(
        g in small_graph(5, 8),
        model in supermodular_model(3),
        seed_mask in 1u32..32,
    ) {
        prop_assume!(g.num_edges() <= 8);
        let table = model.deterministic_table();
        let mut alloc = Allocation::new();
        for v in 0..5u32 {
            if seed_mask >> v & 1 == 1 {
                alloc.assign_set(v, ItemSet::full(3));
            }
        }
        for (world, _) in uic::diffusion::enumerate_edge_worlds(&g) {
            let out = uic::diffusion::simulate_uic_in_world(&g, &alloc, &table, &world);
            for &(u, a_u) in &out.adoptions {
                for v in world.reachable(&g, &[u]) {
                    prop_assert!(
                        a_u.is_subset_of(out.adoption_of(v)),
                        "items lost from {} to {}", u, v
                    );
                }
            }
        }
    }

    /// RR-set spread estimates are consistent with exact spread.
    #[test]
    fn rr_estimates_match_exact(g in small_graph(6, 9), seed in 0u64..1000) {
        prop_assume!(g.num_edges() <= 9);
        prop_assume!(g.num_nodes() >= 2);
        let mut coll = uic::im::RrCollection::new(&g, DiffusionModel::IC, seed);
        coll.extend_to(&g, 60_000);
        let est = coll.estimate_spread(&[0, 1]);
        let exact = uic::diffusion::exact_spread(&g, &[0, 1]);
        prop_assert!((est - exact).abs() < 0.15, "RR {} vs exact {}", est, exact);
    }

    /// Allocation round-trips: from_item_seeds ∘ seeds_of_item = id.
    #[test]
    fn allocation_roundtrip(seeds0 in proptest::collection::btree_set(0u32..50, 0..10),
                            seeds1 in proptest::collection::btree_set(0u32..50, 0..10)) {
        let s0: Vec<u32> = seeds0.into_iter().collect();
        let s1: Vec<u32> = seeds1.into_iter().collect();
        let alloc = Allocation::from_item_seeds(&[s0.clone(), s1.clone()]);
        prop_assert_eq!(alloc.seeds_of_item(0), s0);
        prop_assert_eq!(alloc.seeds_of_item(1), s1);
    }
}
