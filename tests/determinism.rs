//! Determinism guarantees: every stochastic component of the library is
//! a pure function of its explicit `u64` seed — results are replayable
//! across runs and independent of thread scheduling. This is what makes
//! EXPERIMENTS.md reproducible and the benchmarks meaningful.

use uic::prelude::*;

fn network(seed: u64) -> Graph {
    uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 600,
            edges_per_node: 5,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn generators_replay_exactly() {
    let a = network(5);
    let b = network(5);
    assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    let c = uic::datasets::erdos_renyi(200, 800, 9);
    let d = uic::datasets::erdos_renyi(200, 800, 9);
    assert_eq!(c.edges().collect::<Vec<_>>(), d.edges().collect::<Vec<_>>());
}

#[test]
fn named_networks_replay_exactly() {
    use uic::datasets::{named_network, NamedNetwork};
    for which in NamedNetwork::ALL {
        let a = named_network(which, 0.005, 3);
        let b = named_network(which, 0.005, 3);
        assert_eq!(a.num_nodes(), b.num_nodes(), "{}", which.name());
        assert_eq!(
            a.edges().collect::<Vec<_>>(),
            b.edges().collect::<Vec<_>>(),
            "{}",
            which.name()
        );
    }
}

#[test]
fn seed_selection_replays_exactly() {
    let g = network(7);
    for _ in 0..2 {
        let a = prima(&g, &[10, 5], 0.4, 1.0, DiffusionModel::IC, 11);
        let b = prima(&g, &[10, 5], 0.4, 1.0, DiffusionModel::IC, 11);
        assert_eq!(a.order, b.order);
        assert_eq!(a.rr_sets_final, b.rr_sets_final);
    }
    let a = tim_plus(&g, 5, 0.4, 1.0, DiffusionModel::IC, 13);
    let b = tim_plus(&g, 5, 0.4, 1.0, DiffusionModel::IC, 13);
    assert_eq!(a.seeds, b.seeds);
}

#[test]
fn welfare_estimates_are_thread_count_invariant() {
    // The estimator splits seeds per simulation index, so its result is
    // a pure function of (graph, model, allocation, sims, seed): two
    // estimates agree bit-for-bit even though worker threads race.
    use std::sync::Arc;
    let g = network(9);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    let alloc = Allocation::from_item_seeds(&[vec![0, 1, 2], vec![0, 1]]);
    let est = WelfareEstimator::new(&g, &model, 3_000, 17);
    let w1 = est.estimate(&alloc);
    let w2 = est.estimate(&alloc);
    assert_eq!(w1, w2, "bit-exact replay expected");
    let s1 = spread_mc(&g, &[0, 1, 2], 3_000, 19);
    let s2 = spread_mc(&g, &[0, 1, 2], 3_000, 19);
    assert_eq!(s1, s2);
}

#[test]
fn rr_collections_grow_deterministically_in_parallel() {
    use uic::im::RrCollection;
    let g = network(21);
    // Force a large parallel batch.
    let mut a = RrCollection::new(&g, DiffusionModel::IC, 23);
    a.extend_to(&g, 50_000);
    let mut b = RrCollection::new(&g, DiffusionModel::IC, 23);
    // Grow in two uneven steps: content must match the one-shot growth.
    b.extend_to(&g, 12_345);
    b.extend_to(&g, 50_000);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_actually_differ() {
    let g = network(25);
    let a = imm(&g, 8, 0.4, 1.0, DiffusionModel::IC, 1);
    let b = imm(&g, 8, 0.4, 1.0, DiffusionModel::IC, 2);
    // Orders may coincide on easy graphs, but the RR streams must not.
    let mut ca = uic::im::RrCollection::new(&g, DiffusionModel::IC, 1);
    ca.extend_to(&g, 100);
    let mut cb = uic::im::RrCollection::new(&g, DiffusionModel::IC, 2);
    cb.extend_to(&g, 100);
    assert_ne!(ca, cb);
    let _ = (a, b);
}

#[test]
fn full_experiment_tables_replay() {
    // The smallest full-pipeline artifact: Table 6 on a smoke network.
    let opts = uic::experiments::ExpOptions {
        scale: 0.02,
        sims: 30,
        ..Default::default()
    };
    let a = uic::experiments::tables::table6(&opts);
    let b = uic::experiments::tables::table6(&opts);
    assert_eq!(a, b);
}
