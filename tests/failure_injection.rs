//! Failure-injection and degenerate-input tests: every constructor and
//! algorithm must either handle the edge case meaningfully or reject it
//! loudly at the boundary — never corrupt state or return garbage.

use std::sync::Arc;
use uic::prelude::*;

// ---------------------------------------------------------------------
// Graph boundaries
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "out of range")]
fn graph_builder_rejects_out_of_range_edges() {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 7, 0.5);
}

#[test]
fn empty_graph_is_usable_where_it_can_be() {
    let g = Graph::from_edges(0, &[]);
    assert_eq!(g.num_nodes(), 0);
    assert_eq!(g.num_edges(), 0);
    assert!(pagerank(&g, 0.85, 10).is_empty());
}

#[test]
fn single_node_graph_diffusion_is_trivial() {
    let g = Graph::from_edges(1, &[]);
    assert_eq!(spread_mc(&g, &[0], 100, 1), 1.0);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(1, vec![0.0, 2.0])),
        Price::additive(vec![1.0]),
        NoiseModel::none(1),
    );
    let mut alloc = Allocation::new();
    alloc.assign(0, 0);
    let w = WelfareEstimator::new(&g, &model, 50, 1).estimate(&alloc);
    assert!(
        (w - 1.0).abs() < 1e-9,
        "lone seed adopts, welfare 1, got {w}"
    );
}

#[test]
fn self_loops_are_dropped_not_crashed() {
    let mut b = GraphBuilder::new(2).dedup(true);
    b.add_edge(0, 0, 0.9);
    b.add_edge(0, 1, 0.5);
    let g = b.build(Weighting::AsGiven, 0);
    assert_eq!(g.num_edges(), 1, "self-loop must be dropped");
}

// ---------------------------------------------------------------------
// Utility-model boundaries
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "2^n entries")]
fn table_valuation_rejects_wrong_table_size() {
    TableValuation::from_table(2, vec![0.0, 1.0, 2.0]);
}

#[test]
#[should_panic(expected = "U(∅) must be 0")]
fn utility_table_rejects_nonzero_empty_set() {
    UtilityTable::from_values(1, vec![1.0, 2.0]);
}

#[test]
#[should_panic(expected = "non-negative")]
fn negative_singleton_value_rejected() {
    // Valuations are monotone with V(∅)=0, so singletons must be ≥ 0.
    AdditiveValuation::new(vec![2.0, -1.0]);
}

#[test]
fn zero_variance_noise_is_exactly_deterministic() {
    let dist = NoiseDistribution::gaussian_var(0.0);
    let mut rng = UicRng::new(7);
    for _ in 0..100 {
        assert_eq!(dist.sample(&mut rng), 0.0);
    }
}

#[test]
fn noise_model_arity_is_enforced_at_model_assembly() {
    // Mismatched arity between valuation and noise must be rejected.
    let result = std::panic::catch_unwind(|| {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, 1.0, 3.0])),
            Price::additive(vec![0.5, 0.5]),
            NoiseModel::none(3),
        )
    });
    assert!(result.is_err(), "arity mismatch must panic");
}

// ---------------------------------------------------------------------
// Allocator boundaries
// ---------------------------------------------------------------------

#[test]
#[allow(deprecated)] // boundary test on the engine entry point
fn bundle_grd_with_budget_equal_to_n_seeds_everyone() {
    let g = Graph::from_edges(4, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]);
    let r = uic::core::bundle_grd(&g, &[4, 2], 0.5, 1.0, DiffusionModel::IC, 1);
    assert_eq!(r.allocation.seeds_of_item(0).len(), 4);
    assert_eq!(r.allocation.seeds_of_item(1).len(), 2);
}

#[test]
#[allow(deprecated)] // boundary test on the engine entry point
fn item_disj_survives_total_budget_exceeding_n() {
    let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
    let r = uic::baselines::item_disj(&g, &[3, 3], 0.5, 1.0, DiffusionModel::IC, 1);
    assert!(r.allocation.num_seed_nodes() <= 3);
    assert!(r.allocation.respects_budgets(&[3, 3]));
}

#[test]
#[should_panic(expected = "out of range")]
fn prima_rejects_budget_above_n() {
    let g = Graph::from_edges(3, &[(0, 1, 0.5)]);
    prima(&g, &[5], 0.5, 1.0, DiffusionModel::IC, 1);
}

#[test]
#[should_panic(expected = "non-empty candidate")]
#[allow(deprecated)] // boundary test on the engine entry point
fn pair_greedy_rejects_empty_candidate_pool() {
    let g = Graph::from_edges(2, &[(0, 1, 0.5)]);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(1, vec![0.0, 2.0])),
        Price::additive(vec![1.0]),
        NoiseModel::none(1),
    );
    uic::baselines::mc_greedy_welfare(&g, &model, &[1], &[], 10, 1);
}

// ---------------------------------------------------------------------
// Diffusion boundaries
// ---------------------------------------------------------------------

#[test]
fn uic_with_empty_allocation_produces_zero_welfare() {
    let g = Graph::from_edges(5, &[(0, 1, 0.5), (1, 2, 0.5)]);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, 1.0, 3.0])),
        Price::additive(vec![0.5, 0.5]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    let w = WelfareEstimator::new(&g, &model, 200, 3).estimate(&Allocation::new());
    assert_eq!(w, 0.0);
}

#[test]
fn zero_probability_edges_never_fire() {
    let g = Graph::from_edges(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
    assert_eq!(spread_mc(&g, &[0], 2_000, 5), 1.0);
}

#[test]
fn certain_edges_always_fire() {
    let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
    assert_eq!(spread_mc(&g, &[0], 2_000, 5), 3.0);
}

#[test]
fn extreme_noise_variance_does_not_produce_nan_welfare() {
    let g = Graph::from_edges(4, &[(0, 1, 0.5), (0, 2, 0.5), (2, 3, 0.5)]);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(1, vec![0.0, 1.0])),
        Price::additive(vec![1.0]),
        NoiseModel::iid_gaussian_var(1, 1e12),
    );
    let mut alloc = Allocation::new();
    alloc.assign(0, 0);
    let w = WelfareEstimator::new(&g, &model, 500, 9).estimate(&alloc);
    assert!(w.is_finite(), "welfare must stay finite, got {w}");
}

#[test]
fn disconnected_components_do_not_leak_adoptions() {
    // Two disjoint 2-chains; seeding component A must never activate B.
    let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(1, vec![0.0, 2.0])),
        Price::additive(vec![1.0]),
        NoiseModel::none(1),
    );
    let mut alloc = Allocation::new();
    alloc.assign(0, 0);
    let outcome = simulate_uic(
        &g,
        &alloc,
        &model.deterministic_table(),
        &mut UicRng::new(17),
    );
    assert!(
        outcome.adoption_of(1).contains(0),
        "in-component node adopts"
    );
    assert!(!outcome.adoption_of(2).contains(0), "cross-component leak");
    assert!(!outcome.adoption_of(3).contains(0), "cross-component leak");
}

// ---------------------------------------------------------------------
// RR machinery boundaries
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "out of range")]
fn raw_rr_sets_reject_out_of_range_nodes() {
    uic::im::RrCollection::from_raw_sets(2, vec![vec![5]]);
}

#[test]
fn rr_sets_on_edgeless_graph_are_singletons() {
    let g = Graph::from_edges(4, &[]);
    let mut coll = uic::im::RrCollection::new(&g, DiffusionModel::IC, 1);
    coll.extend_to(&g, 100);
    for r in coll.iter() {
        assert_eq!(r.len(), 1, "no edges ⇒ RR set is its root only");
    }
}

#[test]
fn skim_on_edgeless_graph_returns_any_ordering_with_unit_marginals() {
    let g = Graph::from_edges(4, &[]);
    let r = skim(&g, 4, &SkimOptions::default(), 1);
    assert_eq!(r.seeds.len(), 4);
    for &m in &r.marginal_spreads {
        assert!((m - 1.0).abs() < 1e-9, "each seed covers exactly itself");
    }
}
