//! End-to-end integration tests spanning the whole workspace: build a
//! network, run every allocator, score them with the shared welfare
//! estimator, and check the paper's headline orderings.

use std::sync::Arc;
use uic::prelude::*;

fn network(n: u32, seed: u64) -> Graph {
    uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n,
            edges_per_node: 5,
            ..Default::default()
        },
        seed,
    )
}

/// Config-3-like utilities: i2 is a loss alone, the pair is good.
fn pair_model() -> UtilityModel {
    UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    )
}

#[test]
fn bundle_grd_beats_item_disj_on_complementary_items() {
    let g = network(800, 3);
    let inst = WelMax::on(&g)
        .model(pair_model())
        .budgets([15u32, 15])
        .build()
        .unwrap();
    let ctx = SolveCtx::new(42).with_sims(3_000).with_welfare_seed(7);
    let w_greedy = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();
    let w_disj = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();
    assert!(
        w_greedy > w_disj,
        "bundleGRD {w_greedy} must beat item-disj {w_disj} when bundling matters"
    );
}

#[test]
fn every_registered_allocator_respects_budgets_and_produces_finite_welfare() {
    let g = network(400, 5);
    let budgets = [8u32, 6];
    let inst = WelMax::on(&g)
        .model(pair_model())
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(1).with_sims(500).with_welfare_seed(11);
    for entry in registry() {
        let solver = entry.default_allocator();
        let r = solver.solve(&inst, &ctx);
        let name = r.algorithm;
        assert!(
            r.allocation.respects_budgets(&budgets),
            "{name} exceeded budgets"
        );
        assert!(!r.allocation.is_empty(), "{name} allocated nothing");
        assert_eq!(
            r.budgets_used,
            r.allocation.budgets_used(2),
            "{name} budget accounting"
        );
        let w = r.welfare_mean();
        assert!(w.is_finite() && w >= 0.0, "{name} welfare {w}");
        assert!(r.welfare_ci95().is_finite(), "{name} CI");
    }
}

#[test]
fn bundle_grd_achieves_approximation_ratio_on_tiny_instances() {
    // Empirical Theorem 2: on brute-forceable instances, bundleGRD's
    // exact welfare (zero noise) is ≥ (1 − 1/e − ε)·OPT.
    let ratio = 1.0 - 1.0 / std::f64::consts::E - 0.2;
    for seed in 0..8u64 {
        let mut rng = UicRng::new(seed);
        // Random 5-node graph with ≤ 10 edges.
        let mut builder = GraphBuilder::new(5);
        let mut added = 0;
        'outer: for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v && rng.coin(0.4) {
                    builder.add_edge(u, v, 0.5);
                    added += 1;
                    if added == 10 {
                        break 'outer;
                    }
                }
            }
        }
        let g = builder.build(Weighting::AsGiven, 0);
        let model = UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, -1.0, 3.0])),
            Price::additive(vec![0.0, 0.0]),
            NoiseModel::none(2),
        );
        let budgets = [2u32, 1];
        let table = model.deterministic_table();
        let (_, opt) = solve_welmax_bruteforce(&g, &table, &budgets);
        let inst = WelMax::on(&g)
            .model(model.clone())
            .budgets(budgets)
            .build()
            .unwrap();
        let greedy = uic::core::solver::BundleGrd {
            eps: 0.2,
            ell: 1.0,
            model: DiffusionModel::IC,
        }
        .solve(&inst, &SolveCtx::new(seed).with_sims(0));
        let got = uic::diffusion::exact_welfare_given_noise(&g, &greedy.allocation, &table);
        assert!(
            got >= ratio * opt - 1e-9,
            "seed {seed}: bundleGRD {got} < {ratio:.3} × OPT {opt}"
        );
    }
}

#[test]
fn lemma5_decomposition_agrees_with_mc_welfare_at_scale() {
    // The block-accounting decomposition (Lemma 5) and the Monte-Carlo
    // estimator must agree for greedy allocations under zero noise.
    let g = network(600, 9);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, -1.0, 3.0])),
        Price::additive(vec![0.0, 0.0]),
        NoiseModel::none(2),
    );
    let budgets = [12u32, 8];
    // The Lemma 5 decomposition needs the PRIMA ordering itself, which
    // only the engine-level entry point exposes.
    #[allow(deprecated)]
    let greedy = uic::core::bundle_grd(&g, &budgets, 0.3, 1.0, DiffusionModel::IC, 4);
    let table = model.deterministic_table();
    let decomposed =
        uic::core::greedy_welfare_decomposition(&table, &budgets, &greedy.order, |seeds| {
            spread_mc(&g, seeds, 4_000, 21)
        });
    let mc = WelfareEstimator::new(&g, &model, 4_000, 22).estimate(&greedy.allocation);
    let rel = (decomposed - mc).abs() / mc.max(1.0);
    assert!(
        rel < 0.08,
        "Lemma 5 decomposition {decomposed} vs MC welfare {mc} (rel err {rel:.3})"
    );
}

#[test]
fn uic_reduces_to_ic_for_single_free_item() {
    // Proposition 1's reduction: one item, V = 1, P = 0, no noise ⇒
    // expected welfare = expected spread.
    let g = network(500, 13);
    let model = UtilityModel::new(
        Arc::new(AdditiveValuation::new(vec![1.0])),
        Price::additive(vec![0.0]),
        NoiseModel::none(1),
    );
    let seeds: Vec<NodeId> = vec![3, 77, 130];
    let alloc = Allocation::from_item_seeds(std::slice::from_ref(&seeds));
    let welfare = WelfareEstimator::new(&g, &model, 6_000, 31).estimate(&alloc);
    let spread = spread_mc(&g, &seeds, 6_000, 33);
    let rel = (welfare - spread).abs() / spread;
    assert!(
        rel < 0.05,
        "welfare {welfare} should equal spread {spread} (rel {rel:.3})"
    );
}

#[test]
fn prefix_preservation_across_budget_vector() {
    let g = network(700, 17);
    let budgets = [20u32, 10, 5];
    let p = prima(&g, &budgets, 0.4, 1.0, DiffusionModel::IC, 3);
    // Each budget's seed set is a prefix: spreads must be monotone in k
    // and near the dedicated-IMM quality.
    let mut last_spread = 0.0;
    for &k in budgets.iter().rev() {
        let s = spread_mc(&g, p.seeds_for_budget(k), 3_000, 5);
        assert!(
            s >= last_spread - 1.0,
            "budget {k}: prefix spread {s} below smaller budget's {last_spread}"
        );
        last_spread = s;
        let dedicated = imm(&g, k, 0.4, 1.0, DiffusionModel::IC, 3);
        let s_dedicated = spread_mc(&g, &dedicated.seeds, 3_000, 5);
        assert!(
            s >= 0.85 * s_dedicated,
            "budget {k}: prefix spread {s} far below dedicated IMM {s_dedicated}"
        );
    }
}

#[test]
fn gap_conversion_preserves_adoption_behavior() {
    // Sanity link between UIC and Com-IC: a node informed of item 1
    // alone adopts with probability ≈ q_{1|∅} under UIC simulation.
    let model = pair_model();
    let gap = GapParams::from_utility(&model);
    let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
    let mut alloc = Allocation::new();
    alloc.assign(0, 0);
    let mut adoptions = 0u32;
    let sims = 30_000u32;
    for s in 0..sims {
        let mut rng = UicRng::new(uic::util::split_seed(99, s as u64));
        let world = model.sample_noise(&mut rng);
        let table = model.table_for(&world);
        let out = simulate_uic(&g, &alloc, &table, &mut rng);
        if out.adoption_of(1).contains(0) {
            adoptions += 1;
        }
    }
    let rate = adoptions as f64 / sims as f64;
    // UIC samples noise once per diffusion for the whole population
    // (§3.2.3), so node 1's decision is perfectly correlated with node
    // 0's: whenever the seed adopts (probability q_{1|∅}), the noise
    // world has U(i1) ≥ 0 globally and node 1 adopts too. The Com-IC GAP
    // model would flip independent per-node coins (rate q² = 0.25) —
    // this correlation is precisely the population-level-noise design
    // choice the paper discusses in §3.3.2.
    let expect = gap.q1_alone;
    assert!(
        (rate - expect).abs() < 0.02,
        "UIC adoption rate {rate} vs population-noise prediction {expect}"
    );
}
