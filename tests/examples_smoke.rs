//! Smoke tests mirroring the core path of each of the eight
//! `examples/*.rs` targets on tiny graphs, so the examples cannot
//! silently rot: every API call an example demonstrates is exercised
//! here with assertions on the invariants the example's prose claims.

use std::sync::Arc;
use uic::datasets::{
    budget_splits, named_network, real_param_model, NamedNetwork, PaOptions, REAL_ITEM_NAMES,
};
use uic::prelude::*;

/// `examples/quickstart.rs`: PA network, complementary pair, bundleGRD
/// vs item-disj, MC welfare scoring.
#[test]
fn quickstart_core_path() {
    let g = uic::datasets::generators::preferential_attachment(
        PaOptions {
            n: 120,
            edges_per_node: 4,
            ..Default::default()
        },
        7,
    );
    assert_eq!(g.num_nodes(), 120);
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 9.5])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    assert!(model.deterministic_utility(ItemSet::full(2)) > 0.0);
    let budgets = [5u32, 5];
    let inst = WelMax::on(&g)
        .model(model)
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(42).with_sims(200).with_welfare_seed(1);
    let greedy = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx);
    let disj = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx);
    assert!(greedy.allocation.num_seed_nodes() > 0);
    assert!(greedy.welfare_mean().is_finite() && disj.welfare_mean().is_finite());
    assert!(greedy.summary().contains("bundle-grd"));
}

/// `examples/campaign_planner.rs`: three budget splits over the real
/// parameters, scored with one shared estimator.
#[test]
fn campaign_planner_core_path() {
    let g = named_network(NamedNetwork::Twitter, 0.005, 11);
    let model = real_param_model();
    let total = 20u32;
    let solver = <dyn Allocator>::by_name("bundle-grd").unwrap();
    let ctx = SolveCtx::new(42).with_sims(100).with_welfare_seed(9);
    let mut report = Table::new(
        format!("campaign plans, total budget {total}"),
        &["split", "welfare"],
    );
    for budgets in [
        budget_splits::uniform(total, 5),
        budget_splits::large_skew(total, 5),
        budget_splits::real_params(total),
    ] {
        assert_eq!(budgets.iter().sum::<u32>(), total);
        let capped: Vec<u32> = budgets.iter().map(|&b| b.min(g.num_nodes())).collect();
        let inst = WelMax::on(&g)
            .model(model.clone())
            .budgets(capped.clone())
            .build()
            .unwrap();
        let w = solver.solve(&inst, &ctx).welfare_mean();
        assert!(w.is_finite());
        report.push_row(vec![format!("{capped:?}"), format!("{w:.1}")]);
    }
    assert!(report.to_string().contains("campaign plans"));
}

/// `examples/im_algorithm_tour.rs`: every IM algorithm in the zoo on one
/// network and budget, plus the shared MC spread scorer.
#[test]
fn im_algorithm_tour_core_path() {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let k = 5u32;
    let score = |seeds: &[NodeId]| spread_mc(&g, seeds, 200, 99);

    let r = imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    assert_eq!(r.seeds.len(), k as usize);
    assert!(score(&r.seeds) >= k as f64 - 1e-9);

    let r = tim_plus(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    assert_eq!(r.seeds.len(), k as usize);
    assert!(r.rr_sets_total > 0);

    let r = ssa(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    assert_eq!(r.seeds.len(), k as usize);
    assert!(r.rounds >= 1);

    let r = opim_c(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    assert_eq!(r.seeds.len(), k as usize);
    assert!(r.spread_lower <= r.opt_upper);

    let r = skim(&g, k, &SkimOptions::default(), 42);
    assert_eq!(r.seeds.len(), k as usize);
    assert!(r.num_instances > 0);

    let r = prima(&g, &[k, k / 2], 0.5, 1.0, DiffusionModel::IC, 42);
    assert!(r.order.len() >= k as usize);

    let im_model = UtilityModel::new(
        Arc::new(AdditiveValuation::new(vec![1.0])),
        Price::additive(vec![0.0]),
        NoiseModel::none(1),
    );
    let inst = WelMax::on(&g).model(im_model).budgets([k]).build().unwrap();
    let ctx = SolveCtx::new(42).with_sims(0);
    let r = <dyn Allocator>::by_name("degree-top")
        .unwrap()
        .solve(&inst, &ctx);
    assert_eq!(r.allocation.seeds_of_item(0).len(), k as usize);

    let r = <dyn Allocator>::by_name("pagerank-top")
        .unwrap()
        .solve(&inst, &ctx);
    assert_eq!(r.allocation.seeds_of_item(0).len(), k as usize);

    let seeds = uic::im::greedy_mc_spread(&g, 2, 50, DiffusionModel::IC, 42);
    assert_eq!(seeds.len(), 2);
}

/// `examples/prefix_oracle.rs`: one PRIMA ordering serves every budget,
/// and smaller-budget prefixes nest inside larger ones.
#[test]
fn prefix_oracle_core_path() {
    let g = named_network(NamedNetwork::DoubanBook, 0.02, 3);
    let budgets = [8u32, 4, 2, 1];
    let oracle = prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42);
    assert!(oracle.order.len() >= budgets[0] as usize);
    for pair in budgets.windows(2) {
        let bigger = oracle.seeds_for_budget(pair[0]);
        let smaller = oracle.seeds_for_budget(pair[1]);
        assert_eq!(smaller.len(), pair[1] as usize);
        assert!(
            smaller.iter().all(|v| bigger.contains(v)),
            "budget {} seeds are not nested in budget {} seeds",
            pair[1],
            pair[0]
        );
    }
    let r = imm(&g, budgets[0], 0.5, 1.0, DiffusionModel::IC, 42);
    assert_eq!(r.seeds.len(), budgets[0] as usize);
}

/// `examples/substitutes_vs_complements.rs`: the same two allocations
/// scored under a supermodular and a substitutes valuation.
#[test]
fn substitutes_vs_complements_core_path() {
    let g = uic::datasets::generators::preferential_attachment(
        PaOptions {
            n: 100,
            edges_per_node: 4,
            ..Default::default()
        },
        3,
    );
    let budgets = [4u32, 4];
    let complements = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 9.0])),
        Price::additive(vec![3.5, 3.5]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    let substitutes = UtilityModel::new(
        Arc::new(CoverageValuation::substitutes(2, 3.0)),
        Price::additive(vec![1.0, 1.0]),
        NoiseModel::iid_gaussian_var(2, 0.25),
    );
    let inst = WelMax::on(&g)
        .model(complements.clone())
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(42).with_sims(0);
    let bundled = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx);
    let disjoint = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx);
    for model in [&complements, &substitutes] {
        let est = WelfareEstimator::new(&g, model, 200, 9);
        assert!(est.estimate(&bundled.allocation).is_finite());
        assert!(est.estimate(&disjoint.allocation).is_finite());
    }
}

/// `examples/synergy_catalog.rs`: a pairwise-synergy catalogue priced
/// above standalone value, allocated three ways.
#[test]
fn synergy_catalog_core_path() {
    let base = vec![5.0, 2.0, 2.0, 1.5];
    let v =
        PairwiseSynergyValuation::new(base, |i: u32, j: u32| if i.min(j) == 0 { 1.6 } else { 0.2 });
    let prices: Vec<f64> = (0..4u32)
        .map(|i| 1.15 * v.value(ItemSet::singleton(i)))
        .collect();
    let model = UtilityModel::new(
        Arc::new(v),
        Price::additive(prices),
        NoiseModel::iid_gaussian_var(4, 0.25),
    );
    assert_eq!(model.num_items(), 4);
    // Every singleton is a loss by construction.
    for i in 0..4u32 {
        assert!(model.deterministic_utility(ItemSet::singleton(i)) < 0.0);
    }
    let g = named_network(NamedNetwork::DoubanBook, 0.02, 11);
    let budgets = [4u32, 4, 2, 2];
    let inst = WelMax::on(&g)
        .model(model)
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(42).with_sims(100).with_welfare_seed(7);
    for key in ["bundle-grd", "item-disj", "bundle-disj"] {
        let r = <dyn Allocator>::by_name(key).unwrap().solve(&inst, &ctx);
        assert!(r.welfare_mean().is_finite(), "{key}");
    }
}

/// `examples/viral_bundle_launch.rs`: the §4.3.4 console-bundle scenario
/// with auction-learned parameters.
#[test]
fn viral_bundle_launch_core_path() {
    let g = named_network(NamedNetwork::Twitter, 0.005, 11);
    let model = real_param_model();
    assert_eq!(REAL_ITEM_NAMES.len(), model.num_items() as usize);
    let table = model.deterministic_table();
    let istar = uic::items::istar(&table);
    assert!(
        table.utility(istar) > 0.0,
        "the learned best bundle must be profitable"
    );
    let budgets: Vec<u32> = budget_splits::real_params(20)
        .into_iter()
        .map(|b| b.min(g.num_nodes()))
        .collect();
    let inst = WelMax::on(&g)
        .model(model.clone())
        .budgets(budgets)
        .build()
        .unwrap();
    let ctx = SolveCtx::new(42).with_sims(100).with_welfare_seed(3);
    let w_greedy = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();
    let w_disj = <dyn Allocator>::by_name("bundle-disj")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();
    let w_item = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();
    assert!(w_greedy.is_finite() && w_disj.is_finite() && w_item.is_finite());
    // Item-by-item marketing is hopeless here: every single item is a
    // loss, so bundle-aware seeding must not lose to item-disj.
    assert!(w_greedy >= w_item - 1e-9);
}

/// `examples/serve_quickstart.rs`: start the service in-process, query
/// it over TCP, verify warm reuse (`rr_topup=0` on the repeat) and
/// bit-identity with a cold offline solve.
#[test]
fn serve_quickstart_core_path() {
    use uic::datasets::TwoItemConfig;
    use uic::serve::{report_json, Client, Server, ServerConfig};

    let g = Arc::new(named_network(NamedNetwork::Flixster, 0.05, 7));
    let handle = Server::start(g.clone(), ServerConfig::default()).unwrap();
    let request = "warm-grd budgets=5,2 seed=42 sims=50";
    let mut client = Client::connect(handle.addr()).unwrap();
    let first = client.request(request).unwrap();
    let again = client.request(request).unwrap();
    // The deterministic "result" object is identical; only the server
    // bookkeeping (elapsed_us, rr_topup) may differ between the runs.
    let result_of = |r: &uic::serve::Response| {
        let p = r.payload().to_string();
        p[..p.find(",\"server\":").expect("envelope")].to_string()
    };
    assert_eq!(result_of(&first), result_of(&again));
    assert!(
        again.payload().contains("\"rr_topup\":0"),
        "{}",
        again.payload()
    );

    let (solver, objective) = <dyn Allocator>::parse_with_objective("warm-grd").unwrap();
    let inst = WelMax::on(&g)
        .model(TwoItemConfig::new(1).model())
        .budgets([5u32, 2])
        .any_item_order()
        .objective_spec(objective)
        .build()
        .unwrap();
    let offline = report_json(&solver.solve(&inst, &SolveCtx::new(42).with_sims(50)));
    assert!(
        first
            .payload()
            .starts_with(&format!("{{\"result\":{offline}")),
        "server: {}\noffline: {offline}",
        first.payload()
    );
    let metrics = client.request("metrics").unwrap();
    assert!(
        metrics.payload().contains("\"ok_total\":2"),
        "{}",
        metrics.payload()
    );
    handle.shutdown();
    assert!(handle.join().contains("\"requests_total\":"));
}
