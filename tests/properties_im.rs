//! Property-based tests (proptest) on the influence-maximization
//! machinery: PageRank invariants, SKIM's sketch accounting, greedy
//! max-coverage structure, and live-edge world consistency — all over
//! randomly generated graphs.

use proptest::prelude::*;
use uic::prelude::*;

/// Strategy: a random directed graph as an edge list over `n` nodes.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n, 0.0f32..=1.0), 0..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(n).dedup(true);
        for (u, v, p) in edges {
            if u != v {
                b.add_edge(u, v, p);
            }
        }
        b.build(Weighting::AsGiven, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PageRank is a probability distribution on every graph, dangling
    /// nodes or not.
    #[test]
    fn pagerank_is_a_distribution(g in small_graph(12, 40), damping in 0.0f64..0.99) {
        let scores = pagerank(&g, damping, 60);
        let total: f64 = scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        for &s in &scores {
            prop_assert!(s >= 0.0 && s.is_finite());
        }
    }

    /// With damping 0 PageRank collapses to the uniform distribution
    /// regardless of structure.
    #[test]
    fn pagerank_damping_zero_is_uniform(g in small_graph(10, 30)) {
        let scores = pagerank(&g, 0.0, 5);
        for &s in &scores {
            prop_assert!((s - 0.1).abs() < 1e-9);
        }
    }

    /// SKIM with the full budget returns a permutation of the nodes and
    /// marginals that telescope to exactly n (every (instance, node)
    /// pair gets covered exactly once).
    #[test]
    fn skim_full_budget_is_a_permutation_with_telescoping_marginals(
        g in small_graph(10, 30),
        seed in 0u64..1000,
    ) {
        let opts = SkimOptions { num_instances: 8, sketch_size: 8 };
        let r = skim(&g, 10, &opts, seed);
        prop_assert_eq!(r.seeds.len(), 10);
        let mut sorted = r.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 10, "seeds must be distinct");
        let total: f64 = r.marginal_spreads.iter().sum();
        prop_assert!((total - 10.0).abs() < 1e-9, "telescoped to {total}");
        // Marginals are per-seed averages over instances: each in [0, n].
        for &m in &r.marginal_spreads {
            prop_assert!((0.0..=10.0).contains(&m));
        }
    }

    /// SKIM marginal estimates are honest: the prefix-sum estimate never
    /// exceeds n and is at least the prefix length × (1/instances)
    /// (every seed covers at least itself in every instance, unless
    /// already covered — in which case an earlier marginal absorbed it).
    #[test]
    fn skim_prefix_estimates_bounded(g in small_graph(10, 30), seed in 0u64..1000) {
        let r = skim(&g, 5, &SkimOptions { num_instances: 4, sketch_size: 4 }, seed);
        for k in 1..=r.seeds.len() {
            let est = r.estimated_spread(k);
            prop_assert!(est <= 10.0 + 1e-9, "estimate {est} exceeds n");
            prop_assert!(est >= 0.0);
        }
    }

    /// Greedy max-coverage (NodeSelection) prefix property on random
    /// collections: the k-seed result is a prefix of the (k+j)-seed
    /// result over the same sets.
    #[test]
    fn node_selection_prefix_property(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 1..4), 1..20),
        k in 1u32..4,
    ) {
        let mut coll = uic::im::RrCollection::from_raw_sets(8, sets);
        let small = uic::im::node_selection(&mut coll, k);
        let large = uic::im::node_selection(&mut coll, k + 3);
        prop_assert_eq!(&small.seeds[..], &large.seeds[..small.seeds.len()]);
        // Cumulative coverage is non-decreasing and bounded by |sets|.
        for w in large.covered.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        if let Some(&last) = large.covered.last() {
            prop_assert!(last <= coll.len() as u64);
        }
    }

    /// Live-edge worlds: reachability contains the sources, is monotone
    /// in the source set, and `is_live_id` agrees with `is_live`.
    #[test]
    fn live_edge_world_consistency(g in small_graph(10, 30), seed in 0u64..1000) {
        let w = uic::diffusion::LiveEdgeWorld::sample(&g, &mut UicRng::new(seed));
        // Edge-id view agrees with the (node, out-index) view.
        for u in 0..g.num_nodes() {
            for i in 0..g.out_degree(u) {
                let eid = g.out_edge_id(u, i);
                prop_assert_eq!(w.is_live(&g, u, i), w.is_live_id(eid));
            }
        }
        let small = w.reachable(&g, &[0]);
        prop_assert!(small.contains(&0));
        let large = w.reachable(&g, &[0, 5]);
        for v in &small {
            prop_assert!(large.contains(v), "monotonicity violated at {v}");
        }
    }

    /// Degree and PageRank allocations are always budget-exact and
    /// prefix-shaped (smaller-budget items get subsets of larger ones).
    #[test]
    fn heuristic_allocations_are_prefix_shaped(
        g in small_graph(12, 40),
        b1 in 1u32..6,
        b2 in 1u32..6,
    ) {
        let model = UtilityModel::new(
            std::sync::Arc::new(AdditiveValuation::new(vec![1.0, 1.0])),
            Price::additive(vec![0.0, 0.0]),
            NoiseModel::none(2),
        );
        let inst = WelMaxInstance::try_new_any_order(&g, model, vec![b1, b2]).unwrap();
        let ctx = SolveCtx::new(1).with_sims(0);
        for key in ["degree-top", "pagerank-top"] {
            let r = <dyn Allocator>::by_name(key).unwrap().solve(&inst, &ctx);
            prop_assert!(r.allocation.respects_budgets(&[b1, b2]));
            let s0 = r.allocation.seeds_of_item(0);
            let s1 = r.allocation.seeds_of_item(1);
            prop_assert_eq!(s0.len(), b1 as usize);
            prop_assert_eq!(s1.len(), b2 as usize);
            let (short, long) = if b1 <= b2 { (&s0, &s1) } else { (&s1, &s0) };
            for v in short.iter() {
                prop_assert!(long.contains(v), "prefix shape violated");
            }
        }
    }
}
