//! A guided tour of the influence-maximization algorithm zoo.
//!
//! The paper builds on fifteen years of IM algorithms and positions
//! PRIMA against the strongest of them (§2.1, §4.2.3). This example runs
//! all of them on one network and one budget, scoring every seed set
//! with a shared Monte-Carlo spread estimate, so you can see the
//! quality/cost landscape the paper describes:
//!
//! * **IMM** — the scalable RIS baseline bundleGRD builds on;
//! * **TIM⁺** — its predecessor (more RR sets for the same answer);
//! * **SSA** — stop-and-stare: often fewer sets, same quality;
//! * **OPIM-C** — online doubling with an explicit approximation
//!   certificate, printed here;
//! * **SKIM** — bottom-k sketches, the one prefix-preserving predecessor;
//! * **PRIMA** — the paper's multi-budget prefix-preserving extension;
//! * **high-degree / PageRank** — the classic structural heuristics of
//!   KKT'03 (no guarantee, no sampling);
//! * **CELF greedy (MC)** — the 2003-era reference, orders of magnitude
//!   slower, included at a reduced budget so the example stays snappy.
//!
//! ```sh
//! cargo run --release --example im_algorithm_tour
//! ```

use uic::prelude::*;

fn main() {
    let g = uic::datasets::named_network(uic::datasets::NamedNetwork::Flixster, 0.1, 7);
    let k = 20u32;
    println!(
        "network: {} nodes / {} edges — budget k = {k}\n",
        g.num_nodes(),
        g.num_edges()
    );

    let mut report = Table::new(
        "IM algorithm zoo (spread via 2k-world MC; cost = RR sets or instances)",
        &["algorithm", "spread", "cost", "time (ms)", "notes"],
    );
    let score = |seeds: &[NodeId]| spread_mc(&g, seeds, 2_000, 99);

    let t = std::time::Instant::now();
    let r = imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    report.push_row(vec![
        "IMM".into(),
        format!("{:.1}", score(&r.seeds)),
        r.rr_sets_total.to_string(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        "RIS workhorse".into(),
    ]);

    let t = std::time::Instant::now();
    let r = tim_plus(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    report.push_row(vec![
        "TIM+".into(),
        format!("{:.1}", score(&r.seeds)),
        r.rr_sets_total.to_string(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        "pre-IMM; oversamples".into(),
    ]);

    let t = std::time::Instant::now();
    let r = ssa(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    report.push_row(vec![
        "SSA".into(),
        format!("{:.1}", score(&r.seeds)),
        (r.rr_sets_selection + r.rr_sets_validation).to_string(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        format!(
            "stare {} after {} rounds",
            if r.stare_certified {
                "certified"
            } else {
                "capped"
            },
            r.rounds
        ),
    ]);

    let t = std::time::Instant::now();
    let r = opim_c(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
    report.push_row(vec![
        "OPIM-C".into(),
        format!("{:.1}", score(&r.seeds)),
        r.rr_sets_total.to_string(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        format!(
            "certified σ ∈ [{:.0}, OPT ≤ {:.0}], ratio {:.2}",
            r.spread_lower, r.opt_upper, r.ratio
        ),
    ]);

    let t = std::time::Instant::now();
    let r = skim(&g, k, &SkimOptions::default(), 42);
    report.push_row(vec![
        "SKIM".into(),
        format!("{:.1}", score(&r.seeds)),
        format!("{} instances", r.num_instances),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        "prefix-preserving ordering".into(),
    ]);

    let t = std::time::Instant::now();
    let r = prima(&g, &[k, k / 2, k / 4], 0.5, 1.0, DiffusionModel::IC, 42);
    report.push_row(vec![
        "PRIMA".into(),
        format!("{:.1}", score(&r.order)),
        r.rr_sets_total.to_string(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        "one ordering, 3 budgets certified".into(),
    ]);

    // The structural heuristics are WelMax allocators in the solver
    // registry; a one-free-item instance turns seed selection into plain
    // influence maximization.
    let im_model = UtilityModel::new(
        std::sync::Arc::new(AdditiveValuation::new(vec![1.0])),
        Price::additive(vec![0.0]),
        NoiseModel::none(1),
    );
    let inst = WelMax::on(&g)
        .model(im_model)
        .budgets([k])
        .build()
        .expect("valid WelMax instance");
    let ctx = SolveCtx::new(42).with_sims(0);

    let r = <dyn Allocator>::by_name("degree-top")
        .unwrap()
        .solve(&inst, &ctx);
    report.push_row(vec![
        "high-degree".into(),
        format!("{:.1}", score(&r.allocation.seeds_of_item(0))),
        "0".into(),
        format!("{:.0}", r.elapsed.as_secs_f64() * 1e3),
        "structural heuristic".into(),
    ]);

    let r = <dyn Allocator>::by_name("pagerank-top")
        .unwrap()
        .solve(&inst, &ctx);
    report.push_row(vec![
        "PageRank".into(),
        format!("{:.1}", score(&r.allocation.seeds_of_item(0))),
        "0".into(),
        format!("{:.0}", r.elapsed.as_secs_f64() * 1e3),
        "on the transpose".into(),
    ]);

    // The 2003 reference greedy is O(k · n · sims) — run it at a small
    // budget just to show the cost cliff RIS sampling removed.
    let k_celf = 3u32;
    let t = std::time::Instant::now();
    let seeds = uic::im::greedy_mc_spread(&g, k_celf, 200, DiffusionModel::IC, 42);
    report.push_row(vec![
        format!("CELF greedy (k={k_celf})"),
        format!("{:.1}", score(&seeds)),
        "n·sims evals".into(),
        format!("{:.0}", t.elapsed().as_secs_f64() * 1e3),
        "KKT'03 reference".into(),
    ]);

    println!("{report}");
    println!(
        "Takeaways: the RIS family (IMM/SSA/OPIM) clusters at the same quality;\n\
         TIM+ pays more samples for it; SKIM and PRIMA additionally hand back a\n\
         budget-agnostic *ordering*; the heuristics are instant but guarantee-free."
    );
}
