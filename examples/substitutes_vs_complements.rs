//! Complements vs substitutes: how the valuation's curvature flips the
//! right seeding strategy (the §5 discussion made concrete).
//!
//! * **Complementary** items (supermodular valuation): bundleGRD's
//!   shared-prefix seeding wins — co-located items unlock the
//!   supermodular boost and the `(1 − 1/e − ε)` guarantee applies.
//! * **Substitutable** items (submodular valuation, here perfect
//!   substitutes): users gain from at most one item, so stacking both
//!   items on the same seeds wastes budget; disjoint seeding reaches
//!   more users.
//!
//! ```sh
//! cargo run --release --example substitutes_vs_complements
//! ```

use std::sync::Arc;
use uic::prelude::*;

fn main() {
    let g = uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 1_500,
            edges_per_node: 5,
            ..Default::default()
        },
        3,
    );
    println!(
        "network: {} nodes / {} edges\n",
        g.num_nodes(),
        g.num_edges()
    );
    let budgets = [20u32, 20];

    // Regime 1: complements — worth little alone, a lot together.
    let complements = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 9.0])),
        Price::additive(vec![3.5, 3.5]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    // Regime 2: perfect substitutes — one feature, both items grant it.
    let substitutes = UtilityModel::new(
        Arc::new(CoverageValuation::substitutes(2, 3.0)),
        Price::additive(vec![1.0, 1.0]),
        NoiseModel::iid_gaussian_var(2, 0.25),
    );

    // Neither seed-selection algorithm reads the utilities, so one
    // unscored run per strategy serves both regimes; the instance just
    // needs *a* model for arity. Scoring happens per regime below.
    let inst = WelMax::on(&g)
        .model(complements.clone())
        .budgets(budgets)
        .build()
        .expect("valid WelMax instance");
    let ctx = SolveCtx::new(42).with_sims(0);
    // Strategy A: bundleGRD (both items share the best seed prefix).
    let bundled = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx);
    // Strategy B: item-disj (disjoint seed chunks).
    let disjoint = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx);

    let mut report = Table::new(
        "seeding strategy × valuation regime (expected welfare)",
        &[
            "regime",
            "bundled seeds (bundleGRD)",
            "disjoint seeds (item-disj)",
            "winner",
        ],
    );
    for (name, model) in [("complements", &complements), ("substitutes", &substitutes)] {
        let est = WelfareEstimator::new(&g, model, 2_000, 9);
        let w_bundled = est.estimate(&bundled.allocation);
        let w_disjoint = est.estimate(&disjoint.allocation);
        report.push_row(vec![
            name.to_string(),
            format!("{w_bundled:.1}"),
            format!("{w_disjoint:.1}"),
            if w_bundled >= w_disjoint {
                "bundled".into()
            } else {
                "disjoint".into()
            },
        ]);
    }
    println!("{report}");
    println!(
        "Supermodular ⇒ co-seed (the paper's setting, guarantee applies);\n\
         submodular ⇒ spread out (competition: §5's open direction)."
    );
}
