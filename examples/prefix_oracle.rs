//! PRIMA as an *influence oracle*: one seed ordering that serves every
//! budget (§4.2.3 / Definition 1).
//!
//! A network host wants to answer "give me the best k seeds" for many
//! different k without recomputing. Plain IMM re-runs per budget (its
//! sample size is not monotone in k and per-budget seed sets are not
//! nested); PRIMA computes one prefix-preserving ordering whose every
//! prefix carries the (1−1/e−ε) guarantee. This example compares the
//! two, both in answer quality and in RR-set cost.
//!
//! ```sh
//! cargo run --release --example prefix_oracle
//! ```

use uic::prelude::*;

fn main() {
    let g = uic::datasets::named_network(uic::datasets::NamedNetwork::DoubanBook, 0.05, 3);
    println!("network: {} nodes / {} edges", g.num_nodes(), g.num_edges());
    let budgets = [50u32, 30, 20, 10, 5, 1];

    // One PRIMA call covering the whole budget vector.
    let t0 = std::time::Instant::now();
    let oracle = prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42);
    let prima_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "PRIMA: ordering of {} seeds, {} RR sets, {prima_ms:.0} ms",
        oracle.order.len(),
        oracle.rr_sets_final
    );

    // Per-budget IMM calls (what a naive oracle would do).
    let t0 = std::time::Instant::now();
    let mut imm_sets = 0usize;
    let mut imm_answers = Vec::new();
    for &k in &budgets {
        let r = imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42);
        imm_sets += r.rr_sets_final;
        imm_answers.push(r);
    }
    let imm_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "naive IMM×{}: {imm_sets} RR sets total, {imm_ms:.0} ms",
        budgets.len()
    );

    // Compare answer quality with a common Monte-Carlo spread estimate.
    let mut report = Table::new(
        "prefix oracle vs per-budget IMM (spread via 3k-world MC)",
        &[
            "k",
            "PRIMA prefix spread",
            "IMM spread",
            "prefix ⊂ next prefix?",
        ],
    );
    for (i, &k) in budgets.iter().enumerate() {
        let prima_seeds = oracle.seeds_for_budget(k);
        let s_prima = spread_mc(&g, prima_seeds, 3_000, 7);
        let s_imm = spread_mc(&g, &imm_answers[i].seeds, 3_000, 7);
        let nested = if i == 0 {
            "-"
        } else {
            // every smaller budget is a prefix of the bigger one
            let bigger = oracle.seeds_for_budget(budgets[i - 1]);
            if prima_seeds.iter().all(|v| bigger.contains(v)) {
                "yes"
            } else {
                "NO"
            }
        };
        report.push_row(vec![
            k.to_string(),
            format!("{s_prima:.1}"),
            format!("{s_imm:.1}"),
            nested.to_string(),
        ]);
    }
    println!("{report}");
    println!(
        "PRIMA answers all {} budgets from one ordering at {:.1}% of the naive RR cost.",
        budgets.len(),
        100.0 * oracle.rr_sets_final as f64 / imm_sets.max(1) as f64
    );
}
