//! Viral launch of a real product bundle: the paper's §4.3.4 scenario.
//!
//! A games-console vendor wants to seed a social network with a PS4
//! console, a controller, and three games — values, prices and noise
//! learned from auction data (Table 5 of the paper). Only bundles with
//! the console, the controller and at least two games are profitable, so
//! item-by-item marketing produces *zero* welfare: the campaign only
//! works if seeds receive complementary bundles.
//!
//! ```sh
//! cargo run --release --example viral_bundle_launch
//! ```

use uic::datasets::{
    budget_splits, named_network, real_param_model, NamedNetwork, REAL_ITEM_NAMES,
};
use uic::prelude::*;

fn main() {
    // The Twitter stand-in at 2% scale (~830 nodes) keeps this example
    // fast; raise the scale for a full-size run.
    let g = named_network(NamedNetwork::Twitter, 0.02, 11);
    let model = real_param_model();
    println!(
        "network: {} nodes / {} edges; items: {:?}",
        g.num_nodes(),
        g.num_edges(),
        REAL_ITEM_NAMES
    );
    let table = model.deterministic_table();
    let istar = uic::items::istar(&table);
    println!(
        "best bundle I* = {istar} with deterministic utility {:.1}",
        table.utility(istar)
    );

    // Marketing budget: 200 seedings split 30/30/20/10/10 across
    // (console, controller, g1, g2, g3) as in Fig. 8(b).
    let budgets = budget_splits::real_params(200);
    println!("budgets {budgets:?}");

    // One instance; the three allocators are registry lookups sharing a
    // scoring context (1,000 sampled worlds each).
    let inst = WelMax::on(&g)
        .model(model.clone())
        .budgets(budgets)
        .build()
        .expect("valid WelMax instance");
    let ctx = SolveCtx::new(42).with_sims(1_000).with_welfare_seed(3);

    // bundleGRD: shared seed prefix — consoles and accessories co-seeded.
    let greedy = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx);
    let w_greedy = greedy.welfare_mean();

    // bundle-disj: forms profitable bundles, but each on fresh seeds.
    let w_disj = <dyn Allocator>::by_name("bundle-disj")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();

    // item-disj: one item per seed — provably hopeless here.
    let w_item = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx)
        .welfare_mean();

    println!("expected social welfare:");
    println!("  bundleGRD   {w_greedy:>10.1}");
    println!("  bundle-disj {w_disj:>10.1}");
    println!("  item-disj   {w_item:>10.1}   (every single item is a loss)");

    // Who adopts what, in one sampled world.
    let mut rng = UicRng::new(5);
    let world = model.sample_noise(&mut rng);
    let utable = model.table_for(&world);
    let outcome = simulate_uic(&g, &greedy.allocation, &utable, &mut rng);
    println!(
        "one sampled cascade: {} adopters, {} (node,item) adoptions, welfare {:.1}",
        outcome.num_adopters(),
        outcome.total_adoptions(),
        outcome.welfare(&utable)
    );
    let full_bundles = outcome.adoption_sets().filter(|a| a.len() == 5).count();
    println!("  …of which {full_bundles} users adopted the complete 5-item bundle");
}
