//! Quickstart: allocate two complementary items on a synthetic social
//! network with bundleGRD, compare against item-disj, and print the
//! expected social welfare of both.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use uic::prelude::*;

fn main() {
    // 1. A social network: 2,000 users, heavy-tailed degrees, edge
    //    probabilities p(u,v) = 1/d_in(v) (the weighted-cascade default).
    let g = uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 2_000,
            edges_per_node: 5,
            ..Default::default()
        },
        7,
    );
    println!(
        "network: {} nodes, {} edges, avg degree {:.2}",
        g.num_nodes(),
        g.num_edges(),
        g.avg_degree()
    );

    // 2. Two complementary items, e.g. a phone (i1) and earbuds (i2).
    //    Alone each barely breaks even; together the valuation is
    //    supermodular: the pair is worth more than the sum of parts.
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 9.5])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    println!(
        "deterministic utilities: U(i1)={}, U(i2)={}, U(i1,i2)={}",
        model.deterministic_utility(ItemSet::singleton(0)),
        model.deterministic_utility(ItemSet::singleton(1)),
        model.deterministic_utility(ItemSet::full(2)),
    );

    // 3. bundleGRD: one prefix-preserving seed ordering (PRIMA), every
    //    item assigned its budget-prefix. Note it never saw `model`.
    let budgets = [25u32, 25];
    let greedy = bundle_grd(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42);
    println!(
        "bundleGRD: {} seed nodes, {} RR sets, {:.1} ms",
        greedy.allocation.num_seed_nodes(),
        greedy.rr_sets_final,
        greedy.elapsed.as_secs_f64() * 1e3
    );

    // 4. The item-disj baseline: disjoint seeds per item.
    let disj = item_disj(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42);

    // 5. Score both allocations with the same Monte-Carlo welfare
    //    estimator (2,000 sampled noise × edge worlds).
    let estimator = WelfareEstimator::new(&g, &model, 2_000, 1);
    let w_greedy = estimator.estimate(&greedy.allocation);
    let w_disj = estimator.estimate(&disj.allocation);
    println!("expected social welfare: bundleGRD = {w_greedy:.1}, item-disj = {w_disj:.1}");
    println!(
        "bundling advantage: {:.2}x",
        w_greedy / w_disj.max(f64::EPSILON)
    );
}
