//! Quickstart: build a WelMax instance with the `WelMax` builder,
//! allocate two complementary items with bundleGRD from the solver
//! registry, compare against item-disj, and print the expected social
//! welfare of both from their unified `SolveReport`s.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use uic::prelude::*;

fn main() {
    // 1. A social network: 2,000 users, heavy-tailed degrees, edge
    //    probabilities p(u,v) = 1/d_in(v) (the weighted-cascade default).
    let g = uic::datasets::generators::preferential_attachment(
        uic::datasets::PaOptions {
            n: 2_000,
            edges_per_node: 5,
            ..Default::default()
        },
        7,
    );
    println!(
        "network: {} nodes, {} edges, avg degree {:.2}",
        g.num_nodes(),
        g.num_edges(),
        g.avg_degree()
    );

    // 2. Two complementary items, e.g. a phone (i1) and earbuds (i2).
    //    Alone each barely breaks even; together the valuation is
    //    supermodular: the pair is worth more than the sum of parts.
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 9.5])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::iid_gaussian_var(2, 1.0),
    );
    println!(
        "deterministic utilities: U(i1)={}, U(i2)={}, U(i1,i2)={}",
        model.deterministic_utility(ItemSet::singleton(0)),
        model.deterministic_utility(ItemSet::singleton(1)),
        model.deterministic_utility(ItemSet::full(2)),
    );

    // 3. One instance, many solvers: graph + utility model + budgets.
    let inst = WelMax::on(&g)
        .model(model)
        .budgets([25u32, 25])
        .build()
        .expect("valid WelMax instance");

    // 4. Both algorithms come from the registry and are scored by the
    //    same Monte-Carlo welfare estimator (2,000 sampled noise × edge
    //    worlds), so the comparison is apples to apples. Note bundleGRD
    //    never reads the utility model — only the budgets.
    let ctx = SolveCtx::new(42).with_sims(2_000).with_welfare_seed(1);
    let greedy = <dyn Allocator>::by_name("bundle-grd")
        .unwrap()
        .solve(&inst, &ctx);
    let disj = <dyn Allocator>::by_name("item-disj")
        .unwrap()
        .solve(&inst, &ctx);
    println!("{}", greedy.summary());
    println!("{}", disj.summary());

    // 5. The unified report carries welfare mean ± CI, timing, and cost.
    let (w_greedy, w_disj) = (greedy.welfare_mean(), disj.welfare_mean());
    println!("expected social welfare: bundleGRD = {w_greedy:.1}, item-disj = {w_disj:.1}");
    println!(
        "bundling advantage: {:.2}x",
        w_greedy / w_disj.max(f64::EPSILON)
    );
}
