//! `uic-serve` in one file: start the welfare-allocation service
//! in-process, talk to it over real TCP, and verify the warm-arena
//! contract — repeated queries are answered by *topping up* the
//! resident RR arena (never regenerating), bit-identical to a cold
//! offline solve of the same request.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The standalone binary speaks the same protocol:
//!
//! ```sh
//! cargo run --release --bin uic-serve -- serve --network flixster &
//! cargo run --release --bin uic-serve -- request --addr 127.0.0.1:PORT \
//!     warm-grd budgets=25,10 seed=42 sims=100
//! ```

use std::sync::Arc;
use uic::core::{Allocator, SolveCtx, WelMax};
use uic::datasets::{named_network, NamedNetwork, TwoItemConfig};
use uic::serve::{report_json, Client, Server, ServerConfig};

fn main() {
    // 1. Load the graph once; it stays resident for the server's life.
    let g = Arc::new(named_network(NamedNetwork::Flixster, 0.5, 7));
    println!(
        "graph resident: {} nodes / {} arcs",
        g.num_nodes(),
        g.num_edges()
    );
    let handle = Server::start(g.clone(), ServerConfig::default()).expect("bind loopback");
    println!("serving on {}", handle.addr());

    // 2. A client asks for an allocation: solver spec text, one frame.
    let request = "warm-grd budgets=25,10 seed=42 sims=100";
    let mut client = Client::connect(handle.addr()).expect("connect");
    let first = client.request(request).expect("first query");
    println!("first answer:  {}", first.payload());

    // 3. Ask again: the deterministic "result" object is byte-identical
    //    (the "server" bookkeeping — elapsed_us, rr_topup — may differ),
    //    and rr_topup=0 shows the arena was reused, not regrown.
    let result_of = |payload: &str| {
        let end = payload.find(",\"server\":").expect("response envelope");
        payload[..end].to_string()
    };
    let again = client.request(request).expect("repeat query");
    assert_eq!(
        result_of(first.payload()),
        result_of(again.payload()),
        "a warm repeat must not change the answer"
    );
    assert!(
        again.payload().contains("\"rr_topup\":0"),
        "a repeat query must be served without generating new RR sets"
    );
    println!("repeat answer: identical result, rr_topup=0");

    // 4. The served result is bit-identical to a cold offline run of
    //    the same spec — the arena is a cache, never a semantic.
    let (solver, objective) = <dyn Allocator>::parse_with_objective("warm-grd").expect("spec");
    let inst = WelMax::on(&g)
        .model(TwoItemConfig::new(1).model())
        .budgets([25u32, 10])
        .any_item_order()
        .objective_spec(objective)
        .build()
        .expect("instance");
    let offline = report_json(&solver.solve(&inst, &SolveCtx::new(42).with_sims(100)));
    assert!(
        first
            .payload()
            .starts_with(&format!("{{\"result\":{offline}")),
        "server and offline runs must agree bit-for-bit"
    );
    println!("offline check: bit-identical");

    // 5. Metrics are one request away; shutdown drains gracefully.
    let metrics = client.request("metrics").expect("metrics");
    println!("metrics:       {}", metrics.payload());
    handle.shutdown();
    println!("final:         {}", handle.join());
}
