//! A realistic product catalogue with pairwise synergies.
//!
//! The paper's multi-item configurations (Table 4) are shape-driven
//! (cone, level-wise); real catalogues are usually described by *pairwise
//! complementarities* — "console and controller sell each other", "phone
//! and case", etc. `PairwiseSynergyValuation` models exactly that with
//! `O(n²)` parameters: `V(S) = Σ v_i + Σ_{i<j∈S} w_ij`, supermodular for
//! `w ≥ 0`.
//!
//! This example builds an 8-item catalogue around one hub product,
//! prices every item *above* its standalone value (each item is a loss
//! alone — only synergy makes adoption rational), and compares bundleGRD
//! against item-disj and bundle-disj under three budget splits, showing
//! the paper's Fig. 8(d) skew effect on a catalogue-shaped instance.
//!
//! ```sh
//! cargo run --release --example synergy_catalog
//! ```

use std::sync::Arc;
use uic::prelude::*;

fn catalogue() -> UtilityModel {
    // Item 0 is the hub (console); items 1–7 are accessories/games.
    let base = vec![5.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0, 1.0];
    let synergy = |i: u32, j: u32| -> f64 {
        match (i.min(j), i.max(j)) {
            (0, _) => 1.6,               // every accessory complements the hub
            (1, 2) => 0.8,               // controller pairs with headset
            (a, b) if b - a == 1 => 0.4, // adjacent accessories mildly synergize
            _ => 0.1,                    // weak background complementarity
        }
    };
    let v = PairwiseSynergyValuation::new(base, synergy);
    // Price ≈ 115% of standalone value: every singleton has negative
    // deterministic utility; bundles with the hub turn positive.
    let prices: Vec<f64> = (0..8u32)
        .map(|i| 1.15 * v.value(ItemSet::singleton(i)))
        .collect();
    UtilityModel::new(
        Arc::new(v),
        Price::additive(prices),
        NoiseModel::iid_gaussian_var(8, 0.25),
    )
}

fn main() {
    let g = uic::datasets::named_network(uic::datasets::NamedNetwork::DoubanBook, 0.05, 11);
    let model = catalogue();
    println!(
        "network: {} nodes / {} edges — catalogue of {} items\n",
        g.num_nodes(),
        g.num_edges(),
        model.num_items()
    );
    println!(
        "sanity: standalone hub utility {:.2} (a loss); hub+2 accessories {:.2} (a win)\n",
        model.deterministic_utility(ItemSet::singleton(0)),
        model.deterministic_utility(ItemSet::from_items(&[0, 1, 2])),
    );

    let total = 160u32;
    let splits: [(&str, Vec<u32>); 3] = [
        ("uniform (20 each)", vec![20; 8]),
        ("large skew (82% on hub)", vec![132, 4, 4, 4, 4, 4, 4, 4]),
        ("moderate skew", vec![40, 40, 20, 20, 10, 10, 10, 10]),
    ];

    let mut report = Table::new(
        "welfare by allocator and budget split (total budget 160)",
        &[
            "budget split",
            "bundleGRD",
            "item-disj",
            "bundle-disj",
            "GRD time (ms)",
        ],
    );
    let ctx = SolveCtx::new(42).with_sims(400).with_welfare_seed(7);
    for (name, budgets) in &splits {
        assert_eq!(budgets.iter().sum::<u32>(), total);
        // The instance enforces the non-increasing budget indexing the
        // paper's accounting relies on; our splits already comply.
        let inst = WelMax::on(&g)
            .model(model.clone())
            .budgets(budgets.clone())
            .build()
            .expect("valid WelMax instance");
        let grd = <dyn Allocator>::by_name("bundle-grd")
            .unwrap()
            .solve(&inst, &ctx);
        let disj = <dyn Allocator>::by_name("item-disj")
            .unwrap()
            .solve(&inst, &ctx);
        let bdisj = <dyn Allocator>::by_name("bundle-disj")
            .unwrap()
            .solve(&inst, &ctx);
        report.push_row(vec![
            (*name).into(),
            format!("{:.0}", grd.welfare_mean()),
            format!("{:.0}", disj.welfare_mean()),
            format!("{:.0}", bdisj.welfare_mean()),
            format!("{:.0}", grd.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("{report}");
    println!(
        "Notes: with every item a standalone loss, item-disj seeds propagate\n\
         nothing on their own — its welfare comes only from downstream nodes\n\
         whose desire sets accumulate complements. bundleGRD's co-seeding makes\n\
         the hub bundle adoptable at the seeds themselves, and the uniform split\n\
         lets every item ride the full shared seed prefix (the Fig. 8d effect)."
    );
}
