//! Budget-split planning for a multi-item campaign (the Fig. 8(d)
//! question): given a fixed total seeding budget, how should it be
//! divided among items?
//!
//! Sweeps three canonical splits — uniform, large-skew, moderate-skew —
//! over the real PS4-bundle parameters and reports welfare and runtime
//! for each, demonstrating the paper's finding that *uniform splits win*
//! (bundling thrives when every item can ride the same seed prefix).
//!
//! ```sh
//! cargo run --release --example campaign_planner
//! ```

use uic::datasets::{budget_splits, named_network, real_param_model, NamedNetwork};
use uic::prelude::*;

fn main() {
    let g = named_network(NamedNetwork::Twitter, 0.02, 11);
    let model = real_param_model();
    let total = 200u32;
    println!(
        "planning a {total}-seed campaign on {} nodes / {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let splits: [(&str, Vec<u32>); 3] = [
        ("uniform", budget_splits::uniform(total, 5)),
        ("large-skew", budget_splits::large_skew(total, 5)),
        (
            "moderate-skew",
            budget_splits::real_params(total), // 30/30/20/10/10
        ),
    ];

    // One solver, one scoring context (1,000 sampled worlds) — only the
    // instance's budget vector changes between plans.
    let solver = <dyn Allocator>::by_name("bundle-grd").unwrap();
    let ctx = SolveCtx::new(42).with_sims(1_000).with_welfare_seed(9);
    let mut report = Table::new(
        format!("campaign plans, total budget {total}"),
        &["split", "budgets", "welfare", "time (ms)", "seeds used"],
    );
    let mut best: Option<(String, f64)> = None;
    for (name, budgets) in splits {
        let capped: Vec<u32> = budgets.iter().map(|&b| b.min(g.num_nodes())).collect();
        let inst = WelMax::on(&g)
            .model(model.clone())
            .budgets(capped.clone())
            .build()
            .expect("valid WelMax instance");
        let r = solver.solve(&inst, &ctx);
        let w = r.welfare_mean();
        report.push_row(vec![
            name.to_string(),
            format!("{capped:?}"),
            format!("{w:.1}"),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
            r.allocation.num_seed_nodes().to_string(),
        ]);
        if best.as_ref().map(|(_, bw)| w > *bw).unwrap_or(true) {
            best = Some((name.to_string(), w));
        }
    }
    println!("{report}");
    let (winner, welfare) = best.unwrap();
    println!("recommended split: {winner} (expected welfare {welfare:.1})");
}
