//! Table 2 bench: stand-in network generation and statistics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uic_datasets::{named_network, NamedNetwork};
use uic_graph::GraphStats;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_networks");
    group.sample_size(10);
    for which in [NamedNetwork::Flixster, NamedNetwork::DoubanBook] {
        group.bench_function(format!("generate/{}", which.name()), |b| {
            b.iter(|| named_network(which, 0.02, 7))
        });
    }
    let g = named_network(NamedNetwork::DoubanMovie, 0.02, 7);
    group.bench_function("stats/douban-movie", |b| {
        b.iter_batched(|| &g, GraphStats::compute, BatchSize::SmallInput)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
