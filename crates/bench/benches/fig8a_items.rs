//! Fig. 8(a) bench: allocation cost vs number of items — bundleGRD must
//! stay flat while the disjoint baselines grow.

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_datasets::{named_network, Config, NamedNetwork};
use uic_experiments::common::{run_algo_unscored, Algo};

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::Twitter, 0.004, opts.seed);
    let n = g.num_nodes();
    let per_item = 10u32.min(n / 4).max(1);
    let mut group = c.benchmark_group("fig8a_items");
    group.sample_size(10);
    for &items in &[1u32, 5, 10] {
        let model = Config::Additive.build(items, opts.seed);
        let budgets = vec![per_item; items as usize];
        for algo in Algo::MULTI_ITEM {
            group.bench_function(format!("{}items/{}", items, algo.name()), |b| {
                b.iter(|| run_algo_unscored(algo, &g, &budgets, &model, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
