//! Fig. 5 bench: pure seed-selection time per algorithm (Config 1),
//! reproducing the running-time ordering bundleGRD < item-disj ≪
//! RR-SIM+ < RR-CIM.

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_datasets::{named_network, NamedNetwork, TwoItemConfig};
use uic_experiments::common::{run_algo_unscored, Algo};

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("fig5_runtime");
    group.sample_size(10);
    for which in [NamedNetwork::Flixster, NamedNetwork::DoubanBook] {
        let g = named_network(which, opts.scale, opts.seed);
        let cfg = TwoItemConfig::new(1);
        let model = cfg.model();
        let k = 10u32.min(g.num_nodes());
        let budgets = [k, k];
        for algo in Algo::TWO_ITEM {
            group.bench_function(format!("{}/{}", which.name(), algo.name()), |b| {
                b.iter(|| run_algo_unscored(algo, &g, &budgets, &model, &opts))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
