//! Multicore scale-out bench: the three parallel pipelines at pinned
//! worker counts (1/2/4/8) on the two 1M-node stand-ins.
//!
//! * `rr-gen`  — `RrCollection::extend_to(θ)`: per-thread sampling into
//!   local arenas plus the parallel disjoint-range merge.
//! * `select`  — `node_selection` on a pre-generated, un-indexed
//!   collection: the node-range-partitioned parallel inverted-index
//!   build followed by lazy-greedy max-coverage.
//! * `welfare` — the Monte-Carlo welfare reducer with static contiguous
//!   block chunking over cache-padded partials.
//!
//! All three are bit-identical across thread counts (the arena_equiv /
//! objective_props / graph_storage suites pin this), so the thread knob
//! changes wall-clock only. Headline numbers are recorded in
//! `BENCH_scaling.json`; run on a multicore machine to see the curves —
//! on a 1-core container every t > 1 row degenerates to ~t1 plus
//! scheduling overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uic_datasets::{
    generators::preferential_attachment, named_network, NamedNetwork, PaOptions, TwoItemConfig,
};
use uic_diffusion::{Allocation, WelfareEstimator};
use uic_graph::Graph;
use uic_im::{node_selection, DiffusionModel, RrCollection};

fn pa_graph(n: u32) -> Graph {
    preferential_attachment(
        PaOptions {
            n,
            edges_per_node: 10,
            uniform_mix: 0.15,
            undirected: false,
            reciprocity: 0.05,
        },
        42,
    )
}

type BuildFn = Box<dyn Fn() -> Graph>;

fn bench(c: &mut Criterion) {
    let threads = [1usize, 2, 4, 8];
    let theta = 200_000usize;
    let k = 50u32;
    let sims = 512u32;
    let model = TwoItemConfig::new(1).model();
    let configs: [(&str, BuildFn); 2] = [
        ("1M-PA", Box::new(|| pa_graph(1_000_000))),
        (
            "orkut-1M",
            Box::new(|| named_network(NamedNetwork::Orkut, 10.0, 42)),
        ),
    ];
    for (label, build) in configs {
        let g = build();
        let mut alloc = Allocation::new();
        for v in 0..50u32 {
            alloc.assign((v * 19_997) % g.num_nodes(), v % 2);
        }
        let mut group = c.benchmark_group(format!("scaling/{label}"));
        group.sample_size(2);
        for &t in &threads {
            group.bench_function(format!("rr-gen/t{t}"), |b| {
                b.iter(|| {
                    let mut coll = RrCollection::new(&g, DiffusionModel::IC, 42).with_threads(t);
                    coll.extend_to(&g, theta);
                    coll.total_entries()
                })
            });
            // Selection on a pre-generated collection: each sample pays
            // the (parallel) index build plus the greedy sweep, never
            // the sampling above.
            let mut base = RrCollection::new(&g, DiffusionModel::IC, 42).with_threads(t);
            base.extend_to(&g, theta);
            group.bench_function(format!("select/t{t}"), |b| {
                b.iter_batched(
                    || base.clone(),
                    |mut coll| {
                        let sel = node_selection(&mut coll, k);
                        sel.covered.last().copied()
                    },
                    BatchSize::PerIteration,
                )
            });
            group.bench_function(format!("welfare/t{t}"), |b| {
                b.iter(|| {
                    WelfareEstimator::new(&g, &model, sims, 9)
                        .with_threads(t)
                        .estimate(&alloc)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
