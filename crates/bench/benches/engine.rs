//! Benchmarks for the dense epoch-stamped cascade engine
//! (`uic-diffusion::engine`) against the hash-map reference path it
//! replaced.
//!
//! Two scales, mirroring the acceptance bar of the engine refactor:
//! * **10k nodes / 50k edges** — welfare-estimation microbench (the
//!   Monte-Carlo loop dominated by per-cascade state handling);
//! * **100k nodes / 500k edges** — single-cascade simulation cost.
//!
//! Record the `dense_*` vs `reference_*` numbers in BENCH notes: the
//! dense engine must beat the reference hash-map path on the 10k welfare
//! estimation bench.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uic_datasets::erdos_renyi;
use uic_diffusion::engine::reference;
use uic_diffusion::{Allocation, UicSimulator, WelfareEstimator};
use uic_graph::Graph;
use uic_items::{NoiseModel, Price, TableValuation, UtilityModel, UtilityTable};
use uic_util::{split_seed, UicRng};

fn model() -> UtilityModel {
    UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::none(2),
    )
}

fn seeds_alloc() -> Allocation {
    let seeds: Vec<u32> = (0..20).collect();
    Allocation::from_item_seeds(&[seeds.clone(), seeds])
}

/// Sum of Monte-Carlo welfare over `sims` cascades through the dense
/// engine (reused scratch, as the estimator runs it).
fn dense_mc(g: &Graph, table: &UtilityTable, alloc: &Allocation, sims: u64) -> f64 {
    let mut sim = UicSimulator::new(g);
    let mut total = 0.0;
    for s in 0..sims {
        let mut rng = UicRng::new(split_seed(11, s));
        total += sim.run(g, alloc, table, &mut rng).welfare(table);
    }
    total
}

/// The same loop through the hash-map reference implementation (with
/// the same scratch reuse the pre-engine simulator had).
fn reference_mc(g: &Graph, table: &UtilityTable, alloc: &Allocation, sims: u64) -> f64 {
    let mut sim = reference::ReferenceSimulator::new(g);
    let mut total = 0.0;
    for s in 0..sims {
        let mut rng = UicRng::new(split_seed(11, s));
        total += sim.run(g, alloc, table, &mut rng).welfare(table);
    }
    total
}

fn bench_welfare_estimation_10k(c: &mut Criterion) {
    let g = erdos_renyi(10_000, 50_000, 7);
    let m = model();
    let table = m.deterministic_table();
    let alloc = seeds_alloc();
    let sims = 200u64;
    let mut group = c.benchmark_group("engine_welfare_10k");
    group.sample_size(10);
    group.bench_function("dense_200_cascades", |b| {
        b.iter(|| dense_mc(&g, &table, &alloc, black_box(sims)))
    });
    group.bench_function("reference_hashmap_200_cascades", |b| {
        b.iter(|| reference_mc(&g, &table, &alloc, black_box(sims)))
    });
    group.bench_function("estimator_single_thread_200", |b| {
        b.iter(|| {
            WelfareEstimator::new(&g, &m, 200, 11)
                .with_threads(1)
                .estimate(&alloc)
        })
    });
    group.finish();
}

fn bench_single_cascade_100k(c: &mut Criterion) {
    let g = erdos_renyi(100_000, 500_000, 7);
    let m = model();
    let table = m.deterministic_table();
    let alloc = seeds_alloc();
    let mut group = c.benchmark_group("engine_cascade_100k");
    group.sample_size(10);
    group.bench_function("dense_single_cascade", |b| {
        let mut sim = UicSimulator::new(&g);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            let mut rng = UicRng::new(split_seed(23, s));
            sim.run(&g, &alloc, &table, &mut rng).total_adoptions()
        })
    });
    group.bench_function("reference_hashmap_single_cascade", |b| {
        let mut sim = reference::ReferenceSimulator::new(&g);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            let mut rng = UicRng::new(split_seed(23, s));
            sim.run(&g, &alloc, &table, &mut rng).total_adoptions()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_welfare_estimation_10k,
    bench_single_cascade_100k
);
criterion_main!(benches);
