//! RIS pipeline bench: generate θ RR sets and greedily select k seeds —
//! the §4.2.3 hot path shared by TIM/IMM/OPIM/PRIMA and the Com-IC
//! baselines. Two shapes per graph size:
//!
//! * `oneshot`  — one `extend_to(θ)` followed by one `node_selection`
//!   (TIM's shape: the sample size is known up front).
//! * `doubling` — three extend/select rounds with doubling θ (the
//!   IMM/OPIM shape the persistent inverted index exists for).
//!
//! Numbers are recorded in `BENCH_rrset.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use uic_datasets::{generators::preferential_attachment, PaOptions};
use uic_graph::Graph;
use uic_im::{node_selection, DiffusionModel, RrCollection};

fn pa_graph(n: u32) -> Graph {
    preferential_attachment(
        PaOptions {
            n,
            edges_per_node: 8,
            ..Default::default()
        },
        7,
    )
}

fn bench(c: &mut Criterion) {
    let k = 50u32;
    for &(label, n, theta, samples) in &[
        ("10k", 10_000u32, 100_000usize, 10usize),
        ("100k", 100_000, 200_000, 5),
    ] {
        let g = pa_graph(n);
        let mut group = c.benchmark_group(format!("rrset_pipeline/{label}"));
        group.sample_size(samples);
        group.bench_function("oneshot", |b| {
            b.iter(|| {
                let mut coll = RrCollection::new(&g, DiffusionModel::IC, 42);
                coll.extend_to(&g, theta);
                let sel = node_selection(&mut coll, k);
                sel.covered.last().copied()
            })
        });
        group.bench_function("doubling", |b| {
            b.iter(|| {
                let mut coll = RrCollection::new(&g, DiffusionModel::IC, 42);
                let mut acc = 0u64;
                for target in [theta / 4, theta / 2, theta] {
                    coll.extend_to(&g, target);
                    let sel = node_selection(&mut coll, k);
                    acc += sel.covered.last().copied().unwrap_or(0);
                }
                acc
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
