//! Fig. 9(a–c) bench: the BDHS externality benchmarks vs a propagated
//! bundleGRD welfare evaluation.

// These benches time the raw engine functions below the registry facade.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use uic_baselines::{bdhs_concave_welfare, bdhs_step_welfare_exact};
use uic_bench::bench_opts;
use uic_core::bundle_grd;
use uic_datasets::{named_network, real_param_model, NamedNetwork};
use uic_diffusion::WelfareEstimator;
use uic_graph::Weighting;
use uic_im::DiffusionModel;

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::Orkut, 0.002, opts.seed);
    let model = real_param_model();
    let mut group = c.benchmark_group("fig9_bdhs");
    group.sample_size(10);
    group.bench_function("bdhs_step_exact", |b| {
        b.iter(|| bdhs_step_welfare_exact(&g, &model))
    });
    let g_uniform = g.reweighted_as(Weighting::Constant(0.01), 0);
    group.bench_function("bdhs_concave", |b| {
        b.iter(|| bdhs_concave_welfare(&g_uniform, &model, 0.01))
    });
    let n = g.num_nodes();
    let budgets = vec![(n / 10).max(1); 5];
    group.bench_function("bundlegrd_10pct+score", |b| {
        b.iter(|| {
            let r = bundle_grd(&g, &budgets, opts.eps, opts.ell, DiffusionModel::IC, 42);
            WelfareEstimator::new(&g, &model, opts.sims, opts.seed).estimate(&r.allocation)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
