//! Fig. 7 bench: multi-item allocation + scoring under Configurations
//! 5–8 for the three multi-item algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_datasets::{named_network, Config, NamedNetwork};
use uic_experiments::common::{run_algo, Algo};
use uic_experiments::fig7::budgets_for;

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::Twitter, 0.004, opts.seed);
    let n = g.num_nodes();
    let mut group = c.benchmark_group("fig7_multiitem");
    group.sample_size(10);
    for cfg in Config::ALL {
        let num_items = if cfg.uniform_budgets() { 5 } else { 8 };
        let model = cfg.build(num_items, opts.seed);
        let budgets = budgets_for(cfg, 50, n);
        for algo in Algo::MULTI_ITEM {
            group.bench_function(format!("config{}/{}", cfg.id(), algo.name()), |b| {
                // run_algo scores through the solver registry's shared ctx.
                b.iter(|| run_algo(algo, &g, &budgets, &model, &opts).welfare_mean())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
