//! Graph storage bench: build-vs-snapshot-load at stand-in scale.
//!
//! The ROADMAP's million-user target needs cheap repeated access to
//! large weighted graphs; regeneration is the baseline every process
//! used to pay. Three phases per size:
//!
//! * `build` — regenerate the PA stand-in from scratch (the old cost);
//! * `save`  — write the versioned binary snapshot;
//! * `load`  — read it back (the cost a warm [`uic_datasets::SnapshotCache`]
//!   pays instead of `build`).
//!
//! The 1M-node points are the headline numbers recorded in
//! `BENCH_graph.json`: a directed PA graph at ~10M arcs and the Orkut
//! stand-in scaled to exactly 1M nodes (~30M arcs) — the named network
//! an experiment process actually regenerates. The 100k point keeps the
//! bench usable on small machines. Weighted-cascade graphs store no
//! per-edge weights, so the snapshot carries 5 non-empty sections
//! (~14.5 bytes/edge at PA density) and the load is one exact-size file
//! read plus a fused checksum/decode/validate pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use uic_datasets::{generators::preferential_attachment, named_network, NamedNetwork, PaOptions};
use uic_graph::{load_snapshot, load_snapshot_owned, save_snapshot, Graph};

fn pa_graph(n: u32, edges_per_node: u32) -> Graph {
    preferential_attachment(
        PaOptions {
            n,
            edges_per_node,
            uniform_mix: 0.15,
            undirected: false,
            reciprocity: 0.05,
        },
        42,
    )
}

type BuildFn = Box<dyn Fn() -> Graph>;

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("uic-graph-io-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // (label, builder, samples): two synthetic PA densities plus the
    // Orkut stand-in scaled to exactly 1M nodes — the named network an
    // experiment process would actually regenerate (or cache-load).
    let configs: [(&str, BuildFn, usize); 3] = [
        ("100k", Box::new(|| pa_graph(100_000, 10)), 3),
        ("1M", Box::new(|| pa_graph(1_000_000, 10)), 2),
        (
            "orkut-1M",
            Box::new(|| named_network(NamedNetwork::Orkut, 10.0, 42)),
            1,
        ),
    ];
    for (label, build, samples) in configs {
        let path = dir.join(format!("bench-{label}.uicg"));
        let mut group = c.benchmark_group(format!("graph_io/{label}"));
        group.sample_size(samples);
        group.bench_function("build", |b| b.iter(&build));
        let g = build();
        group.bench_function("save", |b| b.iter(|| save_snapshot(&g, &path).unwrap()));
        save_snapshot(&g, &path).unwrap();
        group.bench_function("load", |b| {
            b.iter_batched(
                || (),
                |_| load_snapshot(&path).unwrap(),
                BatchSize::PerIteration,
            )
        });
        group.bench_function("load-owned", |b| {
            b.iter_batched(
                || (),
                |_| load_snapshot_owned(&path).unwrap(),
                BatchSize::PerIteration,
            )
        });
        // Guard: the loaded graph is the built graph, exactly — through
        // both the zero-copy and the owned decode path.
        assert_eq!(load_snapshot(&path).unwrap(), g, "{label}: load != build");
        assert_eq!(load_snapshot_owned(&path).unwrap(), g, "{label}: owned");
        std::fs::remove_file(&path).ok();
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
