//! Fig. 8(d) bench: bundleGRD under the three budget distributions of
//! the real Param — large skew forces the biggest PRIMA budget and is
//! the slowest, matching the paper.

// These benches time the raw engine functions below the registry facade.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_core::bundle_grd;
use uic_datasets::{budget_splits, named_network, NamedNetwork};
use uic_im::DiffusionModel;

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::Twitter, 0.004, opts.seed);
    let n = g.num_nodes();
    let mut group = c.benchmark_group("fig8d_skew");
    group.sample_size(10);
    let distros: [(&str, Vec<u32>); 3] = [
        ("uniform", budget_splits::uniform(100, 5)),
        ("large_skew", budget_splits::large_skew(100, 5)),
        ("moderate_skew", budget_splits::real_params(100)),
    ];
    for (name, budgets) in distros {
        let budgets: Vec<u32> = budgets.into_iter().map(|b| b.min(n)).collect();
        group.bench_function(name, |b| {
            b.iter(|| bundle_grd(&g, &budgets, opts.eps, opts.ell, DiffusionModel::IC, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
