//! Serving bench: per-query latency and sustained multi-client
//! throughput against a real in-process `uic-serve` server.
//!
//! Three rows per network, all over loopback TCP (so the numbers
//! include framing, parsing, and response serialization — the full
//! request path a client pays):
//!
//! * `ping`       — protocol floor: frame round-trip, no solve;
//! * `cold-query` — a `warm-grd` solve against a fresh arena seed
//!   (forces RR generation; every iteration uses a new seed);
//! * `warm-query` — the same request repeated (pure top-up-free reuse:
//!   prefix selection + scoring on the resident arena).
//!
//! After the criterion rows, the multi-client load driver runs and
//! prints its `LOAD {json}` line (sustained qps + p50/p90/p99) and the
//! server's final `METRICS {json}` dump — `rr_topup_total` there,
//! versus `ok_total`, is the recorded evidence that repeat queries top
//! up instead of regenerating. `BENCH_serve.json` records those lines.
//!
//! Network selection: `flixster` at full stand-in size by default (fast
//! enough for CI's `--no-run` and a quick local run). The headline row
//! is the Orkut stand-in at 1M nodes:
//!
//! ```sh
//! UIC_SERVE_BENCH_NETWORK=orkut UIC_SERVE_BENCH_SCALE=10 \
//!     cargo bench -p uic-bench --bench serve_latency
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uic_datasets::{named_network, NamedNetwork};
use uic_serve::{run_load, Client, Server, ServerConfig};

fn bench_network() -> (NamedNetwork, f64) {
    let which = match std::env::var("UIC_SERVE_BENCH_NETWORK").as_deref() {
        Ok("orkut") => NamedNetwork::Orkut,
        Ok("twitter") => NamedNetwork::Twitter,
        Ok("douban-book") => NamedNetwork::DoubanBook,
        Ok("douban-movie") => NamedNetwork::DoubanMovie,
        _ => NamedNetwork::Flixster,
    };
    let scale = std::env::var("UIC_SERVE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    (which, scale)
}

fn bench(c: &mut Criterion) {
    let (which, scale) = bench_network();
    eprintln!("loading {} at scale {scale}…", which.name());
    let graph = Arc::new(named_network(which, scale, 42));
    eprintln!(
        "resident: {} nodes / {} arcs",
        graph.num_nodes(),
        graph.num_edges()
    );
    let handle = Server::start(
        graph,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    let label = format!("serve/{}-x{scale}", which.name());
    let mut group = c.benchmark_group(&label);
    group.sample_size(4);

    let mut client = Client::connect(addr).expect("connect");
    group.bench_function("ping", |b| b.iter(|| client.request("ping").expect("ping")));

    // Cold: a fresh (model, seed) arena every iteration, so each query
    // pays full RR generation up to its theta.
    let mut cold_seed = 1_000u64;
    group.bench_function("cold-query", |b| {
        b.iter(|| {
            cold_seed += 1;
            let r = client
                .request(&format!("warm-grd budgets=25,10 seed={cold_seed}"))
                .expect("cold solve");
            assert!(r.is_ok(), "{r:?}");
            r
        })
    });

    // Warm: the identical request, served from the resident arena.
    let warm = "warm-grd budgets=25,10 seed=42";
    client.request(warm).expect("arena warm-up");
    group.bench_function("warm-query", |b| {
        b.iter(|| {
            let r = client.request(warm).expect("warm solve");
            assert!(r.is_ok(), "{r:?}");
            r
        })
    });
    group.finish();

    // Sustained multi-client load on the warm request — the qps/p99
    // numbers BENCH_serve.json records. UIC_SERVE_BENCH_SIMS picks the
    // per-request welfare-scoring cost (0 = allocation-only service).
    let sims: u32 = std::env::var("UIC_SERVE_BENCH_SIMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let load = run_load(
        addr,
        &format!("warm-grd budgets=25,10 seed=42 sims={sims}"),
        4,
        8,
    )
    .expect("load run");
    eprintln!("LOAD sims={sims} {}", load.to_json());
    drop(client);
    handle.shutdown();
    eprintln!("METRICS {}", handle.join());
}

criterion_group!(benches, bench);
criterion_main!(benches);
