//! Welfare-objective estimator overhead (BENCH_welfare.json).
//!
//! The pluggable-objective refactor routes every Monte-Carlo welfare
//! sample through a `WelfareObjective` aggregation instead of the
//! hard-coded utility sum. This bench guards the refactor's acceptance
//! bar — the utilitarian path must stay within ~5% of the pre-refactor
//! estimator — and records what the inequality-averse objectives cost
//! on top (they walk the same outcomes, so the delta is aggregation
//! only, not simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uic_datasets::{community_partition, erdos_renyi};
use uic_diffusion::{Allocation, Ces, Maximin, PerCommunity, WelfareEstimator, WelfareObjective};
use uic_items::{NoiseModel, Price, TableValuation, UtilityModel};

fn model() -> UtilityModel {
    UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::none(2),
    )
}

fn seeds_alloc() -> Allocation {
    let seeds: Vec<u32> = (0..20).collect();
    Allocation::from_item_seeds(&[seeds.clone(), seeds])
}

fn bench_objective_estimators(c: &mut Criterion) {
    let g = erdos_renyi(10_000, 50_000, 7);
    let m = model();
    let alloc = seeds_alloc();
    let mut group = c.benchmark_group("welfare_objectives_10k");
    group.sample_size(10);
    group.bench_function("utilitarian_200_sims", |b| {
        b.iter(|| {
            WelfareEstimator::new(&g, &m, 200, 11)
                .with_threads(1)
                .estimate(&alloc)
        })
    });
    let labels = Arc::new(community_partition(&g, 8, 3));
    let swapped: [(&str, Arc<dyn WelfareObjective>); 3] = [
        ("maximin_200_sims", Arc::new(Maximin)),
        (
            "ces_a05_200_sims",
            Arc::new(Ces::new(0.5).expect("0.5 is a valid exponent")),
        ),
        (
            "per_community_8_200_sims",
            Arc::new(PerCommunity::new(labels, 0.5).expect("labels cover the graph")),
        ),
    ];
    for (name, objective) in swapped {
        group.bench_function(name, |b| {
            b.iter(|| {
                WelfareEstimator::new(&g, &m, 200, 11)
                    .with_threads(1)
                    .with_objective(objective.clone())
                    .estimate(&alloc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective_estimators);
criterion_main!(benches);
