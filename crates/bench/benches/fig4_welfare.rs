//! Fig. 4 bench: allocation + welfare scoring for the five algorithms in
//! Configuration 1 (Douban-Movie stand-in, tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_datasets::{named_network, NamedNetwork, TwoItemConfig};
use uic_experiments::common::{run_algo, Algo};

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::DoubanMovie, opts.scale, opts.seed);
    let cfg = TwoItemConfig::new(1);
    let model = cfg.model();
    let budgets = [10u32.min(g.num_nodes()), 10u32.min(g.num_nodes())];
    let mut group = c.benchmark_group("fig4_welfare");
    group.sample_size(10);
    for algo in Algo::TWO_ITEM {
        group.bench_function(format!("allocate+score/{}", algo.name()), |b| {
            // run_algo scores through the solver registry's shared ctx.
            b.iter(|| run_algo(algo, &g, &budgets, &model, &opts).welfare_mean())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
