//! Fig. 4 bench: allocation + welfare scoring for the five algorithms in
//! Configuration 1 (Douban-Movie stand-in, tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_datasets::{named_network, NamedNetwork, TwoItemConfig};
use uic_diffusion::WelfareEstimator;
use uic_experiments::common::{run_algo, Algo};

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let g = named_network(NamedNetwork::DoubanMovie, opts.scale, opts.seed);
    let cfg = TwoItemConfig::new(1);
    let model = cfg.model();
    let gap = Some(cfg.gap());
    let budgets = [10u32.min(g.num_nodes()), 10u32.min(g.num_nodes())];
    let mut group = c.benchmark_group("fig4_welfare");
    group.sample_size(10);
    for algo in Algo::TWO_ITEM {
        group.bench_function(format!("allocate+score/{}", algo.name()), |b| {
            b.iter(|| {
                let r = run_algo(algo, &g, &budgets, &model, gap, &opts);
                WelfareEstimator::new(&g, &model, opts.sims, opts.seed).estimate(&r.allocation)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
