//! Selection-plan kernel bench: what the serving layer's plan cache
//! actually buys per query, isolated from sockets and scoring.
//!
//! Three rows per arena size, same collection and budget throughout:
//!
//! * `cold`      — a full from-scratch greedy run
//!   ([`node_selection_prefix_indexed`]), what every query paid before
//!   the plan cache;
//! * `cold-plan` — [`SelectionPlan::compute`] from scratch (greedy plus
//!   the residual-state snapshot), what a cache **miss** pays;
//! * `warm-plan` — [`SelectionPlan::slice`] on a memoized plan, the
//!   repeat-query path (`O(k)` copying, no greedy at all);
//! * `resume`    — [`SelectionPlan::resume`] from a plan holding half
//!   the budget, the mixed-`k` path (greedy restarts from the cached
//!   CELF state instead of from zero; compare against `cold-plan`, the
//!   path a miss would otherwise take).
//!
//! Arena sizes: 100k RR sets by default; `UIC_PLAN_BENCH_SETS=1000000`
//! for the 1M headline row (also: `UIC_PLAN_BENCH_NODES`,
//! `UIC_PLAN_BENCH_K`). `BENCH_serve.json` records the cold / warm /
//! resume split these rows produce.

use criterion::{criterion_group, criterion_main, Criterion};
use uic_graph::GraphBuilder;
use uic_im::{node_selection_prefix_indexed, DiffusionModel, RrCollection, SelectionPlan};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A hub-and-spoke random graph big enough that RR sets overlap (so
/// greedy actually iterates) without any dataset dependency.
fn bench_collection(num_nodes: u32, num_sets: usize) -> RrCollection {
    let mut b = GraphBuilder::new(num_nodes);
    let hubs = (num_nodes / 100).max(4);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for v in hubs..num_nodes {
        // Two inbound edges from pseudo-random hubs: reverse walks from
        // any node reach a hub fast, giving heavy-overlap RR sets.
        for _ in 0..2 {
            let h = (next() % hubs as u64) as u32;
            b.add_edge(h, v, 0.3);
        }
    }
    let g = b.build(uic_graph::Weighting::AsGiven, 0);
    let mut coll = RrCollection::new(&g, DiffusionModel::IC, 42);
    coll.extend_to(&g, num_sets);
    coll.ensure_index();
    coll
}

fn bench(c: &mut Criterion) {
    let num_sets = env_usize("UIC_PLAN_BENCH_SETS", 100_000);
    let num_nodes = env_usize("UIC_PLAN_BENCH_NODES", 100_000) as u32;
    let k = env_usize("UIC_PLAN_BENCH_K", 50) as u32;
    eprintln!("sampling {num_sets} RR sets over {num_nodes} nodes…");
    let coll = bench_collection(num_nodes, num_sets);
    eprintln!(
        "arena: {} sets, {:.1} MiB",
        coll.len(),
        coll.heap_bytes() as f64 / (1 << 20) as f64
    );

    let mut group = c.benchmark_group(format!("plan/{num_sets}-sets-k{k}"));
    group.sample_size(10);

    group.bench_function("cold", |b| {
        b.iter(|| node_selection_prefix_indexed(&coll, k, num_sets))
    });

    group.bench_function("cold-plan", |b| {
        b.iter(|| SelectionPlan::compute(&coll, k, num_sets))
    });

    let full = SelectionPlan::compute(&coll, k, num_sets);
    assert_eq!(
        full.slice(k).unwrap(),
        node_selection_prefix_indexed(&coll, k, num_sets),
        "plan must be bit-identical to from-scratch selection"
    );
    group.bench_function("warm-plan", |b| b.iter(|| full.slice(k).unwrap()));

    let half = SelectionPlan::compute(&coll, k / 2, num_sets);
    assert_eq!(half.resume(&coll, k), full, "resume must replay exactly");
    group.bench_function("resume", |b| b.iter(|| half.resume(&coll, k)));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
