//! Table 6 bench: RR-set accounting — PRIMA (inside bundleGRD) vs the
//! two IMM variants under the real-Param budget distributions.

// These benches time the raw engine functions below the registry facade.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use uic_core::bundle_grd;
use uic_datasets::{budget_splits, named_network, NamedNetwork};
use uic_im::{imm, DiffusionModel};

fn bench(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Twitter, 0.004, 7);
    let n = g.num_nodes();
    let budgets: Vec<u32> = budget_splits::uniform(50, 5)
        .into_iter()
        .map(|b| b.min(n))
        .collect();
    let max_b = *budgets.iter().max().unwrap();
    let mut group = c.benchmark_group("table6_rrsets");
    group.sample_size(10);
    group.bench_function("bundleGRD(PRIMA)", |b| {
        b.iter(|| bundle_grd(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42))
    });
    group.bench_function("IMM_MAX", |b| {
        b.iter(|| imm(&g, max_b, 0.5, 1.0, DiffusionModel::IC, 42))
    });
    group.bench_function("MAX_IMM(all budgets)", |b| {
        b.iter(|| {
            budgets
                .iter()
                .map(|&k| imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42).rr_sets_final)
                .max()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
