//! Fig. 9(d) bench: bundleGRD across BFS-prefix graph sizes with both
//! edge-weight schemes — the linear-scaling story.

// These benches time the raw engine functions below the registry facade.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use uic_bench::bench_opts;
use uic_core::bundle_grd;
use uic_datasets::{named_network, NamedNetwork};
use uic_graph::{bfs_prefix_subgraph, Weighting};
use uic_im::DiffusionModel;

fn bench(c: &mut Criterion) {
    let opts = bench_opts();
    let full = named_network(NamedNetwork::Orkut, 0.004, opts.seed);
    let mut group = c.benchmark_group("fig9d_scaling");
    group.sample_size(10);
    for &pct in &[25u32, 50, 100] {
        let (sub, _) = bfs_prefix_subgraph(&full, 0, pct as f64 / 100.0);
        let n = sub.num_nodes();
        let budgets = vec![10u32.min(n / 4).max(1); 5];
        let wc = sub.reweighted_as(Weighting::WeightedCascade, 0);
        group.bench_function(format!("wc_1_din/{pct}pct"), |b| {
            b.iter(|| bundle_grd(&wc, &budgets, opts.eps, opts.ell, DiffusionModel::IC, 42))
        });
        let cp = sub.reweighted_as(Weighting::Constant(0.01), 0);
        group.bench_function(format!("const_0.01/{pct}pct"), |b| {
            b.iter(|| bundle_grd(&cp, &budgets, opts.eps, opts.ell, DiffusionModel::IC, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
