//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **PRIMA vs per-budget IMM** — the cost of the prefix-preserving
//!   oracle vs naive re-runs.
//! * **Adoption-oracle memoization** — memoized vs fresh subset
//!   enumeration inside the UIC simulator.
//! * **UIC simulator throughput** — cascades/second with scratch reuse
//!   (`UicSimulator`) vs per-run allocation.
//! * **Welfare estimator** — MC sample-count scaling.
//! * **IM algorithm zoo** — IMM / TIM⁺ / SSA / OPIM-C / SKIM / heuristics
//!   head-to-head at one budget.
//! * **Prefix-preserving orderings** — PRIMA vs SKIM, one multi-budget
//!   ordering each.

// These benches time the raw engine functions below the registry facade.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uic_baselines::{degree_top, pagerank_top};
use uic_datasets::{named_network, NamedNetwork};
use uic_diffusion::{simulate_uic, Allocation, UicSimulator, WelfareEstimator};
use uic_im::{imm, opim_c, prima, skim, ssa, tim_plus, DiffusionModel, SkimOptions};
use uic_items::{AdoptionOracle, ItemSet, NoiseModel, Price, TableValuation, UtilityModel};
use uic_util::UicRng;

fn model() -> UtilityModel {
    UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
        Price::additive(vec![3.0, 4.0]),
        NoiseModel::none(2),
    )
}

fn bench_prima_vs_imm(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let budgets = [20u32, 10, 5];
    let mut group = c.benchmark_group("ablation_prima_vs_imm");
    group.sample_size(10);
    group.bench_function("prima_once", |b| {
        b.iter(|| prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42))
    });
    group.bench_function("imm_per_budget", |b| {
        b.iter(|| {
            budgets
                .iter()
                .map(|&k| imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42).seeds.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_adoption_memoization(c: &mut Criterion) {
    let m = model();
    let table = m.deterministic_table();
    let full = ItemSet::full(2);
    let mut group = c.benchmark_group("ablation_adoption_oracle");
    group.bench_function("memoized_10k_queries", |b| {
        b.iter(|| {
            let mut oracle = AdoptionOracle::new(&table);
            let mut acc = 0u32;
            for _ in 0..10_000 {
                acc ^= oracle.adopt(full, ItemSet::EMPTY).mask();
            }
            acc
        })
    });
    group.bench_function("fresh_oracle_per_query_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1_000 {
                let mut oracle = AdoptionOracle::new(&table);
                acc ^= oracle.adopt(full, ItemSet::EMPTY).mask();
            }
            acc
        })
    });
    group.finish();
}

fn bench_uic_simulator(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let m = model();
    let table = m.deterministic_table();
    let alloc = Allocation::from_item_seeds(&[vec![0, 1, 2], vec![0, 1, 2]]);
    let mut group = c.benchmark_group("ablation_uic_simulator");
    group.bench_function("reused_scratch_100_cascades", |b| {
        b.iter(|| {
            let mut sim = UicSimulator::new(&g);
            let mut total = 0usize;
            for s in 0..100u64 {
                let mut rng = UicRng::new(s);
                total += sim.run(&g, &alloc, &table, &mut rng).total_adoptions();
            }
            total
        })
    });
    group.bench_function("fresh_scratch_100_cascades", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in 0..100u64 {
                let mut rng = UicRng::new(s);
                total += simulate_uic(&g, &alloc, &table, &mut rng).total_adoptions();
            }
            total
        })
    });
    group.finish();
}

fn bench_welfare_estimator(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let m = model();
    let alloc = Allocation::from_item_seeds(&[vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3, 4]]);
    let mut group = c.benchmark_group("ablation_welfare_estimator");
    group.sample_size(10);
    for &sims in &[100u32, 1_000] {
        group.bench_function(format!("mc_{sims}_sims"), |b| {
            b.iter(|| WelfareEstimator::new(&g, &m, sims, 3).estimate(&alloc))
        });
    }
    group.finish();
}

fn bench_im_zoo(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let k = 15u32;
    let mut group = c.benchmark_group("ablation_im_zoo");
    group.sample_size(10);
    group.bench_function("imm", |b| {
        b.iter(|| imm(&g, k, 0.5, 1.0, DiffusionModel::IC, 42).seeds.len())
    });
    group.bench_function("tim_plus", |b| {
        b.iter(|| {
            tim_plus(&g, k, 0.5, 1.0, DiffusionModel::IC, 42)
                .seeds
                .len()
        })
    });
    group.bench_function("ssa", |b| {
        b.iter(|| ssa(&g, k, 0.5, 1.0, DiffusionModel::IC, 42).seeds.len())
    });
    group.bench_function("opim_c", |b| {
        b.iter(|| opim_c(&g, k, 0.5, 1.0, DiffusionModel::IC, 42).seeds.len())
    });
    group.bench_function("skim", |b| {
        b.iter(|| skim(&g, k, &SkimOptions::default(), 42).seeds.len())
    });
    group.bench_function("degree_top", |b| {
        b.iter(|| degree_top(&g, &[k]).allocation.num_pairs())
    });
    group.bench_function("pagerank_top", |b| {
        b.iter(|| pagerank_top(&g, &[k], 0.85, 50).allocation.num_pairs())
    });
    group.finish();
}

fn bench_prefix_orderings(c: &mut Criterion) {
    let g = named_network(NamedNetwork::Flixster, 0.05, 7);
    let budgets = [20u32, 10, 5];
    let mut group = c.benchmark_group("ablation_prefix_orderings");
    group.sample_size(10);
    group.bench_function("prima_multi_budget", |b| {
        b.iter(|| {
            prima(&g, &budgets, 0.5, 1.0, DiffusionModel::IC, 42)
                .order
                .len()
        })
    });
    group.bench_function("skim_ordering", |b| {
        b.iter(|| {
            skim(&g, budgets[0], &SkimOptions::default(), 42)
                .seeds
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prima_vs_imm,
    bench_adoption_memoization,
    bench_uic_simulator,
    bench_welfare_estimator,
    bench_im_zoo,
    bench_prefix_orderings
);
criterion_main!(benches);
