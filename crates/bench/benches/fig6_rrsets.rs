//! Fig. 6 bench: raw RR-set generation cost — the IMM-family sampler vs
//! the TIM-scale self-influence sampler that powers the Com-IC
//! baselines (memory story of Fig. 6).

use criterion::{criterion_group, criterion_main, Criterion};
use uic_datasets::{named_network, NamedNetwork};
use uic_im::{DiffusionModel, RrCollection};

fn bench(c: &mut Criterion) {
    let g = named_network(NamedNetwork::DoubanBook, 0.01, 7);
    let mut group = c.benchmark_group("fig6_rrsets");
    group.sample_size(10);
    for &count in &[1_000usize, 10_000] {
        group.bench_function(format!("ic_rr_sets/{count}"), |b| {
            b.iter(|| {
                let mut coll = RrCollection::new(&g, DiffusionModel::IC, 42);
                coll.extend_to(&g, count);
                coll.len()
            })
        });
        group.bench_function(format!("lt_rr_sets/{count}"), |b| {
            b.iter(|| {
                let mut coll = RrCollection::new(&g, DiffusionModel::LT, 42);
                coll.extend_to(&g, count);
                coll.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
