//! # uic-bench
//!
//! Criterion benchmark suite — one target per paper table/figure plus
//! design-choice ablations. Each bench uses deliberately small stand-in
//! networks so `cargo bench --workspace` completes on a laptop; the
//! `uic-exp` binary is the tool for full-scale regeneration.
//!
//! Targets:
//! * `table2_networks` — stand-in generation + statistics.
//! * `table6_rrsets` — PRIMA vs MAX_IMM vs IMM_MAX RR accounting.
//! * `fig4_welfare` — the five allocators + welfare scoring, Config 1.
//! * `fig5_runtime` — seed-selection time per algorithm.
//! * `fig6_rrsets` — RR-set generation cost per algorithm family.
//! * `fig7_multiitem` — multi-item configs, three allocators.
//! * `fig8a_items` — bundleGRD's flat cost vs item count.
//! * `fig8d_skew` — budget-skew effect on bundleGRD.
//! * `fig9_bdhs` — BDHS benchmarks vs propagated welfare.
//! * `fig9d_scaling` — bundleGRD across graph sizes.
//! * `ablations` — PRIMA vs per-budget IMM, adoption-oracle memoization,
//!   UIC simulator throughput.

/// Shared tiny-scale experiment options for benches.
pub fn bench_opts() -> uic_experiments::ExpOptions {
    uic_experiments::ExpOptions {
        scale: 0.008,
        sims: 50,
        ..Default::default()
    }
}
