//! Proxy-centrality seed heuristics: **high-degree** and **PageRank**.
//!
//! The classic comparison points of the IM literature since Kempe,
//! Kleinberg & Tardos (the paper's \[30\], whose experiments pit greedy
//! against exactly these two): rank nodes by a cheap structural proxy for
//! influence, then allocate budgets bundleGRD-style (every item's top-`b_i`
//! prefix of one shared ranking — so the comparison isolates *seed
//! quality*, not allocation shape). No spread estimation is performed, so
//! both run in near-linear time and carry no approximation guarantee.

use std::time::Instant;
use uic_diffusion::{Allocation, SolveReport};
use uic_graph::{Graph, NodeId};

/// Ranks nodes by out-degree (ties → lower id first) and assigns item
/// `i`'s budget to the top-`b_i` prefix.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"degree-top\")"
)]
pub fn degree_top(g: &Graph, budgets: &[u32]) -> SolveReport {
    assert!(!budgets.is_empty(), "need at least one item");
    let start = Instant::now();
    let mut order: Vec<NodeId> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
    SolveReport::new("degree-top", prefix_allocation(&order, budgets)).with_elapsed_since(start)
}

/// Ranks nodes by PageRank **on the transposed graph** (influence flows
/// along out-edges, so a node is influential when many recursively
/// influential nodes are reachable *from* it — the mirror image of the
/// usual prestige ranking) and assigns item `i`'s budget to the
/// top-`b_i` prefix.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"pagerank-top\")"
)]
pub fn pagerank_top(g: &Graph, budgets: &[u32], damping: f64, iterations: u32) -> SolveReport {
    assert!(!budgets.is_empty(), "need at least one item");
    let start = Instant::now();
    let scores = pagerank(&g.transpose(), damping, iterations);
    let mut order: Vec<NodeId> = (0..g.num_nodes()).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("PageRank scores are finite")
            .then(a.cmp(&b))
    });
    SolveReport::new("pagerank-top", prefix_allocation(&order, budgets)).with_elapsed_since(start)
}

/// Standard PageRank by power iteration with uniform teleportation;
/// dangling-node mass is redistributed uniformly so the scores stay a
/// probability distribution at every iteration.
///
/// ```
/// use uic_baselines::pagerank;
/// use uic_graph::Graph;
///
/// // Everyone endorses node 0.
/// let g = Graph::from_edges(3, &[(1, 0, 1.0), (2, 0, 1.0)]);
/// let scores = pagerank(&g, 0.85, 50);
/// assert!(scores[0] > scores[1]);
/// assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(g: &Graph, damping: f64, iterations: u32) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&damping),
        "damping must be in [0, 1), got {damping}"
    );
    let n = g.num_nodes() as usize;
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for (u, &r) in rank.iter().enumerate() {
            let outs = g.out_neighbors(u as NodeId);
            if outs.is_empty() {
                dangling += r;
            } else {
                let share = r / outs.len() as f64;
                for &v in outs {
                    next[v as usize] += share;
                }
            }
        }
        let teleport = (1.0 - damping) * uniform + damping * dangling * uniform;
        for r in next.iter_mut() {
            *r = damping * *r + teleport;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// bundleGRD-shaped allocation: item `i` gets the first `b_i` nodes of a
/// shared ranking.
fn prefix_allocation(order: &[NodeId], budgets: &[u32]) -> Allocation {
    let mut allocation = Allocation::new();
    for (item, &b) in budgets.iter().enumerate() {
        for &v in &order[..(b as usize).min(order.len())] {
            allocation.assign(v, item as u32);
        }
    }
    allocation
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engines behind the registry
mod tests {
    use super::*;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(20);
        for leaf in 1..15u32 {
            b.add_edge(0, leaf, 0.5);
        }
        b.add_edge(15, 16, 0.5);
        b.add_edge(15, 17, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn degree_ranks_hub_first() {
        let g = hub_graph();
        let r = degree_top(&g, &[2, 1]);
        let s0 = r.allocation.seeds_of_item(0);
        assert_eq!(s0, vec![0, 15], "hub then secondary hub");
        assert_eq!(r.allocation.seeds_of_item(1), vec![0]);
    }

    #[test]
    fn degree_respects_budgets_and_prefix_shape() {
        let g = hub_graph();
        let budgets = [3u32, 1];
        let r = degree_top(&g, &budgets);
        assert!(r.allocation.respects_budgets(&budgets));
        // Prefix shape: item 1's seeds ⊂ item 0's seeds.
        let s0 = r.allocation.seeds_of_item(0);
        for v in r.allocation.seeds_of_item(1) {
            assert!(s0.contains(&v));
        }
    }

    #[test]
    fn pagerank_scores_sum_to_one() {
        let g = hub_graph();
        let scores = pagerank(&g, 0.85, 50);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        assert!(scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn pagerank_uniform_on_symmetric_cycle() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let scores = pagerank(&g, 0.85, 100);
        for &s in &scores {
            assert!((s - 0.25).abs() < 1e-9, "cycle must be uniform, got {s}");
        }
    }

    #[test]
    fn pagerank_prestige_flows_to_popular_node() {
        // Everyone points at node 0 ⇒ node 0 has the top score.
        let g = Graph::from_edges(4, &[(1, 0, 1.0), (2, 0, 1.0), (3, 0, 1.0)]);
        let scores = pagerank(&g, 0.85, 100);
        assert!(scores[0] > scores[1]);
        assert!(scores[0] > scores[2]);
    }

    #[test]
    fn pagerank_top_picks_the_influencer_not_the_celebrity() {
        // Node 0 points at many; many point at node 19. On the transpose
        // node 0 is the prestige sink, so pagerank_top must rank 0 first —
        // out-influence, not in-popularity.
        let mut b = GraphBuilder::new(20);
        for leaf in 1..10u32 {
            b.add_edge(0, leaf, 0.5);
        }
        for fan in 10..19u32 {
            b.add_edge(fan, 19, 0.5);
        }
        let g = b.build(Weighting::AsGiven, 0);
        let r = pagerank_top(&g, &[1], 0.85, 100);
        assert_eq!(r.allocation.seeds_of_item(0), vec![0]);
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // Star into node 1, which dangles: without dangling handling the
        // total mass would leak each iteration.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (2, 1, 1.0)]);
        let scores = pagerank(&g, 0.85, 200);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn empty_graph_gives_empty_scores() {
        let g = Graph::from_edges(0, &[]);
        assert!(pagerank(&g, 0.85, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        let g = hub_graph();
        pagerank(&g, 1.5, 10);
    }
}
