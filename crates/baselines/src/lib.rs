//! # uic-baselines
//!
//! The six baselines of §4.3.1.2, all producing [`uic_diffusion::Allocation`]s
//! scored by the shared UIC welfare estimator:
//!
//! * [`mod@item_disj`] — **item-disj**: one IMM call with budget `Σ b_i`,
//!   then disjoint chunks per item in non-increasing budget order. Never
//!   bundles, so it forfeits supermodularity but exploits propagation.
//! * [`mod@bundle_disj`] — **bundle-disj**: greedily forms minimum-size
//!   bundles with non-negative *deterministic* utility, allocates each
//!   bundle to a fresh seed chunk, then recycles surplus budgets into
//!   existing bundles. Needs the deterministic utilities as input
//!   (bundleGRD famously does not).
//! * [`rr_sim`] — **RR-SIM+** and **RR-CIM**: the Com-IC two-item
//!   algorithms of Lu et al., reimplemented on TIM-scale RR sampling
//!   (self-influence sets for RR-SIM+; forward-simulate the partner item
//!   then complement-aware reverse sampling for RR-CIM).
//! * [`bdhs`] — **BDHS-Step** / **BDHS-Concave**: the
//!   network-externality welfare benchmarks of Bhattacharya et al. under
//!   the paper's conversion (§4.3.4.4): every node receives the best
//!   bundle, adoption driven by 1-step live-edge support or the concave
//!   `1−(1−p)^s` 2-hop support function. No propagation, no budget —
//!   bundleGRD is swept against these horizontal benchmarks in Fig. 9.
//!
//! Beyond the paper's six, two families of reference allocators round out
//! the comparison surface:
//!
//! * [`mc_greedy`] — the *direct* pair-greedy on the welfare objective
//!   (no guarantee — ρ is neither sub- nor supermodular — and brutally
//!   expensive; the honest strawman bundleGRD is measured against).
//! * [`heuristics`] — **high-degree** and **PageRank** proxy rankings,
//!   the classic KKT'03 comparison points, allocated bundleGRD-style.
//!
//! Every seed-selection function returns the workspace-wide
//! [`uic_diffusion::SolveReport`] (unscored — welfare statistics are
//! attached by the `Allocator::solve` entry point in `uic-core`). The
//! free functions themselves are deprecated entry points kept for
//! back-compat: prefer constructing solvers through the registry,
//! `<dyn uic_core::Allocator>::by_name("item-disj")`.

pub mod bdhs;
pub mod bundle_disj;
pub mod heuristics;
pub mod item_disj;
pub mod mc_greedy;
pub mod rr_sim;

pub use bdhs::{bdhs_concave_welfare, bdhs_step_welfare, bdhs_step_welfare_exact, best_bundle};
#[allow(deprecated)]
pub use bundle_disj::bundle_disj;
pub use heuristics::pagerank;
#[allow(deprecated)]
pub use heuristics::{degree_top, pagerank_top};
#[allow(deprecated)]
pub use item_disj::item_disj;
#[allow(deprecated)]
pub use mc_greedy::{mc_greedy_welfare, mc_greedy_welfare_for};
#[allow(deprecated)]
pub use rr_sim::{rr_cim, rr_sim_plus};
