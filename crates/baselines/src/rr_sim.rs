//! **RR-SIM+** and **RR-CIM** — the Com-IC seed-selection algorithms of
//! Lu et al., reimplemented per the behavioral contract the UIC paper
//! relies on (section 4.3.1.2–4.3.2 of the paper).
//!
//! Both handle exactly two items and are TIM-based — their RR-set budget
//! comes from TIM's `θ = λ/KPT` bound, which is why they "generate much
//! \[more\] RR sets than IMM" (Fig. 6) and run orders of magnitude slower
//! (Fig. 5).
//!
//! * **RR-SIM+** (self-influence maximization): given item 2's seeds
//!   (chosen by IMM), pick item 1's seeds to maximize item 1's expected
//!   adoption under *self-reliant* propagation: information crosses an
//!   edge with `p(u,v)` and each informed relay/root adopts with
//!   `q_{1|∅}`. Its RR sets therefore gate every traversed node (and the
//!   root) on a `q_{1|∅}` coin; the seed position itself adopts
//!   unconditionally.
//! * **RR-CIM** (complement-aware): given item 1's seeds (IMM), pick
//!   item 2's. Each sample **forward-simulates** item 1's cascade from
//!   `S_1`, then reverse-samples item 2 with node coins `q_{2|1}` on
//!   item-1 adopters and `q_{2|∅}` elsewhere — the two passes share one
//!   live-edge world through the graph's reverse edge-id map. The
//!   forward pass per sample is the documented source of its slowness.
//!
//! Both samplers implement [`RrSampler`] and write **directly into the
//! shared [`RrCollection`] arena** (parallel, deterministic per
//! `(seed, index)`) instead of materializing nested vectors and
//! round-tripping through `from_raw_sets`.
//!
//! Faithfulness note (recorded in DESIGN.md): the original RR-CIM also
//! iterates the i1↔i2 feedback; this one-directional variant preserves
//! the published behavioral signature the UIC paper compares against —
//! near-bundleGRD welfare in Table 3 configurations, TIM-scale RR
//! counts, and forward+backward cost.

use std::time::Instant;
use uic_diffusion::SolveReport;
use uic_graph::{Graph, NodeId};
use uic_im::{imm, node_selection, DiffusionModel, RrCollection, RrSampler};
use uic_items::GapParams;
use uic_util::{log_choose, split_seed, EdgeStatusCache, EpochMap, UicRng, VisitTags};

/// TIM's RR-set budget: `θ = λ/KPT`,
/// `λ = (8 + 2ε)·n·(ℓ·ln n + ln C(n,k) + ln 2)/ε²`, capped at
/// [`THETA_CAP`] to keep laptop-scale reproductions bounded (the cap is
/// still 10–30× IMM's sample sizes at the scales we run, so the Fig. 6
/// memory ordering is preserved; the paper's server runs used no cap and
/// hit 4×10⁷ sets).
const THETA_CAP: usize = 2_000_000;

fn tim_theta(n: u32, k: u32, eps: f64, ell: f64, kpt: f64) -> usize {
    let nf = n as f64;
    let lambda =
        (8.0 + 2.0 * eps) * nf * (ell * nf.ln() + log_choose(n as u64, k as u64) + 2f64.ln())
            / (eps * eps);
    ((lambda / kpt.max(1.0)).ceil() as usize).min(THETA_CAP)
}

/// Appends one self-influence RR set onto `arena`: reverse walk where
/// expansion through a node (and acceptance of the root) requires a `q`
/// coin; edge coins use `p(u,v)`. An empty sample (nothing appended)
/// means the root cannot adopt at all.
fn sample_self_rr_into(
    g: &Graph,
    q: f64,
    rng: &mut UicRng,
    tags: &mut VisitTags,
    expand: &mut Vec<NodeId>,
    arena: &mut Vec<NodeId>,
    width: &mut u64,
) {
    tags.reset();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let root = rng.next_below(n);
    if !rng.coin(q) {
        return; // root never adopts: uncoverable sample
    }
    tags.mark(root as usize);
    arena.push(root);
    // Queue of nodes allowed to relay (passed their q coin).
    expand.clear();
    expand.push(root);
    let mut head = 0;
    while head < expand.len() {
        let w = expand[head];
        head += 1;
        let srcs = g.in_neighbors(w);
        let probs = g.in_arc_probs(w);
        *width += srcs.len() as u64;
        for (i, &u) in srcs.iter().enumerate() {
            if tags.is_marked(u as usize) || !rng.coin(probs.get(i) as f64) {
                continue;
            }
            tags.mark(u as usize);
            arena.push(u); // u can seed-adopt unconditionally
            if rng.coin(q) {
                expand.push(u); // and may also relay
            }
        }
    }
}

/// [`RrSampler`] for RR-SIM+'s self-influence sets: sample `index`
/// draws from stream `split_seed(seed, 100 + index)` (the offset keeps
/// the stream disjoint from the partner IMM run's).
struct SelfRrSampler {
    q: f64,
    seed: u64,
}

impl RrSampler for SelfRrSampler {
    type Scratch = (VisitTags, Vec<NodeId>);

    fn scratch(&self, g: &Graph) -> Self::Scratch {
        (VisitTags::new(g.num_nodes() as usize), Vec::new())
    }

    fn sample_into(
        &self,
        g: &Graph,
        index: u64,
        (tags, expand): &mut Self::Scratch,
        arena: &mut Vec<NodeId>,
        width: &mut u64,
    ) {
        let mut rng = UicRng::new(split_seed(self.seed, 100 + index));
        sample_self_rr_into(g, self.q, &mut rng, tags, expand, arena, width);
    }
}

/// Runs RR-SIM+: item 2 seeded by IMM with budget `b2`, item 1's `b1`
/// seeds selected on self-influence RR sets sized by the TIM bound.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"rr-sim+\")"
)]
pub fn rr_sim_plus(
    g: &Graph,
    gap: GapParams,
    b1: u32,
    b2: u32,
    eps: f64,
    ell: f64,
    seed: u64,
) -> SolveReport {
    let start = Instant::now();
    let n = g.num_nodes();
    assert!(
        b1 >= 1 && b2 >= 1 && b1 <= n && b2 <= n,
        "budgets out of range"
    );
    // Partner item's seeds by plain IMM.
    let partner = imm(g, b2, eps, ell, DiffusionModel::IC, split_seed(seed, 1));
    let sampler = SelfRrSampler {
        q: gap.q1_alone,
        seed,
    };
    // Pilot sample to estimate KPT (mean set size ≈ E[σ(random v)]),
    // straight into the arena the main sample keeps growing.
    let pilot = 2_000usize;
    let mut coll = RrCollection::empty(n);
    coll.extend_with(g, pilot, &sampler);
    let kpt = coll.total_entries() as f64 / pilot as f64;
    let theta = tim_theta(n, b1, eps, ell, kpt);
    coll.extend_with(g, theta, &sampler);
    let total = coll.len();
    let sel = node_selection(&mut coll, b1);
    let mut allocation = uic_diffusion::Allocation::new();
    for &v in &sel.seeds {
        allocation.assign(v, 0);
    }
    for &v in &partner.seeds {
        allocation.assign(v, 1);
    }
    SolveReport::new("rr-sim+", allocation)
        .with_rr_sets(
            total + partner.rr_sets_final,
            total as u64 + partner.rr_sets_total,
        )
        .with_elapsed_since(start)
}

/// Dense per-world scratch shared by RR-CIM's forward and reverse
/// passes: edge coins, per-node adoption decisions, adopter marks, and
/// the reusable BFS queue. All components are epoch-stamped, so
/// [`WorldScratch::reset`] is `O(1)`.
///
/// Edge liveness is a **pure function of `(world_seed, edge id)`** —
/// the cache only memoizes it. This is what keeps every RR-CIM sample a
/// pure function of `(seed, index)`: a worker that re-simulates a world
/// at a chunk boundary reconstructs exactly the coins another worker's
/// earlier reverse passes would have cached.
struct WorldScratch {
    edge_cache: EdgeStatusCache,
    informed: EpochMap<bool>,
    adopters: VisitTags,
    queue: Vec<NodeId>,
    world_seed: u64,
}

impl WorldScratch {
    fn new(g: &Graph) -> WorldScratch {
        WorldScratch {
            edge_cache: EdgeStatusCache::new(g.num_edges()),
            informed: EpochMap::new(g.num_nodes() as usize),
            adopters: VisitTags::new(g.num_nodes() as usize),
            queue: Vec::new(),
            world_seed: 0,
        }
    }

    /// Forgets the current world and fixes the new one's edge-coin seed.
    fn reset(&mut self, world_seed: u64) {
        self.edge_cache.reset();
        self.informed.reset();
        self.adopters.reset();
        self.world_seed = world_seed;
    }

    /// Whether edge `eid` is live in this world, at probability `p`:
    /// `split_seed(world_seed, eid)` hashed to a uniform in `[0, 1)`,
    /// memoized in the epoch cache.
    #[inline]
    fn edge_live(&mut self, eid: usize, p: f64) -> bool {
        let ws = self.world_seed;
        self.edge_cache.get_or_flip(eid, || {
            let u = split_seed(ws, eid as u64);
            ((u >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
        })
    }
}

/// Forward Com-IC single-item cascade of item 1 from `s1`, recording
/// adopters into `scratch` so the reverse pass sees the same world.
/// Edge coins come from the world's hash stream ([`WorldScratch::edge_live`]);
/// `rng` drives only the per-node adoption decisions. Callers reset the
/// scratch per world.
fn forward_item1(
    g: &Graph,
    s1: &[NodeId],
    q1_alone: f64,
    rng: &mut UicRng,
    scratch: &mut WorldScratch,
) {
    scratch.queue.clear();
    for &v in s1 {
        if scratch.adopters.mark(v as usize) {
            scratch.queue.push(v);
        }
    }
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        let nbrs = g.out_neighbors(u);
        let probs = g.out_arc_probs(u);
        let first_eid = g.out_edge_id(u, 0);
        for (i, &v) in nbrs.iter().enumerate() {
            let live = scratch.edge_live(first_eid + i, probs.get(i) as f64);
            if !live || scratch.adopters.is_marked(v as usize) {
                continue;
            }
            // One adoption decision per informed node.
            let adopt = match scratch.informed.get(v as usize) {
                Some(decision) => decision,
                None => {
                    let decision = rng.coin(q1_alone);
                    scratch.informed.insert(v as usize, decision);
                    decision
                }
            };
            if adopt && scratch.adopters.mark(v as usize) {
                scratch.queue.push(v);
            }
        }
    }
}

/// Reverse samples per forward-simulated world: one forward Com-IC pass
/// of item 1 is shared by a *batch* of reverse samples drawn in the same
/// possible world — the hybrid sampling of the original RR-CIM
/// implementation (each forward simulation is expensive; roots within a
/// world are exchangeable, and the coverage estimator tolerates the mild
/// within-batch correlation).
const BATCH: u64 = 32;

/// [`RrSampler`] for RR-CIM's complement-aware sets: sample `index`
/// lives in world `index / BATCH`; its reverse pass uses node coins
/// `q_{2|1}` on that world's item-1 adopters and `q_{2|∅}` elsewhere,
/// sharing the world's hash-stream edge coins through the cached
/// [`WorldScratch`]. Both the forward pass and the edge coins are pure
/// functions of `(seed, world)`, so chunk boundaries may re-simulate a
/// world at will and the output stays a pure function of
/// `(seed, index)` under any thread count (tested on graphs with edges
/// the forward pass never reaches).
struct CimSampler<'a> {
    s1: &'a [NodeId],
    gap: GapParams,
    seed: u64,
}

/// Per-worker state for [`CimSampler`]: the cached forward world plus
/// reverse-pass scratch.
struct CimScratch {
    world: WorldScratch,
    world_id: u64,
    tags: VisitTags,
    expand: Vec<NodeId>,
}

impl RrSampler for CimSampler<'_> {
    type Scratch = CimScratch;

    fn scratch(&self, g: &Graph) -> CimScratch {
        CimScratch {
            world: WorldScratch::new(g),
            world_id: u64::MAX,
            tags: VisitTags::new(g.num_nodes() as usize),
            expand: Vec::new(),
        }
    }

    fn sample_into(
        &self,
        g: &Graph,
        index: u64,
        scratch: &mut CimScratch,
        arena: &mut Vec<NodeId>,
        width: &mut u64,
    ) {
        let world = index / BATCH;
        let mut rng = UicRng::new(split_seed(self.seed, (500 + world) * BATCH + index % BATCH));
        if world != scratch.world_id {
            scratch.world_id = world;
            let mut wrng = UicRng::new(split_seed(self.seed ^ 0xF0F0, world));
            scratch
                .world
                .reset(split_seed(self.seed ^ 0x00ED_6E5D, world));
            forward_item1(g, self.s1, self.gap.q1_alone, &mut wrng, &mut scratch.world);
        }
        // Reverse pass for item 2 with complement-aware node coins.
        scratch.tags.reset();
        let root = rng.next_below(g.num_nodes());
        let q_root = if scratch.world.adopters.is_marked(root as usize) {
            self.gap.q2_given_1
        } else {
            self.gap.q2_alone
        };
        if !rng.coin(q_root) {
            return;
        }
        scratch.tags.mark(root as usize);
        arena.push(root);
        scratch.expand.clear();
        scratch.expand.push(root);
        let mut head = 0;
        while head < scratch.expand.len() {
            let w = scratch.expand[head];
            head += 1;
            let srcs = g.in_neighbors(w);
            let probs = g.in_arc_probs(w);
            let eids = g.in_edge_ids(w);
            *width += srcs.len() as u64;
            for (i, &u) in srcs.iter().enumerate() {
                if scratch.tags.is_marked(u as usize) {
                    continue;
                }
                let live = scratch
                    .world
                    .edge_live(eids[i] as usize, probs.get(i) as f64);
                if !live {
                    continue;
                }
                scratch.tags.mark(u as usize);
                arena.push(u);
                let q_u = if scratch.world.adopters.is_marked(u as usize) {
                    self.gap.q2_given_1
                } else {
                    self.gap.q2_alone
                };
                if rng.coin(q_u) {
                    scratch.expand.push(u);
                }
            }
        }
    }
}

/// Runs RR-CIM: item 1 seeded by IMM with budget `b1`; item 2's `b2`
/// seeds selected on complement-aware RR sets (forward + backward pass
/// per sample, shared edge world).
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"rr-cim\")"
)]
pub fn rr_cim(
    g: &Graph,
    gap: GapParams,
    b1: u32,
    b2: u32,
    eps: f64,
    ell: f64,
    seed: u64,
) -> SolveReport {
    let start = Instant::now();
    let n = g.num_nodes();
    assert!(
        b1 >= 1 && b2 >= 1 && b1 <= n && b2 <= n,
        "budgets out of range"
    );
    let partner = imm(g, b1, eps, ell, DiffusionModel::IC, split_seed(seed, 1));
    let sampler = CimSampler {
        s1: &partner.seeds,
        gap,
        seed,
    };
    // Pilot + TIM-sized main sample, all in one arena.
    let pilot = 1_024usize;
    let mut coll = RrCollection::empty(n);
    coll.extend_with(g, pilot, &sampler);
    let kpt = coll.total_entries() as f64 / pilot as f64;
    let theta = tim_theta(n, b2, eps, ell, kpt);
    coll.extend_with(g, theta, &sampler);
    let total = coll.len();
    let sel = node_selection(&mut coll, b2);
    let mut allocation = uic_diffusion::Allocation::new();
    for &v in &partner.seeds {
        allocation.assign(v, 0);
    }
    for &v in &sel.seeds {
        allocation.assign(v, 1);
    }
    SolveReport::new("rr-cim", allocation)
        .with_rr_sets(
            total + partner.rr_sets_final,
            total as u64 + partner.rr_sets_total,
        )
        .with_elapsed_since(start)
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engines behind the registry
mod tests {
    use super::*;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 2..20u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 20..28u32 {
            b.add_edge(1, leaf, 0.8);
        }
        b.build(Weighting::AsGiven, 0)
    }

    fn friendly_gap() -> GapParams {
        GapParams::new(0.5, 0.84, 0.5, 0.84)
    }

    #[test]
    fn rr_sim_plus_budgets_and_hub() {
        let g = hub_graph();
        let r = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 3);
        assert_eq!(r.allocation.seeds_of_item(0).len(), 2);
        assert_eq!(r.allocation.seeds_of_item(1).len(), 1);
        // The main hub must be an item-1 seed under self-influence.
        assert!(r.allocation.seeds_of_item(0).contains(&0));
        assert!(r.rr_sets_final > 0);
    }

    #[test]
    fn rr_cim_budgets_respected() {
        let g = hub_graph();
        let r = rr_cim(&g, friendly_gap(), 2, 2, 0.5, 1.0, 5);
        assert_eq!(r.allocation.seeds_of_item(0).len(), 2);
        assert_eq!(r.allocation.seeds_of_item(1).len(), 2);
    }

    #[test]
    fn both_are_deterministic() {
        let g = hub_graph();
        let a = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 7);
        let b = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 7);
        assert_eq!(a.allocation, b.allocation);
        let a = rr_cim(&g, friendly_gap(), 1, 2, 0.5, 1.0, 7);
        let b = rr_cim(&g, friendly_gap(), 1, 2, 0.5, 1.0, 7);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn arena_sampling_is_thread_count_independent() {
        // Both custom samplers must honor the `(seed, index)` contract:
        // the collections they grow are bit-identical for any worker
        // count.
        let g = hub_graph();
        let self_sampler = SelfRrSampler { q: 0.6, seed: 41 };
        let s1 = [0u32, 1];
        let cim_sampler = CimSampler {
            s1: &s1,
            gap: friendly_gap(),
            seed: 41,
        };
        let mut self_ref = RrCollection::empty(30).with_threads(1);
        self_ref.extend_with(&g, 4_000, &self_sampler);
        let mut cim_ref = RrCollection::empty(30).with_threads(1);
        cim_ref.extend_with(&g, 4_000, &cim_sampler);
        for threads in [2usize, 8] {
            let mut a = RrCollection::empty(30).with_threads(threads);
            a.extend_with(&g, 4_000, &self_sampler);
            assert_eq!(a, self_ref, "self sampler, {threads} threads");
            let mut b = RrCollection::empty(30).with_threads(threads);
            b.extend_with(&g, 4_000, &cim_sampler);
            assert_eq!(b, cim_ref, "cim sampler, {threads} threads");
        }
    }

    #[test]
    fn cim_sampler_pure_beyond_forward_reach() {
        // Regression: edges the forward pass never reaches get their
        // coins from reverse passes. With history-dependent coins, a
        // chunk boundary mid-batch made later samples depend on which
        // batch-mates ran on the same worker; the hash-stream coins must
        // keep the collection thread-count independent even here.
        let mut b = GraphBuilder::new(30);
        for leaf in 2..20u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 20..28u32 {
            b.add_edge(1, leaf, 0.8);
        }
        // A back-alley component no item-1 cascade from {0, 1} can touch.
        b.add_edge(28, 29, 0.7);
        b.add_edge(29, 28, 0.7);
        b.add_edge(28, 2, 0.7);
        b.add_edge(29, 21, 0.7);
        let g = b.build(Weighting::AsGiven, 0);
        let s1 = [0u32, 1];
        let sampler = CimSampler {
            s1: &s1,
            gap: friendly_gap(),
            seed: 1,
        };
        let mut reference = RrCollection::empty(30).with_threads(1);
        reference.extend_with(&g, 4_000, &sampler);
        for threads in [2usize, 3, 8] {
            let mut coll = RrCollection::empty(30).with_threads(threads);
            coll.extend_with(&g, 4_000, &sampler);
            assert_eq!(coll, reference, "{threads} threads");
        }
    }

    #[test]
    fn rr_cim_follows_complement_when_alone_is_hopeless() {
        // Two disjoint hub communities. Item 1 seeded (by IMM) at the
        // bigger hub 0. With q2_alone = 0 item 2 can only be adopted by
        // item-1 adopters, so its chosen seed must live in hub 0's
        // community, not hub 1's.
        let g = hub_graph();
        let gap = GapParams::new(1.0, 1.0, 0.0, 1.0);
        let r = rr_cim(&g, gap, 1, 1, 0.5, 1.0, 9);
        assert_eq!(r.allocation.seeds_of_item(0), vec![0]);
        let s2 = r.allocation.seeds_of_item(1);
        assert_eq!(s2.len(), 1);
        let community0: Vec<u32> = std::iter::once(0).chain(2..20).collect();
        assert!(
            community0.contains(&s2[0]),
            "item-2 seed {} should sit among item-1 adopters",
            s2[0]
        );
    }

    #[test]
    fn self_rr_sets_shrink_with_q() {
        // Smaller q ⇒ fewer accepted roots/relays ⇒ smaller total mass.
        let g = hub_graph();
        let mass = |q: f64| {
            let sampler = SelfRrSampler { q, seed: 0 };
            let mut coll = RrCollection::empty(30);
            coll.extend_with(&g, 3000, &sampler);
            coll.total_entries()
        };
        let high = mass(0.9);
        let low = mass(0.1);
        assert!(low < high, "low-q mass {low} should be below high-q {high}");
    }

    #[test]
    fn tim_theta_grows_with_precision() {
        assert!(tim_theta(1000, 10, 0.1, 1.0, 5.0) > tim_theta(1000, 10, 0.5, 1.0, 5.0));
        assert!(tim_theta(1000, 20, 0.3, 1.0, 5.0) > tim_theta(1000, 5, 0.3, 1.0, 5.0));
    }
}
