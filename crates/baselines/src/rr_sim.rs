//! **RR-SIM+** and **RR-CIM** — the Com-IC seed-selection algorithms of
//! Lu et al., reimplemented per the behavioral contract the UIC paper
//! relies on (section 4.3.1.2–4.3.2 of the paper).
//!
//! Both handle exactly two items and are TIM-based — their RR-set budget
//! comes from TIM's `θ = λ/KPT` bound, which is why they "generate much
//! \[more\] RR sets than IMM" (Fig. 6) and run orders of magnitude slower
//! (Fig. 5).
//!
//! * **RR-SIM+** (self-influence maximization): given item 2's seeds
//!   (chosen by IMM), pick item 1's seeds to maximize item 1's expected
//!   adoption under *self-reliant* propagation: information crosses an
//!   edge with `p(u,v)` and each informed relay/root adopts with
//!   `q_{1|∅}`. Its RR sets therefore gate every traversed node (and the
//!   root) on a `q_{1|∅}` coin; the seed position itself adopts
//!   unconditionally.
//! * **RR-CIM** (complement-aware): given item 1's seeds (IMM), pick
//!   item 2's. Each sample **forward-simulates** item 1's cascade from
//!   `S_1`, then reverse-samples item 2 with node coins `q_{2|1}` on
//!   item-1 adopters and `q_{2|∅}` elsewhere — the two passes share one
//!   live-edge world through the graph's reverse edge-id map. The
//!   forward pass per sample is the documented source of its slowness.
//!
//! Faithfulness note (recorded in DESIGN.md): the original RR-CIM also
//! iterates the i1↔i2 feedback; this one-directional variant preserves
//! the published behavioral signature the UIC paper compares against —
//! near-bundleGRD welfare in Table 3 configurations, TIM-scale RR
//! counts, and forward+backward cost.

use std::time::Instant;
use uic_diffusion::SolveReport;
use uic_graph::{Graph, NodeId};
use uic_im::{imm, node_selection, DiffusionModel, RrCollection};
use uic_items::GapParams;
use uic_util::{log_choose, split_seed, EdgeStatusCache, EpochMap, UicRng, VisitTags};

/// TIM's RR-set budget: `θ = λ/KPT`,
/// `λ = (8 + 2ε)·n·(ℓ·ln n + ln C(n,k) + ln 2)/ε²`, capped at
/// [`THETA_CAP`] to keep laptop-scale reproductions bounded (the cap is
/// still 10–30× IMM's sample sizes at the scales we run, so the Fig. 6
/// memory ordering is preserved; the paper's server runs used no cap and
/// hit 4×10⁷ sets).
const THETA_CAP: usize = 2_000_000;

fn tim_theta(n: u32, k: u32, eps: f64, ell: f64, kpt: f64) -> usize {
    let nf = n as f64;
    let lambda =
        (8.0 + 2.0 * eps) * nf * (ell * nf.ln() + log_choose(n as u64, k as u64) + 2f64.ln())
            / (eps * eps);
    ((lambda / kpt.max(1.0)).ceil() as usize).min(THETA_CAP)
}

/// Self-influence RR set: reverse walk where expansion through a node
/// (and acceptance of the root) requires a `q` coin; edge coins use
/// `p(u,v)`. An empty set means the root cannot adopt at all.
fn sample_self_rr(
    g: &Graph,
    q: f64,
    rng: &mut UicRng,
    tags: &mut VisitTags,
    expand: &mut Vec<NodeId>,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    tags.reset();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let root = rng.next_below(n);
    if !rng.coin(q) {
        return; // root never adopts: uncoverable sample
    }
    tags.mark(root as usize);
    out.push(root);
    // Queue of nodes allowed to relay (passed their q coin).
    expand.clear();
    expand.push(root);
    let mut head = 0;
    while head < expand.len() {
        let w = expand[head];
        head += 1;
        let srcs = g.in_neighbors(w);
        let probs = g.in_probs(w);
        for (i, &u) in srcs.iter().enumerate() {
            if tags.is_marked(u as usize) || !rng.coin(probs[i] as f64) {
                continue;
            }
            tags.mark(u as usize);
            out.push(u); // u can seed-adopt unconditionally
            if rng.coin(q) {
                expand.push(u); // and may also relay
            }
        }
    }
}

/// Runs RR-SIM+: item 2 seeded by IMM with budget `b2`, item 1's `b1`
/// seeds selected on self-influence RR sets sized by the TIM bound.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"rr-sim+\")"
)]
pub fn rr_sim_plus(
    g: &Graph,
    gap: GapParams,
    b1: u32,
    b2: u32,
    eps: f64,
    ell: f64,
    seed: u64,
) -> SolveReport {
    let start = Instant::now();
    let n = g.num_nodes();
    assert!(
        b1 >= 1 && b2 >= 1 && b1 <= n && b2 <= n,
        "budgets out of range"
    );
    // Partner item's seeds by plain IMM.
    let partner = imm(g, b2, eps, ell, DiffusionModel::IC, split_seed(seed, 1));
    // Pilot sample to estimate KPT (mean set size ≈ E[σ(random v)]).
    let pilot = 2_000usize;
    let mut tags = VisitTags::new(n as usize);
    let mut expand = Vec::new();
    let mut buf = Vec::new();
    let mut sets: Vec<Vec<NodeId>> = Vec::with_capacity(pilot);
    let mut size_sum = 0usize;
    for j in 0..pilot {
        let mut rng = UicRng::new(split_seed(seed, 100 + j as u64));
        sample_self_rr(g, gap.q1_alone, &mut rng, &mut tags, &mut expand, &mut buf);
        size_sum += buf.len();
        sets.push(buf.clone());
    }
    let kpt = size_sum as f64 / pilot as f64;
    let theta = tim_theta(n, b1, eps, ell, kpt);
    sets.reserve(theta.saturating_sub(sets.len()));
    for j in sets.len()..theta {
        let mut rng = UicRng::new(split_seed(seed, 100 + j as u64));
        sample_self_rr(g, gap.q1_alone, &mut rng, &mut tags, &mut expand, &mut buf);
        sets.push(buf.clone());
    }
    let total = sets.len();
    let coll = RrCollection::from_raw_sets(n, sets);
    let sel = node_selection(&coll, b1);
    let mut allocation = uic_diffusion::Allocation::new();
    for &v in &sel.seeds {
        allocation.assign(v, 0);
    }
    for &v in &partner.seeds {
        allocation.assign(v, 1);
    }
    SolveReport::new("rr-sim+", allocation)
        .with_rr_sets(
            total + partner.rr_sets_final,
            total as u64 + partner.rr_sets_total,
        )
        .with_elapsed_since(start)
}

/// Dense per-world scratch shared by RR-CIM's forward and reverse
/// passes: edge coins, per-node adoption decisions, adopter marks, and
/// the reusable BFS queue. All components are epoch-stamped, so
/// [`WorldScratch::reset`] is `O(1)`.
struct WorldScratch {
    edge_cache: EdgeStatusCache,
    informed: EpochMap<bool>,
    adopters: VisitTags,
    queue: Vec<NodeId>,
}

impl WorldScratch {
    fn new(g: &Graph) -> WorldScratch {
        WorldScratch {
            edge_cache: EdgeStatusCache::new(g.num_edges()),
            informed: EpochMap::new(g.num_nodes() as usize),
            adopters: VisitTags::new(g.num_nodes() as usize),
            queue: Vec::new(),
        }
    }

    /// Forgets the current world.
    fn reset(&mut self) {
        self.edge_cache.reset();
        self.informed.reset();
        self.adopters.reset();
    }
}

/// Forward Com-IC single-item cascade of item 1 from `s1`, recording
/// adopters and the edge coins into `scratch` so the reverse pass sees
/// the same world. Callers reset the scratch per world.
fn forward_item1(
    g: &Graph,
    s1: &[NodeId],
    q1_alone: f64,
    rng: &mut UicRng,
    scratch: &mut WorldScratch,
) {
    let WorldScratch {
        edge_cache,
        informed,
        adopters,
        queue,
    } = scratch;
    queue.clear();
    for &v in s1 {
        if adopters.mark(v as usize) {
            queue.push(v);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let nbrs = g.out_neighbors(u);
        let probs = g.out_probs(u);
        let first_eid = g.out_edge_id(u, 0);
        for (i, &v) in nbrs.iter().enumerate() {
            let rng_ref = &mut *rng;
            let live = edge_cache.get_or_flip(first_eid + i, || rng_ref.coin(probs[i] as f64));
            if !live || adopters.is_marked(v as usize) {
                continue;
            }
            // One adoption decision per informed node.
            let adopt = match informed.get(v as usize) {
                Some(decision) => decision,
                None => {
                    let decision = rng.coin(q1_alone);
                    informed.insert(v as usize, decision);
                    decision
                }
            };
            if adopt && adopters.mark(v as usize) {
                queue.push(v);
            }
        }
    }
}

/// Runs RR-CIM: item 1 seeded by IMM with budget `b1`; item 2's `b2`
/// seeds selected on complement-aware RR sets (forward + backward pass
/// per sample, shared edge world).
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"rr-cim\")"
)]
pub fn rr_cim(
    g: &Graph,
    gap: GapParams,
    b1: u32,
    b2: u32,
    eps: f64,
    ell: f64,
    seed: u64,
) -> SolveReport {
    let start = Instant::now();
    let n = g.num_nodes();
    assert!(
        b1 >= 1 && b2 >= 1 && b1 <= n && b2 <= n,
        "budgets out of range"
    );
    let partner = imm(g, b1, eps, ell, DiffusionModel::IC, split_seed(seed, 1));
    let s1 = &partner.seeds;

    // Per-world machinery: one forward Com-IC pass of item 1 is shared
    // by a *batch* of reverse samples drawn in the same possible world —
    // the hybrid sampling of the original RR-CIM implementation (each
    // forward simulation is expensive; roots within a world are
    // exchangeable, and the coverage estimator tolerates the mild
    // within-batch correlation).
    const BATCH: u64 = 32;
    let mut scratch = WorldScratch::new(g);
    let mut tags = VisitTags::new(n as usize);
    let mut expand: Vec<NodeId> = Vec::new();
    let mut world_id = u64::MAX;
    let mut sample = |j: u64, out: &mut Vec<NodeId>| {
        let world = j / BATCH;
        let mut rng = UicRng::new(split_seed(seed, (500 + world) * BATCH + j % BATCH));
        if world != world_id {
            world_id = world;
            let mut wrng = UicRng::new(split_seed(seed ^ 0xF0F0, world));
            scratch.reset();
            forward_item1(g, s1, gap.q1_alone, &mut wrng, &mut scratch);
        }
        // Reverse pass for item 2 with complement-aware node coins.
        out.clear();
        tags.reset();
        let root = rng.next_below(n);
        let q_root = if scratch.adopters.is_marked(root as usize) {
            gap.q2_given_1
        } else {
            gap.q2_alone
        };
        if !rng.coin(q_root) {
            return;
        }
        tags.mark(root as usize);
        out.push(root);
        expand.clear();
        expand.push(root);
        let mut head = 0;
        while head < expand.len() {
            let w = expand[head];
            head += 1;
            let srcs = g.in_neighbors(w);
            let probs = g.in_probs(w);
            let eids = g.in_edge_ids(w);
            for (i, &u) in srcs.iter().enumerate() {
                if tags.is_marked(u as usize) {
                    continue;
                }
                let rng_ref = &mut rng;
                let live = scratch
                    .edge_cache
                    .get_or_flip(eids[i] as usize, || rng_ref.coin(probs[i] as f64));
                if !live {
                    continue;
                }
                tags.mark(u as usize);
                out.push(u);
                let q_u = if scratch.adopters.is_marked(u as usize) {
                    gap.q2_given_1
                } else {
                    gap.q2_alone
                };
                if rng.coin(q_u) {
                    expand.push(u);
                }
            }
        }
    };

    // Pilot + TIM-sized main sample.
    let pilot = 1_024usize;
    let mut sets: Vec<Vec<NodeId>> = Vec::with_capacity(pilot);
    let mut buf = Vec::new();
    let mut size_sum = 0usize;
    for j in 0..pilot {
        sample(j as u64, &mut buf);
        size_sum += buf.len();
        sets.push(buf.clone());
    }
    let kpt = size_sum as f64 / pilot as f64;
    let theta = tim_theta(n, b2, eps, ell, kpt);
    for j in sets.len()..theta {
        sample(j as u64, &mut buf);
        sets.push(buf.clone());
    }
    let total = sets.len();
    let coll = RrCollection::from_raw_sets(n, sets);
    let sel = node_selection(&coll, b2);
    let mut allocation = uic_diffusion::Allocation::new();
    for &v in s1 {
        allocation.assign(v, 0);
    }
    for &v in &sel.seeds {
        allocation.assign(v, 1);
    }
    SolveReport::new("rr-cim", allocation)
        .with_rr_sets(
            total + partner.rr_sets_final,
            total as u64 + partner.rr_sets_total,
        )
        .with_elapsed_since(start)
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engines behind the registry
mod tests {
    use super::*;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 2..20u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 20..28u32 {
            b.add_edge(1, leaf, 0.8);
        }
        b.build(Weighting::AsGiven, 0)
    }

    fn friendly_gap() -> GapParams {
        GapParams::new(0.5, 0.84, 0.5, 0.84)
    }

    #[test]
    fn rr_sim_plus_budgets_and_hub() {
        let g = hub_graph();
        let r = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 3);
        assert_eq!(r.allocation.seeds_of_item(0).len(), 2);
        assert_eq!(r.allocation.seeds_of_item(1).len(), 1);
        // The main hub must be an item-1 seed under self-influence.
        assert!(r.allocation.seeds_of_item(0).contains(&0));
        assert!(r.rr_sets_final > 0);
    }

    #[test]
    fn rr_cim_budgets_respected() {
        let g = hub_graph();
        let r = rr_cim(&g, friendly_gap(), 2, 2, 0.5, 1.0, 5);
        assert_eq!(r.allocation.seeds_of_item(0).len(), 2);
        assert_eq!(r.allocation.seeds_of_item(1).len(), 2);
    }

    #[test]
    fn both_are_deterministic() {
        let g = hub_graph();
        let a = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 7);
        let b = rr_sim_plus(&g, friendly_gap(), 2, 1, 0.5, 1.0, 7);
        assert_eq!(a.allocation, b.allocation);
        let a = rr_cim(&g, friendly_gap(), 1, 2, 0.5, 1.0, 7);
        let b = rr_cim(&g, friendly_gap(), 1, 2, 0.5, 1.0, 7);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn rr_cim_follows_complement_when_alone_is_hopeless() {
        // Two disjoint hub communities. Item 1 seeded (by IMM) at the
        // bigger hub 0. With q2_alone = 0 item 2 can only be adopted by
        // item-1 adopters, so its chosen seed must live in hub 0's
        // community, not hub 1's.
        let g = hub_graph();
        let gap = GapParams::new(1.0, 1.0, 0.0, 1.0);
        let r = rr_cim(&g, gap, 1, 1, 0.5, 1.0, 9);
        assert_eq!(r.allocation.seeds_of_item(0), vec![0]);
        let s2 = r.allocation.seeds_of_item(1);
        assert_eq!(s2.len(), 1);
        let community0: Vec<u32> = std::iter::once(0).chain(2..20).collect();
        assert!(
            community0.contains(&s2[0]),
            "item-2 seed {} should sit among item-1 adopters",
            s2[0]
        );
    }

    #[test]
    fn self_rr_sets_shrink_with_q() {
        // Smaller q ⇒ fewer accepted roots/relays ⇒ smaller total mass.
        let g = hub_graph();
        let mut tags = VisitTags::new(30);
        let mut expand = Vec::new();
        let mut buf = Vec::new();
        let mut mass = |q: f64| {
            let mut total = 0usize;
            for j in 0..3000u64 {
                let mut rng = UicRng::new(split_seed(42, j));
                sample_self_rr(&g, q, &mut rng, &mut tags, &mut expand, &mut buf);
                total += buf.len();
            }
            total
        };
        let high = mass(0.9);
        let low = mass(0.1);
        assert!(low < high, "low-q mass {low} should be below high-q {high}");
    }

    #[test]
    fn tim_theta_grows_with_precision() {
        assert!(tim_theta(1000, 10, 0.1, 1.0, 5.0) > tim_theta(1000, 10, 0.5, 1.0, 5.0));
        assert!(tim_theta(1000, 20, 0.3, 1.0, 5.0) > tim_theta(1000, 5, 0.3, 1.0, 5.0));
    }
}
