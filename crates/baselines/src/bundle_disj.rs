//! The **bundle-disj** baseline (§4.3.1.2, item 3).
//!
//! Leverages both supermodularity and propagation, but with *disjoint*
//! seed sets per bundle (unlike bundleGRD's shared prefix):
//!
//! 1. Order items by non-increasing budget; repeatedly find the
//!    minimum-sized itemset (earliest in the precedence order `≺` among
//!    equals) with non-negative deterministic utility among items with
//!    remaining budget, and allocate it as a *bundle* to a fresh chunk of
//!    `b_B = min{b_i | i ∈ B}` seed nodes (each bundle triggers its own
//!    IMM invocation — the paper times `s` IMM calls, Fig. 8a).
//! 2. Decrement budgets; drop exhausted items; repeat while a
//!    non-negative bundle exists.
//! 3. Surplus budgets are recycled onto the seeds of the first existing
//!    bundle not containing the item; any remainder gets fresh IMM seeds.

use std::time::Instant;
use uic_diffusion::{Allocation, SolveReport};
use uic_graph::{Graph, NodeId};
use uic_im::{imm, DiffusionModel};
use uic_items::{ItemSet, UtilityModel};

/// Runs bundle-disj. Unlike bundleGRD this baseline must see the
/// deterministic utilities (`model`), exactly as the paper describes.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"bundle-disj\")"
)]
pub fn bundle_disj(
    g: &Graph,
    budgets: &[u32],
    utility: &UtilityModel,
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
) -> SolveReport {
    let n_items = budgets.len() as u32;
    assert_eq!(n_items, utility.num_items(), "budget arity mismatch");
    let start = Instant::now();
    let table = utility.deterministic_table();
    let mut remaining: Vec<u32> = budgets.to_vec();
    let mut allocation = Allocation::new();
    // Bundles formed so far: (itemset, seed nodes).
    let mut bundles: Vec<(ItemSet, Vec<NodeId>)> = Vec::new();
    let mut cursor = 0usize; // next unused position in the seed ordering
    let mut rr_final = 0usize;
    let mut rr_total = 0u64;
    let n = g.num_nodes();

    // Phase 1: bundle formation.
    loop {
        let alive: ItemSet = (0..n_items)
            .filter(|&i| remaining[i as usize] > 0)
            .collect();
        if alive.is_empty() {
            break;
        }
        // Minimum-sized subset with non-negative deterministic utility;
        // ties broken by the precedence order (mask order within a size).
        let mut chosen: Option<ItemSet> = None;
        'search: for size in 1..=alive.len() {
            for s in alive.subsets() {
                if s.len() == size && table.utility(s) >= 0.0 {
                    chosen = Some(s);
                    break 'search;
                }
            }
        }
        let Some(bundle) = chosen else { break };
        let b_bundle = bundle
            .iter()
            .map(|i| remaining[i as usize])
            .min()
            .expect("bundle non-empty");
        let take = (b_bundle as usize).min((n as usize).saturating_sub(cursor));
        if take == 0 {
            break; // graph exhausted
        }
        // Fresh seeds: one IMM invocation per bundle (paper's cost model),
        // consuming the next chunk of the ordering.
        let want = (cursor + take) as u32;
        let imm_result = imm(g, want.min(n), eps, ell, model, seed);
        rr_final += imm_result.rr_sets_final;
        rr_total += imm_result.rr_sets_total;
        let seeds: Vec<NodeId> = imm_result.seeds[cursor..cursor + take].to_vec();
        for &v in &seeds {
            allocation.assign_set(v, bundle);
        }
        for i in bundle.iter() {
            remaining[i as usize] -= take as u32;
        }
        bundles.push((bundle, seeds));
        cursor += take;
    }

    // Phase 2: recycle surplus budgets onto existing bundles.
    for i in 0..n_items {
        if remaining[i as usize] == 0 {
            continue;
        }
        for (bundle, seeds) in &bundles {
            if bundle.contains(i) || remaining[i as usize] == 0 {
                continue;
            }
            let take = (remaining[i as usize] as usize).min(seeds.len());
            for &v in &seeds[..take] {
                allocation.assign(v, i);
            }
            remaining[i as usize] -= take as u32;
        }
    }

    // Phase 3: leftover budget gets fresh IMM seeds.
    let leftover_total: u32 = remaining.iter().sum();
    if leftover_total > 0 && (cursor as u32) < n {
        let extra = (leftover_total as usize).min(n as usize - cursor);
        let imm_result = imm(g, (cursor + extra) as u32, eps, ell, model, seed);
        rr_final += imm_result.rr_sets_final;
        rr_total += imm_result.rr_sets_total;
        let mut pos = cursor;
        for i in 0..n_items {
            while remaining[i as usize] > 0 && pos < cursor + extra {
                allocation.assign(imm_result.seeds[pos], i);
                remaining[i as usize] -= 1;
                pos += 1;
            }
        }
    }

    SolveReport::new("bundle-disj", allocation)
        .with_rr_sets(rr_final, rr_total)
        .with_elapsed_since(start)
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engine behind the registry
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_graph::{GraphBuilder, Weighting};
    use uic_items::{NoiseModel, Price, TableValuation};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(40);
        for leaf in 4..25u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 25..32u32 {
            b.add_edge(1, leaf, 0.8);
        }
        for leaf in 32..36u32 {
            b.add_edge(2, leaf, 0.8);
        }
        b.add_edge(3, 36, 0.8);
        b.build(Weighting::AsGiven, 0)
    }

    /// Both items individually profitable: bundles are singletons and
    /// bundle-disj degenerates to item-disj (the paper's Configs 1–2).
    fn positive_singletons() -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 4.0, 5.0, 10.0])),
            Price::additive(vec![3.0, 4.0]),
            NoiseModel::none(2),
        )
    }

    /// i1 profitable alone, i2 not; {i1,i2} profitable (Configs 3–4):
    /// bundle-disj forms the pair bundle like bundleGRD.
    fn pair_needed() -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 4.0, 3.0, 9.0])),
            Price::additive(vec![3.0, 4.0]),
            NoiseModel::none(2),
        )
    }

    #[test]
    fn positive_singletons_yield_disjoint_singleton_bundles() {
        let g = hub_graph();
        let m = positive_singletons();
        let r = bundle_disj(&g, &[2, 2], &m, 0.4, 1.0, DiffusionModel::IC, 3);
        let s0 = r.allocation.seeds_of_item(0);
        let s1 = r.allocation.seeds_of_item(1);
        assert_eq!(s0.len(), 2);
        assert_eq!(s1.len(), 2);
        for v in &s1 {
            assert!(!s0.contains(v), "singleton bundles must be disjoint");
        }
    }

    #[test]
    fn unprofitable_item_rides_the_pair_bundle() {
        let g = hub_graph();
        let m = pair_needed();
        let r = bundle_disj(&g, &[2, 2], &m, 0.4, 1.0, DiffusionModel::IC, 5);
        let s0 = r.allocation.seeds_of_item(0);
        let s1 = r.allocation.seeds_of_item(1);
        assert_eq!(s0.len(), 2);
        assert_eq!(s1.len(), 2);
        // First bundle is {i1} (singleton, earliest ≺ with U ≥ 0)…
        // then {i2} alone is negative, but {i1,i2} needs i1's budget —
        // exhausted — so i2 is recycled onto bundle {i1}'s seeds.
        for v in &s1 {
            assert!(s0.contains(v), "i2's surplus should ride i1's bundle seeds");
        }
    }

    #[test]
    fn all_negative_singletons_bundle_together() {
        // Neither item profitable alone; the pair is: first bundle is the
        // pair itself, allocated to shared seeds.
        let g = hub_graph();
        let m = UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 2.0, 2.0, 9.0])),
            Price::additive(vec![3.0, 3.0]),
            NoiseModel::none(2),
        );
        let r = bundle_disj(&g, &[3, 3], &m, 0.4, 1.0, DiffusionModel::IC, 7);
        assert_eq!(r.allocation.seeds_of_item(0), r.allocation.seeds_of_item(1));
        assert_eq!(r.allocation.seeds_of_item(0).len(), 3);
    }

    #[test]
    fn hopeless_items_get_no_bundle_but_fresh_seeds() {
        // Everything negative: no bundle forms; phase 3 still spends the
        // budget on fresh seeds (matching the paper's "select b_i fresh
        // seeds using IMM and assign them" fallback).
        let g = hub_graph();
        let m = UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, 1.0, 2.0])),
            Price::additive(vec![5.0, 5.0]),
            NoiseModel::none(2),
        );
        let r = bundle_disj(&g, &[2, 1], &m, 0.4, 1.0, DiffusionModel::IC, 9);
        assert_eq!(r.allocation.budgets_used(2), vec![2, 1]);
    }

    #[test]
    fn respects_budgets() {
        let g = hub_graph();
        let m = pair_needed();
        let budgets = [3u32, 2];
        let r = bundle_disj(&g, &budgets, &m, 0.4, 1.0, DiffusionModel::IC, 11);
        assert!(r.allocation.respects_budgets(&budgets));
    }

    #[test]
    fn deterministic() {
        let g = hub_graph();
        let m = pair_needed();
        let a = bundle_disj(&g, &[2, 2], &m, 0.4, 1.0, DiffusionModel::IC, 13);
        let b = bundle_disj(&g, &[2, 2], &m, 0.4, 1.0, DiffusionModel::IC, 13);
        assert_eq!(a.allocation, b.allocation);
    }
}
