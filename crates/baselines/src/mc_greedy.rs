//! The *direct* greedy WelMax allocator: Monte-Carlo greedy over
//! (node, item) pairs.
//!
//! This is the allocator one would write without the paper's insight —
//! greedily add whichever single `(v, i)` pair most increases the
//! Monte-Carlo welfare estimate, re-evaluating every feasible pair each
//! round. Because the welfare function ρ is **neither submodular nor
//! supermodular** (Theorem 1), this greedy carries *no* approximation
//! guarantee, and each of its `Σ b_i` rounds costs `O(|candidates|·|I|)`
//! full welfare estimations — the expense bundleGRD's bundling trick
//! avoids entirely. It exists as the honest strawman: the ablations show
//! bundleGRD matches its welfare at a tiny fraction of its cost.
//!
//! The greedy is **plateau-tolerant**: it adds the best pair each round
//! even when no pair strictly improves the estimate. This matters
//! precisely because of the non-submodularity — with mutually
//! complementary items every first item of a bundle is individually
//! worthless (the paper's own Theorem 1 counterexample), so a
//! strict-improvement greedy would never seed anything. Plateau steps are
//! what let pair-greedy assemble bundles one item at a time.
//!
//! All evaluations share one [`WelfareEstimator`] (fixed sims + seed), so
//! comparisons use common random numbers and the run is deterministic.
//! Per-world monotonicity of welfare (Theorem 1) then guarantees the
//! shared estimate never decreases along the greedy path, so the loop
//! runs until the budgets are exhausted.

use std::sync::Arc;
use std::time::Instant;
use uic_diffusion::{
    default_objective, Allocation, ObjectiveError, SolveReport, WelfareEstimator, WelfareObjective,
};
use uic_graph::{Graph, NodeId};
use uic_items::UtilityModel;

/// Runs pair-greedy WelMax over the given `candidates` pool (pass all
/// nodes on small graphs; a degree- or PRIMA-preselected pool otherwise —
/// the full pool is quadratic-ish and meant for reference runs only).
///
/// `budgets[i]` is item `i`'s seed budget; the allocator stops when every
/// budget is exhausted or no pair improves the estimate.
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"mc-greedy\")"
)]
pub fn mc_greedy_welfare(
    g: &Graph,
    model: &UtilityModel,
    budgets: &[u32],
    candidates: &[NodeId],
    sims: u32,
    seed: u64,
) -> SolveReport {
    mc_greedy_welfare_for(
        g,
        model,
        budgets,
        candidates,
        sims,
        seed,
        default_objective(),
    )
    .expect("the utilitarian default validates against any graph")
}

/// [`mc_greedy_welfare`] under an arbitrary [`WelfareObjective`].
///
/// Because every round re-estimates full allocations by simulation, the
/// greedy needs **no** structural assumption on the objective — this is
/// the solver of last resort for non-additive objectives (maximin, CES,
/// per-community) that the RIS machinery refuses. The only failure mode
/// is an objective that does not fit the graph (community labeling of
/// the wrong size).
pub fn mc_greedy_welfare_for(
    g: &Graph,
    model: &UtilityModel,
    budgets: &[u32],
    candidates: &[NodeId],
    sims: u32,
    seed: u64,
    objective: Arc<dyn WelfareObjective>,
) -> Result<SolveReport, ObjectiveError> {
    assert_eq!(
        budgets.len() as u32,
        model.num_items(),
        "budget arity mismatch"
    );
    assert!(!candidates.is_empty(), "need a non-empty candidate pool");
    objective.validate_for(g.num_nodes())?;
    let start = Instant::now();
    let estimator = WelfareEstimator::new(g, model, sims, seed).with_objective(objective);
    let mut allocation = Allocation::new();
    let mut remaining: Vec<u32> = budgets.to_vec();
    loop {
        // Best feasible pair this round; ties keep the first encountered
        // (lowest item, then candidate order) for determinism.
        let mut best: Option<(NodeId, u32, f64)> = None;
        for item in 0..budgets.len() as u32 {
            if remaining[item as usize] == 0 {
                continue;
            }
            for &v in candidates {
                if allocation.items_of(v).contains(item) {
                    continue;
                }
                let mut trial = allocation.clone();
                trial.assign(v, item);
                let value = estimator.estimate(&trial);
                if best.is_none_or(|(_, _, b)| value > b) {
                    best = Some((v, item, value));
                }
            }
        }
        // No feasible pair left (budgets can exceed the candidate pool).
        let Some((v, item, _)) = best else { break };
        allocation.assign(v, item);
        remaining[item as usize] -= 1;
        if remaining.iter().all(|&r| r == 0) {
            break;
        }
    }
    Ok(SolveReport::new("mc-greedy", allocation).with_elapsed_since(start))
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engine behind the registry
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_core::solve_welmax_bruteforce;
    use uic_items::{NoiseModel, Price, TableValuation};

    /// Two complementary items: each worthless alone, valuable together.
    fn complementary_model() -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 2.0, 2.0, 7.0])),
            Price::additive(vec![2.5, 2.5]),
            NoiseModel::none(2),
        )
    }

    /// Two independently profitable items (additive utility 1 each).
    fn additive_model() -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 2.0, 2.0, 4.0])),
            Price::additive(vec![1.0, 1.0]),
            NoiseModel::none(2),
        )
    }

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn learns_to_bundle_complementary_items() {
        // Individually-negative items propagate zero welfare unless
        // co-seeded; pair-greedy must discover the bundle.
        let g = path3();
        let model = complementary_model();
        let r = mc_greedy_welfare(&g, &model, &[1, 1], &[0, 1, 2], 200, 3);
        let s0 = r.allocation.seeds_of_item(0);
        let s1 = r.allocation.seeds_of_item(1);
        assert_eq!(s0.len(), 1);
        assert_eq!(s0, s1, "both items must land on the same node");
        assert_eq!(s0[0], 0, "the chain head propagates to all 3 nodes");
    }

    #[test]
    fn respects_budgets() {
        let g = path3();
        let model = additive_model();
        let budgets = [2u32, 1];
        let r = mc_greedy_welfare(&g, &model, &budgets, &[0, 1, 2], 100, 5);
        assert!(r.allocation.respects_budgets(&budgets));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = path3();
        let model = complementary_model();
        let a = mc_greedy_welfare(&g, &model, &[1, 1], &[0, 1, 2], 150, 9);
        let b = mc_greedy_welfare(&g, &model, &[1, 1], &[0, 1, 2], 150, 9);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn matches_bruteforce_on_tiny_instance() {
        // Deterministic edges + zero noise ⇒ the welfare landscape is
        // exact; pair-greedy should land on the brute-force optimum here.
        // Utilities of the complementary model with noise off:
        // U(∅)=0, U({0})=U({1})=−0.5, U({0,1})=2.
        let g = path3();
        let model = complementary_model();
        let table = uic_items::UtilityTable::from_values(2, vec![0.0, -0.5, -0.5, 2.0]);
        let (opt_alloc, opt_welfare) = solve_welmax_bruteforce(&g, &table, &[1, 1]);
        let r = mc_greedy_welfare(&g, &model, &[1, 1], &[0, 1, 2], 400, 11);
        let estimator = WelfareEstimator::new(&g, &model, 4000, 77);
        let greedy_welfare = estimator.estimate(&r.allocation);
        assert!(
            greedy_welfare >= 0.9 * opt_welfare,
            "greedy {greedy_welfare} vs OPT {opt_welfare} ({opt_alloc:?})"
        );
    }

    #[test]
    fn plateau_steps_fill_the_budget_without_inventing_welfare() {
        // A single item with negative deterministic utility and no noise:
        // every pair is a zero-gain plateau step, so the budget is spent
        // (plateau tolerance) but the welfare honestly stays zero (the
        // item is never adopted).
        let g = path3();
        let model = UtilityModel::new(
            Arc::new(TableValuation::from_table(1, vec![0.0, 1.0])),
            Price::additive(vec![5.0]),
            NoiseModel::none(1),
        );
        let r = mc_greedy_welfare(&g, &model, &[2], &[0, 1, 2], 100, 13);
        assert_eq!(r.allocation.num_pairs(), 2, "plateau steps spend budget");
        let estimator = WelfareEstimator::new(&g, &model, 500, 19);
        assert_eq!(estimator.estimate(&r.allocation), 0.0);
    }

    #[test]
    fn stops_when_candidate_pool_is_exhausted() {
        // Budget larger than the candidate pool: every candidate already
        // holds the item, so the loop must terminate early.
        let g = path3();
        let model = additive_model();
        let r = mc_greedy_welfare(&g, &model, &[3, 3], &[0], 100, 17);
        assert_eq!(r.allocation.num_pairs(), 2, "one node × two items");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        let g = path3();
        mc_greedy_welfare(&g, &complementary_model(), &[1], &[0], 10, 1);
    }

    #[test]
    fn objective_variant_defaults_to_the_deprecated_entry_point() {
        use uic_diffusion::{default_objective, Ces};
        let g = path3();
        let model = complementary_model();
        let plain = mc_greedy_welfare(&g, &model, &[1, 1], &[0, 1, 2], 150, 9);
        let gated =
            mc_greedy_welfare_for(&g, &model, &[1, 1], &[0, 1, 2], 150, 9, default_objective())
                .unwrap();
        assert_eq!(plain.allocation, gated.allocation);
        // A non-additive objective is perfectly fine here.
        let ces = mc_greedy_welfare_for(
            &g,
            &model,
            &[1, 1],
            &[0, 1, 2],
            150,
            9,
            Arc::new(Ces::new(0.5).unwrap()),
        )
        .unwrap();
        assert!(ces.allocation.respects_budgets(&[1, 1]));
    }

    #[test]
    fn mismatched_labeling_is_a_typed_error() {
        use uic_diffusion::{ObjectiveError, PerCommunity};
        use uic_graph::CommunityLabels;
        let g = path3();
        let model = complementary_model();
        let labels = Arc::new(CommunityLabels::contiguous(7, 2)); // wrong n
        let obj = Arc::new(PerCommunity::new(labels, 0.5).unwrap());
        let err = mc_greedy_welfare_for(&g, &model, &[1, 1], &[0, 1, 2], 50, 9, obj).unwrap_err();
        assert!(matches!(err, ObjectiveError::LabelingMismatch { .. }));
    }
}
