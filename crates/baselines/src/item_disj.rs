//! The **item-disj** baseline (§4.3.1.2, item 2).
//!
//! "Given the set of items I, item-disj finds `Σ_i b_i` nodes, say L,
//! using IMM. Then it visits items in non-increasing order of budgets,
//! assigns item i to first `b_i` nodes and removes those `b_i` nodes from
//! L." Every seed gets exactly one item — no bundling, so supermodular
//! value-boosts can only arise downstream through propagation.

use std::time::Instant;
use uic_diffusion::SolveReport;
use uic_graph::Graph;
use uic_im::{imm, DiffusionModel};

/// Runs item-disj for `budgets` (indexed by item; need not be sorted —
/// items are *visited* in non-increasing budget order per the paper).
#[deprecated(
    since = "0.1.0",
    note = "construct through the solver registry: <dyn uic_core::Allocator>::by_name(\"item-disj\")"
)]
pub fn item_disj(
    g: &Graph,
    budgets: &[u32],
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
) -> SolveReport {
    assert!(!budgets.is_empty(), "need at least one item");
    let start = Instant::now();
    let total: u32 = budgets.iter().sum();
    let total = total.min(g.num_nodes());
    let imm_result = imm(g, total.max(1), eps, ell, model, seed);
    // Visit items largest-budget first, consuming disjoint chunks.
    let mut order: Vec<usize> = (0..budgets.len()).collect();
    order.sort_by(|&a, &b| budgets[b].cmp(&budgets[a]));
    let mut allocation = uic_diffusion::Allocation::new();
    let mut cursor = 0usize;
    for &item in &order {
        let want = budgets[item] as usize;
        let take = want.min(imm_result.seeds.len().saturating_sub(cursor));
        for &v in &imm_result.seeds[cursor..cursor + take] {
            allocation.assign(v, item as u32);
        }
        cursor += take;
    }
    SolveReport::new("item-disj", allocation)
        .with_rr_sets(imm_result.rr_sets_final, imm_result.rr_sets_total)
        .with_elapsed_since(start)
}

#[cfg(test)]
#[allow(deprecated)] // the tests exercise the engine behind the registry
mod tests {
    use super::*;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(40);
        for leaf in 2..25u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 25..38u32 {
            b.add_edge(1, leaf, 0.8);
        }
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn seeds_are_disjoint_across_items() {
        let g = hub_graph();
        let r = item_disj(&g, &[3, 2], 0.4, 1.0, DiffusionModel::IC, 3);
        let s0 = r.allocation.seeds_of_item(0);
        let s1 = r.allocation.seeds_of_item(1);
        assert_eq!(s0.len(), 3);
        assert_eq!(s1.len(), 2);
        for v in &s1 {
            assert!(!s0.contains(v), "seed {v} assigned to both items");
        }
    }

    #[test]
    fn larger_budget_item_gets_better_seeds() {
        let g = hub_graph();
        // item 1 has the larger budget → visited first → gets the hubs.
        let r = item_disj(&g, &[1, 3], 0.4, 1.0, DiffusionModel::IC, 5);
        let s1 = r.allocation.seeds_of_item(1);
        assert!(s1.contains(&0) || s1.contains(&1), "top hub goes to item 1");
    }

    #[test]
    fn respects_budgets() {
        let g = hub_graph();
        let budgets = [4u32, 2, 1];
        let r = item_disj(&g, &budgets, 0.4, 1.0, DiffusionModel::IC, 7);
        assert!(r.allocation.respects_budgets(&budgets));
        assert_eq!(r.allocation.num_pairs(), 7);
        assert_eq!(r.allocation.num_seed_nodes(), 7, "all seeds distinct");
    }

    #[test]
    fn total_budget_capped_at_n() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let r = item_disj(&g, &[3, 3], 0.4, 1.0, DiffusionModel::IC, 9);
        // Only 3 nodes exist; later items get the leftovers (none).
        assert!(r.allocation.num_seed_nodes() <= 3);
    }

    #[test]
    fn deterministic() {
        let g = hub_graph();
        let a = item_disj(&g, &[2, 2], 0.4, 1.0, DiffusionModel::IC, 11);
        let b = item_disj(&g, &[2, 2], 0.4, 1.0, DiffusionModel::IC, 11);
        assert_eq!(a.allocation, b.allocation);
    }
}
