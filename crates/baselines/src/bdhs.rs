//! **BDHS-Step** and **BDHS-Concave** — welfare maximization with
//! friends-of-friends network *externalities* (Bhattacharya et al.),
//! converted to the UIC setting exactly as §4.3.4.4 describes:
//!
//! * every node is directly assigned the best bundle `J*` (their model
//!   has **no seed budget and no propagation** — assignment is free);
//! * each itemset is a "virtual item", so the best assignment is the
//!   deterministic-utility maximizer `J* = argmax_J V(J) − P(J)`;
//! * **BDHS-Step**: sample live-edge worlds; a node *realizes* the
//!   bundle's utility when at least one in-neighbor holds it in that
//!   world (1-step externality); average over worlds.
//! * **BDHS-Concave**: with uniform edge probability `p`, a node
//!   realizes the utility with probability `1 − (1−p)^{s_v}` where `s_v`
//!   is its 2-hop in-neighborhood support size.
//!
//! The resulting number is the horizontal benchmark of Fig. 9(a–c):
//! bundleGRD's budget is swept until its propagated welfare matches it.

use uic_graph::{Graph, NodeId};
use uic_items::{istar, ItemSet, UtilityModel};
use uic_util::{split_seed, UicRng, VisitTags};

/// The deterministic-utility-maximizing bundle `J*` and its utility.
pub fn best_bundle(model: &UtilityModel) -> (ItemSet, f64) {
    let table = model.deterministic_table();
    let j = istar(&table);
    let u = table.utility(j);
    (j, u)
}

/// BDHS-Step benchmark welfare: `E_W[ Σ_v 𝟙{v has a live in-edge in W} ]
/// · U(J*)` over `worlds` sampled live-edge worlds.
///
/// (All nodes hold `J*`, so "some friend adopted it" reduces to "some
/// in-edge is live".)
pub fn bdhs_step_welfare(g: &Graph, model: &UtilityModel, worlds: u32, seed: u64) -> f64 {
    let (_, u_star) = best_bundle(model);
    if u_star <= 0.0 {
        return 0.0;
    }
    let n = g.num_nodes();
    let mut supported_total = 0u64;
    for w in 0..worlds {
        let mut rng = UicRng::new(split_seed(seed, w as u64));
        for v in 0..n {
            let mut live = false;
            for p in g.in_arc_probs(v).iter() {
                // Sample each in-edge until one comes up live.
                if rng.coin(p as f64) {
                    live = true;
                    // Keep the stream length independent of outcomes? No:
                    // early exit is fine — each edge coin is independent
                    // and later edges are simply unsampled.
                    break;
                }
            }
            if live {
                supported_total += 1;
            }
        }
    }
    supported_total as f64 / worlds as f64 * u_star
}

/// Exact (closed-form) variant of the step benchmark:
/// `Σ_v (1 − Π_{(u,v)} (1 − p_{uv})) · U(J*)` — no sampling error.
pub fn bdhs_step_welfare_exact(g: &Graph, model: &UtilityModel) -> f64 {
    let (_, u_star) = best_bundle(model);
    if u_star <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for v in 0..g.num_nodes() {
        let none_live: f64 = g.in_arc_probs(v).iter().map(|p| 1.0 - p as f64).product();
        total += 1.0 - none_live;
    }
    total * u_star
}

/// BDHS-Concave benchmark welfare:
/// `Σ_v (1 − (1−p)^{s_v}) · U(J*)` with `s_v` = size of `v`'s 2-hop
/// in-neighborhood (excluding `v`). Requires the caller to state the
/// uniform edge probability `p` of the restricted UIC instance.
pub fn bdhs_concave_welfare(g: &Graph, model: &UtilityModel, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let (_, u_star) = best_bundle(model);
    if u_star <= 0.0 {
        return 0.0;
    }
    let n = g.num_nodes();
    let mut tags = VisitTags::new(n as usize);
    let mut total = 0.0f64;
    let mut frontier: Vec<NodeId> = Vec::new();
    for v in 0..n {
        // Count distinct nodes within 2 reverse hops of v.
        tags.reset();
        tags.mark(v as usize);
        frontier.clear();
        let mut support = 0u64;
        for &u in g.in_neighbors(v) {
            if tags.mark(u as usize) {
                support += 1;
                frontier.push(u);
            }
        }
        for &u in frontier.iter() {
            for &w in g.in_neighbors(u) {
                if tags.mark(w as usize) {
                    support += 1;
                }
            }
        }
        total += 1.0 - (1.0 - p).powi(support as i32);
    }
    total * u_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_items::{NoiseModel, Price, TableValuation};

    fn model() -> UtilityModel {
        // U(i1) = 1, U(i2) = −1, U(both) = 3 deterministically.
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 2.0, 1.0, 7.0])),
            Price::additive(vec![1.0, 2.0]),
            NoiseModel::none(2),
        )
    }

    #[test]
    fn best_bundle_is_the_pair() {
        let (j, u) = best_bundle(&model());
        assert_eq!(j, ItemSet::full(2));
        assert!((u - 4.0).abs() < 1e-12);
    }

    #[test]
    fn step_exact_on_path() {
        // 0→1→2 with p=0.5: node 0 has no in-edge, nodes 1,2 each
        // supported w.p. 0.5 ⇒ welfare = (0.5+0.5)·U* = 4.
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let got = bdhs_step_welfare_exact(&g, &model());
        assert!((got - 4.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn step_mc_matches_exact() {
        let g = Graph::from_edges(4, &[(0, 1, 0.5), (1, 2, 0.3), (0, 2, 0.9), (2, 3, 0.7)]);
        let exact = bdhs_step_welfare_exact(&g, &model());
        let mc = bdhs_step_welfare(&g, &model(), 20_000, 3);
        assert!(
            (mc - exact).abs() < 0.05 * exact.max(1.0),
            "mc {mc} vs {exact}"
        );
    }

    #[test]
    fn concave_counts_two_hop_support() {
        // chain 0→1→2: s_0 = 0, s_1 = 1 ({0}), s_2 = 2 ({1,0}).
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let p = 0.5;
        let expect = ((1.0 - 0.5f64.powi(1)) + (1.0 - 0.5f64.powi(2))) * 4.0;
        let got = bdhs_concave_welfare(&g, &model(), p);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn worthless_bundle_gives_zero() {
        let m = UtilityModel::new(
            Arc::new(TableValuation::from_table(1, vec![0.0, 1.0])),
            Price::additive(vec![2.0]),
            NoiseModel::none(1),
        );
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        assert_eq!(bdhs_step_welfare_exact(&g, &m), 0.0);
        assert_eq!(bdhs_concave_welfare(&g, &m, 0.5), 0.0);
        assert_eq!(bdhs_step_welfare(&g, &m, 10, 1), 0.0);
    }

    #[test]
    fn denser_graphs_support_more() {
        let sparse = Graph::from_edges(4, &[(0, 1, 0.3)]);
        let dense = Graph::from_edges(
            4,
            &[
                (0, 1, 0.3),
                (1, 2, 0.3),
                (2, 3, 0.3),
                (3, 0, 0.3),
                (0, 2, 0.3),
            ],
        );
        let m = model();
        assert!(bdhs_step_welfare_exact(&dense, &m) > bdhs_step_welfare_exact(&sparse, &m));
        assert!(bdhs_concave_welfare(&dense, &m, 0.3) > bdhs_concave_welfare(&sparse, &m, 0.3));
    }
}
