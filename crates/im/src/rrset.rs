//! Reverse-reachable set sampling (Borgs et al.; §2.1, §4.2.3).
//!
//! An RR set for node `v` is the random set of nodes that *would have
//! influenced* `v`: sample `v` uniformly, then walk the graph backwards,
//! keeping each in-edge alive with its probability (IC) or choosing at
//! most one in-edge per node (LT). The defining property
//! `σ(S) = n · E[ 𝟙{S ∩ R ≠ ∅} ]` turns influence maximization into
//! max-coverage over sampled sets.
//!
//! Sampling is deterministic given `(seed, set index)` — batches can be
//! generated in parallel without changing the resulting collection.

use crossbeam::thread;
use uic_graph::{Graph, NodeId};
use uic_util::{split_seed, UicRng, VisitTags};

/// Which diffusion model the sampler follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffusionModel {
    /// Independent Cascade: each in-edge flips its own coin.
    IC,
    /// Linear Threshold: each node picks at most one in-edge with
    /// probability proportional to its weight (triggering-set view).
    LT,
}

/// Samples one RR set for a uniformly random root.
///
/// `tags` and `out` are caller-provided scratch (reset here); `width`
/// accumulates the number of in-edges examined — the `w(R)` of the
/// paper's running-time analysis.
pub fn sample_rr(
    g: &Graph,
    model: DiffusionModel,
    rng: &mut UicRng,
    tags: &mut VisitTags,
    out: &mut Vec<NodeId>,
    width: &mut u64,
) {
    out.clear();
    tags.reset();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let root = rng.next_below(n);
    tags.mark(root as usize);
    out.push(root);
    let mut head = 0;
    while head < out.len() {
        let v = out[head];
        head += 1;
        let srcs = g.in_neighbors(v);
        let probs = g.in_probs(v);
        *width += srcs.len() as u64;
        match model {
            DiffusionModel::IC => {
                for (i, &u) in srcs.iter().enumerate() {
                    if !tags.is_marked(u as usize) && rng.coin(probs[i] as f64) {
                        tags.mark(u as usize);
                        out.push(u);
                    }
                }
            }
            DiffusionModel::LT => {
                // Choose at most one in-neighbor: edge i with prob p_i,
                // none with prob 1 − Σ p_i.
                let x = rng.next_f64();
                let mut acc = 0.0f64;
                for (i, &u) in srcs.iter().enumerate() {
                    acc += probs[i] as f64;
                    if x < acc {
                        if !tags.is_marked(u as usize) {
                            tags.mark(u as usize);
                            out.push(u);
                        }
                        break;
                    }
                }
            }
        }
    }
}

/// A growable collection of RR sets with deterministic indexing.
#[derive(Debug, Clone)]
pub struct RrCollection {
    num_nodes: u32,
    model: DiffusionModel,
    seed: u64,
    sets: Vec<Vec<NodeId>>,
    total_width: u64,
    /// Cumulative number of sets ever generated through this collection,
    /// *including* sets discarded by [`RrCollection::reset`] — the
    /// "total work" metric behind Fig. 6 / Table 6.
    generated: u64,
}

impl RrCollection {
    /// Empty collection bound to a graph size, model and base seed.
    pub fn new(g: &Graph, model: DiffusionModel, seed: u64) -> RrCollection {
        RrCollection {
            num_nodes: g.num_nodes(),
            model,
            seed,
            sets: Vec::new(),
            total_width: 0,
            generated: 0,
        }
    }

    /// Builds a collection directly from pre-sampled sets.
    ///
    /// Used by samplers with non-standard reverse processes — the RR-CIM
    /// baseline samples *complement-aware* RR sets itself and only needs
    /// the coverage machinery — and by tests with hand-crafted sets.
    ///
    /// Each set is deduplicated (coverage counting assumes a node appears
    /// at most once per set, which sampled RR sets guarantee by
    /// construction).
    pub fn from_raw_sets(num_nodes: u32, mut sets: Vec<Vec<NodeId>>) -> RrCollection {
        for r in &mut sets {
            for &v in r.iter() {
                assert!(v < num_nodes, "node {v} out of range in raw RR set");
            }
            r.sort_unstable();
            r.dedup();
        }
        let generated = sets.len() as u64;
        RrCollection {
            num_nodes,
            model: DiffusionModel::IC,
            seed: 0,
            sets,
            total_width: 0,
            generated,
        }
    }

    /// Number of sets currently held.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no sets are held.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// All sets.
    pub fn sets(&self) -> &[Vec<NodeId>] {
        &self.sets
    }

    /// Graph size the sets were sampled from.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Total in-edges examined across all generated sets.
    pub fn total_width(&self) -> u64 {
        self.total_width
    }

    /// Sets generated over the lifetime (incl. discarded ones).
    pub fn total_generated(&self) -> u64 {
        self.generated
    }

    /// Discards all held sets (the from-scratch regeneration of the
    /// Chen-2018 IMM fix) while retaining the generation counter; the
    /// seed stream continues, so regenerated sets are fresh.
    pub fn reset(&mut self) {
        self.sets.clear();
    }

    /// Grows the collection to at least `target` sets, sampling in
    /// parallel. Set `j` (within this growth episode) is a pure function
    /// of `(seed, generated_so_far + j)`, so results are thread-count
    /// independent.
    pub fn extend_to(&mut self, g: &Graph, target: usize) {
        assert_eq!(g.num_nodes(), self.num_nodes, "graph mismatch");
        if self.sets.len() >= target {
            return;
        }
        let need = target - self.sets.len();
        let first_index = self.generated;
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(need.div_ceil(256))
            .max(1);
        if threads <= 1 {
            let mut tags = VisitTags::new(self.num_nodes as usize);
            let mut buf = Vec::new();
            for j in 0..need as u64 {
                let mut rng = UicRng::new(split_seed(self.seed, first_index + j));
                sample_rr(
                    g,
                    self.model,
                    &mut rng,
                    &mut tags,
                    &mut buf,
                    &mut self.total_width,
                );
                self.sets.push(buf.clone());
            }
        } else {
            let chunk = need.div_ceil(threads);
            let model = self.model;
            let seed = self.seed;
            let n = self.num_nodes as usize;
            let results = thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(need);
                    if lo >= hi {
                        break;
                    }
                    handles.push(scope.spawn(move |_| {
                        let mut tags = VisitTags::new(n);
                        let mut buf = Vec::new();
                        let mut width = 0u64;
                        let mut local = Vec::with_capacity(hi - lo);
                        for j in lo..hi {
                            let mut rng = UicRng::new(split_seed(seed, first_index + j as u64));
                            sample_rr(g, model, &mut rng, &mut tags, &mut buf, &mut width);
                            local.push(buf.clone());
                        }
                        (local, width)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rr worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope failed");
            for (local, width) in results {
                self.sets.extend(local);
                self.total_width += width;
            }
        }
        self.generated += need as u64;
    }

    /// Unbiased spread estimate `σ̂(S) = n · (#covered / #sets)`.
    pub fn estimate_spread(&self, seeds: &[NodeId]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        let mut in_seed = vec![false; self.num_nodes as usize];
        for &s in seeds {
            in_seed[s as usize] = true;
        }
        let covered = self
            .sets
            .iter()
            .filter(|r| r.iter().any(|&v| in_seed[v as usize]))
            .count();
        self.num_nodes as f64 * covered as f64 / self.sets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)])
    }

    #[test]
    fn rr_sets_contain_their_root() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 3);
        coll.extend_to(&g, 100);
        for r in coll.sets() {
            assert!(!r.is_empty());
            for &v in r {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn extension_is_incremental_and_deterministic() {
        let g = path3();
        let mut a = RrCollection::new(&g, DiffusionModel::IC, 7);
        a.extend_to(&g, 50);
        a.extend_to(&g, 120);
        let mut b = RrCollection::new(&g, DiffusionModel::IC, 7);
        b.extend_to(&g, 120);
        assert_eq!(a.sets(), b.sets(), "same seed ⇒ same collection");
        assert_eq!(a.len(), 120);
        // extend_to with smaller target is a no-op
        a.extend_to(&g, 10);
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn reset_keeps_generation_counter_and_freshens_sets() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 5);
        coll.extend_to(&g, 60);
        let before: Vec<Vec<u32>> = coll.sets().to_vec();
        coll.reset();
        assert!(coll.is_empty());
        coll.extend_to(&g, 60);
        assert_eq!(coll.total_generated(), 120);
        assert_ne!(coll.sets(), &before[..], "regenerated sets must be fresh");
    }

    #[test]
    fn spread_estimate_unbiased_ic() {
        // σ({0}) on 0→1→2 (p=.5) = 1.75; via RR sets.
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 11);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0]);
        let exact = exact_spread(&g, &[0]);
        assert!((est - exact).abs() < 0.03, "RR {est} vs exact {exact}");
    }

    #[test]
    fn spread_estimate_multiseed() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 13);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0, 2]);
        let exact = exact_spread(&g, &[0, 2]); // 2 + 0.5 = 2.5
        assert!((est - exact).abs() < 0.03, "RR {est} vs exact {exact}");
    }

    #[test]
    fn lt_rr_sets_estimate_lt_spread() {
        // LT on star into node 2: in-weights (0.6, 0.4).
        // σ_LT({0}) = 1 + 0.6 = 1.6 (node 1 picks 0 w.p. 0.6).
        let g = Graph::from_edges(3, &[(0, 1, 0.6), (2, 1, 0.4)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::LT, 17);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0]);
        assert!((est - 1.6).abs() < 0.03, "LT RR estimate {est}");
    }

    #[test]
    fn lt_rr_sets_are_paths() {
        // In the LT triggering view each node has ≤1 chosen in-edge, so
        // RR sets are simple reverse paths — their length is bounded by n.
        let g = Graph::from_edges(3, &[(0, 1, 0.6), (2, 1, 0.4), (1, 2, 0.5)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::LT, 19);
        coll.extend_to(&g, 1000);
        for r in coll.sets() {
            assert!(r.len() <= 3);
        }
    }

    #[test]
    fn width_accumulates() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 23);
        coll.extend_to(&g, 100);
        assert!(coll.total_width() > 0);
    }

    #[test]
    fn empty_collection_estimates_zero() {
        let g = path3();
        let coll = RrCollection::new(&g, DiffusionModel::IC, 1);
        assert_eq!(coll.estimate_spread(&[0]), 0.0);
    }
}
