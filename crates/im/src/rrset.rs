//! Reverse-reachable set sampling (Borgs et al.; §2.1, §4.2.3).
//!
//! An RR set for node `v` is the random set of nodes that *would have
//! influenced* `v`: sample `v` uniformly, then walk the graph backwards,
//! keeping each in-edge alive with its probability (IC) or choosing at
//! most one in-edge per node (LT). The defining property
//! `σ(S) = n · E[ 𝟙{S ∩ R ≠ ∅} ]` turns influence maximization into
//! max-coverage over sampled sets.
//!
//! ## Storage layout
//!
//! [`RrCollection`] keeps every sampled set in one flat **arena**: a
//! single `Vec<NodeId>` of concatenated members plus an offsets array
//! (CSR layout), so a collection of millions of sets costs two
//! allocations instead of one per set, and scanning all sets is a linear
//! walk. Alongside the arena the collection maintains a persistent
//! **inverted index** (node → ids of the sets containing it, also CSR)
//! that is grown *incrementally* as [`RrCollection::extend_with`]
//! appends sets: greedy selection and spread estimation consume the
//! index instead of rebuilding it, which matters for the IMM/OPIM-style
//! doubling loops that re-select on a mostly-unchanged collection every
//! round.
//!
//! ## Determinism
//!
//! Sampling is deterministic given `(sampler, set index)` — set `j` is a
//! pure function of the sampler's seed and `j`, never of the thread
//! count. Parallel generation writes into per-thread local arenas that
//! are merged by bulk copy in deterministic chunk order, so collections
//! are bit-identical for 1, 2 or 64 generation threads (asserted in the
//! test suite).
//!
//! Non-standard reverse processes (the Com-IC baselines' self-influence
//! and complement-aware samplers) plug into the same arena path through
//! the [`RrSampler`] trait instead of materializing nested vectors.

use crossbeam::thread;
use uic_graph::{ArcProbs, Graph, NodeId};
use uic_util::{parallelism, split_seed, UicRng, VisitTags};

/// Which diffusion model the sampler follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffusionModel {
    /// Independent Cascade: each in-edge flips its own coin.
    IC,
    /// Linear Threshold: each node picks at most one in-edge with
    /// probability proportional to its weight (triggering-set view).
    LT,
}

/// A reverse sampler that writes RR sets directly into a shared arena.
///
/// Implementations must make sample `index` a **pure function** of
/// `(self, index)` — typically by deriving a fresh RNG from
/// `split_seed(seed, index)` — so that [`RrCollection::extend_with`] can
/// distribute indices across threads without changing the resulting
/// collection. Per-thread mutable state (visit tags, queues, cached
/// possible worlds) lives in the associated `Scratch` type, created once
/// per worker via [`RrSampler::scratch`].
pub trait RrSampler: Sync {
    /// Per-worker scratch state (reset or re-derived per sample as the
    /// sampler requires).
    type Scratch: Send;

    /// Builds one worker's scratch for graph `g`.
    fn scratch(&self, g: &Graph) -> Self::Scratch;

    /// Appends the members of RR sample `index` onto `arena` (an empty
    /// sample appends nothing) and accumulates the number of in-edges
    /// examined into `width`. Must not touch `arena` below its length at
    /// entry.
    fn sample_into(
        &self,
        g: &Graph,
        index: u64,
        scratch: &mut Self::Scratch,
        arena: &mut Vec<NodeId>,
        width: &mut u64,
    );
}

/// The standard IC/LT reverse sampler used by TIM/IMM/OPIM/SSA/PRIMA:
/// sample `index` draws its root and coins from stream
/// `split_seed(seed, index)`.
#[derive(Debug, Clone, Copy)]
pub struct StandardRrSampler {
    model: DiffusionModel,
    seed: u64,
}

impl StandardRrSampler {
    /// Sampler for `model` whose sample `index` is a pure function of
    /// `(seed, index)`.
    pub fn new(model: DiffusionModel, seed: u64) -> StandardRrSampler {
        StandardRrSampler { model, seed }
    }
}

/// Per-worker scratch of [`StandardRrSampler`]: visit tags plus a
/// per-node cache of the common in-edge probability (NaN when a node's
/// in-list is non-uniform) and the precomputed `ln(1 − p)` the
/// geometric-jump scan divides by.
pub struct StandardScratch {
    tags: VisitTags,
    /// `(p, ln(1 − p))` per node, interleaved so the hot loop pays one
    /// cache access; `p` is NaN for non-uniform in-lists.
    uniform: Vec<(f32, f64)>,
}

/// Failures before the next success of a Bernoulli(`p`) run, sampled as
/// `⌊ln U / ln(1 − p)⌋` (`lg` = `ln(1 − p)` < 0). Saturates on the
/// astronomically unlikely `U = 0`.
#[inline]
fn geom_jump(rng: &mut UicRng, lg: f64) -> usize {
    let j = rng.next_f64().ln() / lg;
    if j >= usize::MAX as f64 {
        usize::MAX
    } else {
        j as usize
    }
}

impl RrSampler for StandardRrSampler {
    type Scratch = StandardScratch;

    fn scratch(&self, g: &Graph) -> StandardScratch {
        let n = g.num_nodes() as usize;
        let mut uniform = vec![(0.0f32, 0.0f64); n];
        if self.model == DiffusionModel::IC {
            for (v, slot) in uniform.iter_mut().enumerate() {
                let probs = g.in_arc_probs(v as NodeId);
                // Branch on the weight representation: compact storage
                // (weighted-cascade, constant) promises uniform in-lists
                // structurally, so no scan happens at all; only explicit
                // per-edge storage falls back to a value scan (real
                // datasets are commonly uniform per node even without
                // the structural guarantee).
                let mut p = if probs.is_empty() {
                    0.0
                } else if let Some(p) = probs.uniform_prob() {
                    p
                } else if let ArcProbs::Dense(ps) = probs {
                    if ps.iter().all(|&x| x == ps[0]) {
                        ps[0]
                    } else {
                        f32::NAN
                    }
                } else {
                    f32::NAN
                };
                let mut lg = 0.0f64;
                if p > 0.0 && p < 1.0 {
                    lg = (1.0 - p as f64).ln();
                    if lg == 0.0 {
                        // p below f64 resolution (1 − p rounds to 1):
                        // a geometric jump would divide by zero and turn
                        // every edge live. Per-edge coins handle such
                        // probabilities exactly.
                        p = f32::NAN;
                    }
                }
                *slot = (p, lg);
            }
        }
        StandardScratch {
            tags: VisitTags::new(n),
            uniform,
        }
    }

    fn sample_into(
        &self,
        g: &Graph,
        index: u64,
        scratch: &mut StandardScratch,
        arena: &mut Vec<NodeId>,
        width: &mut u64,
    ) {
        let mut rng = UicRng::new(split_seed(self.seed, index));
        if self.model == DiffusionModel::LT {
            sample_rr_into(g, self.model, &mut rng, &mut scratch.tags, arena, width);
            return;
        }
        // IC fast path: where a node's in-edges share one probability
        // (weighted-cascade graphs, and most real datasets), jump
        // geometrically to the next live edge instead of flipping a coin
        // per edge — distribution-identical to the per-edge scan of
        // [`sample_rr`], and it skips both the coin and the visit-tag
        // lookup for every dead edge.
        let StandardScratch { tags, uniform } = scratch;
        tags.reset();
        let n = g.num_nodes();
        if n == 0 {
            return;
        }
        let start = arena.len();
        let root = rng.next_below(n);
        tags.mark(root as usize);
        arena.push(root);
        let mut head = start;
        while head < arena.len() {
            let v = arena[head];
            head += 1;
            let srcs = g.in_neighbors(v);
            *width += srcs.len() as u64;
            if srcs.is_empty() {
                continue;
            }
            let (p, lg) = uniform[v as usize];
            if p.is_nan() {
                // Non-uniform in-list: per-edge coins (flipped before the
                // tag lookup, so dead edges never touch the stamp array).
                let probs = g.in_arc_probs(v);
                for (i, &u) in srcs.iter().enumerate() {
                    if rng.coin(probs.get(i) as f64) && tags.mark(u as usize) {
                        arena.push(u);
                    }
                }
            } else if p >= 1.0 {
                for &u in srcs {
                    if tags.mark(u as usize) {
                        arena.push(u);
                    }
                }
            } else if p > 0.0 {
                let mut i = geom_jump(&mut rng, lg);
                while i < srcs.len() {
                    let u = srcs[i];
                    if tags.mark(u as usize) {
                        arena.push(u);
                    }
                    i = i.saturating_add(1).saturating_add(geom_jump(&mut rng, lg));
                }
            }
        }
    }
}

/// Appends one RR set for a uniformly random root onto `arena` — the
/// straightforward one-coin-per-edge reference sampler.
///
/// [`StandardRrSampler`] draws from the same distribution through a
/// geometric-jump scan on uniform in-lists (consuming the RNG stream
/// differently), so sets produced here and by a collection need not
/// coincide coin-for-coin; tests compare the two statistically.
///
/// `tags` is caller-provided scratch (reset here); `width` accumulates
/// the number of in-edges examined — the `w(R)` of the paper's
/// running-time analysis. The new set occupies `arena[start..]` where
/// `start` is the arena length at entry.
pub fn sample_rr_into(
    g: &Graph,
    model: DiffusionModel,
    rng: &mut UicRng,
    tags: &mut VisitTags,
    arena: &mut Vec<NodeId>,
    width: &mut u64,
) {
    tags.reset();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let start = arena.len();
    let root = rng.next_below(n);
    tags.mark(root as usize);
    arena.push(root);
    let mut head = start;
    while head < arena.len() {
        let v = arena[head];
        head += 1;
        let srcs = g.in_neighbors(v);
        let probs = g.in_arc_probs(v);
        *width += srcs.len() as u64;
        match model {
            DiffusionModel::IC => {
                for (i, &u) in srcs.iter().enumerate() {
                    if !tags.is_marked(u as usize) && rng.coin(probs.get(i) as f64) {
                        tags.mark(u as usize);
                        arena.push(u);
                    }
                }
            }
            DiffusionModel::LT => {
                // Choose at most one in-neighbor: edge i with prob p_i,
                // none with prob 1 − Σ p_i.
                let x = rng.next_f64();
                let mut acc = 0.0f64;
                for (i, &u) in srcs.iter().enumerate() {
                    acc += probs.get(i) as f64;
                    if x < acc {
                        if !tags.is_marked(u as usize) {
                            tags.mark(u as usize);
                            arena.push(u);
                        }
                        break;
                    }
                }
            }
        }
    }
}

/// Samples one RR set for a uniformly random root into `out`
/// (cleared first). Compatibility wrapper around [`sample_rr_into`] for
/// callers that want a standalone set rather than an arena segment.
pub fn sample_rr(
    g: &Graph,
    model: DiffusionModel,
    rng: &mut UicRng,
    tags: &mut VisitTags,
    out: &mut Vec<NodeId>,
    width: &mut u64,
) {
    out.clear();
    sample_rr_into(g, model, rng, tags, out, width);
}

/// Persistent node → set-id inverted index in CSR layout.
///
/// `start` has `n + 1` entries once built; `ids[start[v]..start[v+1]]`
/// lists, in increasing order, the ids of every indexed set containing
/// node `v`. `sets_indexed` records how many arena sets the index
/// covers; the gap up to `RrCollection::len()` is merged in lazily by
/// [`RrCollection::ensure_index`].
#[derive(Debug, Clone, Default)]
struct InvertedIndex {
    start: Vec<usize>,
    ids: Vec<u32>,
    sets_indexed: usize,
}

/// A growable collection of RR sets with deterministic indexing, stored
/// as a flat arena (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct RrCollection {
    num_nodes: u32,
    model: DiffusionModel,
    seed: u64,
    /// CSR offsets: set `i` occupies `data[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    /// Concatenated members of every set.
    data: Vec<NodeId>,
    total_width: u64,
    /// Cumulative number of sets ever generated through this collection,
    /// *including* sets discarded by [`RrCollection::reset`] — the
    /// "total work" metric behind Fig. 6 / Table 6.
    generated: u64,
    /// Generation worker-count override (`None` sizes by hardware).
    threads: Option<usize>,
    index: InvertedIndex,
    /// Epoch-stamped set-id marks reused by [`RrCollection::estimate_spread`].
    cover_marks: VisitTags,
}

/// Collections compare by contents (graph size, offsets, members); index
/// state and lifetime counters are intentionally excluded.
impl PartialEq for RrCollection {
    fn eq(&self, other: &Self) -> bool {
        self.num_nodes == other.num_nodes
            && self.offsets == other.offsets
            && self.data == other.data
    }
}

impl Eq for RrCollection {}

impl RrCollection {
    /// Empty collection bound to a graph size, model and base seed (the
    /// standard-sampler configuration used by [`RrCollection::extend_to`]).
    pub fn new(g: &Graph, model: DiffusionModel, seed: u64) -> RrCollection {
        RrCollection::empty_with(g.num_nodes(), model, seed)
    }

    /// Empty collection for `num_nodes` nodes, populated through
    /// [`RrCollection::extend_with`] by a custom [`RrSampler`] (the
    /// model/seed of the standard sampler are unused on this path).
    pub fn empty(num_nodes: u32) -> RrCollection {
        RrCollection::empty_with(num_nodes, DiffusionModel::IC, 0)
    }

    fn empty_with(num_nodes: u32, model: DiffusionModel, seed: u64) -> RrCollection {
        RrCollection {
            num_nodes,
            model,
            seed,
            offsets: vec![0],
            data: Vec::new(),
            total_width: 0,
            generated: 0,
            threads: None,
            index: InvertedIndex::default(),
            cover_marks: VisitTags::new(0),
        }
    }

    /// Builds a collection directly from pre-sampled nested sets,
    /// converting them into the arena layout.
    ///
    /// Kept as a compatibility/test constructor: samplers should
    /// implement [`RrSampler`] and go through
    /// [`RrCollection::extend_with`] instead, which writes into the
    /// arena directly. Each set is deduplicated (coverage counting
    /// assumes a node appears at most once per set, which sampled RR
    /// sets guarantee by construction).
    pub fn from_raw_sets(num_nodes: u32, sets: Vec<Vec<NodeId>>) -> RrCollection {
        let mut coll = RrCollection::empty(num_nodes);
        for mut r in sets {
            for &v in &r {
                assert!(v < num_nodes, "node {v} out of range in raw RR set");
            }
            r.sort_unstable();
            r.dedup();
            coll.data.extend_from_slice(&r);
            coll.offsets.push(coll.data.len());
        }
        coll.generated = coll.len() as u64;
        coll
    }

    /// Pins the generation worker-thread count (normally sized by
    /// [`uic_util::parallelism`]). Set `j` is a pure function of
    /// `(sampler, j)`, so this knob only changes how sampling work is
    /// chunked, never the resulting collection (asserted in tests).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }

    /// Number of sets currently held.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no sets are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members of set `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// All sets, in id order, as arena slices.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.offsets.windows(2).map(|w| &self.data[w[0]..w[1]])
    }

    /// Total number of members across all held sets (the arena length).
    pub fn total_entries(&self) -> usize {
        self.data.len()
    }

    /// Graph size the sets were sampled from.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Total in-edges examined across all generated sets.
    pub fn total_width(&self) -> u64 {
        self.total_width
    }

    /// Sets generated over the lifetime (incl. discarded ones).
    pub fn total_generated(&self) -> u64 {
        self.generated
    }

    /// The diffusion model the standard sampler was bound to.
    pub fn model(&self) -> DiffusionModel {
        self.model
    }

    /// The base seed the standard sampler was bound to.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// True when the persistent inverted index covers every held set —
    /// i.e. the read-only query paths
    /// ([`crate::node_selection_prefix_indexed`],
    /// [`RrCollection::estimate_spread_prefix_indexed`]) may run.
    pub fn index_is_current(&self) -> bool {
        self.index.sets_indexed == self.len()
            && self.index.start.len() == self.num_nodes as usize + 1
    }

    /// Heap bytes held by the arena and its index (the eviction-budget
    /// accounting unit of long-running servers). Capacity, not length:
    /// reserved-but-unused space is real memory too.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<NodeId>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.index.ids.capacity() * std::mem::size_of::<u32>()
            + self.index.start.capacity() * std::mem::size_of::<usize>()
    }

    /// The raw arena: CSR offsets and concatenated members, the exact
    /// state a warm-server spill file needs to persist. Set `i` occupies
    /// `data[offsets[i]..offsets[i + 1]]`.
    pub fn arena_parts(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.data)
    }

    /// Rebuilds a warm, extend-only collection from spilled arena parts.
    ///
    /// The reconstructed collection behaves exactly like the one that
    /// was spilled: sampling is a pure function of `(model, seed,
    /// index)`, so with `generated` restored to the held length, a later
    /// [`RrCollection::extend_to`] continues the identical sample
    /// stream. The index is rebuilt lazily on first use.
    ///
    /// Validates the CSR invariants (offsets start at 0, are
    /// non-decreasing, and end at `data.len()`; members in range) so a
    /// corrupt spill is a typed error, never a panic deep in selection.
    pub fn from_warm_parts(
        num_nodes: u32,
        model: DiffusionModel,
        seed: u64,
        offsets: Vec<usize>,
        data: Vec<NodeId>,
        total_width: u64,
    ) -> Result<RrCollection, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start at 0".to_string());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".to_string());
        }
        if *offsets.last().expect("non-empty checked above") != data.len() {
            return Err(format!(
                "final offset {} does not match member count {}",
                offsets.last().expect("non-empty"),
                data.len()
            ));
        }
        if data.iter().any(|&v| v >= num_nodes) {
            return Err(format!("member out of range for n={num_nodes}"));
        }
        let generated = (offsets.len() - 1) as u64;
        Ok(RrCollection {
            num_nodes,
            model,
            seed,
            offsets,
            data,
            total_width,
            generated,
            threads: None,
            index: InvertedIndex::default(),
            cover_marks: VisitTags::new(0),
        })
    }

    /// Discards all held sets (the from-scratch regeneration of the
    /// Chen-2018 IMM fix) while retaining the generation counter; the
    /// seed stream continues, so regenerated sets are fresh.
    pub fn reset(&mut self) {
        self.offsets.truncate(1);
        self.data.clear();
        self.index = InvertedIndex::default();
    }

    /// Grows the collection to at least `target` sets with the standard
    /// IC/LT sampler bound at construction, sampling in parallel. Set
    /// `j` (within this growth episode) is a pure function of
    /// `(seed, generated_so_far + j)`, so results are thread-count
    /// independent.
    pub fn extend_to(&mut self, g: &Graph, target: usize) {
        let sampler = StandardRrSampler::new(self.model, self.seed);
        self.extend_with(g, target, &sampler);
    }

    /// Grows the collection to at least `target` sets using `sampler`,
    /// writing into per-thread local arenas merged by bulk copy in
    /// deterministic chunk order (see the module docs).
    pub fn extend_with<S: RrSampler>(&mut self, g: &Graph, target: usize, sampler: &S) {
        assert_eq!(g.num_nodes(), self.num_nodes, "graph mismatch");
        if self.len() >= target {
            return;
        }
        let need = target - self.len();
        let first_index = self.generated;
        let threads = self.threads.unwrap_or_else(|| parallelism(need, 256));
        self.offsets.reserve(need);
        if threads <= 1 {
            let mut scratch = sampler.scratch(g);
            for j in 0..need as u64 {
                sampler.sample_into(
                    g,
                    first_index + j,
                    &mut scratch,
                    &mut self.data,
                    &mut self.total_width,
                );
                self.offsets.push(self.data.len());
            }
        } else {
            let chunk = need.div_ceil(threads);
            let results = thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(need);
                    if lo >= hi {
                        break;
                    }
                    handles.push(scope.spawn(move |_| {
                        let mut scratch = sampler.scratch(g);
                        let mut data: Vec<NodeId> = Vec::new();
                        let mut ends: Vec<usize> = Vec::with_capacity(hi - lo);
                        let mut width = 0u64;
                        for j in lo..hi {
                            sampler.sample_into(
                                g,
                                first_index + j as u64,
                                &mut scratch,
                                &mut data,
                                &mut width,
                            );
                            ends.push(data.len());
                        }
                        (data, ends, width)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rr worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope failed");
            // Merge in parallel: every chunk gets a pre-reserved disjoint
            // output range (chunk t starts at the sum of the lengths of
            // chunks 0..t), so the copies proceed concurrently and land
            // bit-identically to a serial chunk-order append — the merge
            // no longer serializes behind one `extend_from_slice` chain.
            let base0 = self.data.len();
            let total: usize = results.iter().map(|(d, _, _)| d.len()).sum();
            self.data.reserve(total);
            let mut bases = Vec::with_capacity(results.len());
            {
                let mut acc = base0;
                for (d, _, _) in &results {
                    bases.push(acc);
                    acc += d.len();
                }
            }
            let mut rest = &mut self.data.spare_capacity_mut()[..total];
            thread::scope(|scope| {
                for (d, _, _) in &results {
                    let (mine, tail) = std::mem::take(&mut rest).split_at_mut(d.len());
                    rest = tail;
                    if d.is_empty() {
                        continue;
                    }
                    scope.spawn(move |_| {
                        // SAFETY: `mine` is this chunk's private slice of
                        // the reserved tail — disjoint from every other
                        // chunk's by construction — and `d.len() == mine.len()`.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                d.as_ptr(),
                                mine.as_mut_ptr().cast::<NodeId>(),
                                d.len(),
                            );
                        }
                    });
                }
            })
            .expect("crossbeam scope failed");
            // SAFETY: the scope joined every copy worker (a worker panic
            // propagates above), so all `total` reserved slots are
            // initialized.
            unsafe { self.data.set_len(base0 + total) };
            for ((_, ends, width), base) in results.iter().zip(&bases) {
                self.offsets.extend(ends.iter().map(|&e| base + e));
                self.total_width += *width;
            }
        }
        self.generated += need as u64;
    }

    /// Brings the persistent inverted index up to date with the arena.
    ///
    /// Sets appended since the last call are merged in (old per-node id
    /// runs are block-copied, new ids appended behind them), so over a
    /// doubling growth schedule the total indexing work is linear in the
    /// final arena size — and repeated selections or spread estimates on
    /// an unchanged collection pay nothing.
    ///
    /// Public because shared-arena holders (the `uic-serve` sharded
    /// registry) index under their *write* lock so that subsequent
    /// selections — [`crate::node_selection_prefix_indexed`] and
    /// [`RrCollection::estimate_spread_prefix_indexed`] — can run under
    /// a shared *read* lock.
    ///
    /// The merge is parallelized by **node-range partitioning**: nodes
    /// are split into contiguous ranges balanced by per-range id volume;
    /// because each range's id runs are contiguous in the CSR `ids`
    /// array, every worker owns a disjoint `ids` slice (plain
    /// `split_at_mut`, no atomics) and fills it by scanning the new sets
    /// in id order, keeping only members in its range. The index is
    /// therefore bit-identical across thread counts.
    pub fn ensure_index(&mut self) {
        let n = self.num_nodes as usize;
        if self.index.start.len() != n + 1 {
            self.index.start = vec![0; n + 1];
        }
        let len = self.len();
        if self.index.sets_indexed == len {
            return;
        }
        assert!(len <= u32::MAX as usize, "set ids exceed u32 range");
        let first_new = self.index.sets_indexed;
        let old_start = std::mem::take(&mut self.index.start);
        let old_ids = std::mem::take(&mut self.index.ids);
        let suffix = &self.data[self.offsets[first_new]..];
        let threads = self
            .threads
            .unwrap_or_else(|| parallelism(suffix.len() + n, 1 << 14));

        // Per-node entry counts of the un-indexed suffix. Parallel
        // counting uses the same node-range trick: each worker scans the
        // whole suffix but counts only its contiguous slice of `add`.
        let mut add = vec![0usize; n];
        if threads <= 1 {
            for &v in suffix {
                add[v as usize] += 1;
            }
        } else {
            let chunk = n.div_ceil(threads);
            thread::scope(|scope| {
                for (t, counts) in add.chunks_mut(chunk).enumerate() {
                    let lo = t * chunk;
                    scope.spawn(move |_| {
                        let hi = lo + counts.len();
                        for &v in suffix {
                            let v = v as usize;
                            if (lo..hi).contains(&v) {
                                counts[v - lo] += 1;
                            }
                        }
                    });
                }
            })
            .expect("crossbeam scope failed");
        }

        let mut start = vec![0usize; n + 1];
        for v in 0..n {
            start[v + 1] = start[v] + (old_start[v + 1] - old_start[v]) + add[v];
        }
        let mut ids = vec![0u32; start[n]];

        if threads <= 1 {
            // Block-copy each node's existing run, leaving its cursor at
            // the append position for the new ids.
            let mut cursor = vec![0usize; n];
            for v in 0..n {
                let old = &old_ids[old_start[v]..old_start[v + 1]];
                ids[start[v]..start[v] + old.len()].copy_from_slice(old);
                cursor[v] = start[v] + old.len();
            }
            for rid in first_new..len {
                for &v in self.get(rid) {
                    ids[cursor[v as usize]] = rid as u32;
                    cursor[v as usize] += 1;
                }
            }
        } else {
            // Node-range boundaries balanced by id volume: range t ends
            // at the first node whose cumulative id count reaches
            // `(t + 1)/threads` of the total.
            let total = start[n];
            let mut bounds = Vec::with_capacity(threads + 1);
            bounds.push(0usize);
            for t in 1..threads {
                let goal = total * t / threads;
                let v = start.partition_point(|&s| s < goal).min(n);
                bounds.push(v.max(*bounds.last().expect("non-empty")));
            }
            bounds.push(n);
            let (data, offsets) = (&self.data, &self.offsets);
            let (start_ref, old_start_ref, old_ids_ref) = (&start, &old_start, &old_ids);
            let mut rest: &mut [u32] = &mut ids;
            thread::scope(|scope| {
                for w in bounds.windows(2) {
                    let (vlo, vhi) = (w[0], w[1]);
                    let base = start_ref[vlo];
                    let (mine, tail) =
                        std::mem::take(&mut rest).split_at_mut(start_ref[vhi] - base);
                    rest = tail;
                    if vlo == vhi {
                        continue;
                    }
                    scope.spawn(move |_| {
                        let mut cursor = vec![0usize; vhi - vlo];
                        for v in vlo..vhi {
                            let old = &old_ids_ref[old_start_ref[v]..old_start_ref[v + 1]];
                            let at = start_ref[v] - base;
                            mine[at..at + old.len()].copy_from_slice(old);
                            cursor[v - vlo] = at + old.len();
                        }
                        for rid in first_new..len {
                            for &v in &data[offsets[rid]..offsets[rid + 1]] {
                                let v = v as usize;
                                if (vlo..vhi).contains(&v) {
                                    mine[cursor[v - vlo]] = rid as u32;
                                    cursor[v - vlo] += 1;
                                }
                            }
                        }
                    });
                }
            })
            .expect("crossbeam scope failed");
        }

        self.index = InvertedIndex {
            start,
            ids,
            sets_indexed: len,
        };
    }

    /// Ids (in increasing order) of every indexed set containing `v`.
    /// Callers must run [`RrCollection::ensure_index`] first.
    #[inline]
    pub(crate) fn covering_sets(&self, v: NodeId) -> &[u32] {
        debug_assert_eq!(self.index.sets_indexed, self.len(), "index is stale");
        let v = v as usize;
        &self.index.ids[self.index.start[v]..self.index.start[v + 1]]
    }

    /// Unbiased spread estimate `σ̂(S) = n · (#covered / #sets)`.
    ///
    /// Walks the inverted-index lists of the seeds and counts distinct
    /// set ids against an epoch-stamped scratch — `O(Σ_s |R(s)|)` with
    /// no per-call allocation, instead of scanning the whole collection
    /// (OPIM/SSA call this in their per-round certificate loops).
    pub fn estimate_spread(&mut self, seeds: &[NodeId]) -> f64 {
        self.estimate_spread_prefix(seeds, self.len())
    }

    /// [`RrCollection::estimate_spread`] restricted to the arena
    /// **prefix** of the first `num_sets` sets (capped at the current
    /// length).
    ///
    /// Because set `j` is a pure function of `(sampler, j)` and the
    /// arena only ever grows, the estimate over a prefix of a warm
    /// collection is bit-identical to [`RrCollection::estimate_spread`]
    /// on a fresh identically-seeded collection grown to exactly
    /// `num_sets` — the property the resident-server query path (one
    /// shared arena, many queries of differing sample sizes) relies on.
    pub fn estimate_spread_prefix(&mut self, seeds: &[NodeId], num_sets: usize) -> f64 {
        let len = num_sets.min(self.len());
        if len == 0 {
            return 0.0;
        }
        self.ensure_index();
        if self.cover_marks.len() < len {
            self.cover_marks = VisitTags::new(len);
        }
        self.cover_marks.reset();
        let limit = len as u32;
        let mut covered = 0u64;
        for &s in seeds {
            let v = s as usize;
            // Per-node id lists are ascending: only the run below `limit`
            // belongs to the prefix.
            let ids = &self.index.ids[self.index.start[v]..self.index.start[v + 1]];
            let in_prefix = ids.partition_point(|&id| id < limit);
            for &rid in &ids[..in_prefix] {
                if self.cover_marks.mark(rid as usize) {
                    covered += 1;
                }
            }
        }
        self.num_nodes as f64 * covered as f64 / len as f64
    }

    /// Read-only [`RrCollection::estimate_spread_prefix`] for shared
    /// (`&self`) access: identical estimate, but the distinct-set marks
    /// live in a local scratch instead of the collection's reusable one,
    /// so any number of readers may estimate concurrently under a shared
    /// lock. The index must already be current
    /// ([`RrCollection::ensure_index`] under the holder's write lock).
    ///
    /// # Panics
    /// When the index is stale — a shared-arena holder bug: top-up and
    /// indexing belong under the write lock.
    pub fn estimate_spread_prefix_indexed(&self, seeds: &[NodeId], num_sets: usize) -> f64 {
        let len = num_sets.min(self.len());
        if len == 0 {
            return 0.0;
        }
        assert!(
            self.index_is_current(),
            "estimate_spread_prefix_indexed on a stale index"
        );
        let mut marks = VisitTags::new(len);
        let limit = len as u32;
        let mut covered = 0u64;
        for &s in seeds {
            let v = s as usize;
            let ids = &self.index.ids[self.index.start[v]..self.index.start[v + 1]];
            let in_prefix = ids.partition_point(|&id| id < limit);
            for &rid in &ids[..in_prefix] {
                if marks.mark(rid as usize) {
                    covered += 1;
                }
            }
        }
        self.num_nodes as f64 * covered as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)])
    }

    #[test]
    fn rr_sets_contain_their_root() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 3);
        coll.extend_to(&g, 100);
        for r in coll.iter() {
            assert!(!r.is_empty());
            for &v in r {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn extension_is_incremental_and_deterministic() {
        let g = path3();
        let mut a = RrCollection::new(&g, DiffusionModel::IC, 7);
        a.extend_to(&g, 50);
        a.extend_to(&g, 120);
        let mut b = RrCollection::new(&g, DiffusionModel::IC, 7);
        b.extend_to(&g, 120);
        assert_eq!(a, b, "same seed ⇒ same collection");
        assert_eq!(a.len(), 120);
        // extend_to with smaller target is a no-op
        a.extend_to(&g, 10);
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn generation_is_thread_count_independent() {
        let g = path3();
        let mut reference = RrCollection::new(&g, DiffusionModel::IC, 7).with_threads(1);
        reference.extend_to(&g, 1000);
        for threads in [2usize, 8] {
            let mut coll = RrCollection::new(&g, DiffusionModel::IC, 7).with_threads(threads);
            coll.extend_to(&g, 1000);
            assert_eq!(coll, reference, "{threads} threads");
            assert_eq!(coll.total_width(), reference.total_width());
        }
    }

    #[test]
    fn reset_keeps_generation_counter_and_freshens_sets() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 5);
        coll.extend_to(&g, 60);
        let before = coll.clone();
        coll.reset();
        assert!(coll.is_empty());
        coll.extend_to(&g, 60);
        assert_eq!(coll.total_generated(), 120);
        assert_ne!(coll, before, "regenerated sets must be fresh");
    }

    #[test]
    fn spread_estimate_unbiased_ic() {
        // σ({0}) on 0→1→2 (p=.5) = 1.75; via RR sets.
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 11);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0]);
        let exact = exact_spread(&g, &[0]);
        assert!((est - exact).abs() < 0.03, "RR {est} vs exact {exact}");
    }

    #[test]
    fn spread_estimate_multiseed() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 13);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0, 2]);
        let exact = exact_spread(&g, &[0, 2]); // 2 + 0.5 = 2.5
        assert!((est - exact).abs() < 0.03, "RR {est} vs exact {exact}");
    }

    #[test]
    fn spread_estimate_stays_correct_across_incremental_growth() {
        // The persistent index must track extend_to: estimates after each
        // growth episode equal those of a fresh identically-seeded
        // collection built in one shot.
        let g = path3();
        let mut grown = RrCollection::new(&g, DiffusionModel::IC, 19);
        for target in [100usize, 1_000, 50_000] {
            grown.extend_to(&g, target);
            let grown_est = grown.estimate_spread(&[0, 2]);
            let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 19);
            fresh.extend_to(&g, target);
            assert_eq!(grown_est, fresh.estimate_spread(&[0, 2]), "at {target}");
        }
    }

    #[test]
    fn prefix_estimates_match_a_fresh_collection_of_that_size() {
        // The warm-arena contract: restricting a grown collection to a
        // prefix is bit-identical to a fresh identically-seeded
        // collection grown to exactly that size.
        let g = path3();
        let mut warm = RrCollection::new(&g, DiffusionModel::IC, 37);
        warm.extend_to(&g, 5_000);
        for prefix in [1usize, 100, 1_000, 5_000] {
            let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 37);
            fresh.extend_to(&g, prefix);
            assert_eq!(
                warm.estimate_spread_prefix(&[0, 2], prefix),
                fresh.estimate_spread(&[0, 2]),
                "prefix {prefix}"
            );
        }
        // Full-length and oversized prefixes degrade to estimate_spread.
        assert_eq!(
            warm.estimate_spread_prefix(&[0], warm.len()),
            warm.estimate_spread(&[0])
        );
        assert_eq!(
            warm.estimate_spread_prefix(&[0], usize::MAX),
            warm.estimate_spread(&[0])
        );
        assert_eq!(warm.estimate_spread_prefix(&[0], 0), 0.0);
    }

    #[test]
    fn lt_rr_sets_estimate_lt_spread() {
        // LT on star into node 2: in-weights (0.6, 0.4).
        // σ_LT({0}) = 1 + 0.6 = 1.6 (node 1 picks 0 w.p. 0.6).
        let g = Graph::from_edges(3, &[(0, 1, 0.6), (2, 1, 0.4)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::LT, 17);
        coll.extend_to(&g, 200_000);
        let est = coll.estimate_spread(&[0]);
        assert!((est - 1.6).abs() < 0.03, "LT RR estimate {est}");
    }

    #[test]
    fn lt_rr_sets_are_paths() {
        // In the LT triggering view each node has ≤1 chosen in-edge, so
        // RR sets are simple reverse paths — their length is bounded by n.
        let g = Graph::from_edges(3, &[(0, 1, 0.6), (2, 1, 0.4), (1, 2, 0.5)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::LT, 19);
        coll.extend_to(&g, 1000);
        for r in coll.iter() {
            assert!(r.len() <= 3);
        }
    }

    #[test]
    fn width_accumulates() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 23);
        coll.extend_to(&g, 100);
        assert!(coll.total_width() > 0);
    }

    #[test]
    fn empty_collection_estimates_zero() {
        let g = path3();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 1);
        assert_eq!(coll.estimate_spread(&[0]), 0.0);
    }

    #[test]
    fn tiny_uniform_probabilities_stay_tiny() {
        // Regression: uniform p > 0 so small that 1 − p rounds to 1 in
        // f64 must fall back to per-edge coins, not degenerate into
        // every-edge-live geometric jumps.
        let g = Graph::from_edges(3, &[(0, 1, 1e-20), (1, 2, 1e-20), (2, 0, 1e-20)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 29);
        coll.extend_to(&g, 2_000);
        for r in coll.iter() {
            assert_eq!(r.len(), 1, "edges at p = 1e-20 must almost never fire");
        }
    }

    #[test]
    fn from_raw_sets_matches_arena_layout() {
        let coll = RrCollection::from_raw_sets(4, vec![vec![2, 0, 2], vec![], vec![3]]);
        assert_eq!(coll.len(), 3);
        assert_eq!(coll.get(0), &[0, 2], "sorted and deduplicated");
        assert_eq!(coll.get(1), &[] as &[NodeId]);
        assert_eq!(coll.get(2), &[3]);
        assert_eq!(coll.total_entries(), 3);
        assert_eq!(coll.total_generated(), 3);
    }

    /// A custom sampler exercising the pluggable arena path: sample `j`
    /// is the singleton `{j mod n}`.
    struct ModSampler {
        n: u32,
    }

    impl RrSampler for ModSampler {
        type Scratch = ();

        fn scratch(&self, _: &Graph) {}

        fn sample_into(
            &self,
            _g: &Graph,
            index: u64,
            _scratch: &mut (),
            arena: &mut Vec<NodeId>,
            width: &mut u64,
        ) {
            arena.push((index % self.n as u64) as NodeId);
            *width += 1;
        }
    }

    #[test]
    fn custom_samplers_share_the_arena_path() {
        let g = path3();
        let mut coll = RrCollection::empty(3);
        coll.extend_with(&g, 9, &ModSampler { n: 3 });
        assert_eq!(coll.len(), 9);
        for (j, r) in coll.iter().enumerate() {
            assert_eq!(r, &[(j % 3) as NodeId]);
        }
        // Every node covers exactly its 3 congruent sets.
        assert_eq!(coll.estimate_spread(&[1]), 1.0);
        assert_eq!(coll.estimate_spread(&[0, 1, 2]), 3.0);
        // The index keeps up with further growth.
        coll.extend_with(&g, 12, &ModSampler { n: 3 });
        assert_eq!(coll.estimate_spread(&[0]), 3.0 * 4.0 / 12.0);
        assert_eq!(coll.total_width(), 12);
    }

    #[test]
    fn index_build_is_thread_count_independent() {
        // The node-range-partitioned parallel index build must produce
        // the exact CSR arrays of the serial build, including across an
        // incremental growth episode (old-run block copy + append).
        let g = path3();
        let mut reference = RrCollection::new(&g, DiffusionModel::IC, 31).with_threads(1);
        reference.extend_to(&g, 400);
        reference.ensure_index();
        let stage1 = reference.index.clone();
        reference.extend_to(&g, 900);
        reference.ensure_index();
        let stage2 = reference.index.clone();
        for threads in [2usize, 3, 8] {
            let mut coll = RrCollection::new(&g, DiffusionModel::IC, 31).with_threads(threads);
            coll.extend_to(&g, 400);
            coll.ensure_index();
            assert_eq!(coll.index.start, stage1.start, "{threads} threads");
            assert_eq!(coll.index.ids, stage1.ids, "{threads} threads");
            coll.extend_to(&g, 900);
            coll.ensure_index();
            assert_eq!(coll.index.start, stage2.start, "{threads} threads, grown");
            assert_eq!(coll.index.ids, stage2.ids, "{threads} threads, grown");
        }
    }

    #[test]
    fn custom_sampler_generation_is_thread_count_independent() {
        let g = path3();
        let mut reference = RrCollection::empty(3).with_threads(1);
        reference.extend_with(&g, 1000, &ModSampler { n: 3 });
        for threads in [2usize, 8] {
            let mut coll = RrCollection::empty(3).with_threads(threads);
            coll.extend_with(&g, 1000, &ModSampler { n: 3 });
            assert_eq!(coll, reference, "{threads} threads");
        }
    }
}
