//! `NodeSelection(R, k)`: greedy max-coverage over RR sets.
//!
//! The procedure shared by TIM, IMM and PRIMA (§4.2.3: "All RIS
//! algorithms use the same well-known coverage procedure"). Greedily picks
//! the node covering the most uncovered RR sets, `k` times. Because greedy
//! is deterministic on a fixed collection, the result for budget `k` is a
//! *prefix* of the result for any larger budget — the fact PRIMA exploits
//! when switching budgets.
//!
//! Selection consumes the collection's **persistent inverted index**
//! (node → set ids, CSR): the index is brought up to date incrementally
//! on entry, so the IMM/OPIM doubling loops that re-select on a growing
//! collection every round never rebuild it from scratch — only the sets
//! appended since the previous round are merged in.
//!
//! ## The pick invariant (what makes caching and resuming sound)
//!
//! The kernel is a CELF lazy-greedy loop over a max-heap of
//! `(marginal count, NodeId)` pairs. Marginal counts only *decrease* as
//! sets get covered, so a stale heap entry is an upper bound on its
//! node's true marginal; an entry is committed only after its count
//! verifies exact. At that moment every other candidate `u` satisfies
//! `(count[u], u) ≤ (stored[u], u) ≤ (count[v], v)` in tuple order, so
//! **every committed pick is the exact lexicographic argmax of
//! `(current marginal, NodeId)` over unchosen nodes** — the heap's
//! staleness history never influences the output. The pick sequence is
//! therefore a pure function of the residual `(cover counts, covered
//! sets, chosen nodes)` state, which is what lets
//! [`crate::plan::SelectionPlan`] snapshot that state and later
//! *resume* greedy bit-identically to a from-scratch run.
//!
//! ## Zero-coverage nodes and the fill phase
//!
//! Nodes whose prefix list is empty are never seeded into the heap
//! (on realistic RR collections they are the vast majority). This
//! cannot change any pick: a node with an empty list has marginal 0
//! forever, and as long as some unchosen node has a *positive*
//! marginal the argmax strictly beats every zero. The first time the
//! true maximum marginal reaches 0, **all** remaining picks are
//! zero-marginal, and the argmax rule degenerates to "largest unchosen
//! NodeId first"; the kernel switches to an explicit descending-id
//! *fill phase* that reproduces exactly that order (entries that
//! refresh to 0 are dropped from the heap rather than re-pushed — the
//! fill phase supersedes them).
//!
//! ## Scratch reuse
//!
//! All per-call state — the cover counts (an epoch-stamped
//! [`EpochMap`], reset in `O(1)`), the heap's backing buffer, and the
//! covered/chosen bitsets — lives in a thread-local
//! `SelectionScratch`. Steady-state selection on a warm arena
//! allocates nothing beyond the result vectors.

use crate::rrset::RrCollection;
use std::cell::RefCell;
use std::collections::BinaryHeap;
use uic_diffusion::{ObjectiveError, WelfareObjective};
use uic_graph::NodeId;
use uic_util::{BitSet, EpochMap};

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSelectionResult {
    /// Seeds in greedy pick order (length = requested `k`, capped at `n`).
    pub seeds: Vec<NodeId>,
    /// `covered[j]` = number of RR sets covered by the first `j+1` seeds.
    pub covered: Vec<u64>,
    /// Number of RR sets in the collection at selection time.
    pub num_sets: usize,
}

impl NodeSelectionResult {
    /// Coverage fraction `F_R(S_j)` of the first `j` seeds (`j ≥ 1`).
    pub fn coverage_fraction(&self, j: usize) -> f64 {
        assert!(j >= 1 && j <= self.seeds.len(), "prefix {j} out of range");
        if self.num_sets == 0 {
            0.0
        } else {
            self.covered[j - 1] as f64 / self.num_sets as f64
        }
    }

    /// Spread estimate `n · F_R(S_j)` for the first `j` seeds.
    pub fn estimated_spread(&self, num_nodes: u32, j: usize) -> f64 {
        num_nodes as f64 * self.coverage_fraction(j)
    }

    /// The first `k` seeds (prefix view).
    pub fn prefix(&self, k: usize) -> &[NodeId] {
        &self.seeds[..k.min(self.seeds.len())]
    }
}

/// Greedy max-coverage: picks `k` nodes maximizing marginal RR-set
/// coverage. Runs in `O(Σ|R| + n)` amortized using the collection's
/// persistent inverted index and lazy bucketed updates; repeated calls
/// on an unchanged (or incrementally grown) collection reuse the index.
pub fn node_selection(coll: &mut RrCollection, k: u32) -> NodeSelectionResult {
    node_selection_prefix(coll, k, coll.len())
}

/// [`node_selection`] restricted to the arena **prefix** of the first
/// `num_sets` sets (capped at the collection length): coverage is
/// counted, and sets are marked covered, only among ids `< num_sets`.
///
/// With `num_sets == coll.len()` this is exactly [`node_selection`].
/// The point of the restriction is the warm-arena query path: RR sets
/// are pure functions of `(seed, index)` and the arena only grows, so a
/// prefix-restricted selection on a big shared collection is
/// bit-identical to [`node_selection`] on a fresh identically-seeded
/// collection grown to exactly `num_sets` — no from-scratch regeneration
/// needed to reproduce an offline run.
pub fn node_selection_prefix(
    coll: &mut RrCollection,
    k: u32,
    num_sets: usize,
) -> NodeSelectionResult {
    coll.ensure_index();
    node_selection_prefix_indexed(coll, k, num_sets)
}

/// Read-only [`node_selection_prefix`] for shared (`&coll`) access: the
/// selection itself never mutates the collection — only the index
/// bring-up does — so once the index is current
/// ([`RrCollection::ensure_index`], under a shared-arena holder's write
/// lock), any number of selections may run concurrently under read
/// locks. This is the `uic-serve` query path: CELF selection under a
/// shared lock, top-up under the exclusive one.
///
/// # Panics
/// When the index is stale (a holder bug, loudly refused rather than
/// silently mis-counting coverage).
pub fn node_selection_prefix_indexed(
    coll: &RrCollection,
    k: u32,
    num_sets: usize,
) -> NodeSelectionResult {
    assert!(
        coll.index_is_current(),
        "node_selection_prefix_indexed on a stale index"
    );
    let n = coll.num_nodes() as usize;
    let num_sets = num_sets.min(coll.len());
    let k = (k as usize).min(n);
    let mut seeds = Vec::with_capacity(k);
    let mut covered = Vec::with_capacity(k);
    with_scratch(|scratch| {
        scratch.begin(n, num_sets);
        seed_prefix_counts(coll, num_sets, scratch);
        greedy_extend(coll, num_sets, k, scratch, &mut seeds, &mut covered);
    });
    NodeSelectionResult {
        seeds,
        covered,
        num_sets,
    }
}

// ---------------------------------------------------------------------
// The shared kernel: reusable scratch + the CELF loop.
// ---------------------------------------------------------------------

/// Reusable per-thread selection state: cover counts (epoch-stamped, so
/// "reset" is an epoch bump), the heap's backing buffer, and the
/// covered/chosen bitsets. One instance per thread via [`with_scratch`];
/// steady-state selections on a same-sized collection allocate nothing.
#[derive(Debug)]
pub(crate) struct SelectionScratch {
    /// Residual marginal coverage per node. Invariant: a node with a
    /// positive residual count always has a written slot (its prefix
    /// list is non-empty), so an unwritten slot reads as a true 0.
    cover: EpochMap<u32>,
    /// Backing storage for the lazy max-heap (capacity persists across
    /// calls; contents are rebuilt per call).
    heap_buf: Vec<(u32, NodeId)>,
    /// RR sets already covered by committed picks.
    set_covered: BitSet,
    /// Nodes already committed as seeds.
    chosen: BitSet,
}

impl SelectionScratch {
    fn new() -> SelectionScratch {
        SelectionScratch {
            cover: EpochMap::new(0),
            heap_buf: Vec::new(),
            set_covered: BitSet::new(0),
            chosen: BitSet::new(0),
        }
    }

    /// Readies the scratch for a selection over `n` nodes and
    /// `num_sets` sets: epoch-bumps the counts, clears the bitsets in
    /// place, and empties the heap buffer — no allocation unless a
    /// dimension grew.
    pub(crate) fn begin(&mut self, n: usize, num_sets: usize) {
        if self.cover.len() == n {
            self.cover.reset();
        } else {
            self.cover = EpochMap::new(n);
        }
        self.chosen.reset_to(n);
        self.set_covered.reset_to(num_sets);
        self.heap_buf.clear();
    }

    /// Records a residual cover count (resume seeding). Zero counts may
    /// be skipped — an unwritten slot already reads as 0.
    pub(crate) fn set_cover(&mut self, v: usize, count: u32) {
        self.cover.insert(v, count);
    }

    /// Marks a node as already committed (resume seeding).
    pub(crate) fn mark_chosen(&mut self, v: usize) {
        self.chosen.insert(v);
    }

    /// Loads a plan's covered-set bitset into the scratch (resume
    /// seeding) as a word-level copy — `O(num_sets / 64)`, not per-bit.
    /// The scratch must be [`begin`](Self::begin)-ed to the same
    /// `num_sets`.
    pub(crate) fn load_set_covered(&mut self, bits: &BitSet) {
        debug_assert_eq!(bits.len(), self.set_covered.len());
        self.set_covered.clone_from(bits);
    }

    /// The residual cover count of node `v` (post-run snapshot).
    pub(crate) fn cover_of(&self, v: usize) -> u32 {
        self.cover.get_or_default(v)
    }

    /// Word-level copy of the covered-set bitset (post-run snapshot).
    pub(crate) fn clone_set_covered(&self) -> BitSet {
        self.set_covered.clone()
    }
}

thread_local! {
    static SCRATCH: RefCell<SelectionScratch> = RefCell::new(SelectionScratch::new());
}

/// Runs `f` with this thread's [`SelectionScratch`].
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SelectionScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The ascending per-node set-id list restricted to ids `< limit` — a
/// `partition_point` per list rather than a filter pass.
#[inline]
fn prefix_ids(coll: &RrCollection, v: NodeId, limit: u32) -> &[u32] {
    let ids = coll.covering_sets(v);
    &ids[..ids.partition_point(|&id| id < limit)]
}

/// Writes the from-scratch cover counts for the `num_sets` prefix into
/// `scratch` (already [`SelectionScratch::begin`]-ed). Only nodes with
/// a non-empty prefix list get a slot — the empty-prefix tail never
/// enters the heap (see the module docs for why that preserves picks).
pub(crate) fn seed_prefix_counts(
    coll: &RrCollection,
    num_sets: usize,
    scratch: &mut SelectionScratch,
) {
    let limit = num_sets as u32;
    for v in 0..coll.num_nodes() {
        let len = prefix_ids(coll, v, limit).len();
        if len > 0 {
            scratch.set_cover(v as usize, len as u32);
        }
    }
}

/// The CELF kernel: extends `seeds`/`covered` (cumulative coverage)
/// with greedy picks until `seeds.len() == k`, continuing from whatever
/// committed state `scratch` already holds (empty for a from-scratch
/// run; a plan's residual snapshot for a resume). Every pick is the
/// lexicographic argmax of `(residual count, NodeId)` over unchosen
/// nodes — see the module docs for the staleness and fill-phase
/// arguments — so continuation is bit-identical to a from-scratch run
/// of the same total `k`.
pub(crate) fn greedy_extend(
    coll: &RrCollection,
    num_sets: usize,
    k: usize,
    scratch: &mut SelectionScratch,
    seeds: &mut Vec<NodeId>,
    covered: &mut Vec<u64>,
) {
    debug_assert_eq!(seeds.len(), covered.len());
    let limit = num_sets as u32;
    let n = coll.num_nodes() as usize;
    let mut covered_total = covered.last().copied().unwrap_or(0);
    // Seed the heap with every unchosen node of positive residual count
    // (ascending push order is irrelevant: BinaryHeap::from heapifies).
    let mut heap_buf = std::mem::take(&mut scratch.heap_buf);
    for v in 0..n {
        let c = scratch.cover.get_or_default(v);
        if c > 0 && !scratch.chosen.contains(v) {
            heap_buf.push((c, v as NodeId));
        }
    }
    let mut heap = BinaryHeap::from(heap_buf);
    while seeds.len() < k {
        let Some((stale, v)) = heap.pop() else { break };
        let vi = v as usize;
        if scratch.chosen.contains(vi) {
            continue;
        }
        let current = scratch.cover.get_or_default(vi);
        if stale != current {
            // Stale upper bound. A refreshed positive count re-enters
            // the heap; a zero is dropped — the fill phase below owns
            // all zero-marginal picks.
            if current > 0 {
                heap.push((current, v));
            }
            continue;
        }
        if current == 0 {
            // The heap max verified at 0: every remaining marginal is 0
            // (all other stored entries are ≤ this one and are upper
            // bounds). Hand over to the fill phase.
            break;
        }
        scratch.chosen.insert(vi);
        seeds.push(v);
        covered_total += current as u64;
        covered.push(covered_total);
        // Mark v's sets covered and decrement counts of their members.
        for &rid in prefix_ids(coll, v, limit) {
            if !scratch.set_covered.insert(rid as usize) {
                continue;
            }
            for &u in coll.get(rid as usize) {
                // A member of a just-uncovered set has that set in its
                // prefix list, so its slot is written and positive.
                let (slot, _) = scratch.cover.slot(u as usize);
                *slot = slot.saturating_sub(1);
            }
        }
        scratch.set_cover(vi, 0);
    }
    // Fill phase: every remaining marginal is 0, so the argmax of
    // `(0, NodeId)` is simply the largest unchosen id — exactly the
    // order a full heap of all n nodes would emit.
    let mut v = n;
    while seeds.len() < k && v > 0 {
        v -= 1;
        if scratch.chosen.contains(v) {
            continue;
        }
        scratch.chosen.insert(v);
        seeds.push(v as NodeId);
        covered.push(covered_total);
    }
    // Return the heap's buffer to the scratch for the next call.
    let mut heap_buf = heap.into_vec();
    heap_buf.clear();
    scratch.heap_buf = heap_buf;
}

/// Objective-aware [`node_selection`].
///
/// RR-set coverage counting estimates `Σ_v σ_v` — it is only an unbiased
/// proxy for objectives that decompose as a **sum of per-node terms**
/// ([`WelfareObjective::is_additive`]). For additive objectives this is
/// exactly [`node_selection`]; for any other objective it refuses with
/// [`ObjectiveError::NonAdditive`] rather than silently optimizing the
/// wrong quantity (use a simulation-based solver instead).
pub fn node_selection_for(
    coll: &mut RrCollection,
    k: u32,
    objective: &dyn WelfareObjective,
) -> Result<NodeSelectionResult, ObjectiveError> {
    if !objective.is_additive() {
        return Err(ObjectiveError::NonAdditive {
            objective: objective.key().to_string(),
            algorithm: "RR-set NodeSelection".to_string(),
        });
    }
    Ok(node_selection(coll, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection_from_sets(n: u32, sets: Vec<Vec<NodeId>>) -> RrCollection {
        RrCollection::from_raw_sets(n, sets)
    }

    #[test]
    fn picks_highest_coverage_first() {
        // Node 0 covers 3 sets, node 1 covers 2, node 2 covers 1.
        let mut coll =
            collection_from_sets(3, vec![vec![0], vec![0, 1], vec![0], vec![2], vec![1]]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds[0], 0);
        assert_eq!(r.covered[0], 3);
        // After 0: remaining uncovered {3:{2}, 4:{1}} — node 1 and 2 tie
        // at 1; either is a valid greedy pick.
        assert_eq!(r.covered[1], 4);
    }

    #[test]
    fn marginal_not_total_coverage_drives_second_pick() {
        // Node 1 has total coverage 2 but zero marginal after node 0.
        let mut coll = collection_from_sets(3, vec![vec![0, 1], vec![0, 1], vec![0], vec![2]]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds, vec![0, 2]);
        assert_eq!(r.covered, vec![3, 4]);
    }

    #[test]
    fn coverage_fraction_and_spread() {
        let mut coll = collection_from_sets(4, vec![vec![0], vec![0], vec![1], vec![2]]);
        let r = node_selection(&mut coll, 4);
        assert_eq!(r.num_sets, 4);
        assert!((r.coverage_fraction(1) - 0.5).abs() < 1e-12);
        assert!((r.estimated_spread(4, 1) - 2.0).abs() < 1e-12);
        // full coverage by 3 seeds; 4th seed has zero marginal
        assert!((r.coverage_fraction(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_property_of_greedy() {
        // Greedy for k is a prefix of greedy for k′ > k on the same sets.
        let mut coll = collection_from_sets(
            5,
            vec![
                vec![0, 1],
                vec![0],
                vec![1, 2],
                vec![3],
                vec![3, 4],
                vec![0, 4],
            ],
        );
        let small = node_selection(&mut coll, 2);
        let large = node_selection(&mut coll, 4);
        assert_eq!(small.seeds[..], large.seeds[..2]);
    }

    #[test]
    fn k_capped_at_n() {
        let mut coll = collection_from_sets(2, vec![vec![0], vec![1]]);
        let r = node_selection(&mut coll, 10);
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn budget_beyond_nonzero_nodes_fills_in_descending_id_order() {
        // Regression for the empty-prefix-skip optimization: only nodes
        // 1 (count 2) and 3 (count 1) have coverage; k=5 forces three
        // zero-marginal fill picks, which must come out in descending
        // NodeId order (5, 4, 2) — exactly what a full heap of all n
        // `(0, NodeId)` entries would pop.
        let mut coll = collection_from_sets(6, vec![vec![1], vec![1], vec![3]]);
        let r = node_selection(&mut coll, 5);
        assert_eq!(r.seeds, vec![1, 3, 5, 4, 2]);
        assert_eq!(r.covered, vec![2, 3, 3, 3, 3]);
        // Same with the budget saturating n entirely.
        let r = node_selection(&mut coll, 10);
        assert_eq!(r.seeds, vec![1, 3, 5, 4, 2, 0]);
    }

    #[test]
    fn zero_marginal_tail_within_nonzero_nodes_keeps_heap_order() {
        // Node 2's coverage is entirely eclipsed by node 1: its count
        // refreshes to 0 mid-run, so it is dropped from the heap and
        // must re-emerge via the fill phase in id order with the
        // never-covering nodes.
        let mut coll = collection_from_sets(5, vec![vec![1, 2], vec![1, 2], vec![1]]);
        let r = node_selection(&mut coll, 5);
        // Pick 1 (count 3); node 2 refreshes to 0; fill: 4, 3, 2, 0.
        assert_eq!(r.seeds, vec![1, 4, 3, 2, 0]);
        assert_eq!(r.covered, vec![3, 3, 3, 3, 3]);
    }

    #[test]
    fn empty_collection_selects_arbitrary_nodes_with_zero_coverage() {
        let mut coll = collection_from_sets(3, vec![]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds.len(), 2);
        assert_eq!(r.covered, vec![0, 0]);
        assert_eq!(r.coverage_fraction(2), 0.0);
    }

    #[test]
    fn greedy_matches_bruteforce_max_coverage_for_k1() {
        use uic_util::UicRng;
        // For k=1, greedy is exactly optimal; cross-check on random sets.
        let mut rng = UicRng::new(5);
        for _ in 0..20 {
            let n = 6u32;
            let sets: Vec<Vec<NodeId>> = (0..12)
                .map(|_| {
                    let len = 1 + rng.next_below(3);
                    let mut s: Vec<NodeId> = (0..len).map(|_| rng.next_below(n)).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let mut coll = collection_from_sets(n, sets.clone());
            let r = node_selection(&mut coll, 1);
            let best: u64 = (0..n)
                .map(|v| sets.iter().filter(|s| s.contains(&v)).count() as u64)
                .max()
                .unwrap();
            assert_eq!(r.covered[0], best);
        }
    }

    #[test]
    fn selection_tracks_incremental_growth() {
        // Selecting, growing the collection, then selecting again must
        // behave exactly as selecting on a collection built in one shot
        // (the persistent index merges the appended sets).
        use crate::rrset::DiffusionModel;
        use uic_graph::Graph;
        let g = Graph::from_edges(4, &[(0, 1, 0.7), (1, 2, 0.7), (2, 3, 0.7), (3, 0, 0.7)]);
        let mut grown = RrCollection::new(&g, DiffusionModel::IC, 77);
        grown.extend_to(&g, 500);
        let _warm = node_selection(&mut grown, 2);
        grown.extend_to(&g, 2_000);
        let after_growth = node_selection(&mut grown, 2);
        let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 77);
        fresh.extend_to(&g, 2_000);
        let oneshot = node_selection(&mut fresh, 2);
        assert_eq!(after_growth, oneshot);
    }

    #[test]
    fn prefix_selection_matches_a_fresh_collection_of_that_size() {
        // The warm-arena contract for selection: restricting a grown
        // collection to a prefix must select exactly what a fresh
        // identically-seeded collection of that size selects.
        use crate::rrset::DiffusionModel;
        use uic_graph::Graph;
        let g = Graph::from_edges(5, &[(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6), (3, 4, 0.6)]);
        let mut warm = RrCollection::new(&g, DiffusionModel::IC, 41);
        warm.extend_to(&g, 3_000);
        for prefix in [50usize, 700, 3_000] {
            let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 41);
            fresh.extend_to(&g, prefix);
            assert_eq!(
                crate::node_selection::node_selection_prefix(&mut warm, 2, prefix),
                node_selection(&mut fresh, 2),
                "prefix {prefix}"
            );
        }
        // Full-length and oversized prefixes degrade to node_selection.
        let full = node_selection(&mut warm, 3);
        assert_eq!(
            crate::node_selection::node_selection_prefix(&mut warm, 3, usize::MAX),
            full
        );
    }

    #[test]
    fn objective_gate_accepts_additive_and_rejects_the_rest() {
        use uic_diffusion::{Maximin, Utilitarian};
        let mut coll = collection_from_sets(3, vec![vec![0], vec![0, 1], vec![2]]);
        let gated = node_selection_for(&mut coll, 2, &Utilitarian).unwrap();
        let plain = node_selection(&mut coll, 2);
        assert_eq!(gated, plain);
        let err = node_selection_for(&mut coll, 2, &Maximin).unwrap_err();
        assert!(matches!(err, ObjectiveError::NonAdditive { .. }));
        assert!(err.to_string().contains("maximin"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coverage_fraction_range_checked() {
        let mut coll = collection_from_sets(2, vec![vec![0]]);
        let r = node_selection(&mut coll, 1);
        r.coverage_fraction(2);
    }
}
