//! `NodeSelection(R, k)`: greedy max-coverage over RR sets.
//!
//! The procedure shared by TIM, IMM and PRIMA (§4.2.3: "All RIS
//! algorithms use the same well-known coverage procedure"). Greedily picks
//! the node covering the most uncovered RR sets, `k` times. Because greedy
//! is deterministic on a fixed collection, the result for budget `k` is a
//! *prefix* of the result for any larger budget — the fact PRIMA exploits
//! when switching budgets.
//!
//! Selection consumes the collection's **persistent inverted index**
//! (node → set ids, CSR): the index is brought up to date incrementally
//! on entry, so the IMM/OPIM doubling loops that re-select on a growing
//! collection every round never rebuild it from scratch — only the sets
//! appended since the previous round are merged in.

use crate::rrset::RrCollection;
use uic_diffusion::{ObjectiveError, WelfareObjective};
use uic_graph::NodeId;

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSelectionResult {
    /// Seeds in greedy pick order (length = requested `k`, capped at `n`).
    pub seeds: Vec<NodeId>,
    /// `covered[j]` = number of RR sets covered by the first `j+1` seeds.
    pub covered: Vec<u64>,
    /// Number of RR sets in the collection at selection time.
    pub num_sets: usize,
}

impl NodeSelectionResult {
    /// Coverage fraction `F_R(S_j)` of the first `j` seeds (`j ≥ 1`).
    pub fn coverage_fraction(&self, j: usize) -> f64 {
        assert!(j >= 1 && j <= self.seeds.len(), "prefix {j} out of range");
        if self.num_sets == 0 {
            0.0
        } else {
            self.covered[j - 1] as f64 / self.num_sets as f64
        }
    }

    /// Spread estimate `n · F_R(S_j)` for the first `j` seeds.
    pub fn estimated_spread(&self, num_nodes: u32, j: usize) -> f64 {
        num_nodes as f64 * self.coverage_fraction(j)
    }

    /// The first `k` seeds (prefix view).
    pub fn prefix(&self, k: usize) -> &[NodeId] {
        &self.seeds[..k.min(self.seeds.len())]
    }
}

/// Greedy max-coverage: picks `k` nodes maximizing marginal RR-set
/// coverage. Runs in `O(Σ|R| + n)` amortized using the collection's
/// persistent inverted index and lazy bucketed updates; repeated calls
/// on an unchanged (or incrementally grown) collection reuse the index.
pub fn node_selection(coll: &mut RrCollection, k: u32) -> NodeSelectionResult {
    node_selection_prefix(coll, k, coll.len())
}

/// [`node_selection`] restricted to the arena **prefix** of the first
/// `num_sets` sets (capped at the collection length): coverage is
/// counted, and sets are marked covered, only among ids `< num_sets`.
///
/// With `num_sets == coll.len()` this is exactly [`node_selection`].
/// The point of the restriction is the warm-arena query path: RR sets
/// are pure functions of `(seed, index)` and the arena only grows, so a
/// prefix-restricted selection on a big shared collection is
/// bit-identical to [`node_selection`] on a fresh identically-seeded
/// collection grown to exactly `num_sets` — no from-scratch regeneration
/// needed to reproduce an offline run.
pub fn node_selection_prefix(
    coll: &mut RrCollection,
    k: u32,
    num_sets: usize,
) -> NodeSelectionResult {
    coll.ensure_index();
    node_selection_prefix_indexed(coll, k, num_sets)
}

/// Read-only [`node_selection_prefix`] for shared (`&coll`) access: the
/// selection itself never mutates the collection — only the index
/// bring-up does — so once the index is current
/// ([`RrCollection::ensure_index`], under a shared-arena holder's write
/// lock), any number of selections may run concurrently under read
/// locks. This is the `uic-serve` query path: CELF selection under a
/// shared lock, top-up under the exclusive one.
///
/// # Panics
/// When the index is stale (a holder bug, loudly refused rather than
/// silently mis-counting coverage).
pub fn node_selection_prefix_indexed(
    coll: &RrCollection,
    k: u32,
    num_sets: usize,
) -> NodeSelectionResult {
    assert!(
        coll.index_is_current(),
        "node_selection_prefix_indexed on a stale index"
    );
    let n = coll.num_nodes() as usize;
    let num_sets = num_sets.min(coll.len());
    let limit = num_sets as u32;
    let k = (k as usize).min(n);
    // Per-node id lists are ascending, so the prefix restriction is a
    // `partition_point` per list rather than a filter pass.
    let prefix_ids = |v: NodeId| {
        let ids = coll.covering_sets(v);
        &ids[..ids.partition_point(|&id| id < limit)]
    };
    // Coverage counts with a lazy max-heap (CELF-style): the marginal
    // coverage of a node only decreases as sets get covered, so a stale
    // heap entry is an upper bound.
    let mut cover_count: Vec<u64> = (0..n)
        .map(|v| prefix_ids(v as NodeId).len() as u64)
        .collect();
    let mut heap: std::collections::BinaryHeap<(u64, NodeId)> =
        (0..n).map(|v| (cover_count[v], v as NodeId)).collect();
    let mut set_covered = vec![false; num_sets];
    let mut seeds = Vec::with_capacity(k);
    let mut covered_cum = Vec::with_capacity(k);
    let mut covered_total = 0u64;
    let mut chosen = vec![false; n];
    while seeds.len() < k {
        let Some((stale, v)) = heap.pop() else { break };
        let vi = v as usize;
        if chosen[vi] {
            continue;
        }
        if stale != cover_count[vi] {
            // Stale bound: refresh and reinsert.
            heap.push((cover_count[vi], v));
            continue;
        }
        chosen[vi] = true;
        seeds.push(v);
        covered_total += cover_count[vi];
        covered_cum.push(covered_total);
        // Mark v's sets covered and decrement counts of their members.
        for &rid in prefix_ids(v) {
            if set_covered[rid as usize] {
                continue;
            }
            set_covered[rid as usize] = true;
            for &u in coll.get(rid as usize) {
                cover_count[u as usize] = cover_count[u as usize].saturating_sub(1);
            }
        }
        cover_count[vi] = 0;
    }
    NodeSelectionResult {
        seeds,
        covered: covered_cum,
        num_sets,
    }
}

/// Objective-aware [`node_selection`].
///
/// RR-set coverage counting estimates `Σ_v σ_v` — it is only an unbiased
/// proxy for objectives that decompose as a **sum of per-node terms**
/// ([`WelfareObjective::is_additive`]). For additive objectives this is
/// exactly [`node_selection`]; for any other objective it refuses with
/// [`ObjectiveError::NonAdditive`] rather than silently optimizing the
/// wrong quantity (use a simulation-based solver instead).
pub fn node_selection_for(
    coll: &mut RrCollection,
    k: u32,
    objective: &dyn WelfareObjective,
) -> Result<NodeSelectionResult, ObjectiveError> {
    if !objective.is_additive() {
        return Err(ObjectiveError::NonAdditive {
            objective: objective.key().to_string(),
            algorithm: "RR-set NodeSelection".to_string(),
        });
    }
    Ok(node_selection(coll, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection_from_sets(n: u32, sets: Vec<Vec<NodeId>>) -> RrCollection {
        RrCollection::from_raw_sets(n, sets)
    }

    #[test]
    fn picks_highest_coverage_first() {
        // Node 0 covers 3 sets, node 1 covers 2, node 2 covers 1.
        let mut coll =
            collection_from_sets(3, vec![vec![0], vec![0, 1], vec![0], vec![2], vec![1]]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds[0], 0);
        assert_eq!(r.covered[0], 3);
        // After 0: remaining uncovered {3:{2}, 4:{1}} — node 1 and 2 tie
        // at 1; either is a valid greedy pick.
        assert_eq!(r.covered[1], 4);
    }

    #[test]
    fn marginal_not_total_coverage_drives_second_pick() {
        // Node 1 has total coverage 2 but zero marginal after node 0.
        let mut coll = collection_from_sets(3, vec![vec![0, 1], vec![0, 1], vec![0], vec![2]]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds, vec![0, 2]);
        assert_eq!(r.covered, vec![3, 4]);
    }

    #[test]
    fn coverage_fraction_and_spread() {
        let mut coll = collection_from_sets(4, vec![vec![0], vec![0], vec![1], vec![2]]);
        let r = node_selection(&mut coll, 4);
        assert_eq!(r.num_sets, 4);
        assert!((r.coverage_fraction(1) - 0.5).abs() < 1e-12);
        assert!((r.estimated_spread(4, 1) - 2.0).abs() < 1e-12);
        // full coverage by 3 seeds; 4th seed has zero marginal
        assert!((r.coverage_fraction(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_property_of_greedy() {
        // Greedy for k is a prefix of greedy for k′ > k on the same sets.
        let mut coll = collection_from_sets(
            5,
            vec![
                vec![0, 1],
                vec![0],
                vec![1, 2],
                vec![3],
                vec![3, 4],
                vec![0, 4],
            ],
        );
        let small = node_selection(&mut coll, 2);
        let large = node_selection(&mut coll, 4);
        assert_eq!(small.seeds[..], large.seeds[..2]);
    }

    #[test]
    fn k_capped_at_n() {
        let mut coll = collection_from_sets(2, vec![vec![0], vec![1]]);
        let r = node_selection(&mut coll, 10);
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn empty_collection_selects_arbitrary_nodes_with_zero_coverage() {
        let mut coll = collection_from_sets(3, vec![]);
        let r = node_selection(&mut coll, 2);
        assert_eq!(r.seeds.len(), 2);
        assert_eq!(r.covered, vec![0, 0]);
        assert_eq!(r.coverage_fraction(2), 0.0);
    }

    #[test]
    fn greedy_matches_bruteforce_max_coverage_for_k1() {
        use uic_util::UicRng;
        // For k=1, greedy is exactly optimal; cross-check on random sets.
        let mut rng = UicRng::new(5);
        for _ in 0..20 {
            let n = 6u32;
            let sets: Vec<Vec<NodeId>> = (0..12)
                .map(|_| {
                    let len = 1 + rng.next_below(3);
                    let mut s: Vec<NodeId> = (0..len).map(|_| rng.next_below(n)).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let mut coll = collection_from_sets(n, sets.clone());
            let r = node_selection(&mut coll, 1);
            let best: u64 = (0..n)
                .map(|v| sets.iter().filter(|s| s.contains(&v)).count() as u64)
                .max()
                .unwrap();
            assert_eq!(r.covered[0], best);
        }
    }

    #[test]
    fn selection_tracks_incremental_growth() {
        // Selecting, growing the collection, then selecting again must
        // behave exactly as selecting on a collection built in one shot
        // (the persistent index merges the appended sets).
        use crate::rrset::DiffusionModel;
        use uic_graph::Graph;
        let g = Graph::from_edges(4, &[(0, 1, 0.7), (1, 2, 0.7), (2, 3, 0.7), (3, 0, 0.7)]);
        let mut grown = RrCollection::new(&g, DiffusionModel::IC, 77);
        grown.extend_to(&g, 500);
        let _warm = node_selection(&mut grown, 2);
        grown.extend_to(&g, 2_000);
        let after_growth = node_selection(&mut grown, 2);
        let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 77);
        fresh.extend_to(&g, 2_000);
        let oneshot = node_selection(&mut fresh, 2);
        assert_eq!(after_growth, oneshot);
    }

    #[test]
    fn prefix_selection_matches_a_fresh_collection_of_that_size() {
        // The warm-arena contract for selection: restricting a grown
        // collection to a prefix must select exactly what a fresh
        // identically-seeded collection of that size selects.
        use crate::rrset::DiffusionModel;
        use uic_graph::Graph;
        let g = Graph::from_edges(5, &[(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6), (3, 4, 0.6)]);
        let mut warm = RrCollection::new(&g, DiffusionModel::IC, 41);
        warm.extend_to(&g, 3_000);
        for prefix in [50usize, 700, 3_000] {
            let mut fresh = RrCollection::new(&g, DiffusionModel::IC, 41);
            fresh.extend_to(&g, prefix);
            assert_eq!(
                crate::node_selection::node_selection_prefix(&mut warm, 2, prefix),
                node_selection(&mut fresh, 2),
                "prefix {prefix}"
            );
        }
        // Full-length and oversized prefixes degrade to node_selection.
        let full = node_selection(&mut warm, 3);
        assert_eq!(
            crate::node_selection::node_selection_prefix(&mut warm, 3, usize::MAX),
            full
        );
    }

    #[test]
    fn objective_gate_accepts_additive_and_rejects_the_rest() {
        use uic_diffusion::{Maximin, Utilitarian};
        let mut coll = collection_from_sets(3, vec![vec![0], vec![0, 1], vec![2]]);
        let gated = node_selection_for(&mut coll, 2, &Utilitarian).unwrap();
        let plain = node_selection(&mut coll, 2);
        assert_eq!(gated, plain);
        let err = node_selection_for(&mut coll, 2, &Maximin).unwrap_err();
        assert!(matches!(err, ObjectiveError::NonAdditive { .. }));
        assert!(err.to_string().contains("maximin"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coverage_fraction_range_checked() {
        let mut coll = collection_from_sets(2, vec![vec![0]]);
        let r = node_selection(&mut coll, 1);
        r.coverage_fraction(2);
    }
}
