//! OPIM-C — Online Processing Influence Maximization with early
//! termination certificates (Tang, Tang, Xiao & Yuan, SIGMOD 2018; the
//! paper's reference \[50\]).
//!
//! Like SSA, OPIM is listed in §4.2.3 as a state-of-the-art RIS algorithm
//! that is **not** prefix-preserving — implementing it completes the set
//! of algorithms PRIMA is contrasted against, and its per-round
//! lower/upper welfare certificates are independently useful for the
//! experiment harness (they quantify *how* approximate a seed set is).
//!
//! ## Algorithm
//!
//! Two independent RR collections of equal size are maintained: `R₁`
//! drives greedy selection, `R₂` provides an unbiased validation score.
//! After each round the algorithm derives, via martingale concentration
//! bounds (the same inequalities behind IMM's analysis):
//!
//! * an **upper bound** on `OPT_k` from `R₁`: greedy's coverage divided
//!   by `(1 − 1/e)` bounds the optimum's coverage from above, and
//!   `σ⁺ = (n/θ)·(√(cov₁/(1−1/e) + a/2) + √(a/2))²` inverts the lower
//!   Chernoff tail;
//! * a **lower bound** on `σ(S_k)` from `R₂`:
//!   `σ⁻ = (n/θ)·((√(cov₂ + 2a/9) − √(a/2))² − a/18)`, the upper-tail
//!   inversion,
//!
//! with `a = ln(3·i_max/δ)` splitting the failure budget `δ = n^{−ℓ}`
//! across rounds and bounds. When `σ⁻/σ⁺ ≥ 1 − 1/e − ε` the pair
//! certifies the approximation and the run stops; otherwise both
//! collections double. The initial size is `θ_max·ε²·√k / n` and the
//! doubling stops at `θ_max = λ*(k)` (IMM's worst-case size), so quality
//! is guaranteed even if certification never fires.

use crate::imm::Bounds;
use crate::node_selection::node_selection;
use crate::rrset::{DiffusionModel, RrCollection};
use uic_graph::{Graph, NodeId};
use uic_util::split_seed;

/// Result of an [`opim_c`] run.
#[derive(Debug, Clone)]
pub struct OpimResult {
    /// Seeds in greedy order (`k` of them).
    pub seeds: Vec<NodeId>,
    /// Unbiased spread estimate from the validation collection.
    pub estimated_spread: f64,
    /// Certified lower bound on `σ(seeds)` (w.h.p.).
    pub spread_lower: f64,
    /// Certified upper bound on `OPT_k` (w.h.p.).
    pub opt_upper: f64,
    /// `spread_lower / opt_upper` at termination; ≥ `1 − 1/e − ε` when
    /// `certified` is true.
    pub ratio: f64,
    /// True when the certificate fired before the worst-case cap.
    pub certified: bool,
    /// Total RR sets generated across both collections.
    pub rr_sets_total: u64,
    /// Number of doubling rounds executed.
    pub rounds: u32,
}

/// Runs OPIM-C for budget `k` with failure budget `δ = n^{−ℓ}`.
/// Deterministic given `seed`.
///
/// ```
/// use uic_im::{opim_c, DiffusionModel};
/// use uic_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.9)]);
/// let r = opim_c(&g, 1, 0.4, 1.0, DiffusionModel::IC, 42);
/// assert_eq!(r.seeds, vec![0]);
/// // The certificates bracket the truth: σ({0}) = 1 + 3·0.9 = 3.7.
/// assert!(r.spread_lower <= 3.7 && 3.7 <= r.opt_upper);
/// ```
pub fn opim_c(
    g: &Graph,
    k: u32,
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
) -> OpimResult {
    let n = g.num_nodes();
    assert!(k >= 1 && k <= n, "budget {k} out of range for n={n}");
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
    let nf = n as f64;
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    let target_ratio = one_minus_inv_e - eps;
    let delta = nf.powf(-ell);
    let theta_max = Bounds::new(n, eps, ell.max(0.1)).lambda_star(k).ceil() as usize;
    let theta_0 = ((theta_max as f64 * eps * eps * (k as f64).sqrt() / nf).ceil() as usize).max(32);
    let i_max = ((theta_max as f64 / theta_0 as f64).log2().ceil() as u32).max(1) + 1;
    let a = (3.0 * i_max as f64 / delta).ln();

    let mut r1 = RrCollection::new(g, model, split_seed(seed, 1));
    let mut r2 = RrCollection::new(g, model, split_seed(seed, 2));
    let mut theta = theta_0;
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        r1.extend_to(g, theta);
        r2.extend_to(g, theta);
        let sel = node_selection(&mut r1, k);
        let cov1 = *sel.covered.last().expect("k ≥ 1") as f64;
        let cov2 = {
            let est = r2.estimate_spread(&sel.seeds);
            est * r2.len() as f64 / nf
        };
        let scale = nf / theta as f64;
        let opt_upper =
            scale * ((cov1 / one_minus_inv_e + a / 2.0).sqrt() + (a / 2.0).sqrt()).powi(2);
        let spread_lower = (scale
            * (((cov2 + 2.0 * a / 9.0).sqrt() - (a / 2.0).sqrt()).powi(2) - a / 18.0))
            .max(0.0);
        let ratio = if opt_upper > 0.0 {
            spread_lower / opt_upper
        } else {
            0.0
        };
        let certified = ratio >= target_ratio;
        if certified || theta >= theta_max {
            let estimated_spread = r2.estimate_spread(&sel.seeds);
            return OpimResult {
                seeds: sel.seeds,
                estimated_spread,
                spread_lower,
                opt_upper,
                ratio,
                certified,
                rr_sets_total: r1.total_generated() + r2.total_generated(),
                rounds,
            };
        }
        theta = (theta * 2).min(theta_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;
    use uic_graph::{GraphBuilder, Weighting};
    use uic_util::UicRng;

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..25u32 {
            b.add_edge(0, leaf, 0.9);
        }
        b.add_edge(25, 26, 0.5);
        b.add_edge(27, 28, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn opim_finds_the_hub() {
        let g = hub_graph();
        let r = opim_c(&g, 1, 0.3, 1.0, DiffusionModel::IC, 42);
        assert_eq!(r.seeds, vec![0]);
        assert!(r.rr_sets_total > 0);
        assert!(r.rounds >= 1);
    }

    #[test]
    fn bounds_bracket_the_truth() {
        // σ({0}) = 22.6 exactly; the certified bounds must bracket it
        // (they hold w.h.p. and this instance is easy).
        let g = hub_graph();
        let r = opim_c(&g, 1, 0.3, 1.0, DiffusionModel::IC, 7);
        let truth = 1.0 + 24.0 * 0.9;
        assert!(
            r.spread_lower <= truth + 1e-9,
            "lower {} vs truth {truth}",
            r.spread_lower
        );
        assert!(
            r.opt_upper >= truth - 1e-9,
            "upper {} vs truth {truth}",
            r.opt_upper
        );
        assert!(r.ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn certificate_implies_actual_ratio() {
        // Whenever OPIM certifies, the realized (exact) spread must meet
        // the advertised approximation on this brute-forceable graph.
        let mut rng = UicRng::new(6);
        let mut b = GraphBuilder::new(8);
        let mut added = 0;
        'fill: for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v && rng.coin(0.3) {
                    b.add_edge(u, v, 0.5);
                    added += 1;
                    if added == 16 {
                        break 'fill;
                    }
                }
            }
        }
        let g = b.build(Weighting::AsGiven, 0);
        let r = opim_c(&g, 2, 0.2, 1.0, DiffusionModel::IC, 11);
        let got = exact_spread(&g, &r.seeds);
        let mut opt = 0.0f64;
        for x in 0..8u32 {
            for y in (x + 1)..8u32 {
                opt = opt.max(exact_spread(&g, &[x, y]));
            }
        }
        assert!(
            got >= (1.0 - 1.0 / std::f64::consts::E - 0.2) * opt - 1e-9,
            "OPIM {got} vs OPT {opt} (certified={})",
            r.certified
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = opim_c(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        let b = opim_c(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.rr_sets_total, b.rr_sets_total);
    }

    #[test]
    fn early_termination_beats_worst_case_on_easy_instances() {
        // The whole point of OPIM: on an easy instance the certificate
        // fires long before θ_max.
        let g = hub_graph();
        let r = opim_c(&g, 1, 0.3, 1.0, DiffusionModel::IC, 3);
        let theta_max = Bounds::new(30, 0.3, 1.0).lambda_star(1).ceil() as u64;
        assert!(
            r.certified || r.rr_sets_total / 2 >= theta_max,
            "uncertified run must have hit the cap"
        );
        if r.certified {
            assert!(
                r.rr_sets_total < 2 * theta_max,
                "certified early stop should use fewer sets than 2·θ_max={}, used {}",
                2 * theta_max,
                r.rr_sets_total
            );
        }
    }

    #[test]
    fn works_under_lt_model() {
        let mut b = GraphBuilder::new(20);
        for leaf in 1..18u32 {
            b.add_arc(0, leaf);
        }
        b.add_arc(18, 19);
        let g = b.build(Weighting::WeightedCascade, 0);
        let r = opim_c(&g, 1, 0.3, 1.0, DiffusionModel::LT, 11);
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_budget_rejected() {
        let g = hub_graph();
        opim_c(&g, 31, 0.3, 1.0, DiffusionModel::IC, 1);
    }
}
