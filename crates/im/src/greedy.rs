//! CELF-style lazy greedy over an arbitrary monotone set function.
//!
//! The classic Kempe-Kleinberg-Tardos greedy with the Leskovec et al.
//! lazy-forward optimization: marginal gains of a submodular function
//! only shrink, so a stale heap entry is an upper bound and most
//! re-evaluations are skipped. Used here (a) with *exact* spread oracles
//! on tiny graphs to validate the RIS algorithms' approximation ratios,
//! and (b) with Monte-Carlo spread as the reference "slow greedy"
//! ablation bench.

use crate::rrset::DiffusionModel;
use uic_diffusion::spread_mc;
use uic_graph::{Graph, NodeId};

/// Greedy selection of `k` elements from `0..n` maximizing `f`, with lazy
/// (CELF) re-evaluation. `f` takes the currently selected prefix plus a
/// candidate appended and returns the objective value of that set; it
/// must be monotone for the result to be meaningful, and submodular for
/// laziness to be exact.
pub fn greedy_celf<F>(n: u32, k: u32, mut f: F) -> Vec<NodeId>
where
    F: FnMut(&[NodeId]) -> f64,
{
    let k = k.min(n);
    let mut selected: Vec<NodeId> = Vec::with_capacity(k as usize);
    let mut current_value = f(&[]);
    // Heap entries: (gain upper bound, node, round it was computed in).
    // f64 is not Ord; store gains as ordered bits.
    let mut heap: std::collections::BinaryHeap<(u64, NodeId, u32)> =
        (0..n).map(|v| (f64_key(f64::INFINITY), v, 0u32)).collect();
    let mut scratch = Vec::with_capacity(k as usize + 1);
    for round in 1..=k {
        loop {
            let Some((bound, v, stamp)) = heap.pop() else {
                return selected;
            };
            if stamp == round {
                // Fresh evaluation from this round — it is the max.
                selected.push(v);
                current_value += key_f64(bound);
                break;
            }
            // Re-evaluate v's marginal gain at the current prefix.
            scratch.clear();
            scratch.extend_from_slice(&selected);
            scratch.push(v);
            let gain = f(&scratch) - current_value;
            heap.push((f64_key(gain), v, round));
        }
    }
    selected
}

/// Classic greedy IM via Monte-Carlo spread estimation (the KKT'03
/// algorithm). Orders of magnitude slower than RIS — exists as the
/// reference implementation and ablation baseline.
pub fn greedy_mc_spread(
    g: &Graph,
    k: u32,
    sims: u32,
    model: DiffusionModel,
    seed: u64,
) -> Vec<NodeId> {
    assert!(
        matches!(model, DiffusionModel::IC),
        "MC greedy reference implemented for the IC model"
    );
    greedy_celf(g.num_nodes(), k, |s| spread_mc(g, s, sims, seed))
}

/// Order-preserving map f64 → u64 (for totally ordered heap keys).
fn f64_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if x >= 0.0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

fn key_f64(k: u64) -> f64 {
    if k & (1 << 63) != 0 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;
    use uic_graph::GraphBuilder;
    use uic_graph::Weighting;

    #[test]
    fn f64_key_roundtrip_and_order() {
        let xs = [-5.5, -0.0, 0.0, 0.25, 1.0, 100.0, f64::INFINITY];
        for &x in &xs {
            assert_eq!(key_f64(f64_key(x)), x);
        }
        for w in xs.windows(2) {
            assert!(f64_key(w[0]) <= f64_key(w[1]));
        }
    }

    #[test]
    fn greedy_maximizes_modular_function() {
        // f(S) = Σ weights: greedy picks the k largest.
        let weights = [1.0, 9.0, 3.0, 7.0, 5.0];
        let picked = greedy_celf(5, 3, |s| s.iter().map(|&v| weights[v as usize]).sum());
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 3, 4]);
        assert_eq!(picked[0], 1, "largest first");
    }

    #[test]
    fn greedy_respects_coverage_structure() {
        // Universe {0,1,2,3}; f = |covered sets|:
        // node 0 covers {s1,s2}, node 1 covers {s1}, node 2 covers {s3}.
        let cover: [&[u32]; 4] = [&[1, 2], &[1], &[3], &[]];
        let f = |s: &[NodeId]| {
            let mut set: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for &v in s {
                set.extend(cover[v as usize]);
            }
            set.len() as f64
        };
        let picked = greedy_celf(4, 2, f);
        assert_eq!(picked, vec![0, 2]);
    }

    #[test]
    fn exact_greedy_achieves_ratio_on_random_graphs() {
        use uic_util::UicRng;
        let mut rng = UicRng::new(8);
        for trial in 0..5 {
            let mut b = GraphBuilder::new(8);
            let mut added = 0;
            'fill: for u in 0..8u32 {
                for v in 0..8u32 {
                    if u != v && rng.coin(0.3) {
                        b.add_edge(u, v, 0.5);
                        added += 1;
                        if added == 16 {
                            break 'fill;
                        }
                    }
                }
            }
            let g = b.build(Weighting::AsGiven, 0);
            let seeds = greedy_celf(8, 2, |s| exact_spread(&g, s));
            let got = exact_spread(&g, &seeds);
            let mut opt = 0.0f64;
            for x in 0..8u32 {
                for y in (x + 1)..8u32 {
                    opt = opt.max(exact_spread(&g, &[x, y]));
                }
            }
            assert!(
                got >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
                "trial {trial}: greedy {got} < ratio × OPT {opt}"
            );
        }
    }

    #[test]
    fn mc_greedy_finds_hub() {
        let mut b = GraphBuilder::new(12);
        for leaf in 1..10u32 {
            b.add_edge(0, leaf, 0.9);
        }
        let g = b.build(Weighting::AsGiven, 0);
        let seeds = greedy_mc_spread(&g, 1, 300, DiffusionModel::IC, 3);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn k_capped_at_n() {
        let picked = greedy_celf(3, 10, |s| s.len() as f64);
        assert_eq!(picked.len(), 3);
    }
}
