//! Memoized greedy selection: run [`node_selection_prefix_indexed`](crate::node_selection::node_selection_prefix_indexed)
//! once, keep the full pick order **and** the residual CELF state, and
//! answer later queries on the same arena prefix without re-running
//! greedy.
//!
//! A [`SelectionPlan`] is keyed by its explicit `num_sets` prefix (the
//! warm-arena serving layer keys its cache by exactly that, per
//! `(model, seed)` arena — the objective key is fixed by the arena's
//! sampler). Three query shapes:
//!
//! * `k ≤ plan.len()` — a pure **slice**: greedy is prefix-monotone
//!   (the seed set for budget `k` is a prefix of the seed set for any
//!   larger budget, §4.2.3), so the answer is `O(k)` copying.
//! * `k > plan.len()` — a **resume**: the plan's residual state (cover
//!   counts + covered-set bitset + the pick order itself) is exactly
//!   the committed CELF state after `plan.len()` picks, and the kernel
//!   pick is a pure function of that state (see the
//!   [`node_selection`](mod@crate::node_selection) module docs), so
//!   continuing from it is bit-identical to a from-scratch run of the
//!   larger `k`. [`SelectionPlan::resume`] returns a *new, longer*
//!   plan; the old one stays valid (plans are immutable).
//! * any `k` once the plan is [`saturated`](SelectionPlan::is_saturated)
//!   (every node picked) — still a slice: from-scratch selection also
//!   caps at `n` seeds.
//!
//! ## Why arena growth never staleness-poisons a plan
//!
//! RR set `j` is a pure function of `(seed, j)` and arenas grow
//! extend-only, so the first `num_sets` sets — the only ones a plan
//! ever looked at — are immutable for the arena's lifetime. A plan for
//! prefix `N` therefore stays correct no matter how far the arena
//! grows; a query for a *different* prefix simply misses the cache and
//! computes (or resumes) its own plan. Stale answers are structurally
//! impossible, not just unlikely — pinned by the property suite in
//! `tests/plan_props.rs`.

use crate::node_selection::{
    greedy_extend, seed_prefix_counts, with_scratch, NodeSelectionResult, SelectionScratch,
};
use crate::rrset::RrCollection;
use uic_graph::NodeId;
use uic_util::BitSet;

/// The residual CELF state after a plan's last committed pick —
/// everything [`greedy_extend`] needs to continue bit-identically.
/// Counts fit `u32` because the inverted index refuses collections
/// beyond `u32::MAX` sets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResumeState {
    /// Residual marginal cover count per node (dense, `n` entries;
    /// chosen nodes hold 0).
    cover: Box<[u32]>,
    /// RR sets (of the plan's prefix) covered by the committed picks.
    set_covered: BitSet,
}

/// An immutable memoized greedy run over one arena prefix: the pick
/// order, cumulative coverage, and the residual state to resume from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionPlan {
    /// Seeds in greedy pick order.
    seeds: Vec<NodeId>,
    /// `covered[j]` = RR sets covered by the first `j+1` seeds.
    covered: Vec<u64>,
    /// The explicit arena prefix this plan is keyed by.
    num_sets: usize,
    /// Nodes in the collection (the hard cap on plan length).
    num_nodes: usize,
    resume: ResumeState,
}

impl SelectionPlan {
    /// Runs greedy to `k` picks on the first `num_sets` sets and
    /// memoizes the result. Bit-identical to
    /// [`node_selection_prefix_indexed`](crate::node_selection::node_selection_prefix_indexed)
    /// with the same arguments
    /// (pinned by tests), plus the residual state snapshot.
    ///
    /// # Panics
    /// When the collection's index is stale (same contract as
    /// [`node_selection_prefix_indexed`](crate::node_selection::node_selection_prefix_indexed)).
    pub fn compute(coll: &RrCollection, k: u32, num_sets: usize) -> SelectionPlan {
        assert!(
            coll.index_is_current(),
            "SelectionPlan::compute on a stale index"
        );
        let n = coll.num_nodes() as usize;
        let num_sets = num_sets.min(coll.len());
        let k = (k as usize).min(n);
        let mut seeds = Vec::with_capacity(k);
        let mut covered = Vec::with_capacity(k);
        let resume = with_scratch(|scratch| {
            scratch.begin(n, num_sets);
            seed_prefix_counts(coll, num_sets, scratch);
            greedy_extend(coll, num_sets, k, scratch, &mut seeds, &mut covered);
            snapshot_resume(scratch, n)
        });
        SelectionPlan {
            seeds,
            covered,
            num_sets,
            num_nodes: n,
            resume,
        }
    }

    /// Picks memoized so far.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when the plan holds no picks.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The arena prefix this plan is valid for.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// True once every node is picked — no budget can need more.
    pub fn is_saturated(&self) -> bool {
        self.seeds.len() == self.num_nodes
    }

    /// Whether [`slice`](Self::slice) can answer budget `k` without
    /// recomputation.
    pub fn covers(&self, k: u32) -> bool {
        k as usize <= self.len() || self.is_saturated()
    }

    /// The memoized answer for budget `k`, as an `O(k)` copy. `None`
    /// when the plan is too short (resume instead).
    pub fn slice(&self, k: u32) -> Option<NodeSelectionResult> {
        if !self.covers(k) {
            return None;
        }
        let k = (k as usize).min(self.seeds.len());
        Some(NodeSelectionResult {
            seeds: self.seeds[..k].to_vec(),
            covered: self.covered[..k].to_vec(),
            num_sets: self.num_sets,
        })
    }

    /// Continues greedy from the memoized residual state up to budget
    /// `k`, returning a new, longer plan (self stays valid). The new
    /// plan's picks are bit-identical to
    /// [`SelectionPlan::compute`]`(coll, k, num_sets)` from scratch —
    /// the resume contract, pinned by `tests/plan_props.rs`.
    ///
    /// # Panics
    /// When `coll` is not the plan's collection grown extend-only (the
    /// prefix must still exist: `coll.len() ≥ num_sets`, same node
    /// count, current index).
    pub fn resume(&self, coll: &RrCollection, k: u32) -> SelectionPlan {
        assert!(
            coll.index_is_current(),
            "SelectionPlan::resume on a stale index"
        );
        assert_eq!(
            coll.num_nodes() as usize,
            self.num_nodes,
            "resume on a different collection"
        );
        assert!(
            coll.len() >= self.num_sets,
            "resume on a collection shorter than the plan prefix"
        );
        let n = self.num_nodes;
        let k = (k as usize).min(n);
        let mut seeds = self.seeds.clone();
        let mut covered = self.covered.clone();
        let resume = with_scratch(|scratch| {
            scratch.begin(n, self.num_sets);
            for (v, &c) in self.resume.cover.iter().enumerate() {
                if c > 0 {
                    scratch.set_cover(v, c);
                }
            }
            for &s in &seeds {
                scratch.mark_chosen(s as usize);
            }
            scratch.load_set_covered(&self.resume.set_covered);
            greedy_extend(coll, self.num_sets, k, scratch, &mut seeds, &mut covered);
            snapshot_resume(scratch, n)
        });
        SelectionPlan {
            seeds,
            covered,
            num_sets: self.num_sets,
            num_nodes: n,
            resume,
        }
    }

    /// Heap bytes held by the plan (cache byte-budget accounting).
    pub fn heap_bytes(&self) -> usize {
        self.seeds.capacity() * std::mem::size_of::<NodeId>()
            + self.covered.capacity() * std::mem::size_of::<u64>()
            + self.resume.cover.len() * std::mem::size_of::<u32>()
            + self.resume.set_covered.len().div_ceil(64) * std::mem::size_of::<u64>()
    }
}

/// Captures the scratch's post-run residual state densely. The
/// covered-set bitset comes out as a word-level copy, so the snapshot
/// is `O(n + num_sets / 64)` — cheap enough that resuming a plan beats
/// recomputing one even when the remaining picks are few.
fn snapshot_resume(scratch: &SelectionScratch, n: usize) -> ResumeState {
    let cover: Box<[u32]> = (0..n).map(|v| scratch.cover_of(v)).collect();
    ResumeState {
        cover,
        set_covered: scratch.clone_set_covered(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_selection::node_selection_prefix_indexed;
    use crate::rrset::DiffusionModel;
    use uic_graph::Graph;

    fn ring_collection(seed: u64, sets: usize) -> RrCollection {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1, 0.6),
                (1, 2, 0.6),
                (2, 3, 0.6),
                (3, 4, 0.6),
                (4, 5, 0.6),
                (5, 0, 0.6),
            ],
        );
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, seed);
        coll.extend_to(&g, sets);
        coll.ensure_index();
        coll
    }

    #[test]
    fn compute_matches_direct_selection_and_slices_are_prefixes() {
        let coll = ring_collection(9, 400);
        let plan = SelectionPlan::compute(&coll, 4, 300);
        let direct = node_selection_prefix_indexed(&coll, 4, 300);
        assert_eq!(plan.slice(4).unwrap(), direct);
        for k in 1..=4u32 {
            assert_eq!(
                plan.slice(k).unwrap(),
                node_selection_prefix_indexed(&coll, k, 300),
                "k={k}"
            );
        }
        assert_eq!(plan.num_sets(), 300);
        assert!(!plan.covers(5));
        assert!(plan.slice(5).is_none());
    }

    #[test]
    fn resume_is_bit_identical_to_from_scratch() {
        let coll = ring_collection(11, 500);
        let short = SelectionPlan::compute(&coll, 2, 500);
        let resumed = short.resume(&coll, 5);
        let scratch = SelectionPlan::compute(&coll, 5, 500);
        assert_eq!(resumed, scratch, "resume must replay from-scratch picks");
        // The short plan is still intact (immutability).
        assert_eq!(short.len(), 2);
        // Resuming past n saturates like from-scratch selection.
        let all = short.resume(&coll, 99);
        assert!(all.is_saturated());
        assert_eq!(
            all.slice(99).unwrap(),
            node_selection_prefix_indexed(&coll, 99, 500)
        );
    }

    #[test]
    fn saturated_plans_answer_any_budget() {
        let coll = ring_collection(3, 200);
        let plan = SelectionPlan::compute(&coll, 100, 200);
        assert!(plan.is_saturated());
        assert!(plan.covers(1000));
        assert_eq!(
            plan.slice(1000).unwrap(),
            node_selection_prefix_indexed(&coll, 1000, 200)
        );
    }

    #[test]
    fn plans_survive_arena_growth() {
        // A plan keyed to prefix 250 answers identically after the
        // arena doubles — the extend-only contract.
        let g = Graph::from_edges(5, &[(0, 1, 0.7), (1, 2, 0.7), (2, 3, 0.7), (3, 4, 0.7)]);
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 21);
        coll.extend_to(&g, 250);
        coll.ensure_index();
        let plan = SelectionPlan::compute(&coll, 3, 250);
        coll.extend_to(&g, 500);
        coll.ensure_index();
        assert_eq!(
            plan.slice(3).unwrap(),
            node_selection_prefix_indexed(&coll, 3, 250),
            "the grown arena's 250-prefix answer is unchanged"
        );
        let resumed = plan.resume(&coll, 5);
        assert_eq!(resumed, SelectionPlan::compute(&coll, 5, 250));
    }

    #[test]
    fn heap_bytes_is_positive_and_grows_with_resume() {
        let coll = ring_collection(7, 300);
        let plan = SelectionPlan::compute(&coll, 2, 300);
        let b = plan.heap_bytes();
        assert!(b > 0);
        assert!(plan.resume(&coll, 6).heap_bytes() >= b);
    }

    #[test]
    #[should_panic(expected = "different collection")]
    fn resume_refuses_a_foreign_collection() {
        let coll = ring_collection(5, 100);
        let plan = SelectionPlan::compute(&coll, 2, 100);
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let mut other = RrCollection::new(&g, DiffusionModel::IC, 5);
        other.extend_to(&g, 100);
        other.ensure_index();
        plan.resume(&other, 3);
    }
}
