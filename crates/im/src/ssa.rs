//! SSA — the Stop-and-Stare algorithm (Nguyen, Thai & Dinh, SIGMOD 2016;
//! the paper's reference \[43\]), in the conservative corrected form of
//! Huang et al.'s "Revisiting the stop-and-stare algorithms" (VLDB 2017;
//! reference \[26\]).
//!
//! §4.2.3 names SSA alongside IMM and OPIM as a state-of-the-art RIS
//! algorithm that is **not** prefix-preserving out of the box — the
//! motivating gap PRIMA fills. We implement it (a) to complete the RIS
//! algorithm zoo the paper positions itself against, and (b) to
//! demonstrate that non-prefix-preservation concretely in tests and
//! ablations: re-running SSA at two budgets can reorder seeds, whereas
//! PRIMA's output for the smaller budget is by construction a prefix of
//! its output for the larger one.
//!
//! ## Algorithm
//!
//! *Stop*: maintain a selection collection `R₁`; greedily solve
//! max-coverage on it. *Stare*: score the returned seed set on an
//! **independent** validation collection `R₂` of the same size. If the
//! validation coverage clears the precision threshold
//! `Λ = (1 + ε)(2 + ⅔ε)·ln(3/δ)/ε²` *and* the (optimistic) selection
//! estimate agrees with the (unbiased) validation estimate to within
//! `1 + ε₁`, stop; otherwise double both collections. A worst-case cap at
//! IMM's `λ*(k)/1` sample size guarantees termination with the same
//! `(1 − 1/e − ε)` quality as IMM even when the agreement test never
//! fires (tiny graphs, where log factors dominate).

use crate::imm::Bounds;
use crate::node_selection::node_selection;
use crate::rrset::{DiffusionModel, RrCollection};
use uic_graph::{Graph, NodeId};
use uic_util::split_seed;

/// Result of an [`ssa`] run.
#[derive(Debug, Clone)]
pub struct SsaResult {
    /// Seeds in greedy order (`k` of them).
    pub seeds: Vec<NodeId>,
    /// Unbiased spread estimate from the validation collection.
    pub estimated_spread: f64,
    /// RR sets in the selection collection at termination.
    pub rr_sets_selection: usize,
    /// RR sets in the validation collection at termination.
    pub rr_sets_validation: usize,
    /// Number of stop-and-stare rounds executed.
    pub rounds: u32,
    /// True when the stare test certified the estimate (false when the
    /// worst-case cap forced termination — quality then rests on the
    /// IMM-style sample-size guarantee instead).
    pub stare_certified: bool,
}

/// Runs SSA for budget `k` with failure budget `δ = n^{−ℓ}`.
/// Deterministic given `seed`.
///
/// ```
/// use uic_im::{ssa, DiffusionModel};
/// use uic_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.9)]);
/// let r = ssa(&g, 1, 0.4, 1.0, DiffusionModel::IC, 42);
/// assert_eq!(r.seeds, vec![0]);
/// assert!(r.rr_sets_validation > 0, "the stare pass always samples");
/// ```
pub fn ssa(g: &Graph, k: u32, eps: f64, ell: f64, model: DiffusionModel, seed: u64) -> SsaResult {
    let n = g.num_nodes();
    assert!(k >= 1 && k <= n, "budget {k} out of range for n={n}");
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
    let nf = n as f64;
    let delta = nf.powf(-ell);
    // Precision threshold Λ and the agreement tolerance ε₁ = ε/2 (the
    // corrected split of Huang et al.; any ε₁ + ε₂ ≤ ε with ε₂ absorbing
    // the validation error works).
    let eps1 = eps / 2.0;
    let lambda = (1.0 + eps) * (2.0 + 2.0 / 3.0 * eps) * (3.0 / delta).ln() / (eps * eps);
    // Worst-case cap: IMM's θ at LB = 1 always suffices.
    let cap = Bounds::new(n, eps, ell.max(0.1)).lambda_star(k).ceil() as usize;
    let mut selection = RrCollection::new(g, model, split_seed(seed, 1));
    let mut validation = RrCollection::new(g, model, split_seed(seed, 2));
    let mut target = (lambda.ceil() as usize).max(1);
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        selection.extend_to(g, target);
        validation.extend_to(g, target);
        let sel = node_selection(&mut selection, k);
        let est_selection = sel.estimated_spread(n, sel.seeds.len());
        let est_validation = validation.estimate_spread(&sel.seeds);
        let cov_validation = est_validation * validation.len() as f64 / nf;
        if cov_validation >= lambda && est_selection <= (1.0 + eps1) * est_validation {
            return SsaResult {
                seeds: sel.seeds,
                estimated_spread: est_validation,
                rr_sets_selection: selection.len(),
                rr_sets_validation: validation.len(),
                rounds,
                stare_certified: true,
            };
        }
        if target >= cap {
            return SsaResult {
                seeds: sel.seeds,
                estimated_spread: est_validation,
                rr_sets_selection: selection.len(),
                rr_sets_validation: validation.len(),
                rounds,
                stare_certified: false,
            };
        }
        target = (target * 2).min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;
    use uic_graph::{GraphBuilder, Weighting};
    use uic_util::UicRng;

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..25u32 {
            b.add_edge(0, leaf, 0.9);
        }
        b.add_edge(25, 26, 0.5);
        b.add_edge(27, 28, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn ssa_finds_the_hub() {
        let g = hub_graph();
        let r = ssa(&g, 1, 0.3, 1.0, DiffusionModel::IC, 42);
        assert_eq!(r.seeds, vec![0]);
        assert!(r.rr_sets_selection > 0);
        assert!(r.rr_sets_validation > 0);
        assert!(r.rounds >= 1);
    }

    #[test]
    fn validation_estimate_is_sane() {
        let g = hub_graph();
        let r = ssa(&g, 1, 0.3, 1.0, DiffusionModel::IC, 7);
        // σ({0}) = 1 + 24·0.9 = 22.6; the validation estimate is unbiased
        // and the collections are large, so it should be close.
        assert!(
            (r.estimated_spread - 22.6).abs() < 2.0,
            "estimate {}",
            r.estimated_spread
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = ssa(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        let b = ssa(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rr_sets_selection, b.rr_sets_selection);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn quality_matches_bruteforce_ratio() {
        let mut rng = UicRng::new(3);
        let mut b = GraphBuilder::new(8);
        let mut added = 0;
        'fill: for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v && rng.coin(0.3) {
                    b.add_edge(u, v, 0.5);
                    added += 1;
                    if added == 16 {
                        break 'fill;
                    }
                }
            }
        }
        let g = b.build(Weighting::AsGiven, 0);
        let r = ssa(&g, 2, 0.2, 1.0, DiffusionModel::IC, 11);
        let got = exact_spread(&g, &r.seeds);
        let mut opt = 0.0f64;
        for x in 0..8u32 {
            for y in (x + 1)..8u32 {
                opt = opt.max(exact_spread(&g, &[x, y]));
            }
        }
        assert!(
            got >= (1.0 - 1.0 / std::f64::consts::E - 0.2) * opt - 1e-9,
            "SSA {got} vs OPT {opt}"
        );
    }

    #[test]
    fn worst_case_cap_bounds_the_sample_size() {
        let g = hub_graph();
        let r = ssa(&g, 2, 0.5, 1.0, DiffusionModel::IC, 13);
        let cap = Bounds::new(30, 0.5, 1.0).lambda_star(2).ceil() as usize;
        assert!(r.rr_sets_selection <= cap);
        assert!(r.rr_sets_validation <= cap);
    }

    #[test]
    fn works_under_lt_model() {
        let mut b = GraphBuilder::new(20);
        for leaf in 1..18u32 {
            b.add_arc(0, leaf);
        }
        b.add_arc(18, 19);
        let g = b.build(Weighting::WeightedCascade, 0);
        let r = ssa(&g, 1, 0.3, 1.0, DiffusionModel::LT, 11);
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_budget_rejected() {
        let g = hub_graph();
        ssa(&g, 0, 0.3, 1.0, DiffusionModel::IC, 1);
    }
}
