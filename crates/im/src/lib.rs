//! # uic-im
//!
//! Scalable influence-maximization machinery (§2.1 and §4.2.3 of the
//! paper), built on reverse-reachable (RR) set sampling:
//!
//! * [`rrset`] — RR-set samplers for the IC and LT models with
//!   deterministic per-set seed splitting and parallel batch generation;
//!   [`rrset::RrCollection`] owns the sampled sets in a flat CSR arena
//!   with a persistent, incrementally-grown inverted index, and custom
//!   reverse processes plug in through [`rrset::RrSampler`].
//! * [`mod@node_selection`] — the greedy max-coverage `NodeSelection`
//!   procedure shared by all RIS algorithms (returns the full greedy
//!   *ordering* plus cumulative coverage, which is what makes prefix
//!   reuse possible), built on a zero-allocation epoch-stamped CELF
//!   kernel.
//! * [`mod@plan`] — [`plan::SelectionPlan`]: one memoized greedy run
//!   per arena prefix, answering smaller budgets as `O(k)` slices and
//!   larger ones by resuming the cached CELF state bit-identically —
//!   the serving layer's query plan cache.
//! * [`mod@imm`] — IMM of Tang et al. (2015) with the Chen (2018) fix: the
//!   final RR collection is regenerated from scratch before the last
//!   `NodeSelection`.
//! * [`tim`] — TIM⁺ (Tang et al., 2014), the predecessor that generates
//!   substantially more RR sets; the RR-SIM+/RR-CIM baselines are built
//!   on it, matching Fig. 6's memory comparison.
//! * [`mod@prima`] — **PRIMA** (Algorithm 2): the prefix-preserving
//!   multi-budget IMM extension that powers bundleGRD; its seed ordering
//!   is simultaneously near-optimal for *every* budget in the vector.
//! * [`greedy`] — CELF-style lazy greedy over an arbitrary monotone
//!   submodular oracle (exact spread on tiny graphs in tests; MC spread
//!   otherwise), used to validate approximation ratios empirically.
//! * [`mod@ssa`] — Stop-and-Stare (Nguyen et al., 2016; corrected per
//!   Huang et al., 2017): independent selection/validation collections
//!   with doubling until the estimates agree. Named in §4.2.3 as *not*
//!   prefix-preserving.
//! * [`mod@opim`] — OPIM-C (Tang et al., 2018): online doubling with
//!   per-round lower/upper approximation certificates. Also named in
//!   §4.2.3 as not prefix-preserving.
//! * [`mod@skim`] — SKIM (Cohen et al., 2014): bottom-k-sketch greedy
//!   with residual updates; the one *prefix-preserving* predecessor the
//!   paper credits in §2.1, and PRIMA's natural ablation partner.

pub mod greedy;
pub mod imm;
pub mod node_selection;
pub mod opim;
pub mod plan;
pub mod prima;
pub mod rrset;
pub mod skim;
pub mod ssa;
pub mod tim;

pub use greedy::{greedy_celf, greedy_mc_spread};
pub use imm::{imm, ImmResult};
pub use node_selection::{
    node_selection, node_selection_for, node_selection_prefix, node_selection_prefix_indexed,
    NodeSelectionResult,
};
pub use opim::{opim_c, OpimResult};
pub use plan::SelectionPlan;
pub use prima::{
    prima, prima_for, warm_prima, warm_prima_on, ExclusiveArena, PrimaResult, WarmArena,
};
pub use rrset::{DiffusionModel, RrCollection, RrSampler, StandardRrSampler};
pub use skim::{skim, SkimOptions, SkimResult};
pub use ssa::{ssa, SsaResult};
pub use tim::{tim_plus, TimResult};
