//! IMM — Influence Maximization via Martingales (Tang, Shi & Xiao 2015),
//! with the from-scratch regeneration fix of Chen (2018) that the paper
//! adopts (§4.2.3, reference \[13\]).
//!
//! Phase 1 (sampling) doubles a guess `x = n/2^i` downwards until the
//! greedy seed set certifies a lower bound `LB ≥ OPT_k/(1+ε′)`; phase 2
//! regenerates `θ = λ*/LB` fresh RR sets and runs the final
//! `NodeSelection` on them.

use crate::node_selection::{node_selection, NodeSelectionResult};
use crate::rrset::{DiffusionModel, RrCollection};
use uic_graph::{Graph, NodeId};
use uic_util::log_choose;

/// Sample-size coefficients shared by IMM and PRIMA.
pub(crate) struct Bounds {
    n: f64,
    ell: f64,
    eps: f64,
    eps_prime: f64,
}

impl Bounds {
    /// `ell` here is the *effective* ℓ (PRIMA passes its inflated ℓ′).
    pub(crate) fn new(n: u32, eps: f64, ell: f64) -> Bounds {
        assert!(n >= 2, "IMM needs at least two nodes");
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        assert!(ell > 0.0, "ℓ must be positive");
        Bounds {
            n: n as f64,
            ell,
            eps,
            eps_prime: std::f64::consts::SQRT_2 * eps,
        }
    }

    /// Eq. (7): `λ′_k = (2 + 2/3·ε′)(ln C(n,k) + ℓ·ln n + ln log₂ n)·n/ε′²`.
    pub(crate) fn lambda_prime(&self, k: u32) -> f64 {
        let e = self.eps_prime;
        (2.0 + 2.0 / 3.0 * e)
            * (log_choose(self.n as u64, k as u64) + self.ell * self.n.ln() + self.n.log2().ln())
            * self.n
            / (e * e)
    }

    /// Eq. (8): `λ*_k = 2n((1−1/e)·α + β_k)²·ε⁻²`.
    pub(crate) fn lambda_star(&self, k: u32) -> f64 {
        let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
        let alpha = (self.ell * self.n.ln() + 2f64.ln()).sqrt();
        let beta = (one_minus_inv_e
            * (log_choose(self.n as u64, k as u64) + self.ell * self.n.ln() + 2f64.ln()))
        .sqrt();
        2.0 * self.n * (one_minus_inv_e * alpha + beta).powi(2) / (self.eps * self.eps)
    }

    pub(crate) fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    pub(crate) fn max_rounds(&self) -> u32 {
        (self.n.log2() as u32).saturating_sub(1).max(1)
    }
}

/// Result of an IMM run.
#[derive(Debug, Clone)]
pub struct ImmResult {
    /// Seeds in greedy order (`k` of them).
    pub seeds: Vec<NodeId>,
    /// Spread estimate of the full seed set on the final collection.
    pub estimated_spread: f64,
    /// RR sets used by the final NodeSelection (the paper's
    /// Fig. 6 / Table 6 "number of RR sets" metric).
    pub rr_sets_final: usize,
    /// RR sets generated over the whole run (incl. phase 1, discarded).
    pub rr_sets_total: u64,
}

/// Runs IMM for a single budget `k` under the given diffusion model.
///
/// `ell` is fractional to allow PRIMA-style inflation; plain IMM calls
/// pass the paper's default `ℓ = 1`.
pub fn imm(g: &Graph, k: u32, eps: f64, ell: f64, model: DiffusionModel, seed: u64) -> ImmResult {
    let n = g.num_nodes();
    assert!(k >= 1 && k <= n, "budget {k} out of range for n={n}");
    // ℓ ← ℓ + ln 2 / ln n boosts success probability to 1 − 1/n^ℓ
    // (accounts for the two-phase union bound).
    let ell = ell + 2f64.ln() / (n as f64).ln();
    let bounds = Bounds::new(n, eps, ell);
    let eps_prime = bounds.eps_prime();
    let mut coll = RrCollection::new(g, model, seed);
    let mut lb = 1.0f64;
    let nf = n as f64;
    for i in 1..=bounds.max_rounds() {
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (bounds.lambda_prime(k) / x).ceil() as usize;
        coll.extend_to(g, theta_i);
        let sel = node_selection(&mut coll, k);
        let est = sel.estimated_spread(n, k as usize);
        if est >= (1.0 + eps_prime) * x {
            lb = est / (1.0 + eps_prime);
            break;
        }
    }
    let theta = (bounds.lambda_star(k) / lb).ceil() as usize;
    // Chen (2018) fix: regenerate from scratch for the final selection.
    coll.reset();
    coll.extend_to(g, theta);
    let sel: NodeSelectionResult = node_selection(&mut coll, k);
    let estimated_spread = sel.estimated_spread(n, sel.seeds.len());
    ImmResult {
        seeds: sel.seeds,
        estimated_spread,
        rr_sets_final: coll.len(),
        rr_sets_total: coll.total_generated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;
    use uic_graph::{GraphBuilder, Weighting};
    use uic_util::UicRng;

    /// A graph with an obvious best seed: a hub covering many leaves.
    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..25u32 {
            b.add_edge(0, leaf, 0.9);
        }
        // Some noise edges elsewhere.
        b.add_edge(25, 26, 0.5);
        b.add_edge(27, 28, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn imm_finds_the_hub() {
        let g = hub_graph();
        let r = imm(&g, 1, 0.3, 1.0, DiffusionModel::IC, 42);
        assert_eq!(r.seeds, vec![0]);
        assert!(r.rr_sets_final > 0);
        assert!(r.rr_sets_total >= r.rr_sets_final as u64);
    }

    #[test]
    fn imm_spread_close_to_bruteforce_greedy() {
        // Small random graph: IMM's k=2 spread (exact-evaluated) must be
        // ≥ (1−1/e−ε) × brute-force optimum.
        let mut b = GraphBuilder::new(8);
        let mut rng = UicRng::new(9);
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v && rng.coin(0.25) {
                    b.add_edge(u, v, 0.4);
                }
            }
        }
        let g = b.build(Weighting::AsGiven, 0);
        if g.num_edges() > 20 {
            // exact_spread enumeration cap; rebuild sparser
            return;
        }
        let r = imm(&g, 2, 0.2, 1.0, DiffusionModel::IC, 7);
        let imm_spread = exact_spread(&g, &r.seeds);
        // Brute-force optimum over all pairs.
        let mut opt = 0.0f64;
        for a in 0..8u32 {
            for bb in (a + 1)..8u32 {
                opt = opt.max(exact_spread(&g, &[a, bb]));
            }
        }
        assert!(
            imm_spread >= (1.0 - 1.0 / std::f64::consts::E - 0.2) * opt - 1e-9,
            "IMM {imm_spread} vs OPT {opt}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = imm(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        let b = imm(&g, 3, 0.4, 1.0, DiffusionModel::IC, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rr_sets_final, b.rr_sets_final);
    }

    #[test]
    fn tighter_epsilon_needs_more_rr_sets() {
        let g = hub_graph();
        let loose = imm(&g, 2, 0.5, 1.0, DiffusionModel::IC, 3);
        let tight = imm(&g, 2, 0.1, 1.0, DiffusionModel::IC, 3);
        assert!(
            tight.rr_sets_final > loose.rr_sets_final,
            "tight {} vs loose {}",
            tight.rr_sets_final,
            loose.rr_sets_final
        );
    }

    #[test]
    fn lambda_formulas_are_monotone_in_k() {
        let b = Bounds::new(1000, 0.3, 1.0);
        assert!(b.lambda_prime(10) > b.lambda_prime(2));
        assert!(b.lambda_star(10) > b.lambda_star(2));
        assert!(b.lambda_prime(2) > 0.0);
    }

    #[test]
    fn works_under_lt_model() {
        // LT with in-weights 1/din: hub still wins.
        let mut b = GraphBuilder::new(20);
        for leaf in 1..18u32 {
            b.add_arc(0, leaf);
        }
        b.add_arc(18, 19);
        let g = b.build(Weighting::WeightedCascade, 0);
        let r = imm(&g, 1, 0.3, 1.0, DiffusionModel::LT, 11);
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_budget_rejected() {
        let g = hub_graph();
        imm(&g, 0, 0.3, 1.0, DiffusionModel::IC, 1);
    }
}
