//! TIM⁺ (Tang, Xiao & Shi 2014) — the RIS predecessor of IMM.
//!
//! Included because the RR-SIM+/RR-CIM baselines of the paper are
//! TIM-based: "RR-SIM+ and RR-CIM are based on TIM … which generates much
//! less [sic — *more*] number of RR sets than IMM" (§4.3.2.3, Fig. 6).
//! TIM first estimates `KPT` (the expected spread of a random singleton,
//! scaled) with a doubling scheme, then draws
//! `θ = λ/KPT` RR sets where `λ = (8+2ε)n(ℓ ln n + ln C(n,k) + ln 2)/ε²` —
//! a bound noticeably looser than IMM's `λ*/LB`, hence the larger
//! collections.

use crate::node_selection::node_selection;
use crate::rrset::{DiffusionModel, RrCollection};
use uic_graph::{Graph, NodeId};
use uic_util::log_choose;

/// Result of a TIM⁺ run.
#[derive(Debug, Clone)]
pub struct TimResult {
    /// Seeds in greedy order.
    pub seeds: Vec<NodeId>,
    /// Spread estimate on the final collection.
    pub estimated_spread: f64,
    /// RR sets used for the final NodeSelection.
    pub rr_sets_final: usize,
    /// RR sets generated in total (including KPT estimation).
    pub rr_sets_total: u64,
    /// The KPT estimate used to size θ.
    pub kpt: f64,
}

/// Runs TIM⁺ for budget `k`.
pub fn tim_plus(
    g: &Graph,
    k: u32,
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
) -> TimResult {
    let n = g.num_nodes();
    assert!(k >= 1 && k <= n, "budget {k} out of range for n={n}");
    assert!(eps > 0.0 && eps < 1.0);
    let nf = n as f64;
    let m = g.num_edges() as f64;

    // --- KPT estimation (Algorithm 2 of the TIM paper) ---------------
    // For i = 1..log2(n)−1: draw c_i RR sets; κ(R) = 1 − (1 − w(R)/m)^k.
    // If the average κ exceeds 1/2^i, stop with KPT = n·avg/2.
    let mut kpt = 1.0f64;
    let mut estimation_coll = RrCollection::new(g, model, seed ^ 0x7111);
    let log2n = nf.log2();
    let mut drawn = 0usize;
    'outer: for i in 1..(log2n as u32) {
        let c_i = ((6.0 * ell * nf.ln() + 6.0 * log2n.ln()) * 2f64.powi(i as i32)).ceil() as usize;
        estimation_coll.extend_to(g, drawn + c_i);
        let mut sum = 0.0f64;
        for rid in drawn..drawn + c_i {
            // width(R): in-edges pointing into R.
            let r = estimation_coll.get(rid);
            let w: usize = r.iter().map(|&v| g.in_degree(v)).sum();
            let kappa = 1.0 - (1.0 - w as f64 / m.max(1.0)).powi(k as i32);
            sum += kappa;
        }
        drawn += c_i;
        let avg = sum / c_i as f64;
        if avg > 1.0 / 2f64.powi(i as i32) {
            kpt = nf * avg / 2.0;
            break 'outer;
        }
    }
    kpt = kpt.max(1.0);

    // --- θ and final selection ---------------------------------------
    let lambda =
        (8.0 + 2.0 * eps) * nf * (ell * nf.ln() + log_choose(n as u64, k as u64) + 2f64.ln())
            / (eps * eps);
    let theta = (lambda / kpt).ceil() as usize;
    let mut coll = RrCollection::new(g, model, seed);
    coll.extend_to(g, theta.max(1));
    let sel = node_selection(&mut coll, k);
    let estimated_spread = sel.estimated_spread(n, sel.seeds.len());
    TimResult {
        seeds: sel.seeds,
        estimated_spread,
        rr_sets_final: coll.len(),
        rr_sets_total: coll.total_generated() + estimation_coll.total_generated(),
        kpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imm::imm;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..25u32 {
            b.add_edge(0, leaf, 0.9);
        }
        b.add_edge(25, 26, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn tim_finds_the_hub() {
        let g = hub_graph();
        let r = tim_plus(&g, 1, 0.3, 1.0, DiffusionModel::IC, 3);
        assert_eq!(r.seeds, vec![0]);
        assert!(r.kpt >= 1.0);
    }

    #[test]
    fn tim_generates_more_rr_sets_than_imm() {
        // The Fig. 6 memory story: TIM's θ dominates IMM's.
        let g = hub_graph();
        let t = tim_plus(&g, 2, 0.3, 1.0, DiffusionModel::IC, 5);
        let i = imm(&g, 2, 0.3, 1.0, DiffusionModel::IC, 5);
        assert!(
            t.rr_sets_final > i.rr_sets_final,
            "TIM {} should exceed IMM {}",
            t.rr_sets_final,
            i.rr_sets_final
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = tim_plus(&g, 2, 0.4, 1.0, DiffusionModel::IC, 9);
        let b = tim_plus(&g, 2, 0.4, 1.0, DiffusionModel::IC, 9);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rr_sets_final, b.rr_sets_final);
        assert_eq!(a.kpt, b.kpt);
    }

    #[test]
    fn seeds_have_near_optimal_spread() {
        let g = hub_graph();
        let r = tim_plus(&g, 2, 0.3, 1.0, DiffusionModel::IC, 1);
        // hub + any other node dominates; estimated spread must be large.
        assert!(r.estimated_spread > 10.0, "spread {}", r.estimated_spread);
    }
}
