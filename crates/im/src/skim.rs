//! SKIM — Sketch-based Influence Maximization (Cohen, Delling, Pajor &
//! Werneck, CIKM 2014; the paper's reference \[20\]).
//!
//! §2.1 of the paper singles SKIM out as the one existing algorithm whose
//! output ordering is *prefix-preserving*: every length-`k` prefix of the
//! returned seed ordering is a `(1 − 1/e − ε)`-approximation for budget
//! `k`. PRIMA (§4.2.3) is motivated by the observation that SKIM "does
//! not dominate TIM in performance" — so we implement SKIM as the natural
//! head-to-head ablation partner for PRIMA (see
//! `uic-experiments::ablations` and the `ablations` bench).
//!
//! ## How this implementation realizes bottom-k sketches
//!
//! SKIM greedily selects seeds by *estimated residual coverage* over `ℓ`
//! sampled live-edge instances. The original maintains combined bottom-k
//! rank sketches; we realize the identical process without storing ranks:
//! a uniformly shuffled permutation of all `(instance, node)` pairs *is*
//! a draw of the rank order, so processing pairs in permutation order and
//! counting, per node `u`, how many processed pairs `(i, v)` satisfy
//! "`u` reaches `v` in instance `i` and `(i, v)` is not yet covered"
//! grows exactly the bottom-k sketch of `u`'s residual influence set.
//! When a counter reaches the sketch size `k` (here `sketch_size`), that
//! node is the approximate residual-coverage maximizer and is selected.
//!
//! After selecting a seed, SKIM performs the *residual update*: a forward
//! BFS in every instance marks the seed's influence zone covered, and
//! every newly covered pair that had already been processed retracts its
//! contribution from all counters (a reverse BFS per retracted pair).
//! Counters therefore always estimate coverage of the **residual**
//! problem, which is what makes the greedy ordering near-optimal at every
//! prefix.
//!
//! If the permutation is exhausted before a counter fills (small graphs
//! or large `sketch_size`), the counters hold the *exact* residual
//! coverage of every processed-and-uncovered pair, and we fall back to
//! selecting the argmax — this degrades gracefully into exact greedy
//! max-coverage over the sampled instances.

use uic_diffusion::LiveEdgeWorld;
use uic_graph::{Graph, NodeId};
use uic_util::{split_seed, UicRng, VisitTags};

/// Tuning knobs for [`skim`].
#[derive(Debug, Clone, Copy)]
pub struct SkimOptions {
    /// Number of live-edge instances `ℓ` the sketches are built over.
    /// More instances reduce estimator variance (the paper's SKIM uses
    /// `ℓ` in the hundreds for permanent sketches).
    pub num_instances: u32,
    /// Bottom-k sketch size: the counter threshold at which a node is
    /// declared the residual-coverage maximizer. Larger values trade
    /// running time for a tighter `(1 − 1/e − ε)` guarantee
    /// (`k = O(ε⁻² log n)` in the original analysis).
    pub sketch_size: u32,
}

impl Default for SkimOptions {
    fn default() -> Self {
        SkimOptions {
            num_instances: 64,
            sketch_size: 64,
        }
    }
}

/// Result of a [`skim`] run: a prefix-preserving seed ordering.
#[derive(Debug, Clone)]
pub struct SkimResult {
    /// Seeds in selection order; every prefix is near-optimal for its
    /// length.
    pub seeds: Vec<NodeId>,
    /// `marginal_spreads[j]` estimates the marginal influence of seed `j`
    /// given the first `j` seeds: the average (over instances) number of
    /// nodes newly covered by its residual update. Unbiased given the
    /// sampled instances.
    pub marginal_spreads: Vec<f64>,
    /// Number of live-edge instances used.
    pub num_instances: u32,
}

impl SkimResult {
    /// The first `k` seeds (prefix view, same contract as PRIMA's).
    pub fn prefix(&self, k: usize) -> &[NodeId] {
        &self.seeds[..k.min(self.seeds.len())]
    }

    /// Spread estimate of the first `k` seeds: the marginals telescope,
    /// so their prefix sum estimates `σ(S_k)`.
    pub fn estimated_spread(&self, k: usize) -> f64 {
        self.marginal_spreads[..k.min(self.marginal_spreads.len())]
            .iter()
            .sum()
    }
}

/// Flat index of pair `(instance, node)` over `ℓ × n`.
#[inline]
fn pair(i: usize, v: usize, n: usize) -> usize {
    i * n + v
}

/// Runs SKIM under the IC model, returning a prefix-preserving ordering
/// of `b` seeds. Deterministic given `seed`.
///
/// ```
/// use uic_im::{skim, SkimOptions};
/// use uic_graph::Graph;
///
/// // A hub that reaches three leaves with certainty.
/// let g = Graph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
/// let r = skim(&g, 2, &SkimOptions::default(), 7);
/// assert_eq!(r.seeds[0], 0, "the hub is the top seed");
/// assert_eq!(r.marginal_spreads[0], 4.0, "hub covers itself + 3 leaves");
/// assert_eq!(r.prefix(1), &[0]);
/// ```
pub fn skim(g: &Graph, b: u32, opts: &SkimOptions, seed: u64) -> SkimResult {
    let n = g.num_nodes() as usize;
    assert!(n >= 1, "SKIM needs a non-empty graph");
    assert!(opts.num_instances >= 1, "need at least one instance");
    assert!(opts.sketch_size >= 1, "sketch size must be ≥ 1");
    let b = (b as usize).min(n);
    let ell = opts.num_instances as usize;
    let tau = opts.sketch_size as u64;

    // ℓ sampled live-edge instances (deterministic per index).
    let worlds: Vec<LiveEdgeWorld> = (0..ell)
        .map(|i| LiveEdgeWorld::sample(g, &mut UicRng::new(split_seed(seed, i as u64))))
        .collect();

    // A uniform shuffle of all (instance, node) pairs realizes the rank
    // order of the bottom-k sketches.
    let mut perm: Vec<u32> = (0..(ell * n) as u32).collect();
    let mut rng = UicRng::new(split_seed(seed, 0x5411_u64));
    for j in (1..perm.len()).rev() {
        let r = rng.next_below(j as u32 + 1) as usize;
        perm.swap(j, r);
    }

    let mut covered = vec![false; ell * n];
    let mut processed = vec![false; ell * n];
    let mut counter = vec![0u64; n];
    let mut selected = vec![false; n];
    let mut seeds = Vec::with_capacity(b);
    let mut marginals = Vec::with_capacity(b);

    // Scratch buffers, reused across all BFS walks.
    let mut rev_tags = VisitTags::new(n);
    let mut rev_queue: Vec<NodeId> = Vec::new();
    let mut fwd_tags = VisitTags::new(n);
    let mut fwd_queue: Vec<NodeId> = Vec::new();

    let mut pos = 0usize;
    while seeds.len() < b {
        // Phase 1: consume samples until some counter fills to τ.
        let mut hit: Option<NodeId> = None;
        while pos < perm.len() && hit.is_none() {
            let s = perm[pos] as usize;
            pos += 1;
            if covered[s] {
                continue;
            }
            let (i, v) = (s / n, (s % n) as NodeId);
            processed[s] = true;
            // Credit every node that reaches v in instance i. The BFS is
            // always run to completion so later retractions stay exact.
            reverse_reach(g, &worlds[i], v, &mut rev_tags, &mut rev_queue);
            let mut best: Option<NodeId> = None;
            for &u in &rev_queue {
                if selected[u as usize] {
                    continue;
                }
                counter[u as usize] += 1;
                if counter[u as usize] >= tau
                    && best.is_none_or(|c| counter[u as usize] > counter[c as usize])
                {
                    best = Some(u);
                }
            }
            hit = best;
        }
        // Phase 2 (fallback): permutation exhausted — counters now hold
        // exact residual coverage of all uncovered samples; take argmax.
        let u = match hit {
            Some(u) => u,
            None => match (0..n)
                .filter(|&v| !selected[v])
                .max_by_key(|&v| (counter[v], std::cmp::Reverse(v)))
            {
                Some(v) => v as NodeId,
                None => break,
            },
        };

        // Residual update: cover u's influence zone in every instance and
        // retract counter contributions of newly covered processed pairs.
        selected[u as usize] = true;
        counter[u as usize] = 0;
        let mut newly = 0u64;
        for (i, world) in worlds.iter().enumerate() {
            if covered[pair(i, u as usize, n)] {
                // u's entire reachable set was covered when this pair was
                // (coverage is closed under forward reachability).
                continue;
            }
            fwd_tags.reset();
            fwd_queue.clear();
            fwd_tags.mark(u as usize);
            fwd_queue.push(u);
            let mut head = 0;
            while head < fwd_queue.len() {
                let w = fwd_queue[head];
                head += 1;
                let p = pair(i, w as usize, n);
                debug_assert!(!covered[p]);
                covered[p] = true;
                newly += 1;
                if processed[p] {
                    // This sample had credited every node reaching w;
                    // it is no longer part of the residual problem.
                    reverse_reach(g, world, w, &mut rev_tags, &mut rev_queue);
                    for &x in &rev_queue {
                        if !selected[x as usize] {
                            debug_assert!(counter[x as usize] > 0);
                            counter[x as usize] -= 1;
                        }
                    }
                }
                for (j, &next) in g.out_neighbors(w).iter().enumerate() {
                    if world.is_live(g, w, j)
                        && !covered[pair(i, next as usize, n)]
                        && fwd_tags.mark(next as usize)
                    {
                        fwd_queue.push(next);
                    }
                }
            }
        }
        seeds.push(u);
        marginals.push(newly as f64 / ell as f64);
    }

    SkimResult {
        seeds,
        marginal_spreads: marginals,
        num_instances: opts.num_instances,
    }
}

/// Reverse BFS along live edges: fills `queue` with every node that can
/// reach `root` in `world` (including `root` itself).
fn reverse_reach(
    g: &Graph,
    world: &LiveEdgeWorld,
    root: NodeId,
    tags: &mut VisitTags,
    queue: &mut Vec<NodeId>,
) {
    tags.reset();
    queue.clear();
    tags.mark(root as usize);
    queue.push(root);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let srcs = g.in_neighbors(v);
        let ids = g.in_edge_ids(v);
        for (idx, &src) in srcs.iter().enumerate() {
            if world.is_live_id(ids[idx] as usize) && tags.mark(src as usize) {
                queue.push(src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imm::imm;
    use crate::rrset::{DiffusionModel, RrCollection};
    use uic_diffusion::exact_spread;
    use uic_graph::{GraphBuilder, Weighting};

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..25u32 {
            b.add_edge(0, leaf, 0.9);
        }
        b.add_edge(25, 26, 0.5);
        b.add_edge(27, 28, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn skim_finds_the_hub_first() {
        let g = hub_graph();
        let r = skim(&g, 3, &SkimOptions::default(), 42);
        assert_eq!(r.seeds[0], 0, "hub must be the first seed");
        assert_eq!(r.seeds.len(), 3);
        assert!(
            r.marginal_spreads[0] > 10.0,
            "hub marginal ≈ 1 + 24·0.9 ≈ 22.6, got {}",
            r.marginal_spreads[0]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = skim(&g, 5, &SkimOptions::default(), 9);
        let b = skim(&g, 5, &SkimOptions::default(), 9);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.marginal_spreads, b.marginal_spreads);
    }

    #[test]
    fn marginals_telescope_to_full_coverage_when_b_equals_n() {
        // Selecting every node covers every (instance, node) pair, so the
        // marginal estimates must sum to exactly n.
        let g = hub_graph();
        let r = skim(&g, 30, &SkimOptions::default(), 3);
        assert_eq!(r.seeds.len(), 30);
        let total: f64 = r.marginal_spreads.iter().sum();
        assert!(
            (total - 30.0).abs() < 1e-9,
            "marginals must telescope to n, got {total}"
        );
        // And every node appears exactly once.
        let mut sorted = r.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn budget_capped_at_n() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let r = skim(&g, 10, &SkimOptions::default(), 1);
        assert_eq!(r.seeds.len(), 3);
    }

    #[test]
    fn fallback_path_still_ranks_by_residual_coverage() {
        // A sketch size no counter can reach forces the exhausted-
        // permutation fallback, which must still pick the hub first.
        let g = hub_graph();
        let opts = SkimOptions {
            num_instances: 16,
            sketch_size: 100_000,
        };
        let r = skim(&g, 2, &opts, 5);
        assert_eq!(r.seeds[0], 0);
    }

    #[test]
    fn skim_prefix_quality_close_to_bruteforce() {
        // On tiny graphs the 2-prefix must reach the usual greedy ratio
        // of the brute-force optimum.
        use uic_util::UicRng;
        let mut rng = UicRng::new(12);
        let mut b = GraphBuilder::new(8);
        let mut added = 0;
        'fill: for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v && rng.coin(0.3) {
                    b.add_edge(u, v, 0.5);
                    added += 1;
                    if added == 16 {
                        break 'fill;
                    }
                }
            }
        }
        let g = b.build(Weighting::AsGiven, 0);
        let opts = SkimOptions {
            num_instances: 512,
            sketch_size: 256,
        };
        let r = skim(&g, 2, &opts, 77);
        let got = exact_spread(&g, r.prefix(2));
        let mut opt = 0.0f64;
        for x in 0..8u32 {
            for y in (x + 1)..8u32 {
                opt = opt.max(exact_spread(&g, &[x, y]));
            }
        }
        assert!(
            got >= (1.0 - 1.0 / std::f64::consts::E - 0.1) * opt,
            "SKIM {got} vs OPT {opt}"
        );
    }

    #[test]
    fn skim_ordering_competitive_with_imm_on_every_prefix() {
        // The §2.1 claim in miniature: SKIM's ordering is prefix-
        // preserving, so each prefix must be competitive with a dedicated
        // IMM run at that budget (scored by a neutral RR collection).
        let mut b = GraphBuilder::new(200);
        let mut rng = uic_util::UicRng::new(4);
        for v in 1..200u32 {
            // Preferential-ish attachment to earlier nodes.
            for _ in 0..3 {
                let u = rng.next_below(v);
                b.add_edge(u, v, 0.2);
            }
        }
        let g = b.build(Weighting::AsGiven, 0);
        let r = skim(
            &g,
            20,
            &SkimOptions {
                num_instances: 256,
                sketch_size: 64,
            },
            13,
        );
        let mut judge = RrCollection::new(&g, DiffusionModel::IC, 999);
        judge.extend_to(&g, 50_000);
        for &k in &[5usize, 10, 20] {
            let skim_spread = judge.estimate_spread(r.prefix(k));
            let imm_seeds = imm(&g, k as u32, 0.3, 1.0, DiffusionModel::IC, 21).seeds;
            let imm_spread = judge.estimate_spread(&imm_seeds);
            assert!(
                skim_spread >= 0.85 * imm_spread,
                "prefix {k}: SKIM {skim_spread} vs IMM {imm_spread}"
            );
        }
    }

    #[test]
    fn estimated_spread_is_prefix_sum_of_marginals() {
        let g = hub_graph();
        let r = skim(&g, 4, &SkimOptions::default(), 8);
        let manual: f64 = r.marginal_spreads[..2].iter().sum();
        assert_eq!(r.estimated_spread(2), manual);
        assert!(r.estimated_spread(4) >= r.estimated_spread(2));
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_rejected() {
        let g = hub_graph();
        skim(
            &g,
            1,
            &SkimOptions {
                num_instances: 0,
                sketch_size: 8,
            },
            1,
        );
    }
}
