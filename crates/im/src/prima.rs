//! PRIMA — **PR**efix preserving **I**nfluence **M**aximization
//! **A**lgorithm (Algorithm 2 of the paper).
//!
//! Given a budget vector `b̄` sorted non-increasingly, PRIMA returns a
//! single greedy *ordering* of `b = max b̄` seeds such that, with
//! probability `1 − 1/n^ℓ`, **every** prefix of size `b_i ∈ b̄` is a
//! `(1 − 1/e − ε)`-approximation for budget `b_i` (Definition 1). Plain
//! IMM does not have this property for non-uniform budgets because its
//! sample size is not monotone in `k`; PRIMA fixes it by
//! * inflating the log-failure exponent to `ℓ′ = log_n(n^ℓ · |b̄|)`
//!   (union bound over budgets),
//! * processing budgets largest-first while *reusing* the RR collection
//!   and the previous greedy ordering's prefixes on budget switches, and
//! * regenerating the final collection from scratch (the Chen 2018 fix)
//!   before the last `NodeSelection`.

use crate::imm::Bounds;
use crate::node_selection::{node_selection, node_selection_prefix_indexed, NodeSelectionResult};
use crate::rrset::{DiffusionModel, RrCollection};
use uic_diffusion::{ObjectiveError, WelfareObjective};
use uic_graph::{Graph, NodeId};

/// Result of a PRIMA run.
#[derive(Debug, Clone)]
pub struct PrimaResult {
    /// Greedy seed ordering of length `max(b̄)` (capped at `n`).
    pub order: Vec<NodeId>,
    /// Cumulative RR-set coverage per prefix on the final collection.
    pub coverage: Vec<u64>,
    /// RR sets used by the final NodeSelection (the Table 6 metric).
    pub rr_sets_final: usize,
    /// RR sets generated over the run, including phase 1 and discarded.
    pub rr_sets_total: u64,
    /// Number of budget entries certified inside the sampling loop
    /// (diagnostics; the remainder fell back to `LB = 1`).
    pub budgets_certified: usize,
}

impl PrimaResult {
    /// The prefix-preserving seed set for budget `k` (top-`k` nodes).
    pub fn seeds_for_budget(&self, k: u32) -> &[NodeId] {
        &self.order[..(k as usize).min(self.order.len())]
    }
}

/// Runs PRIMA on budget vector `budgets` (must be sorted non-increasing).
pub fn prima(
    g: &Graph,
    budgets: &[u32],
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
) -> PrimaResult {
    let n = g.num_nodes();
    assert!(!budgets.is_empty(), "budget vector must be non-empty");
    assert!(
        budgets.windows(2).all(|w| w[0] >= w[1]),
        "budgets must be sorted in non-increasing order"
    );
    let b = budgets[0];
    assert!(b >= 1 && b <= n, "max budget {b} out of range for n={n}");
    assert!(*budgets.last().unwrap() >= 1, "budgets must be ≥ 1");

    let nf = n as f64;
    // Line 2: ℓ ← ℓ + ln 2 / ln n, then ℓ′ = log_n(n^ℓ · |b̄|).
    let ell_boosted = ell + 2f64.ln() / nf.ln();
    let ell_prime = ell_boosted + (budgets.len() as f64).ln() / nf.ln();
    let bounds = Bounds::new(n, eps, ell_prime);
    let eps_prime = bounds.eps_prime();

    let mut coll = RrCollection::new(g, model, seed);
    let mut s = 0usize; // index into budgets (paper's s−1)
    let mut i = 1u32;
    let mut budget_switch = false;
    let mut prev_selection: Option<NodeSelectionResult> = None;
    let mut theta_required = 0usize;
    let max_rounds = bounds.max_rounds();

    while i <= max_rounds && s < budgets.len() {
        let k = budgets[s];
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (bounds.lambda_prime(k) / x).ceil() as usize;
        coll.extend_to(g, theta_i);
        // Line 8–11: on a budget switch, reuse the previous ordering's
        // prefix instead of re-running NodeSelection.
        let estimate = if budget_switch {
            let prev = prev_selection
                .as_ref()
                .expect("budget switch implies a previous selection");
            let prefix = prev.prefix(k as usize);
            coll.num_nodes() as f64 * fraction_covered(&mut coll, prefix)
        } else {
            let sel = node_selection(&mut coll, k);
            let est = sel.estimated_spread(n, sel.seeds.len().min(k as usize));
            prev_selection = Some(sel);
            est
        };
        if estimate >= (1.0 + eps_prime) * x {
            // Lines 13–17: certify LB, size the collection for this
            // budget, move to the next one.
            let lb = estimate / (1.0 + eps_prime);
            let theta_k = (bounds.lambda_star(k) / lb).ceil() as usize;
            theta_required = theta_required.max(theta_k);
            s += 1;
            budget_switch = true;
            if s < budgets.len() {
                // Grow R so the next budget's coverage check can reuse it
                // (line 15). Skipped after the last budget: the final
                // collection is regenerated from scratch anyway.
                coll.extend_to(g, theta_k);
            }
        } else {
            i += 1;
            budget_switch = false;
        }
    }
    let budgets_certified = s;
    if s < budgets.len() {
        // Lines 20–21: remaining budgets fall back to LB = 1; the largest
        // remaining requirement is the current budget's λ* (λ* is
        // monotone in k and budgets are non-increasing).
        let theta_k = bounds.lambda_star(budgets[s]).ceil() as usize;
        theta_required = theta_required.max(theta_k);
    }
    // Lines 22–25: regenerate from scratch, final NodeSelection at b.
    coll.reset();
    coll.extend_to(g, theta_required.max(1));
    let sel = node_selection(&mut coll, b);
    PrimaResult {
        order: sel.seeds,
        coverage: sel.covered,
        rr_sets_final: coll.len(),
        rr_sets_total: coll.total_generated(),
        budgets_certified,
    }
}

/// PRIMA over a **warm, shared, extend-only** RR collection — the
/// resident-service variant of [`prima`].
///
/// Runs the same certification loop and final selection as [`prima`],
/// but every selection and spread estimate is restricted to an explicit
/// arena *prefix* (the running maximum of the sample-size targets this
/// call has requested), and the collection is **never reset**: samples
/// are only ever topped up with [`RrCollection::extend_to`]. Because RR
/// set `j` is a pure function of `(seed, j)` and prefixes of a warm
/// arena coincide with a cold arena's contents, the result is a pure
/// function of `(graph, budgets, eps, ell, collection seed)` —
/// independent of whatever earlier queries grew the arena. A server can
/// therefore keep one collection per `(model, seed)` resident across
/// queries and still answer bit-identically to an offline run on a
/// fresh collection.
///
/// The price of reuse: the Chen (2018) from-scratch regeneration before
/// the final `NodeSelection` is deliberately skipped (a regeneration
/// draws fresh sets and can never be replayed on a shared arena), so
/// the final estimate reuses certification-phase sets, as the original
/// IMM did. `rr_sets_total` reports the cold-equivalent sample count
/// (what a fresh run would generate), not the warm arena's top-up —
/// callers that want the actual incremental work should difference
/// [`RrCollection::total_generated`] around the call.
///
/// # Panics
/// On the same budget/parameter violations as [`prima`], and when
/// `coll` is not extend-only (a reset collection replays nothing) or is
/// bound to a different graph size.
pub fn warm_prima(
    g: &Graph,
    coll: &mut RrCollection,
    budgets: &[u32],
    eps: f64,
    ell: f64,
) -> PrimaResult {
    match warm_prima_on(g, &ExclusiveArena::new(coll), budgets, eps, ell) {
        Ok(r) => r,
        Err(never) => match never {},
    }
}

/// Shared access to a warm RR arena, as [`warm_prima_on`] consumes it.
///
/// The certification loop alternates two phases with very different
/// locking needs: *top-up* (append sets, merge the index — exclusive)
/// and *selection / coverage estimation* (pure reads — shareable). This
/// trait names that split so one driver serves both the trivial
/// exclusive case ([`warm_prima`] on `&mut RrCollection`) and a
/// reader/writer shared arena (the `uic-serve` sharded registry, where
/// many queries select concurrently under read locks and only top-up
/// briefly takes the write lock).
///
/// ## Contract
///
/// * After `prepare(g, target)` returns `Ok`, every subsequent `read`
///   observes a collection with `len() ≥ target` and a current index
///   ([`RrCollection::index_is_current`]). Growth by *other* holders of
///   the same arena is fine — selection is prefix-restricted, so extra
///   sets beyond `target` never change answers.
/// * The collection is extend-only (never `reset`), bound to `g`, and
///   all growth goes through `extend_to` — the prefix-stability
///   foundation of the bit-identity guarantee.
/// * `prepare` may fail (fault injection, resource caps); the driver
///   surfaces the error without touching the arena further.
pub trait WarmArena {
    /// Why `prepare` can refuse (use [`std::convert::Infallible`] when
    /// it cannot).
    type Error;

    /// Grows the arena to at least `target` sets and brings the index
    /// current, under exclusive access.
    fn prepare(&self, g: &Graph, target: usize) -> Result<(), Self::Error>;

    /// Runs `f` under shared access. Implementations must uphold the
    /// index-currency contract described on the trait.
    fn read<R>(&self, f: impl FnOnce(&RrCollection) -> R) -> R;

    /// Greedy max-coverage on the first `num_sets` sets under shared
    /// access. The default runs
    /// [`node_selection_prefix_indexed`] directly; a shared-arena
    /// holder may override it to serve a memoized
    /// [`SelectionPlan`](crate::SelectionPlan) (the `uic-serve` plan
    /// cache), **provided the override returns exactly what the
    /// default would** — selection results feed the certification
    /// thresholds, so any deviation breaks the bit-identity contract.
    fn select(&self, k: u32, num_sets: usize) -> NodeSelectionResult {
        self.read(|coll| node_selection_prefix_indexed(coll, k, num_sets))
    }
}

/// The trivial [`WarmArena`]: exclusive ownership of one collection
/// (what [`warm_prima`] wraps around its `&mut RrCollection`).
pub struct ExclusiveArena<'a> {
    coll: std::cell::RefCell<&'a mut RrCollection>,
}

impl<'a> ExclusiveArena<'a> {
    /// Wraps an exclusively-held collection.
    pub fn new(coll: &'a mut RrCollection) -> ExclusiveArena<'a> {
        ExclusiveArena {
            coll: std::cell::RefCell::new(coll),
        }
    }
}

impl WarmArena for ExclusiveArena<'_> {
    type Error = std::convert::Infallible;

    fn prepare(&self, g: &Graph, target: usize) -> Result<(), Self::Error> {
        let mut coll = self.coll.borrow_mut();
        coll.extend_to(g, target);
        coll.ensure_index();
        Ok(())
    }

    fn read<R>(&self, f: impl FnOnce(&RrCollection) -> R) -> R {
        f(&self.coll.borrow())
    }
}

/// [`warm_prima`] over any [`WarmArena`]: the same certification loop,
/// with top-up routed through `prepare` (exclusive) and every selection
/// / coverage estimate through `read` (shared). Bit-identical to
/// [`prima`] with the arena's `(model, seed)` regardless of how large
/// the shared arena already is or concurrently becomes — all reads are
/// prefix-restricted to this call's own running extend target.
///
/// # Errors
/// Whatever `prepare` returns; the loop stops at the first refusal.
///
/// # Panics
/// On the same budget/parameter violations as [`prima`], and when the
/// arena is reset (not extend-only) or bound to a different graph.
pub fn warm_prima_on<A: WarmArena>(
    g: &Graph,
    arena: &A,
    budgets: &[u32],
    eps: f64,
    ell: f64,
) -> Result<PrimaResult, A::Error> {
    let n = g.num_nodes();
    assert!(!budgets.is_empty(), "budget vector must be non-empty");
    assert!(
        budgets.windows(2).all(|w| w[0] >= w[1]),
        "budgets must be sorted in non-increasing order"
    );
    let b = budgets[0];
    assert!(b >= 1 && b <= n, "max budget {b} out of range for n={n}");
    assert!(*budgets.last().unwrap() >= 1, "budgets must be ≥ 1");
    arena.read(|coll| {
        assert_eq!(coll.num_nodes(), n, "collection bound to a different graph");
        assert_eq!(
            coll.total_generated(),
            coll.len() as u64,
            "warm_prima needs an extend-only (never reset) collection"
        );
    });

    let nf = n as f64;
    let ell_boosted = ell + 2f64.ln() / nf.ln();
    let ell_prime = ell_boosted + (budgets.len() as f64).ln() / nf.ln();
    let bounds = Bounds::new(n, eps, ell_prime);
    let eps_prime = bounds.eps_prime();

    // The prefix: how many sets a cold run would hold right now — the
    // running max of every extend target requested by this call.
    let mut cur = 0usize;
    let mut s = 0usize;
    let mut i = 1u32;
    let mut budget_switch = false;
    let mut prev_selection: Option<NodeSelectionResult> = None;
    let mut theta_required = 0usize;
    let max_rounds = bounds.max_rounds();

    while i <= max_rounds && s < budgets.len() {
        let k = budgets[s];
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (bounds.lambda_prime(k) / x).ceil() as usize;
        cur = cur.max(theta_i);
        arena.prepare(g, cur)?;
        let estimate = if budget_switch {
            let prev = prev_selection
                .as_ref()
                .expect("budget switch implies a previous selection");
            let prefix = prev.prefix(k as usize);
            // Shaped exactly like `prima`'s `n * fraction_covered(..)`
            // (spread ÷ n, then × n): the spare divide/multiply pair is
            // not a float identity, and certification thresholds compare
            // this value — bit-identity to the cold path requires the
            // identical rounding sequence.
            arena.read(|coll| {
                nf * (coll.estimate_spread_prefix_indexed(prefix, cur) / coll.num_nodes() as f64)
            })
        } else {
            let sel = arena.select(k, cur);
            let est = sel.estimated_spread(n, sel.seeds.len().min(k as usize));
            prev_selection = Some(sel);
            est
        };
        if estimate >= (1.0 + eps_prime) * x {
            let lb = estimate / (1.0 + eps_prime);
            let theta_k = (bounds.lambda_star(k) / lb).ceil() as usize;
            theta_required = theta_required.max(theta_k);
            s += 1;
            budget_switch = true;
            if s < budgets.len() {
                cur = cur.max(theta_k);
                arena.prepare(g, cur)?;
            }
        } else {
            i += 1;
            budget_switch = false;
        }
    }
    let budgets_certified = s;
    if s < budgets.len() {
        let theta_k = bounds.lambda_star(budgets[s]).ceil() as usize;
        theta_required = theta_required.max(theta_k);
    }
    // Final selection on the θ-required prefix — top-up, never reset.
    let final_sets = theta_required.max(1);
    cur = cur.max(final_sets);
    arena.prepare(g, cur)?;
    let sel = arena.select(b, final_sets);
    Ok(PrimaResult {
        order: sel.seeds,
        coverage: sel.covered,
        rr_sets_final: final_sets,
        rr_sets_total: cur as u64,
        budgets_certified,
    })
}

/// Objective-aware [`prima`].
///
/// PRIMA's guarantee (Definition 1) rests on RR-set coverage being an
/// unbiased estimator of the objective, which requires a
/// sum-decomposable ([`WelfareObjective::is_additive`]) objective. For
/// those this is exactly [`prima`]; for any other objective it refuses
/// with [`ObjectiveError::NonAdditive`].
pub fn prima_for(
    g: &Graph,
    budgets: &[u32],
    eps: f64,
    ell: f64,
    model: DiffusionModel,
    seed: u64,
    objective: &dyn WelfareObjective,
) -> Result<PrimaResult, ObjectiveError> {
    if !objective.is_additive() {
        return Err(ObjectiveError::NonAdditive {
            objective: objective.key().to_string(),
            algorithm: "PRIMA".to_string(),
        });
    }
    Ok(prima(g, budgets, eps, ell, model, seed))
}

/// `F_R(S)` for an arbitrary seed set over a collection.
fn fraction_covered(coll: &mut RrCollection, seeds: &[NodeId]) -> f64 {
    if coll.is_empty() {
        return 0.0;
    }
    coll.estimate_spread(seeds) / coll.num_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_diffusion::exact_spread;
    use uic_graph::{GraphBuilder, Weighting};
    use uic_util::UicRng;

    fn hub_graph() -> Graph {
        let mut b = GraphBuilder::new(40);
        for leaf in 1..30u32 {
            b.add_edge(0, leaf, 0.8);
        }
        for leaf in 31..38u32 {
            b.add_edge(30, leaf, 0.8);
        }
        b.add_edge(38, 39, 0.5);
        b.build(Weighting::AsGiven, 0)
    }

    #[test]
    fn returns_max_budget_many_seeds_hub_first() {
        let g = hub_graph();
        let r = prima(&g, &[5, 3, 1], 0.4, 1.0, DiffusionModel::IC, 3);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.order[0], 0, "big hub first");
        assert_eq!(r.order[1], 30, "second hub next");
        assert_eq!(r.seeds_for_budget(1), &[0]);
        assert_eq!(r.seeds_for_budget(3).len(), 3);
    }

    #[test]
    fn prefixes_are_consistent() {
        let g = hub_graph();
        let r = prima(&g, &[6, 4, 2, 1], 0.4, 1.0, DiffusionModel::IC, 9);
        let full = r.order.clone();
        for &k in &[1u32, 2, 4, 6] {
            assert_eq!(r.seeds_for_budget(k), &full[..k as usize]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = hub_graph();
        let a = prima(&g, &[4, 2], 0.4, 1.0, DiffusionModel::IC, 7);
        let b = prima(&g, &[4, 2], 0.4, 1.0, DiffusionModel::IC, 7);
        assert_eq!(a.order, b.order);
        assert_eq!(a.rr_sets_final, b.rr_sets_final);
    }

    #[test]
    fn prefix_quality_against_bruteforce() {
        // Empirical Definition 1 check on a tiny graph: every budget's
        // prefix spread ≥ (1 − 1/e − ε) OPT_k (modulo exact evaluation).
        let mut builder = GraphBuilder::new(9);
        let mut rng = UicRng::new(4);
        let mut added = 0;
        'outer: for u in 0..9u32 {
            for v in 0..9u32 {
                if u != v && rng.coin(0.3) {
                    builder.add_edge(u, v, 0.5);
                    added += 1;
                    if added == 18 {
                        break 'outer;
                    }
                }
            }
        }
        let g = builder.build(Weighting::AsGiven, 0);
        let r = prima(&g, &[3, 2, 1], 0.2, 1.0, DiffusionModel::IC, 13);
        let ratio = 1.0 - 1.0 / std::f64::consts::E - 0.2;
        for &k in &[1u32, 2, 3] {
            let got = exact_spread(&g, r.seeds_for_budget(k));
            let opt = brute_force_opt(&g, k);
            assert!(
                got >= ratio * opt - 1e-9,
                "budget {k}: prefix {got} < {ratio} × OPT {opt}"
            );
        }
    }

    fn brute_force_opt(g: &Graph, k: u32) -> f64 {
        let n = g.num_nodes();
        let mut best = 0.0f64;
        // enumerate all k-subsets of 0..n (n ≤ 10 in tests)
        fn rec(g: &Graph, start: u32, left: u32, cur: &mut Vec<u32>, best: &mut f64) {
            if left == 0 {
                *best = best.max(exact_spread(g, cur));
                return;
            }
            for v in start..g.num_nodes() {
                cur.push(v);
                rec(g, v + 1, left - 1, cur, best);
                cur.pop();
            }
        }
        rec(g, 0, k, &mut Vec::new(), &mut best);
        let _ = n;
        best
    }

    #[test]
    fn uniform_budget_vector_matches_single_budget_shape() {
        // With one budget entry PRIMA degenerates to (fixed) IMM modulo
        // the |b̄| = 1 union-bound term, which is log_n(1) = 0.
        let g = hub_graph();
        let p = prima(&g, &[3], 0.4, 1.0, DiffusionModel::IC, 21);
        let i = crate::imm::imm(&g, 3, 0.4, 1.0, DiffusionModel::IC, 21);
        assert_eq!(p.order, i.seeds);
        assert_eq!(p.rr_sets_final, i.rr_sets_final);
    }

    #[test]
    fn more_budget_entries_cost_more_samples() {
        let g = hub_graph();
        let single = prima(&g, &[4], 0.4, 1.0, DiffusionModel::IC, 5);
        let many = prima(
            &g,
            &[4, 4, 4, 4, 4, 4, 4, 4],
            0.4,
            1.0,
            DiffusionModel::IC,
            5,
        );
        assert!(
            many.rr_sets_final >= single.rr_sets_final,
            "ℓ′ union bound must not shrink the sample size"
        );
    }

    #[test]
    fn objective_gate_matches_plain_prima_for_utilitarian() {
        use uic_diffusion::{Ces, Utilitarian};
        let g = hub_graph();
        let gated = prima_for(&g, &[4, 2], 0.4, 1.0, DiffusionModel::IC, 7, &Utilitarian).unwrap();
        let plain = prima(&g, &[4, 2], 0.4, 1.0, DiffusionModel::IC, 7);
        assert_eq!(gated.order, plain.order);
        assert_eq!(gated.rr_sets_final, plain.rr_sets_final);
        let ces = Ces::new(0.5).unwrap();
        let err = prima_for(&g, &[4, 2], 0.4, 1.0, DiffusionModel::IC, 7, &ces).unwrap_err();
        assert!(matches!(err, ObjectiveError::NonAdditive { .. }));
    }

    #[test]
    fn warm_prima_is_a_pure_function_of_spec_and_seed() {
        // Two fresh collections, same seed → identical results, counters
        // included.
        let g = hub_graph();
        let mut c1 = RrCollection::new(&g, DiffusionModel::IC, 23);
        let a = warm_prima(&g, &mut c1, &[5, 3, 1], 0.4, 1.0);
        let mut c2 = RrCollection::new(&g, DiffusionModel::IC, 23);
        let b = warm_prima(&g, &mut c2, &[5, 3, 1], 0.4, 1.0);
        assert_eq!(a.order, b.order);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.rr_sets_final, b.rr_sets_final);
        assert_eq!(a.rr_sets_total, b.rr_sets_total);
        assert_eq!(a.budgets_certified, b.budgets_certified);
    }

    #[test]
    fn warm_arena_reuse_is_bit_identical_to_cold_runs() {
        // The serving contract: a shared arena grown by earlier queries
        // answers later queries exactly as a fresh arena would.
        let g = hub_graph();
        let mut warm = RrCollection::new(&g, DiffusionModel::IC, 31);
        // Query 1 grows the arena.
        let q1_warm = warm_prima(&g, &mut warm, &[6, 2], 0.4, 1.0);
        // Query 2, different budgets, reuses the (now large) arena.
        let q2_warm = warm_prima(&g, &mut warm, &[3], 0.5, 1.0);
        // Cold replicas.
        let mut cold1 = RrCollection::new(&g, DiffusionModel::IC, 31);
        let q1_cold = warm_prima(&g, &mut cold1, &[6, 2], 0.4, 1.0);
        let mut cold2 = RrCollection::new(&g, DiffusionModel::IC, 31);
        let q2_cold = warm_prima(&g, &mut cold2, &[3], 0.5, 1.0);
        assert_eq!(q1_warm.order, q1_cold.order);
        assert_eq!(q1_warm.coverage, q1_cold.coverage);
        assert_eq!(q1_warm.rr_sets_total, q1_cold.rr_sets_total);
        assert_eq!(q2_warm.order, q2_cold.order);
        assert_eq!(q2_warm.coverage, q2_cold.coverage);
        assert_eq!(q2_warm.rr_sets_final, q2_cold.rr_sets_final);
        assert_eq!(q2_warm.rr_sets_total, q2_cold.rr_sets_total);
    }

    #[test]
    fn repeat_queries_top_up_nothing() {
        // Re-running an identical query on the warm arena must generate
        // zero new RR sets — the amortization the server exists for.
        let g = hub_graph();
        let mut warm = RrCollection::new(&g, DiffusionModel::IC, 47);
        let first = warm_prima(&g, &mut warm, &[4, 2], 0.4, 1.0);
        let generated_after_first = warm.total_generated();
        let second = warm_prima(&g, &mut warm, &[4, 2], 0.4, 1.0);
        assert_eq!(warm.total_generated(), generated_after_first);
        assert_eq!(first.order, second.order);
        assert_eq!(first.rr_sets_total, second.rr_sets_total);
    }

    #[test]
    #[should_panic(expected = "extend-only")]
    fn warm_prima_rejects_reset_collections() {
        let g = hub_graph();
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, 1);
        coll.extend_to(&g, 10);
        coll.reset();
        warm_prima(&g, &mut coll, &[2], 0.4, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_unsorted_budgets() {
        let g = hub_graph();
        prima(&g, &[2, 5], 0.3, 1.0, DiffusionModel::IC, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_budgets() {
        let g = hub_graph();
        prima(&g, &[], 0.3, 1.0, DiffusionModel::IC, 1);
    }
}
