//! Equivalence suite for the flat-arena `RrCollection`: the arena-backed
//! storage plus persistent inverted index must be **observationally
//! identical** to the historical nested-`Vec<Vec<NodeId>>` semantics.
//! The old `node_selection` (per-call index rebuild, lazy CELF heap) and
//! `estimate_spread` (per-call `vec![false; n]` scan) are ported here
//! verbatim as references and compared bit-for-bit against the arena
//! implementations, on both sampled and hand-crafted collections, and
//! across incremental-growth schedules and generation thread counts.

use proptest::prelude::*;
use uic_graph::{Graph, GraphBuilder, NodeId, Weighting};
use uic_im::{node_selection, DiffusionModel, RrCollection};

// ---------------------------------------------------------------------
// Reference implementations: the pre-arena nested-Vec semantics.
// ---------------------------------------------------------------------

/// The historical `node_selection`: rebuilds the inverted index from the
/// nested sets on every call, then runs the identical lazy-heap greedy.
fn reference_node_selection(
    num_nodes: u32,
    sets: &[Vec<NodeId>],
    k: u32,
) -> (Vec<NodeId>, Vec<u64>) {
    let n = num_nodes as usize;
    let k = (k as usize).min(n);
    let mut deg = vec![0u32; n + 1];
    for r in sets {
        for &v in r {
            deg[v as usize + 1] += 1;
        }
    }
    for i in 0..n {
        deg[i + 1] += deg[i];
    }
    let total: usize = deg[n] as usize;
    let mut idx = vec![0u32; total];
    let mut cursor = deg.clone();
    for (rid, r) in sets.iter().enumerate() {
        for &v in r {
            idx[cursor[v as usize] as usize] = rid as u32;
            cursor[v as usize] += 1;
        }
    }
    let mut cover_count: Vec<u64> = vec![0; n];
    for v in 0..n {
        cover_count[v] = (deg[v + 1] - deg[v]) as u64;
    }
    let mut heap: std::collections::BinaryHeap<(u64, NodeId)> =
        (0..n).map(|v| (cover_count[v], v as NodeId)).collect();
    let mut set_covered = vec![false; sets.len()];
    let mut seeds = Vec::with_capacity(k);
    let mut covered_cum = Vec::with_capacity(k);
    let mut covered_total = 0u64;
    let mut chosen = vec![false; n];
    while seeds.len() < k {
        let Some((stale, v)) = heap.pop() else { break };
        let vi = v as usize;
        if chosen[vi] {
            continue;
        }
        if stale != cover_count[vi] {
            heap.push((cover_count[vi], v));
            continue;
        }
        chosen[vi] = true;
        seeds.push(v);
        covered_total += cover_count[vi];
        covered_cum.push(covered_total);
        for &rid in &idx[deg[vi] as usize..deg[vi + 1] as usize] {
            if set_covered[rid as usize] {
                continue;
            }
            set_covered[rid as usize] = true;
            for &u in &sets[rid as usize] {
                cover_count[u as usize] = cover_count[u as usize].saturating_sub(1);
            }
        }
        cover_count[vi] = 0;
    }
    (seeds, covered_cum)
}

/// The historical `estimate_spread`: a fresh seed-membership array and a
/// full scan over every set, per call.
fn reference_estimate_spread(num_nodes: u32, sets: &[Vec<NodeId>], seeds: &[NodeId]) -> f64 {
    if sets.is_empty() {
        return 0.0;
    }
    let mut in_seed = vec![false; num_nodes as usize];
    for &s in seeds {
        in_seed[s as usize] = true;
    }
    let covered = sets
        .iter()
        .filter(|r| r.iter().any(|&v| in_seed[v as usize]))
        .count();
    num_nodes as f64 * covered as f64 / sets.len() as f64
}

/// Materializes a collection's arena back into nested sets.
fn to_nested(coll: &RrCollection) -> Vec<Vec<NodeId>> {
    coll.iter().map(<[NodeId]>::to_vec).collect()
}

fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n, 0.0f32..=1.0), 0..max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(n).dedup(true);
        for (u, v, p) in edges {
            if u != v {
                b.add_edge(u, v, p);
            }
        }
        b.build(Weighting::AsGiven, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampled collections (IC): greedy seed sequence, cumulative
    /// coverage, and spread estimates all match the nested-Vec reference
    /// bit-for-bit.
    #[test]
    fn sampled_collection_matches_reference(
        g in small_graph(12, 50),
        seed in 0u64..1000,
        k in 1u32..6,
    ) {
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, seed);
        coll.extend_to(&g, 400);
        let nested = to_nested(&coll);
        let sel = node_selection(&mut coll, k);
        let (ref_seeds, ref_cov) = reference_node_selection(12, &nested, k);
        prop_assert_eq!(&sel.seeds, &ref_seeds);
        prop_assert_eq!(&sel.covered, &ref_cov);
        let est = coll.estimate_spread(&sel.seeds);
        let ref_est = reference_estimate_spread(12, &nested, &sel.seeds);
        prop_assert_eq!(est, ref_est);
    }

    /// Same equivalence under the LT sampler.
    #[test]
    fn lt_collection_matches_reference(
        g in small_graph(10, 40),
        seed in 0u64..1000,
    ) {
        let mut coll = RrCollection::new(&g, DiffusionModel::LT, seed);
        coll.extend_to(&g, 300);
        let nested = to_nested(&coll);
        let sel = node_selection(&mut coll, 3);
        let (ref_seeds, ref_cov) = reference_node_selection(10, &nested, 3);
        prop_assert_eq!(&sel.seeds, &ref_seeds);
        prop_assert_eq!(&sel.covered, &ref_cov);
    }

    /// Hand-crafted collections through `from_raw_sets` behave like the
    /// reference over the same (sorted, deduplicated) sets.
    #[test]
    fn raw_sets_match_reference(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..9, 0..5), 0..30),
        k in 1u32..5,
        probe in proptest::collection::vec(0u32..9, 0..4),
    ) {
        // from_raw_sets sorts and dedups each set; mirror that.
        let canonical: Vec<Vec<NodeId>> = sets
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let mut coll = RrCollection::from_raw_sets(9, sets);
        let sel = node_selection(&mut coll, k);
        let (ref_seeds, ref_cov) = reference_node_selection(9, &canonical, k);
        prop_assert_eq!(&sel.seeds, &ref_seeds);
        prop_assert_eq!(&sel.covered, &ref_cov);
        let est = coll.estimate_spread(&probe);
        let ref_est = reference_estimate_spread(9, &canonical, &probe);
        prop_assert_eq!(est, ref_est);
    }

    /// The persistent index is invisible across growth schedules:
    /// selecting after several incremental extensions equals the
    /// reference on the final nested sets, and equals a one-shot build.
    #[test]
    fn incremental_growth_is_invisible(
        g in small_graph(10, 40),
        seed in 0u64..1000,
    ) {
        let mut grown = RrCollection::new(&g, DiffusionModel::IC, seed);
        for target in [50usize, 130, 400] {
            grown.extend_to(&g, target);
            // Interleave estimates so the index is merged mid-schedule.
            let _ = grown.estimate_spread(&[0, 3]);
        }
        let mut oneshot = RrCollection::new(&g, DiffusionModel::IC, seed);
        oneshot.extend_to(&g, 400);
        prop_assert_eq!(&grown, &oneshot);
        let nested = to_nested(&oneshot);
        let sel_grown = node_selection(&mut grown, 4);
        let (ref_seeds, ref_cov) = reference_node_selection(10, &nested, 4);
        prop_assert_eq!(&sel_grown.seeds, &ref_seeds);
        prop_assert_eq!(&sel_grown.covered, &ref_cov);
        prop_assert_eq!(
            grown.estimate_spread(&ref_seeds),
            reference_estimate_spread(10, &nested, &ref_seeds)
        );
    }

    /// Generation is bit-identical for 1, 2 and 8 worker threads, for
    /// both diffusion models.
    #[test]
    fn generation_threads_do_not_change_the_collection(
        g in small_graph(10, 40),
        seed in 0u64..1000,
    ) {
        for model in [DiffusionModel::IC, DiffusionModel::LT] {
            let mut reference = RrCollection::new(&g, model, seed).with_threads(1);
            reference.extend_to(&g, 700);
            for threads in [2usize, 8] {
                let mut coll = RrCollection::new(&g, model, seed).with_threads(threads);
                coll.extend_to(&g, 700);
                prop_assert_eq!(&coll, &reference, "{} threads", threads);
                prop_assert_eq!(coll.total_width(), reference.total_width());
            }
        }
    }
}
