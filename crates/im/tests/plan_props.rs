//! Property suite pinning the [`SelectionPlan`] semantics that the
//! serving layer's query cache depends on:
//!
//! 1. **Slices are exact** — for a plan computed to budget `K`,
//!    `plan.slice(k)` for any `k ≤ K` is bit-for-bit the result of a
//!    from-scratch `node_selection_prefix_indexed(coll, k, num_sets)`.
//! 2. **Resume is exact** — continuing a short plan to a larger budget
//!    yields the same picks, coverage, and residual state as computing
//!    the larger plan from scratch.
//! 3. **Plans key by explicit prefix, never by arena length** — after
//!    the arena grows, a cached plan still answers its own prefix
//!    identically (the prefix is immutable under extend-only growth),
//!    and a query for the *new* prefix computes a different plan rather
//!    than ever being served the stale one.
//!
//! Random inputs cover both sampled collections (IC on random graphs)
//! and adversarial raw set families (duplicates, empty sets, nodes that
//! appear in no set).

use proptest::prelude::*;
use uic_graph::{Graph, NodeId};
use uic_im::{node_selection_prefix_indexed, DiffusionModel, RrCollection, SelectionPlan};

/// Random raw RR-set family over `n` nodes: a mix of empty sets,
/// singletons, and larger sets, with some nodes never covered.
fn raw_collection(n: u32, picks: &[(u32, u32)]) -> RrCollection {
    let sets: Vec<Vec<NodeId>> = picks
        .iter()
        .map(|&(a, len)| (0..len % 5).map(|i| (a + i * 3) % n).collect())
        .collect();
    let mut coll = RrCollection::from_raw_sets(n, sets);
    coll.ensure_index();
    coll
}

/// Random sampled collection: IC RR sets on a random sparse digraph.
fn sampled_collection(n: u32, edges: &[(u32, u32, f32)], seed: u64, sets: usize) -> RrCollection {
    let edges: Vec<(NodeId, NodeId, f32)> = edges
        .iter()
        .filter(|&&(u, v, _)| u % n != v % n)
        .map(|&(u, v, p)| (u % n, v % n, p))
        .collect();
    let g = Graph::from_edges(n, &edges);
    let mut coll = RrCollection::new(&g, DiffusionModel::IC, seed);
    coll.extend_to(&g, sets);
    coll.ensure_index();
    coll
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: every prefix of a plan is the from-scratch answer.
    #[test]
    fn slice_of_plan_matches_from_scratch(
        n in 2u32..12,
        picks in proptest::collection::vec((0u32..12, 0u32..8), 0..30),
        kk in 1u32..16,
        frac in 0.0f64..1.0,
    ) {
        let coll = raw_collection(n, &picks);
        let num_sets = (coll.len() as f64 * frac) as usize;
        let plan = SelectionPlan::compute(&coll, kk, num_sets);
        for k in 0..=kk {
            if !plan.covers(k) {
                prop_assert!(plan.slice(k).is_none());
                continue;
            }
            let sliced = plan.slice(k).unwrap();
            let scratch = node_selection_prefix_indexed(&coll, k, num_sets);
            prop_assert_eq!(sliced, scratch, "k={} num_sets={}", k, num_sets);
        }
    }

    /// Property 2: resuming a short plan is bit-identical to computing
    /// the long plan from scratch — picks, coverage, and residual state.
    #[test]
    fn resume_matches_from_scratch(
        n in 2u32..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10, 0.1f32..0.9), 0..24),
        seed in 0u64..1000,
        sets in 1usize..200,
        k_short in 0u32..4,
        k_extra in 1u32..12,
    ) {
        let coll = sampled_collection(n, &edges, seed, sets);
        let short = SelectionPlan::compute(&coll, k_short, sets);
        let k_long = k_short + k_extra;
        let resumed = short.resume(&coll, k_long);
        let scratch = SelectionPlan::compute(&coll, k_long, sets);
        prop_assert_eq!(&resumed, &scratch);
        // Resuming the resumed plan further stays exact (chained resumes
        // are how the serving cache grows a plan across queries).
        let chained = resumed.resume(&coll, k_long + 2);
        prop_assert_eq!(chained, SelectionPlan::compute(&coll, k_long + 2, sets));
        // The short plan is untouched.
        prop_assert_eq!(short.len(), (k_short as usize).min(n as usize));
    }

    /// Property 3: a plan outlives arena growth for its own prefix and
    /// is never consulted for a different one. The stale-read hazard is
    /// structural: if plans were keyed by "current arena length" the
    /// first assertion below would fail after `extend_to`.
    #[test]
    fn plans_survive_growth_and_never_serve_a_stale_prefix(
        n in 2u32..10,
        edges in proptest::collection::vec((0u32..10, 0u32..10, 0.1f32..0.9), 1..24),
        seed in 0u64..1000,
        sets0 in 1usize..120,
        grow in 1usize..120,
        k in 1u32..8,
    ) {
        let edges: Vec<(NodeId, NodeId, f32)> = edges
            .iter()
            .filter(|&&(u, v, _)| u % n != v % n)
            .map(|&(u, v, p)| (u % n, v % n, p))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let mut coll = RrCollection::new(&g, DiffusionModel::IC, seed);
        coll.extend_to(&g, sets0);
        coll.ensure_index();
        let before = node_selection_prefix_indexed(&coll, k, sets0);
        let plan = SelectionPlan::compute(&coll, k, sets0);

        coll.extend_to(&g, sets0 + grow);
        coll.ensure_index();

        // The old prefix's answer is immutable under growth, so the
        // cached plan still serves it exactly.
        prop_assert_eq!(plan.slice(k).unwrap(), before.clone());
        prop_assert_eq!(
            node_selection_prefix_indexed(&coll, k, sets0),
            before,
            "extend-only growth must not disturb the old prefix"
        );
        // Resume against the grown arena stays pinned to the plan's own
        // prefix (it never sees the new sets).
        let resumed = plan.resume(&coll, k + 3);
        prop_assert_eq!(resumed.num_sets(), sets0);
        prop_assert_eq!(&resumed, &SelectionPlan::compute(&coll, k + 3, sets0));
        // A query for the grown prefix is a *different* plan key; its
        // answer comes from a fresh compute, not the cached plan.
        let grown = SelectionPlan::compute(&coll, k, sets0 + grow);
        prop_assert_eq!(grown.num_sets(), sets0 + grow);
        prop_assert_eq!(
            grown.slice(k).unwrap(),
            node_selection_prefix_indexed(&coll, k, sets0 + grow)
        );
    }

    /// Saturated plans (every node picked) answer arbitrary budgets.
    #[test]
    fn saturated_plans_cover_all_budgets(
        n in 1u32..8,
        picks in proptest::collection::vec((0u32..8, 1u32..8), 1..16),
        k in 0u32..64,
    ) {
        let coll = raw_collection(n, &picks);
        let plan = SelectionPlan::compute(&coll, n + 8, coll.len());
        prop_assert!(plan.is_saturated());
        prop_assert!(plan.covers(k));
        prop_assert_eq!(
            plan.slice(k).unwrap(),
            node_selection_prefix_indexed(&coll, k, coll.len())
        );
    }
}
