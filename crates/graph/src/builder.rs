//! Incremental graph construction and edge-probability assignment.

use crate::graph::{Graph, GraphError, NodeId, WeightSpec};
use uic_util::{FxHashSet, UicRng};

/// Edge-probability assignment schemes used across the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Weighting {
    /// Weighted-cascade: `p(u,v) = 1 / d_in(v)` — the paper's default
    /// (§4.3.1.3, "following previous works we set probability of edge
    /// e=(u,v) to 1/din(v)").
    WeightedCascade,
    /// Constant probability on every edge (Fig. 9d uses `0.01`).
    Constant(f32),
    /// Trivalency: each edge independently draws from {0.1, 0.01, 0.001}.
    Trivalency,
    /// Uniform random in `[lo, hi]`.
    UniformRandom(f32, f32),
    /// Keep whatever probabilities were supplied with the edges.
    AsGiven,
}

impl std::fmt::Display for Weighting {
    /// Canonical token used in snapshot-cache keys and stats tables.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Weighting::WeightedCascade => write!(f, "wc"),
            Weighting::Constant(c) => write!(f, "const:{c}"),
            Weighting::Trivalency => write!(f, "trivalency"),
            Weighting::UniformRandom(lo, hi) => write!(f, "uniform:{lo}:{hi}"),
            Weighting::AsGiven => write!(f, "as-given"),
        }
    }
}

/// Accumulates edges, optionally deduplicates, then assigns probabilities
/// and produces a CSR [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
    probs: Vec<f32>,
    dedup: bool,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            probs: Vec::new(),
            dedup: false,
            allow_self_loops: false,
        }
    }

    /// Enables duplicate-edge removal at finalization (first wins).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Permits self-loops (dropped by default: they never affect diffusion).
    pub fn allow_self_loops(mut self, yes: bool) -> Self {
        self.allow_self_loops = yes;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of edges added so far (pre-dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reserves capacity for `m` additional edges.
    pub fn reserve(&mut self, m: usize) {
        self.edges.reserve(m);
        self.probs.reserve(m);
    }

    /// Adds a directed edge with an explicit probability.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, p: f32) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        if u == v && !self.allow_self_loops {
            return;
        }
        self.edges.push((u, v));
        self.probs.push(p);
    }

    /// Adds a directed edge; probability will come from the [`Weighting`].
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v, 0.0);
    }

    /// Adds both `u→v` and `v→u` (undirected networks such as the Flixster
    /// and Orkut stand-ins are modeled as bidirected arcs, as is standard).
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) {
        self.add_arc(u, v);
        self.add_arc(v, u);
    }

    /// Finalizes into a CSR graph under the given weighting scheme.
    ///
    /// `seed` drives the stochastic weightings (trivalency / uniform);
    /// deterministic schemes ignore it. The weight **representation** is
    /// chosen from the scheme: weighted-cascade graphs store
    /// [`crate::EdgeWeights::InDegree`] and constant graphs
    /// [`crate::EdgeWeights::Constant`] — zero per-edge weight bytes —
    /// while the stochastic/as-given schemes materialize per-edge arrays.
    pub fn build(self, weighting: Weighting, seed: u64) -> Graph {
        match self.try_build(weighting, seed) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GraphBuilder::build`]: surfaces oversized edge counts
    /// and invalid probabilities as a typed [`GraphError`] so
    /// dataset-loading services can reject bad inputs gracefully.
    pub fn try_build(mut self, weighting: Weighting, seed: u64) -> Result<Graph, GraphError> {
        if self.dedup {
            let mut seen: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
            let mut kept_e = Vec::with_capacity(self.edges.len());
            let mut kept_p = Vec::with_capacity(self.probs.len());
            for (&e, &p) in self.edges.iter().zip(&self.probs) {
                if seen.insert(e) {
                    kept_e.push(e);
                    kept_p.push(p);
                }
            }
            self.edges = kept_e;
            self.probs = kept_p;
        }
        match weighting {
            // Structure-derived schemes: no per-edge arrays at all.
            Weighting::WeightedCascade => {
                Graph::try_from_arcs(self.n, &self.edges, WeightSpec::InDegree)
            }
            Weighting::Constant(c) => {
                Graph::try_from_arcs(self.n, &self.edges, WeightSpec::Constant(c))
            }
            Weighting::AsGiven => {
                Graph::try_from_arcs(self.n, &self.edges, WeightSpec::PerEdge(&self.probs))
            }
            Weighting::Trivalency | Weighting::UniformRandom(..) => {
                let mut rng = UicRng::new(seed);
                let probs: Vec<f32> = self
                    .edges
                    .iter()
                    .map(|_| match weighting {
                        Weighting::Trivalency => *[0.1f32, 0.01, 0.001]
                            .get(rng.next_below(3) as usize)
                            .unwrap(),
                        Weighting::UniformRandom(lo, hi) => lo + (hi - lo) * rng.next_f32(),
                        _ => unreachable!(),
                    })
                    .collect();
                Graph::try_from_arcs(self.n, &self.edges, WeightSpec::PerEdge(&probs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cascade_gives_reciprocal_indegree() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 3);
        b.add_arc(1, 3);
        b.add_arc(2, 3);
        b.add_arc(0, 1);
        let g = b.build(Weighting::WeightedCascade, 0);
        assert_eq!(g.weight_class(), crate::WeightClass::InDegree);
        assert_eq!(g.memory_footprint().weights, 0);
        for (u, v, p) in g.edges() {
            if v == 3 {
                assert!((p - 1.0 / 3.0).abs() < 1e-6, "({u},{v}) p={p}");
            } else {
                assert_eq!(p, 1.0);
            }
        }
    }

    #[test]
    fn constant_weighting() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        let g = b.build(Weighting::Constant(0.01), 0);
        assert_eq!(g.weight_class(), crate::WeightClass::Constant(0.01));
        assert_eq!(g.out_prob(0, 0), 0.01);
    }

    #[test]
    fn trivalency_draws_from_three_values() {
        let mut b = GraphBuilder::new(2);
        for _ in 0..300 {
            b.add_edge(0, 1, 0.0);
        }
        let g = b.build(Weighting::Trivalency, 7);
        let mut seen = std::collections::HashSet::new();
        for p in g.out_arc_probs(0).iter() {
            assert!(p == 0.1 || p == 0.01 || p == 0.001);
            seen.insert((p * 1000.0) as u32);
        }
        assert_eq!(seen.len(), 3, "all three trivalency levels should occur");
    }

    #[test]
    fn uniform_random_within_bounds_and_seeded() {
        let mut b1 = GraphBuilder::new(2);
        let mut b2 = GraphBuilder::new(2);
        for _ in 0..50 {
            b1.add_arc(0, 1);
            b2.add_arc(0, 1);
        }
        let g1 = b1.build(Weighting::UniformRandom(0.2, 0.4), 9);
        let g2 = b2.build(Weighting::UniformRandom(0.2, 0.4), 9);
        let p1: Vec<f32> = g1.out_arc_probs(0).iter().collect();
        let p2: Vec<f32> = g2.out_arc_probs(0).iter().collect();
        assert_eq!(p1, p2, "same seed ⇒ same weights");
        for p in p1 {
            assert!((0.2..=0.4).contains(&p));
        }
    }

    #[test]
    fn as_given_preserves_probs() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.123);
        let g = b.build(Weighting::AsGiven, 0);
        assert_eq!(g.out_prob(0, 0), 0.123);
    }

    #[test]
    fn dedup_drops_duplicates() {
        let mut b = GraphBuilder::new(2).dedup(true);
        b.add_edge(0, 1, 0.5);
        b.add_edge(0, 1, 0.9);
        let g = b.build(Weighting::AsGiven, 0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_prob(0, 0), 0.5, "first edge wins");
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 0.5);
        b.add_arc(0, 1);
        let g = b.build(Weighting::AsGiven, 0);
        assert_eq!(g.num_edges(), 1);

        let mut b = GraphBuilder::new(2).allow_self_loops(true);
        b.add_edge(1, 1, 0.5);
        let g = b.build(Weighting::AsGiven, 0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn undirected_adds_both_arcs() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 2);
        let g = b.build(Weighting::WeightedCascade, 0);
        assert_eq!(g.num_edges(), 2);
        assert!(g.out_neighbors(0).contains(&2));
        assert!(g.out_neighbors(2).contains(&0));
    }
}
