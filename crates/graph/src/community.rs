//! Node → community labelings.
//!
//! Fairness-aware welfare objectives (Rahmattalabi et al., "Fair
//! Influence Maximization: A Welfare Optimization Approach") aggregate
//! utility per *group* rather than per node. [`CommunityLabels`] is the
//! graph-side carrier of that structure: a dense `u32` label per node,
//! with the community count tracked explicitly so empty trailing
//! communities are representable. Partitioning heuristics that need the
//! edge structure live in `uic-datasets` (the graph crate stays purely
//! structural); this module only validates and serves labelings.

use std::fmt;

/// Why a community labeling was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommunityError {
    /// A node's label is not below the declared community count.
    LabelOutOfRange {
        /// The offending node.
        node: u32,
        /// Its label.
        label: u32,
        /// The declared community count.
        communities: u32,
    },
    /// The labeling declared zero communities over a non-empty node set.
    NoCommunities,
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CommunityError::LabelOutOfRange {
                node,
                label,
                communities,
            } => write!(
                f,
                "node {node} has label {label}, outside the {communities} declared communities"
            ),
            CommunityError::NoCommunities => {
                write!(f, "a non-empty labeling needs at least one community")
            }
        }
    }
}

impl std::error::Error for CommunityError {}

/// A dense node → community assignment (`labels[v]` is `v`'s community).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityLabels {
    labels: Vec<u32>,
    num_communities: u32,
}

impl CommunityLabels {
    /// Wraps a label vector; the community count is `max(label) + 1`.
    pub fn new(labels: Vec<u32>) -> CommunityLabels {
        let num_communities = labels.iter().max().map_or(0, |&m| m + 1);
        CommunityLabels {
            labels,
            num_communities,
        }
    }

    /// Wraps a label vector with an explicit community count (allows
    /// empty communities); every label must be `< communities`.
    pub fn try_with_communities(
        labels: Vec<u32>,
        communities: u32,
    ) -> Result<CommunityLabels, CommunityError> {
        if communities == 0 && !labels.is_empty() {
            return Err(CommunityError::NoCommunities);
        }
        if let Some(node) = labels.iter().position(|&l| l >= communities) {
            return Err(CommunityError::LabelOutOfRange {
                node: node as u32,
                label: labels[node],
                communities,
            });
        }
        Ok(CommunityLabels {
            labels,
            num_communities: communities,
        })
    }

    /// `n` nodes in `k` equal contiguous id-range blocks (the last block
    /// absorbs the remainder) — the deterministic default labeling.
    pub fn contiguous(n: u32, k: u32) -> CommunityLabels {
        assert!(k > 0, "need at least one community");
        let k = k.min(n.max(1));
        let per = (n / k).max(1);
        let labels = (0..n).map(|v| (v / per).min(k - 1)).collect();
        CommunityLabels {
            labels,
            num_communities: k,
        }
    }

    /// Community of node `v`.
    pub fn label_of(&self, v: u32) -> u32 {
        self.labels[v as usize]
    }

    /// Number of labeled nodes.
    pub fn num_nodes(&self) -> u32 {
        self.labels.len() as u32
    }

    /// Number of communities (≥ `max(label) + 1`; empty ones count).
    pub fn num_communities(&self) -> u32 {
        self.num_communities
    }

    /// The raw label slice, indexed by node id.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Node count per community, indexed by label.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_communities as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_infers_community_count() {
        let c = CommunityLabels::new(vec![0, 2, 1, 2]);
        assert_eq!(c.num_communities(), 3);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.label_of(1), 2);
        assert_eq!(c.sizes(), vec![1, 1, 2]);
    }

    #[test]
    fn explicit_count_allows_empty_communities() {
        let c = CommunityLabels::try_with_communities(vec![0, 0, 1], 5).unwrap();
        assert_eq!(c.num_communities(), 5);
        assert_eq!(c.sizes(), vec![2, 1, 0, 0, 0]);
    }

    #[test]
    fn out_of_range_label_is_a_typed_error() {
        let err = CommunityLabels::try_with_communities(vec![0, 3], 2).unwrap_err();
        assert_eq!(
            err,
            CommunityError::LabelOutOfRange {
                node: 1,
                label: 3,
                communities: 2
            }
        );
        assert!(err.to_string().contains("outside"));
        assert_eq!(
            CommunityLabels::try_with_communities(vec![0], 0).unwrap_err(),
            CommunityError::NoCommunities
        );
    }

    #[test]
    fn contiguous_blocks_cover_all_nodes() {
        let c = CommunityLabels::contiguous(10, 3);
        assert_eq!(c.num_communities(), 3);
        assert_eq!(c.labels(), &[0, 0, 0, 1, 1, 1, 2, 2, 2, 2]);
        // More communities than nodes: one node per community.
        let tiny = CommunityLabels::contiguous(2, 8);
        assert_eq!(tiny.num_communities(), 2);
        assert_eq!(tiny.labels(), &[0, 1]);
    }

    #[test]
    fn empty_labeling_is_fine() {
        let c = CommunityLabels::new(Vec::new());
        assert_eq!(c.num_communities(), 0);
        assert_eq!(c.num_nodes(), 0);
        assert!(CommunityLabels::try_with_communities(Vec::new(), 0).is_ok());
    }
}
