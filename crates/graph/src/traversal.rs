//! Graph traversal: reachability, connected components, SCC, subgraphs.

use crate::graph::{Graph, NodeId};
use uic_util::VisitTags;

/// Nodes reachable from `sources` by forward BFS (includes the sources).
pub fn reachable_from(g: &Graph, sources: &[NodeId]) -> Vec<NodeId> {
    let mut tags = VisitTags::new(g.num_nodes() as usize);
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in sources {
        if tags.mark(s as usize) {
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in g.out_neighbors(u) {
            if tags.mark(v as usize) {
                queue.push(v);
            }
        }
    }
    queue
}

/// Weakly connected components; returns `(component_id_per_node, count)`.
pub fn weakly_connected_components(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.num_nodes() as usize;
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(start as NodeId);
        while let Some(u) = stack.pop() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Tarjan's strongly connected components, iterative (no recursion, safe
/// for million-node graphs). Returns `(scc_id_per_node, count)`; ids are
/// assigned in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.num_nodes() as usize;
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut next_scc = 0u32;
    // Explicit DFS frames: (node, next out-neighbor position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut pos)) = frames.last_mut() {
            let nbrs = g.out_neighbors(u);
            if *pos < nbrs.len() {
                let v = nbrs[*pos];
                *pos += 1;
                if index[v as usize] == UNSET {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    frames.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    // u is an SCC root; pop its component.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc[w as usize] = next_scc;
                        if w == u {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    (scc, next_scc)
}

/// Extracts the induced subgraph on `nodes` (edge weights preserved).
///
/// Returns the subgraph and the mapping `new_id -> old_id`.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let n = g.num_nodes() as usize;
    let mut remap = vec![u32::MAX; n];
    for (new, &old) in nodes.iter().enumerate() {
        assert!(
            remap[old as usize] == u32::MAX,
            "duplicate node {old} in induced_subgraph"
        );
        remap[old as usize] = new as u32;
    }
    let mut edges = Vec::new();
    for &old_u in nodes {
        let new_u = remap[old_u as usize];
        for (&old_v, p) in g
            .out_neighbors(old_u)
            .iter()
            .zip(g.out_arc_probs(old_u).iter())
        {
            let new_v = remap[old_v as usize];
            if new_v != u32::MAX {
                edges.push((new_u, new_v, p));
            }
        }
    }
    (
        Graph::from_edges(nodes.len() as u32, &edges),
        nodes.to_vec(),
    )
}

/// Extracts the largest strongly connected component as its own graph
/// (used for the Flixster stand-in, which the paper describes as "a
/// strongly connected component is extracted").
pub fn largest_scc(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (scc, count) = strongly_connected_components(g);
    if count == 0 {
        return (Graph::from_edges(0, &[]), Vec::new());
    }
    let mut sizes = vec![0u32; count as usize];
    for &c in &scc {
        sizes[c as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap();
    let nodes: Vec<NodeId> = (0..g.num_nodes())
        .filter(|&v| scc[v as usize] == biggest)
        .collect();
    induced_subgraph(g, &nodes)
}

/// BFS from `start` until roughly `fraction` of all nodes are collected,
/// then returns the induced subgraph — the paper's Fig. 9(d) methodology
/// ("use breadth-first-search to progressively increase the network size").
///
/// If BFS exhausts a component before reaching the target size, it restarts
/// from the lowest-id unvisited node.
pub fn bfs_prefix_subgraph(g: &Graph, start: NodeId, fraction: f64) -> (Graph, Vec<NodeId>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let n = g.num_nodes() as usize;
    let target = ((n as f64 * fraction).round() as usize).clamp(0, n);
    let mut tags = VisitTags::new(n);
    let mut order: Vec<NodeId> = Vec::with_capacity(target);
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    let mut next_restart = 0u32;
    if target > 0 && n > 0 {
        tags.mark(start as usize);
        queue.push_back(start);
        while order.len() < target {
            match queue.pop_front() {
                Some(u) => {
                    order.push(u);
                    for &v in g.out_neighbors(u) {
                        if tags.mark(v as usize) {
                            queue.push_back(v);
                        }
                    }
                }
                None => {
                    // Component exhausted: restart from next unvisited node.
                    while (next_restart as usize) < n && tags.is_marked(next_restart as usize) {
                        next_restart += 1;
                    }
                    if next_restart as usize >= n {
                        break;
                    }
                    tags.mark(next_restart as usize);
                    queue.push_back(next_restart);
                }
            }
        }
    }
    induced_subgraph(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> Graph {
        let edges: Vec<(u32, u32, f32)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges)
    }

    fn two_cycles() -> Graph {
        // cycle {0,1,2} → bridge → cycle {3,4}
        Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        )
    }

    #[test]
    fn reachability_on_line() {
        let g = line(5);
        assert_eq!(reachable_from(&g, &[0]).len(), 5);
        assert_eq!(reachable_from(&g, &[3]), vec![3, 4]);
        assert_eq!(reachable_from(&g, &[4]), vec![4]);
        let multi = reachable_from(&g, &[2, 4]);
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn reachable_from_empty_sources() {
        let g = line(3);
        assert!(reachable_from(&g, &[]).is_empty());
    }

    #[test]
    fn wcc_counts() {
        let mut edges = vec![(0u32, 1u32, 1.0f32)];
        edges.push((2, 3, 1.0));
        let g = Graph::from_edges(5, &edges); // node 4 isolated
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn scc_on_two_cycles() {
        let g = two_cycles();
        let (scc, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[1], scc[2]);
        assert_eq!(scc[3], scc[4]);
        assert_ne!(scc[0], scc[3]);
    }

    #[test]
    fn scc_singletons_on_dag() {
        let g = line(4);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn scc_reverse_topological_order() {
        // Condensation: {0,1,2} → {3,4}. Tarjan assigns sink components
        // lower ids (reverse topological order).
        let g = two_cycles();
        let (scc, _) = strongly_connected_components(&g);
        assert!(scc[3] < scc[0], "sink SCC should be numbered first");
    }

    #[test]
    fn scc_matches_bruteforce_on_random_graphs() {
        use uic_util::UicRng;
        for seed in 0..20u64 {
            let mut rng = UicRng::new(seed);
            let n = 12u32;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.coin(0.15) {
                        edges.push((u, v, 1.0f32));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            // Brute-force mutual reachability.
            let mut reach = vec![vec![false; n as usize]; n as usize];
            for u in 0..n {
                for v in reachable_from(&g, &[u]) {
                    reach[u as usize][v as usize] = true;
                }
            }
            let (scc, _) = strongly_connected_components(&g);
            for u in 0..n as usize {
                for v in 0..n as usize {
                    let mutual = reach[u][v] && reach[v][u];
                    assert_eq!(
                        scc[u] == scc[v],
                        mutual,
                        "seed {seed}: nodes {u},{v} scc ids {} {} mutual={mutual}",
                        scc[u],
                        scc[v]
                    );
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_cycles();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3); // the 3-cycle; bridge 2→3 dropped
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn largest_scc_extracts_three_cycle() {
        let g = two_cycles();
        let (sub, map) = largest_scc(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (_, count) = strongly_connected_components(&sub);
        assert_eq!(count, 1, "result must itself be strongly connected");
    }

    #[test]
    fn bfs_prefix_size_and_restart() {
        let g = line(10);
        let (sub, map) = bfs_prefix_subgraph(&g, 0, 0.5);
        assert_eq!(sub.num_nodes(), 5);
        assert_eq!(map, vec![0, 1, 2, 3, 4]);
        // Start near the end: BFS exhausts {8,9} then restarts at 0.
        let (sub, map) = bfs_prefix_subgraph(&g, 8, 0.4);
        assert_eq!(sub.num_nodes(), 4);
        assert!(map.contains(&8) && map.contains(&9));
    }

    #[test]
    fn bfs_prefix_full_fraction_is_whole_graph() {
        let g = two_cycles();
        let (sub, _) = bfs_prefix_subgraph(&g, 0, 1.0);
        assert_eq!(sub.num_nodes(), g.num_nodes());
        assert_eq!(sub.num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = line(3);
        induced_subgraph(&g, &[0, 0]);
    }
}
