//! Versioned binary graph snapshots.
//!
//! Rebuilding a million-node stand-in network costs tens of seconds of
//! generator time per process; a snapshot load is a handful of bulk
//! reads. This module defines the on-disk format and the typed errors a
//! loader needs to reject foreign, corrupt, or future files without
//! panicking.
//!
//! ## Byte layout (version 2, current)
//!
//! All integers are **little-endian**; offsets are stored as `u64`
//! regardless of the host's `usize`. Every section is zero-padded to a
//! **16-byte boundary** and the header records each section's byte
//! offset (relative to the payload start at byte 152, itself 8-byte
//! aligned in the file), so a loader can verify the checksum and then
//! *pointer-cast* section views straight out of one mapped or owned
//! aligned buffer — the zero-copy load path ([`load_snapshot`]).
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"UICGSNP1"
//! 8       4     format version (u32, currently 2)
//! 12      8     checksum of every byte that follows (4-lane 64-bit
//!               multiply-xor word fold, see the module source)
//! 20      4     weight representation tag (0 per-edge, 1 in-degree,
//!               2 constant)
//! 24      4     constant probability bits (f32; 0 unless tag = 2)
//! 28      4     n = node count (u32)
//! 32      8     m = edge count (u64)
//! 40      7×8   section byte lengths (u64 each), unpadded
//! 96      7×8   section byte offsets (u64 each) relative to byte 152;
//!               offset[i+1] = offset[i] + pad16(length[i])
//! 152     …     sections, each zero-padded to 16 bytes:
//!               out_off  (n+1) × u64     forward CSR offsets
//!               out_to   m × u32         forward CSR targets
//!               in_off   (n+1) × u64     reverse CSR offsets
//!               in_from  m × u32         reverse CSR sources
//!               in_eid   m × u32         reverse slot → out-edge id
//!               out_p    m × f32         only when tag = 0, else empty
//!               in_p     m × f32         only when tag = 0, else empty
//! ```
//!
//! Version 1 (legacy) differs in three ways: sections are back to back
//! (no padding, no offset table, payload starts at byte 96) and the
//! checksum is a 2-lane fold. [`load_snapshot`] still reads v1 files
//! through the original streaming decoder — the fallback for
//! old-version/unaligned files — and [`crate::snapshot::write_snapshot_v1`]
//! keeps the writer around for compatibility tests and cache-upgrade
//! coverage.
//!
//! ## Versioning policy
//!
//! The version is bumped whenever the header or section layout changes;
//! readers reject any version they do not know
//! ([`SnapshotError::UnsupportedVersion`]) rather than guessing. The
//! checksum covers everything after itself (padding included), so a
//! single flipped bit anywhere in the file surfaces as a typed error
//! ([`SnapshotError::ChecksumMismatch`]) instead of a corrupt graph.
//! Section lengths and offsets are validated against `n`, `m`, and the
//! weight tag **before** any section is interpreted (so corrupt counts
//! can never drive an absurd allocation, and a misaligned offset table
//! can never reach a pointer cast), and truncated or resized files fail
//! with [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`].
//! The zero-copy loader's verify is one fused cache-blocked pass:
//! checksum lanes and the structural aggregates (offset monotonicity,
//! id ranges, probability unit-range) are folded per 256 KB block while
//! it is L2-resident, then the only "decode" is casting section views.

use crate::graph::{EdgeWeights, Graph};
use crate::storage::{SectionStorage, SnapshotBuf};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every snapshot file (shared by all versions).
pub const MAGIC: [u8; 8] = *b"UICGSNP1";
/// Current format version.
pub const FORMAT_VERSION: u32 = 2;
/// The legacy unpadded format still accepted (and written by
/// [`write_snapshot_v1`]) for fallback coverage.
pub const LEGACY_FORMAT_VERSION: u32 = 1;

const TAG_PER_EDGE: u32 = 0;
const TAG_IN_DEGREE: u32 = 1;
const TAG_CONSTANT: u32 = 2;
const NUM_SECTIONS: usize = 7;

/// Typed snapshot load failures.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file declares a format version this reader does not know.
    UnsupportedVersion(u32),
    /// The stream ended before the declared sections were read.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// Stored and recomputed checksums disagree.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Internally inconsistent header or section contents.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a uic graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (reader knows versions \
                     {LEGACY_FORMAT_VERSION}-{FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated snapshot: expected {expected} payload bytes, got {got}"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The integrity (not cryptographic) checksum of the format: a 64-bit
/// multiply-xor word fold (FxHash-style) over two independent lanes.
/// Processing 16 bytes per round keeps checksumming a ~140 MB snapshot
/// in the low tens of milliseconds — byte-at-a-time FNV costs more than
/// the entire rest of the load — while the odd-multiplier bijections
/// still propagate every single-bit flip into the final value.
///
/// `update` boundaries are part of the definition: writer and reader
/// must feed identical byte runs (here: the header tail, then each
/// section), since short tails are zero-padded and length-tagged per
/// run.
#[derive(Clone, Copy)]
struct SnapshotHash(u64, u64);

impl SnapshotHash {
    const MUL1: u64 = 0x517c_c1b7_2722_0a95;
    const MUL2: u64 = 0x2545_f491_4f6c_dd1d;

    fn new() -> Self {
        SnapshotHash(0x9e37_79b9_7f4a_7c15, 0xc2b2_ae3d_27d4_eb4f)
    }

    /// Folds one aligned 16-byte round into the two lanes. Both
    /// multipliers are odd (bijective), so any flipped bit survives
    /// into [`SnapshotHash::finish`].
    #[inline]
    fn fold16(&mut self, c: &[u8; 16]) {
        let w1 = u64::from_le_bytes(c[0..8].try_into().expect("chunk of 8"));
        let w2 = u64::from_le_bytes(c[8..16].try_into().expect("chunk of 8"));
        self.0 = (self.0.rotate_left(5) ^ w1).wrapping_mul(Self::MUL1);
        self.1 = (self.1.rotate_left(7) ^ w2).wrapping_mul(Self::MUL2);
    }

    /// Folds a short (< 16 byte) run tail: zero-padded plus a length
    /// tag, so the padding cannot collide with real zeros.
    #[inline]
    fn fold_tail(&mut self, rem: &[u8]) {
        if rem.is_empty() {
            return;
        }
        let mut tail = [0u8; 16];
        tail[..rem.len()].copy_from_slice(rem);
        self.fold16(&tail);
        self.0 = self.0.wrapping_add(rem.len() as u64);
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut words = bytes.chunks_exact(16);
        for c in &mut words {
            self.fold16(c.try_into().expect("chunk of 16"));
        }
        self.fold_tail(words.remainder());
    }

    fn finish(self) -> u64 {
        self.0 ^ self.1.rotate_left(32)
    }
}

/// The format-v2 checksum: the same multiply-xor word-fold idea as
/// [`SnapshotHash`], widened to **four** independent lanes consuming 32
/// bytes per round. The 2-lane fold's serial multiply chains cap it
/// near 3 bytes/cycle; four lanes double the instruction-level
/// parallelism, which matters because the zero-copy load's wall-clock
/// *is* essentially this hash (there is no decode left to hide it
/// behind). Run boundaries are part of the definition exactly as in v1:
/// writer and reader feed the header tail, then each **padded** section
/// as one run — padded runs are multiples of 16 bytes, so at most one
/// 16-byte remainder reaches `fold_tail` per run.
#[derive(Clone, Copy)]
struct SnapshotHashV2([u64; 4]);

impl SnapshotHashV2 {
    const MULS: [u64; 4] = [
        0x517c_c1b7_2722_0a95,
        0x2545_f491_4f6c_dd1d,
        0x9e6c_63d0_985b_4c63,
        0xff51_afd7_ed55_8ccd,
    ];

    fn new() -> Self {
        SnapshotHashV2([
            0x9e37_79b9_7f4a_7c15,
            0xc2b2_ae3d_27d4_eb4f,
            0x6a09_e667_f3bc_c909,
            0xbb67_ae85_84ca_a73b,
        ])
    }

    /// Folds one 32-byte round, one word per lane. All multipliers are
    /// odd (bijective), so any flipped bit survives into
    /// [`SnapshotHashV2::finish`].
    #[inline]
    fn fold32(&mut self, c: &[u8; 32]) {
        const ROTS: [u32; 4] = [5, 7, 11, 13];
        for i in 0..4 {
            let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().expect("chunk of 8"));
            self.0[i] = (self.0[i].rotate_left(ROTS[i]) ^ w).wrapping_mul(Self::MULS[i]);
        }
    }

    /// Folds a short (< 32 byte) run tail: zero-padded plus a length
    /// tag, so padding cannot collide with real zeros.
    #[inline]
    fn fold_tail(&mut self, rem: &[u8]) {
        if rem.is_empty() {
            return;
        }
        let mut tail = [0u8; 32];
        tail[..rem.len()].copy_from_slice(rem);
        self.fold32(&tail);
        self.0[0] = self.0[0].wrapping_add(rem.len() as u64);
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut words = bytes.chunks_exact(32);
        for c in &mut words {
            self.fold32(c.try_into().expect("chunk of 32"));
        }
        self.fold_tail(words.remainder());
    }

    fn finish(self) -> u64 {
        let a = (self.0[0] ^ self.0[1].rotate_left(32)).wrapping_mul(Self::MULS[0]);
        let b = (self.0[2] ^ self.0[3].rotate_left(32)).wrapping_mul(Self::MULS[1]);
        a ^ b.rotate_left(32)
    }
}

/// Rounds a section length up to the 16-byte padding boundary of
/// format v2.
#[inline]
fn pad16(len: u64) -> u64 {
    len.div_ceil(16) * 16
}

/// Fused checksum + decode + validation-aggregate decoders: one
/// traversal feeds the hash lanes, the output array, and the running
/// aggregate the structural validation needs (max id, monotonicity,
/// unit-range) — the load path is memory-bandwidth-bound, so every
/// avoided re-traversal is wall-clock. Hashing is byte-identical to
/// [`SnapshotHash::update`] over the same section: `feed` accepts any
/// chunking as long as non-final chunks are multiples of 16 bytes.
struct U32Decoder {
    out: Vec<u32>,
    max: u32,
}

impl U32Decoder {
    fn new(section_len: u64) -> U32Decoder {
        U32Decoder {
            out: Vec::with_capacity((section_len / 4) as usize),
            max: 0,
        }
    }

    fn feed(&mut self, h: &mut SnapshotHash, bytes: &[u8], last: bool) {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            h.fold16(c.try_into().expect("chunk of 16"));
            for e in c.chunks_exact(4) {
                let x = u32::from_le_bytes(e.try_into().expect("chunk of 4"));
                self.max = self.max.max(x);
                self.out.push(x);
            }
        }
        let rem = chunks.remainder();
        debug_assert!(
            last || rem.is_empty(),
            "non-final chunks must be 16-aligned"
        );
        if last {
            h.fold_tail(rem);
            for e in rem.chunks_exact(4) {
                let x = u32::from_le_bytes(e.try_into().expect("chunk of 4"));
                self.max = self.max.max(x);
                self.out.push(x);
            }
        }
    }
}

/// `f32` sections: also tracks whether every value lies in `[0, 1]`
/// (NaN fails both comparisons, so it registers as invalid).
struct F32Decoder {
    out: Vec<f32>,
    in_unit: bool,
}

impl F32Decoder {
    fn new(section_len: u64) -> F32Decoder {
        F32Decoder {
            out: Vec::with_capacity((section_len / 4) as usize),
            in_unit: true,
        }
    }

    fn feed(&mut self, h: &mut SnapshotHash, bytes: &[u8], last: bool) {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            h.fold16(c.try_into().expect("chunk of 16"));
            for e in c.chunks_exact(4) {
                let x = f32::from_le_bytes(e.try_into().expect("chunk of 4"));
                self.in_unit &= (0.0..=1.0).contains(&x);
                self.out.push(x);
            }
        }
        let rem = chunks.remainder();
        debug_assert!(
            last || rem.is_empty(),
            "non-final chunks must be 16-aligned"
        );
        if last {
            h.fold_tail(rem);
            for e in rem.chunks_exact(4) {
                let x = f32::from_le_bytes(e.try_into().expect("chunk of 4"));
                self.in_unit &= (0.0..=1.0).contains(&x);
                self.out.push(x);
            }
        }
    }
}

/// `u64`-offset sections: also tracks monotonic non-decrease (the CSR
/// offsets invariant) and, on 32-bit hosts, `usize` overflow.
struct OffsetDecoder {
    out: Vec<usize>,
    monotonic: bool,
    prev: usize,
    overflow: bool,
}

impl OffsetDecoder {
    fn new(section_len: u64) -> OffsetDecoder {
        OffsetDecoder {
            out: Vec::with_capacity((section_len / 8) as usize),
            monotonic: true,
            prev: 0,
            overflow: false,
        }
    }

    #[inline]
    fn push(&mut self, x: u64) {
        match usize::try_from(x) {
            Ok(x) => {
                self.monotonic &= x >= self.prev;
                self.prev = x;
                self.out.push(x);
            }
            Err(_) => self.overflow = true,
        }
    }

    fn feed(&mut self, h: &mut SnapshotHash, bytes: &[u8], last: bool) {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            h.fold16(c.try_into().expect("chunk of 16"));
            for e in c.chunks_exact(8) {
                self.push(u64::from_le_bytes(e.try_into().expect("chunk of 8")));
            }
        }
        let rem = chunks.remainder();
        debug_assert!(
            last || rem.is_empty(),
            "non-final chunks must be 16-aligned"
        );
        if last {
            h.fold_tail(rem);
            for e in rem.chunks_exact(8) {
                self.push(u64::from_le_bytes(e.try_into().expect("chunk of 8")));
            }
        }
    }
}

/// Streaming little-endian section encoders, mirror images of the
/// decoders above: each converts its source array through a fixed
/// buffer and hands every filled chunk to `sink` with a final-chunk
/// flag. Non-final chunks are multiples of 16 bytes (the buffer length
/// is), so a hash sink built on `fold16`/`fold_tail` computes exactly
/// [`SnapshotHash::update`] of the whole section — and a write sink
/// streams the same bytes to disk with O(buffer) extra memory instead
/// of materializing hundreds of megabytes of section copies.
type EmitSink<'a> = dyn FnMut(&[u8], bool) -> std::io::Result<()> + 'a;

fn emit_u32s(xs: &[u32], buf: &mut [u8], sink: &mut EmitSink<'_>) -> std::io::Result<()> {
    let per = buf.len() / 4;
    let mut it = xs.chunks(per).peekable();
    while let Some(chunk) = it.next() {
        let bytes = &mut buf[..chunk.len() * 4];
        for (c, x) in bytes.chunks_exact_mut(4).zip(chunk) {
            c.copy_from_slice(&x.to_le_bytes());
        }
        let last = it.peek().is_none();
        sink(bytes, last)?;
    }
    Ok(())
}

fn emit_f32s(xs: &[f32], buf: &mut [u8], sink: &mut EmitSink<'_>) -> std::io::Result<()> {
    let per = buf.len() / 4;
    let mut it = xs.chunks(per).peekable();
    while let Some(chunk) = it.next() {
        let bytes = &mut buf[..chunk.len() * 4];
        for (c, x) in bytes.chunks_exact_mut(4).zip(chunk) {
            c.copy_from_slice(&x.to_le_bytes());
        }
        let last = it.peek().is_none();
        sink(bytes, last)?;
    }
    Ok(())
}

fn emit_usizes(xs: &[usize], buf: &mut [u8], sink: &mut EmitSink<'_>) -> std::io::Result<()> {
    let per = buf.len() / 8;
    let mut it = xs.chunks(per).peekable();
    while let Some(chunk) = it.next() {
        let bytes = &mut buf[..chunk.len() * 8];
        for (c, &x) in bytes.chunks_exact_mut(8).zip(chunk) {
            c.copy_from_slice(&(x as u64).to_le_bytes());
        }
        let last = it.peek().is_none();
        sink(bytes, last)?;
    }
    Ok(())
}

/// Runs all seven sections of `g` through `sink` in snapshot order.
fn emit_sections(g: &Graph, buf: &mut [u8], sink: &mut EmitSink<'_>) -> std::io::Result<()> {
    let (out_off, out_to, in_off, in_from, in_eid, weights) = g.raw_csr();
    let (out_p, in_p): (&[f32], &[f32]) = match weights {
        EdgeWeights::PerEdge { out_p, in_p } => (&out_p[..], &in_p[..]),
        _ => (&[], &[]),
    };
    emit_usizes(out_off, buf, sink)?;
    emit_u32s(out_to, buf, sink)?;
    emit_usizes(in_off, buf, sink)?;
    emit_u32s(in_from, buf, sink)?;
    emit_u32s(in_eid, buf, sink)?;
    emit_f32s(out_p, buf, sink)?;
    emit_f32s(in_p, buf, sink)
}

/// Writes `g` as a **legacy version-1** snapshot (unpadded sections,
/// 2-lane checksum). Kept so the v1 fallback reader and the cache's
/// old-entry upgrade path stay testable against real v1 bytes; new
/// files should use [`write_snapshot`].
///
/// Two streaming passes over the CSR arrays through one fixed 256 KB
/// buffer: the first computes the header checksum, the second writes
/// the identical bytes — O(buffer) extra memory even for
/// hundred-megabyte graphs (the checksum sits in the header, before
/// the sections, and `W` is not seekable, so it must be known before
/// the first section byte is written).
pub fn write_snapshot_v1<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    let (_, _, _, _, _, weights) = g.raw_csr();
    let (tag, constant): (u32, f32) = match weights {
        EdgeWeights::PerEdge { .. } => (TAG_PER_EDGE, 0.0),
        EdgeWeights::InDegree => (TAG_IN_DEGREE, 0.0),
        EdgeWeights::Constant(c) => (TAG_CONSTANT, *c),
    };
    let n = g.num_nodes() as u64;
    let m = g.num_edges() as u64;
    let (off_len, ids_len) = ((n + 1) * 8, m * 4);
    let weights_len = if tag == TAG_PER_EDGE { m * 4 } else { 0 };
    let lens = [
        off_len,
        ids_len,
        off_len,
        ids_len,
        ids_len,
        weights_len,
        weights_len,
    ];

    // Checksum covers everything after the checksum field itself.
    let mut tail = Vec::with_capacity(TAIL_LEN);
    tail.extend_from_slice(&tag.to_le_bytes());
    tail.extend_from_slice(&constant.to_le_bytes());
    tail.extend_from_slice(&g.num_nodes().to_le_bytes());
    tail.extend_from_slice(&m.to_le_bytes());
    for len in lens {
        tail.extend_from_slice(&len.to_le_bytes());
    }
    let mut buf = vec![0u8; 1 << 18];
    let mut hash = SnapshotHash::new();
    hash.update(&tail);
    emit_sections(g, &mut buf, &mut |bytes, last| {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            hash.fold16(c.try_into().expect("chunk of 16"));
        }
        let rem = chunks.remainder();
        debug_assert!(
            last || rem.is_empty(),
            "non-final chunks must be 16-aligned"
        );
        if last {
            hash.fold_tail(rem);
        }
        Ok(())
    })?;

    let mut w = BufWriter::new(w);
    w.write_all(&MAGIC)?;
    w.write_all(&LEGACY_FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&hash.finish().to_le_bytes())?;
    w.write_all(&tail)?;
    emit_sections(g, &mut buf, &mut |bytes, _| w.write_all(bytes))?;
    w.flush()
}

/// Writes `g` as a version-2 snapshot: sections padded to 16-byte
/// boundaries, section offsets recorded in the header — the layout
/// [`load_snapshot`] maps and pointer-casts without any decode.
///
/// Same two-streaming-pass structure as the v1 writer (checksum first,
/// then bytes; the checksum precedes the sections and `W` is not
/// seekable), with each padded section checksummed as one run of the
/// 4-lane `SnapshotHashV2`.
pub fn write_snapshot<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    let (_, _, _, _, _, weights) = g.raw_csr();
    let (tag, constant): (u32, f32) = match weights {
        EdgeWeights::PerEdge { .. } => (TAG_PER_EDGE, 0.0),
        EdgeWeights::InDegree => (TAG_IN_DEGREE, 0.0),
        EdgeWeights::Constant(c) => (TAG_CONSTANT, *c),
    };
    let n = g.num_nodes() as u64;
    let m = g.num_edges() as u64;
    let (off_len, ids_len) = ((n + 1) * 8, m * 4);
    let weights_len = if tag == TAG_PER_EDGE { m * 4 } else { 0 };
    let lens = [
        off_len,
        ids_len,
        off_len,
        ids_len,
        ids_len,
        weights_len,
        weights_len,
    ];
    let mut offs = [0u64; NUM_SECTIONS];
    let mut at = 0u64;
    for (o, &len) in offs.iter_mut().zip(&lens) {
        *o = at;
        at += pad16(len);
    }

    // Checksum covers everything after the checksum field itself,
    // padding included.
    let mut tail = Vec::with_capacity(TAIL_LEN_V2);
    tail.extend_from_slice(&tag.to_le_bytes());
    tail.extend_from_slice(&constant.to_le_bytes());
    tail.extend_from_slice(&g.num_nodes().to_le_bytes());
    tail.extend_from_slice(&m.to_le_bytes());
    for len in lens {
        tail.extend_from_slice(&len.to_le_bytes());
    }
    for off in offs {
        tail.extend_from_slice(&off.to_le_bytes());
    }
    debug_assert_eq!(tail.len(), TAIL_LEN_V2);

    // Pass 1: checksum. Non-final emitted chunks are multiples of the
    // 32-byte round (the buffer length is), so only each section's
    // final chunk carries a sub-round remainder — which is folded
    // *padded to the 16-byte boundary*, exactly as the reader hashes
    // the padded run.
    let mut buf = vec![0u8; 1 << 18];
    let mut hash = SnapshotHashV2::new();
    hash.update(&tail);
    emit_sections(g, &mut buf, &mut |bytes, last| {
        let mut chunks = bytes.chunks_exact(32);
        for c in &mut chunks {
            hash.fold32(c.try_into().expect("chunk of 32"));
        }
        let rem = chunks.remainder();
        debug_assert!(
            last || rem.is_empty(),
            "non-final chunks must be 32-aligned"
        );
        if last && !rem.is_empty() {
            let padded = pad16(rem.len() as u64) as usize;
            let mut tailbuf = [0u8; 32];
            tailbuf[..rem.len()].copy_from_slice(rem);
            if padded == 32 {
                hash.fold32(&tailbuf);
            } else {
                hash.fold_tail(&tailbuf[..padded]);
            }
        }
        Ok(())
    })?;

    // Pass 2: bytes, with zero padding after each section.
    let mut w = BufWriter::new(w);
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&hash.finish().to_le_bytes())?;
    w.write_all(&tail)?;
    emit_sections(g, &mut buf, &mut |bytes, last| {
        w.write_all(bytes)?;
        if last {
            let rem = bytes.len() % 16;
            if rem != 0 {
                w.write_all(&[0u8; 16][..16 - rem])?;
            }
        }
        Ok(())
    })?;
    w.flush()
}

/// The header fields of a snapshot, parsed and cross-validated
/// (magic, version, weight tag, section lengths against `(n, m, tag)`).
struct Header {
    stored_checksum: u64,
    tag: u32,
    constant: f32,
    n: u32,
    m: u64,
    lens: [u64; NUM_SECTIONS],
    total: u64,
}

const TAIL_LEN: usize = 4 + 4 + 4 + 8 + NUM_SECTIONS * 8;
const HEADER_LEN: usize = 8 + 4 + 8 + TAIL_LEN;

/// Parses and validates the fixed-size header prefix. `bytes` may be
/// shorter than a full header (truncated file) — that reports
/// [`SnapshotError::Truncated`], after the magic and (when its bytes
/// are present) the version have been checked.
fn parse_header(bytes: &[u8]) -> Result<Header, SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() >= 12 {
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
        if version != LEGACY_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    let stored_checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice"));
    let tail = &bytes[20..HEADER_LEN];
    let tag = u32::from_le_bytes(tail[0..4].try_into().expect("fixed slice"));
    let constant = f32::from_le_bytes(tail[4..8].try_into().expect("fixed slice"));
    let n = u32::from_le_bytes(tail[8..12].try_into().expect("fixed slice"));
    let m = u64::from_le_bytes(tail[12..20].try_into().expect("fixed slice"));
    let mut lens = [0u64; NUM_SECTIONS];
    for (i, l) in lens.iter_mut().enumerate() {
        let at = 20 + i * 8;
        *l = u64::from_le_bytes(tail[at..at + 8].try_into().expect("fixed slice"));
    }

    // Edge ids are u32 by construction (try_from_arcs rejects larger
    // inputs), so any m beyond that is corrupt — and rejecting it here
    // also keeps the `m * 4` length arithmetic below from wrapping.
    if m >= u32::MAX as u64 {
        return Err(SnapshotError::Malformed(format!(
            "edge count {m} must fit in u32 ids"
        )));
    }
    // Lengths are fully determined by (n, m, tag); enforce before
    // interpreting anything, so corrupt counts can never drive an
    // absurd allocation.
    let off_len = (n as u64 + 1) * 8;
    let ids_len = m * 4;
    let weights_len = if tag == TAG_PER_EDGE { m * 4 } else { 0 };
    let expect = [
        off_len,
        ids_len,
        off_len,
        ids_len,
        ids_len,
        weights_len,
        weights_len,
    ];
    if tag > TAG_CONSTANT {
        return Err(SnapshotError::Malformed(format!(
            "unknown weight representation tag {tag}"
        )));
    }
    if lens != expect {
        return Err(SnapshotError::Malformed(format!(
            "section lengths {lens:?} do not match n={n}, m={m}, tag={tag}"
        )));
    }
    if tag != TAG_CONSTANT && constant != 0.0 {
        return Err(SnapshotError::Malformed(
            "constant probability set on a non-constant representation".to_string(),
        ));
    }
    Ok(Header {
        stored_checksum,
        tag,
        constant,
        n,
        m,
        lens,
        total: lens.iter().sum(),
    })
}

const TAIL_LEN_V2: usize = 4 + 4 + 4 + 8 + 2 * NUM_SECTIONS * 8;
const HEADER_LEN_V2: usize = 8 + 4 + 8 + TAIL_LEN_V2;

/// The header fields of a version-2 snapshot, parsed and
/// cross-validated: magic, version, weight tag, section lengths against
/// `(n, m, tag)`, and the offset table against the canonical padded
/// layout — so a corrupt or hand-misaligned offset table is a typed
/// [`SnapshotError::Malformed`] long before any pointer cast.
struct HeaderV2 {
    stored_checksum: u64,
    tag: u32,
    constant: f32,
    n: u32,
    m: u64,
    lens: [u64; NUM_SECTIONS],
    offs: [u64; NUM_SECTIONS],
    /// Total padded payload length.
    total_padded: u64,
}

fn parse_header_v2(bytes: &[u8]) -> Result<HeaderV2, SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN_V2 as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() >= 12 {
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
    }
    if bytes.len() < HEADER_LEN_V2 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN_V2 as u64,
            got: bytes.len() as u64,
        });
    }
    let stored_checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice"));
    let tail = &bytes[20..HEADER_LEN_V2];
    let tag = u32::from_le_bytes(tail[0..4].try_into().expect("fixed slice"));
    let constant = f32::from_le_bytes(tail[4..8].try_into().expect("fixed slice"));
    let n = u32::from_le_bytes(tail[8..12].try_into().expect("fixed slice"));
    let m = u64::from_le_bytes(tail[12..20].try_into().expect("fixed slice"));
    let mut lens = [0u64; NUM_SECTIONS];
    for (i, l) in lens.iter_mut().enumerate() {
        let at = 20 + i * 8;
        *l = u64::from_le_bytes(tail[at..at + 8].try_into().expect("fixed slice"));
    }
    let mut offs = [0u64; NUM_SECTIONS];
    for (i, o) in offs.iter_mut().enumerate() {
        let at = 20 + (NUM_SECTIONS + i) * 8;
        *o = u64::from_le_bytes(tail[at..at + 8].try_into().expect("fixed slice"));
    }

    // Same pre-interpretation gates as v1: id-width, tag, and the
    // (n, m, tag)-determined lengths.
    if m >= u32::MAX as u64 {
        return Err(SnapshotError::Malformed(format!(
            "edge count {m} must fit in u32 ids"
        )));
    }
    let off_len = (n as u64 + 1) * 8;
    let ids_len = m * 4;
    let weights_len = if tag == TAG_PER_EDGE { m * 4 } else { 0 };
    let expect = [
        off_len,
        ids_len,
        off_len,
        ids_len,
        ids_len,
        weights_len,
        weights_len,
    ];
    if tag > TAG_CONSTANT {
        return Err(SnapshotError::Malformed(format!(
            "unknown weight representation tag {tag}"
        )));
    }
    if lens != expect {
        return Err(SnapshotError::Malformed(format!(
            "section lengths {lens:?} do not match n={n}, m={m}, tag={tag}"
        )));
    }
    if tag != TAG_CONSTANT && constant != 0.0 {
        return Err(SnapshotError::Malformed(
            "constant probability set on a non-constant representation".to_string(),
        ));
    }
    // The offset table must be exactly the canonical padded layout —
    // anything else (including an unaligned offset) can never reach the
    // section views.
    let mut at = 0u64;
    for (i, (&off, &len)) in offs.iter().zip(&lens).enumerate() {
        if off != at {
            return Err(SnapshotError::Malformed(format!(
                "section {i} offset {off} breaks the padded layout (expected {at})"
            )));
        }
        at += pad16(len);
    }
    Ok(HeaderV2 {
        stored_checksum,
        tag,
        constant,
        n,
        m,
        lens,
        offs,
        total_padded: at,
    })
}

/// Running structural aggregates of one section kind, fed incrementally
/// (any chunking whose boundaries land on element boundaries) by the
/// fused v2 verify pass. Alignment-agnostic: elements are decoded with
/// `from_le_bytes`, which on little-endian hosts compiles to plain
/// loads the vectorizer handles.
enum SectionScan {
    /// `u64` CSR offsets: monotonic non-decrease, first and last value.
    Offsets {
        monotonic: bool,
        first: Option<u64>,
        prev: u64,
    },
    /// `u32` id sections: running maximum.
    Ids { max: u32 },
    /// `f32` probability sections: all values in `[0, 1]` (NaN fails).
    Probs { in_unit: bool },
}

impl SectionScan {
    fn feed(&mut self, bytes: &[u8]) {
        match self {
            SectionScan::Offsets {
                monotonic,
                first,
                prev,
            } => {
                // Four comparisons per 32-byte round are independent of
                // each other (only `prev` carries across rounds), so the
                // checks pipeline instead of serializing per element.
                let mut rounds = bytes.chunks_exact(32);
                for c in &mut rounds {
                    let w = |i: usize| {
                        u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().expect("chunk of 8"))
                    };
                    let (w0, w1, w2, w3) = (w(0), w(1), w(2), w(3));
                    if first.is_none() {
                        *first = Some(w0);
                    }
                    *monotonic &= w0 >= *prev && w1 >= w0 && w2 >= w1 && w3 >= w2;
                    *prev = w3;
                }
                for e in rounds.remainder().chunks_exact(8) {
                    let x = u64::from_le_bytes(e.try_into().expect("chunk of 8"));
                    if first.is_none() {
                        *first = Some(x);
                    }
                    *monotonic &= x >= *prev;
                    *prev = x;
                }
            }
            SectionScan::Ids { max } => {
                // Eight independent max accumulators per 32-byte round —
                // the shape LLVM turns into packed SIMD max.
                let mut rounds = bytes.chunks_exact(32);
                let mut lanes = [0u32; 8];
                for c in &mut rounds {
                    for (i, lane) in lanes.iter_mut().enumerate() {
                        let x =
                            u32::from_le_bytes(c[i * 4..i * 4 + 4].try_into().expect("chunk of 4"));
                        *lane = (*lane).max(x);
                    }
                }
                *max = (*max).max(lanes.into_iter().max().expect("eight lanes"));
                for e in rounds.remainder().chunks_exact(4) {
                    *max = (*max).max(u32::from_le_bytes(e.try_into().expect("chunk of 4")));
                }
            }
            SectionScan::Probs { in_unit } => {
                // Eight independent range-check accumulators; NaN fails
                // both comparisons, exactly like the scalar contains().
                let mut rounds = bytes.chunks_exact(32);
                let mut lanes = [true; 8];
                for c in &mut rounds {
                    for (i, lane) in lanes.iter_mut().enumerate() {
                        let x =
                            f32::from_le_bytes(c[i * 4..i * 4 + 4].try_into().expect("chunk of 4"));
                        *lane &= (0.0..=1.0).contains(&x);
                    }
                }
                *in_unit &= lanes.into_iter().all(|ok| ok);
                for e in rounds.remainder().chunks_exact(4) {
                    let x = f32::from_le_bytes(e.try_into().expect("chunk of 4"));
                    *in_unit &= (0.0..=1.0).contains(&x);
                }
            }
        }
    }
}

/// The single fused verify pass of the v2 reader: walks the payload
/// once in ~256 KB blocks, folding the 4-lane checksum over each padded
/// section run and the structural aggregates over the unpadded data
/// while the block is cache-resident. Checksum disagreement wins over
/// structural complaints (matching v1 semantics: corrupt bytes report
/// as corruption, not as whatever nonsense they decode to).
fn verify_v2(header: &HeaderV2, header_tail: &[u8], payload: &[u8]) -> Result<(), SnapshotError> {
    const BLOCK: usize = 1 << 18; // multiple of the 32-byte hash round
    let mut hash = SnapshotHashV2::new();
    hash.update(header_tail);
    let mut scans = [
        SectionScan::Offsets {
            monotonic: true,
            first: None,
            prev: 0,
        },
        SectionScan::Ids { max: 0 },
        SectionScan::Offsets {
            monotonic: true,
            first: None,
            prev: 0,
        },
        SectionScan::Ids { max: 0 },
        SectionScan::Ids { max: 0 },
        SectionScan::Probs { in_unit: true },
        SectionScan::Probs { in_unit: true },
    ];
    for (i, scan) in scans.iter_mut().enumerate() {
        let (off, len) = (header.offs[i] as usize, header.lens[i] as usize);
        let padded = &payload[off..off + pad16(header.lens[i]) as usize];
        let mut chunks = padded.chunks(BLOCK).peekable();
        let mut at = 0usize;
        while let Some(block) = chunks.next() {
            // Hash the padded run: full rounds for every non-final
            // block (BLOCK is a multiple of 32), tail fold at the end.
            let mut rounds = block.chunks_exact(32);
            for c in &mut rounds {
                hash.fold32(c.try_into().expect("chunk of 32"));
            }
            let rem = rounds.remainder();
            debug_assert!(chunks.peek().is_none() || rem.is_empty());
            hash.fold_tail(rem);
            // Validate the unpadded intersection of the block.
            let data_hi = len.saturating_sub(at).min(block.len());
            scan.feed(&block[..data_hi]);
            at += block.len();
        }
    }
    let computed = hash.finish();
    if computed != header.stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: header.stored_checksum,
            computed,
        });
    }
    let (n, m) = (header.n, header.m);
    for i in [0, 2] {
        let SectionScan::Offsets {
            monotonic,
            first,
            prev,
        } = &scans[i]
        else {
            unreachable!("section {i} is an offsets section");
        };
        if !monotonic || *first != Some(0) || *prev != m {
            return Err(SnapshotError::Malformed(
                "offsets must rise monotonically from 0 to m".to_string(),
            ));
        }
    }
    for (i, bound, what) in [
        (1, n as u64, "adjacency entry out of node range"),
        (3, n as u64, "adjacency entry out of node range"),
        (4, m, "edge id out of range"),
    ] {
        let SectionScan::Ids { max } = &scans[i] else {
            unreachable!("section {i} is an id section");
        };
        if m > 0 && (*max as u64) >= bound {
            return Err(SnapshotError::Malformed(what.to_string()));
        }
    }
    for scan in &scans[5..] {
        let SectionScan::Probs { in_unit } = scan else {
            unreachable!("trailing sections are probability sections");
        };
        if !in_unit {
            return Err(SnapshotError::Malformed(
                "per-edge probability out of [0,1]".to_string(),
            ));
        }
    }
    Ok(())
}

/// Size checks shared by every v2 entry point, run between header parse
/// and verify: the payload must hold exactly the padded sections.
fn check_v2_payload_size(header: &HeaderV2, payload_len: u64) -> Result<(), SnapshotError> {
    if payload_len < header.total_padded {
        return Err(SnapshotError::Truncated {
            expected: header.total_padded,
            got: payload_len,
        });
    }
    if payload_len > header.total_padded {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after the last section",
            payload_len - header.total_padded
        )));
    }
    Ok(())
}

/// Builds the [`EdgeWeights`] for a verified v2 header given the two
/// probability sections (empty unless the tag is per-edge).
fn v2_weights(
    header: &HeaderV2,
    out_p: SectionStorage<f32>,
    in_p: SectionStorage<f32>,
) -> EdgeWeights {
    match header.tag {
        TAG_PER_EDGE => EdgeWeights::PerEdge { out_p, in_p },
        TAG_IN_DEGREE => EdgeWeights::InDegree,
        _ => EdgeWeights::Constant(header.constant),
    }
}

/// Zero-copy assembly: borrows every section straight out of the shared
/// buffer. Only compiled where the cast is the identity — little-endian
/// with 64-bit `usize` (the stored `u64` offsets *are* host `usize`s).
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
fn attach_sections_v2(buf: &Arc<SnapshotBuf>, h: &HeaderV2) -> Graph {
    let off = |i: usize| HEADER_LEN_V2 + h.offs[i] as usize;
    let n4 = |i: usize| (h.lens[i] / 4) as usize;
    let n8 = |i: usize| (h.lens[i] / 8) as usize;
    let weights = v2_weights(
        h,
        SectionStorage::view(buf, off(5), n4(5)),
        SectionStorage::view(buf, off(6), n4(6)),
    );
    Graph::from_validated_sections(
        h.n,
        SectionStorage::view(buf, off(0), n8(0)),
        SectionStorage::view(buf, off(1), n4(1)),
        SectionStorage::view(buf, off(2), n8(2)),
        SectionStorage::view(buf, off(3), n4(3)),
        SectionStorage::view(buf, off(4), n4(4)),
        weights,
    )
}

/// Owned assembly: decodes every section into fresh arrays. The
/// portable fallback (and the [`read_snapshot_bytes`] path, which has
/// no buffer to borrow from) — pure copy, no validation: `verify_v2`
/// has already established every invariant.
fn decode_owned_v2(header: &HeaderV2, payload: &[u8]) -> Graph {
    let section =
        |i: usize| &payload[header.offs[i] as usize..(header.offs[i] + header.lens[i]) as usize];
    let u32s = |i: usize| -> Vec<u32> {
        section(i)
            .chunks_exact(4)
            .map(|e| u32::from_le_bytes(e.try_into().expect("chunk of 4")))
            .collect()
    };
    let f32s = |i: usize| -> Vec<f32> {
        section(i)
            .chunks_exact(4)
            .map(|e| f32::from_le_bytes(e.try_into().expect("chunk of 4")))
            .collect()
    };
    let usizes = |i: usize| -> Vec<usize> {
        section(i)
            .chunks_exact(8)
            .map(|e| {
                let x = u64::from_le_bytes(e.try_into().expect("chunk of 8"));
                usize::try_from(x).expect("verified offset fits usize: offsets are bounded by m")
            })
            .collect()
    };
    let weights = v2_weights(header, f32s(5).into(), f32s(6).into());
    Graph::from_validated_raw_csr(
        header.n,
        usizes(0),
        u32s(1),
        usizes(2),
        u32s(3),
        u32s(4),
        weights,
    )
}

/// Checksum comparison, aggregate structural validation, and final
/// assembly — shared by the in-memory and streaming readers. Decoded
/// arrays are dropped unseen when the checksum disagrees.
#[allow(clippy::too_many_arguments)]
fn assemble(
    header: &Header,
    hash: SnapshotHash,
    out_off: OffsetDecoder,
    out_to: U32Decoder,
    in_off: OffsetDecoder,
    in_from: U32Decoder,
    in_eid: U32Decoder,
    out_p: F32Decoder,
    in_p: F32Decoder,
) -> Result<Graph, SnapshotError> {
    let computed = hash.finish();
    if computed != header.stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: header.stored_checksum,
            computed,
        });
    }
    // Structural validation from the aggregates the decode pass
    // collected — no re-traversal of the (potentially huge) arrays.
    let (n, m) = (header.n, header.m);
    for off in [&out_off, &in_off] {
        if off.overflow {
            return Err(SnapshotError::Malformed("offset exceeds usize".to_string()));
        }
        if !off.monotonic || off.out[0] != 0 || off.out[off.out.len() - 1] as u64 != m {
            return Err(SnapshotError::Malformed(
                "offsets must rise monotonically from 0 to m".to_string(),
            ));
        }
    }
    if m > 0 && (out_to.max >= n || in_from.max >= n) {
        return Err(SnapshotError::Malformed(
            "adjacency entry out of node range".to_string(),
        ));
    }
    if m > 0 && in_eid.max as u64 >= m {
        return Err(SnapshotError::Malformed("edge id out of range".to_string()));
    }
    let weights = match header.tag {
        TAG_PER_EDGE => {
            if !out_p.in_unit || !in_p.in_unit {
                return Err(SnapshotError::Malformed(
                    "per-edge probability out of [0,1]".to_string(),
                ));
            }
            EdgeWeights::PerEdge {
                out_p: out_p.out.into(),
                in_p: in_p.out.into(),
            }
        }
        TAG_IN_DEGREE => EdgeWeights::InDegree,
        _ => EdgeWeights::Constant(header.constant),
    };
    Ok(Graph::from_validated_raw_csr(
        n,
        out_off.out,
        out_to.out,
        in_off.out,
        in_from.out,
        in_eid.out,
        weights,
    ))
}

/// Parses a snapshot from an in-memory byte slice — either version.
/// The graph owns fresh CSR arrays (no borrowing from `bytes`; callers
/// wanting the zero-copy representation go through [`load_snapshot`]).
/// Sections are checksummed, decoded, and validation-aggregated in one
/// in-place traversal; the only allocations are the final CSR arrays
/// themselves (exact-sized, no growth).
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    match peek_version_bytes(bytes)? {
        LEGACY_FORMAT_VERSION => read_snapshot_bytes_v1(bytes),
        FORMAT_VERSION => {
            let header = parse_header_v2(bytes)?;
            let payload = &bytes[HEADER_LEN_V2..];
            check_v2_payload_size(&header, payload.len() as u64)?;
            verify_v2(&header, &bytes[20..HEADER_LEN_V2], payload)?;
            Ok(decode_owned_v2(&header, payload))
        }
        v => Err(SnapshotError::UnsupportedVersion(v)),
    }
}

/// Reads the magic and version fields, with v1-compatible truncation
/// semantics for short inputs.
fn peek_version_bytes(bytes: &[u8]) -> Result<u32, SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN_V2 as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 12 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN_V2 as u64,
            got: bytes.len() as u64,
        });
    }
    Ok(u32::from_le_bytes(
        bytes[8..12].try_into().expect("fixed slice"),
    ))
}

/// The v1 in-memory decoder (fused checksum + decode + aggregates).
fn read_snapshot_bytes_v1(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    let header = parse_header(bytes)?;
    let payload = &bytes[HEADER_LEN..];
    if (payload.len() as u64) < header.total {
        return Err(SnapshotError::Truncated {
            expected: header.total,
            got: payload.len() as u64,
        });
    }
    if payload.len() as u64 > header.total {
        // Trailing bytes are outside the checksum; refusing them keeps
        // "every byte is covered" true.
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after the last section",
            payload.len() as u64 - header.total
        )));
    }

    let mut sections: [&[u8]; NUM_SECTIONS] = [&[]; NUM_SECTIONS];
    let mut at = 0usize;
    for (slot, &len) in sections.iter_mut().zip(&header.lens) {
        *slot = &payload[at..at + len as usize];
        at += len as usize;
    }
    // Hash in the same runs the writer used: header tail, each section.
    let mut hash = SnapshotHash::new();
    hash.update(&bytes[20..HEADER_LEN]);
    let mut out_off = OffsetDecoder::new(header.lens[0]);
    let mut out_to = U32Decoder::new(header.lens[1]);
    let mut in_off = OffsetDecoder::new(header.lens[2]);
    let mut in_from = U32Decoder::new(header.lens[3]);
    let mut in_eid = U32Decoder::new(header.lens[4]);
    let mut out_p = F32Decoder::new(header.lens[5]);
    let mut in_p = F32Decoder::new(header.lens[6]);
    out_off.feed(&mut hash, sections[0], true);
    out_to.feed(&mut hash, sections[1], true);
    in_off.feed(&mut hash, sections[2], true);
    in_from.feed(&mut hash, sections[3], true);
    in_eid.feed(&mut hash, sections[4], true);
    out_p.feed(&mut hash, sections[5], true);
    in_p.feed(&mut hash, sections[6], true);
    assemble(
        &header, hash, out_off, out_to, in_off, in_from, in_eid, out_p, in_p,
    )
}

/// Reads a snapshot from any reader (the whole stream is consumed and
/// parsed via [`read_snapshot_bytes`]).
pub fn read_snapshot<R: Read>(mut r: R) -> Result<Graph, SnapshotError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    read_snapshot_bytes(&bytes)
}

/// Writes a snapshot to a file at `path`.
pub fn save_snapshot<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    write_snapshot(g, std::fs::File::create(path)?)
}

/// Streams one section of `len` bytes through `buf`, handing each
/// filled chunk to `f` with a final-chunk flag. `buf.len()` is a
/// multiple of 16, so every non-final chunk is 16-aligned — exactly
/// what the decoders' `feed` requires for checksum equivalence.
fn stream_section<R: Read>(
    r: &mut R,
    len: u64,
    buf: &mut [u8],
    mut f: impl FnMut(&[u8], bool),
) -> Result<(), SnapshotError> {
    debug_assert_eq!(buf.len() % 16, 0);
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(buf.len() as u64) as usize;
        r.read_exact(&mut buf[..chunk])?;
        remaining -= chunk as u64;
        f(&buf[..chunk], remaining == 0);
    }
    Ok(())
}

/// Loads a snapshot from a file at `path`.
///
/// Version-2 files take the **zero-copy** path: the file is mapped
/// (private, read-only; owned aligned read as fallback), verified by
/// the single fused checksum+validation pass, and the graph's sections
/// are pointer-cast views into the mapped buffer — no per-section
/// copies, no decode. Version-1 files fall back to the original
/// streaming decoder. On targets where the cast is not the identity
/// (big-endian or 32-bit), v2 files are decoded into owned arrays
/// instead.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Graph, SnapshotError> {
    let mut file = std::fs::File::open(path)?;
    let mut head12 = [0u8; 12];
    let mut got = 0usize;
    while got < 12 {
        match file.read(&mut head12[got..]) {
            Ok(0) => break,
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SnapshotError::Io(e)),
        }
    }
    match peek_version_bytes(&head12[..got])? {
        LEGACY_FORMAT_VERSION => {
            file.seek(SeekFrom::Start(0))?;
            load_snapshot_v1_file(file)
        }
        FORMAT_VERSION => load_snapshot_v2_file(file),
        v => Err(SnapshotError::UnsupportedVersion(v)),
    }
}

/// Loads a snapshot into **owned** CSR arrays regardless of version —
/// the non-zero-copy twin of [`load_snapshot`], kept as an explicit
/// entry point so tests and benches can pin the two representations
/// against each other.
pub fn load_snapshot_owned<P: AsRef<Path>>(path: P) -> Result<Graph, SnapshotError> {
    let bytes = std::fs::read(path)?;
    read_snapshot_bytes(&bytes)
}

/// Reads the format version of the snapshot at `path` without loading
/// it (magic is verified; the version itself may be unknown to this
/// reader). The cache uses this to spot upgradable old-format entries.
pub fn snapshot_version<P: AsRef<Path>>(path: P) -> Result<u32, SnapshotError> {
    let mut file = std::fs::File::open(path)?;
    let mut head12 = [0u8; 12];
    let mut got = 0usize;
    while got < 12 {
        match file.read(&mut head12[got..]) {
            Ok(0) => break,
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SnapshotError::Io(e)),
        }
    }
    peek_version_bytes(&head12[..got])
}

/// The v2 zero-copy file loader: map (or read into an aligned owned
/// buffer), verify, cast.
fn load_snapshot_v2_file(mut file: std::fs::File) -> Result<Graph, SnapshotError> {
    #[cfg(all(unix, target_pointer_width = "64"))]
    let buf = match SnapshotBuf::map_file(&file)? {
        Some(mapped) => mapped,
        None => {
            file.seek(SeekFrom::Start(0))?;
            SnapshotBuf::read_file(&mut file)?
        }
    };
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    let buf = {
        file.seek(SeekFrom::Start(0))?;
        SnapshotBuf::read_file(&mut file)?
    };
    let buf = Arc::new(buf);
    let bytes = buf.bytes();
    let header = parse_header_v2(bytes)?;
    let payload = &bytes[HEADER_LEN_V2..];
    check_v2_payload_size(&header, payload.len() as u64)?;
    verify_v2(&header, &bytes[20..HEADER_LEN_V2], payload)?;
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    {
        Ok(attach_sections_v2(&buf, &header))
    }
    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    {
        Ok(decode_owned_v2(&header, payload))
    }
}

/// The v1 streaming file loader (reads from the file's current
/// position, which the dispatcher has rewound to 0), streaming the
/// payload through a small cache-resident buffer straight into the
/// decoders — the file's bytes are traversed once and never
/// materialized as a whole.
fn load_snapshot_v1_file(mut file: std::fs::File) -> Result<Graph, SnapshotError> {
    let mut head = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match file.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SnapshotError::Io(e)),
        }
    }
    let header = parse_header(&head[..got])?;
    // parse_header succeeding implies the full header was present.
    let payload_len = file.metadata()?.len().saturating_sub(HEADER_LEN as u64);
    if payload_len < header.total {
        return Err(SnapshotError::Truncated {
            expected: header.total,
            got: payload_len,
        });
    }
    if payload_len > header.total {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after the last section",
            payload_len - header.total
        )));
    }

    let mut hash = SnapshotHash::new();
    hash.update(&head[20..HEADER_LEN]);
    let mut buf = vec![0u8; 1 << 18];
    let mut out_off = OffsetDecoder::new(header.lens[0]);
    let mut out_to = U32Decoder::new(header.lens[1]);
    let mut in_off = OffsetDecoder::new(header.lens[2]);
    let mut in_from = U32Decoder::new(header.lens[3]);
    let mut in_eid = U32Decoder::new(header.lens[4]);
    let mut out_p = F32Decoder::new(header.lens[5]);
    let mut in_p = F32Decoder::new(header.lens[6]);
    stream_section(&mut file, header.lens[0], &mut buf, |c, last| {
        out_off.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[1], &mut buf, |c, last| {
        out_to.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[2], &mut buf, |c, last| {
        in_off.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[3], &mut buf, |c, last| {
        in_from.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[4], &mut buf, |c, last| {
        in_eid.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[5], &mut buf, |c, last| {
        out_p.feed(&mut hash, c, last)
    })?;
    stream_section(&mut file, header.lens[6], &mut buf, |c, last| {
        in_p.feed(&mut hash, c, last)
    })?;
    assemble(
        &header, hash, out_off, out_to, in_off, in_from, in_eid, out_p, in_p,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NodeId, WeightSpec};

    #[test]
    #[ignore = "perf probe, run manually"]
    fn probe_verify_phases() {
        // Breakdown of the v2 load: hash fold vs structural scan vs
        // whole verify, on a ~128 MB payload.
        let bytes = vec![0x5au8; 128 << 20];
        for round in 0..2 {
            let t = std::time::Instant::now();
            let mut h = SnapshotHashV2::new();
            h.update(&bytes);
            std::hint::black_box(h.finish());
            eprintln!("round {round}: hash only {:?}", t.elapsed());

            let t = std::time::Instant::now();
            let mut scan = SectionScan::Ids { max: 0 };
            scan.feed(&bytes);
            std::hint::black_box(&scan);
            eprintln!("round {round}: ids scan only {:?}", t.elapsed());

            let t = std::time::Instant::now();
            let mut scan = SectionScan::Offsets {
                monotonic: true,
                first: None,
                prev: 0,
            };
            scan.feed(&bytes);
            std::hint::black_box(&scan);
            eprintln!("round {round}: offsets scan only {:?}", t.elapsed());

            // L2-resident variants: same total bytes, 256 KB working set
            // — the conditions the fused verify loop's scan runs under.
            let block = &bytes[..1 << 18];
            let t = std::time::Instant::now();
            let mut h = SnapshotHashV2::new();
            for _ in 0..512 {
                h.update(block);
            }
            std::hint::black_box(h.finish());
            eprintln!("round {round}: hash L2 {:?}", t.elapsed());
            let t = std::time::Instant::now();
            let mut scan = SectionScan::Ids { max: 0 };
            for _ in 0..512 {
                scan.feed(block);
            }
            std::hint::black_box(&scan);
            eprintln!("round {round}: ids scan L2 {:?}", t.elapsed());
        }
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(&buf[..]).unwrap()
    }

    fn sample_arcs() -> Vec<(NodeId, NodeId)> {
        vec![(0, 1), (0, 2), (1, 2), (2, 0), (3, 1), (1, 3)]
    }

    #[test]
    fn roundtrip_all_representations() {
        let arcs = sample_arcs();
        let per_edge = Graph::from_edges(4, &[(0, 1, 0.5), (0, 2, 0.25), (1, 2, 1.0), (2, 0, 0.0)]);
        let wc = Graph::try_from_arcs(4, &arcs, WeightSpec::InDegree).unwrap();
        let cp = Graph::try_from_arcs(4, &arcs, WeightSpec::Constant(0.125)).unwrap();
        for g in [&per_edge, &wc, &cp] {
            let back = roundtrip(g);
            assert_eq!(&back, g, "snapshot round-trip must be exact");
            assert_eq!(back.weight_class(), g.weight_class());
            assert_eq!(back.memory_footprint(), g.memory_footprint());
        }
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&Graph::from_edges(2, &[(0, 1, 0.5)]), &mut buf).unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot(&buf[..]),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&Graph::from_edges(2, &[(0, 1, 0.5)]), &mut buf).unwrap();
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_snapshot(&buf[..]),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let mut buf = Vec::new();
        write_snapshot(
            &Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]),
            &mut buf,
        )
        .unwrap();
        for len in 0..buf.len() {
            let err = read_snapshot(&buf[..len]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "truncation at {len} gave {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)]);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(
                read_snapshot(&bad[..]).is_err(),
                "flip at byte {at} went unnoticed"
            );
        }
    }

    #[test]
    fn absurd_section_lengths_do_not_allocate() {
        let mut buf = Vec::new();
        write_snapshot(&Graph::from_edges(2, &[(0, 1, 0.5)]), &mut buf).unwrap();
        // Claim 2^60 edges: the reader must fail on the length check or
        // run out of stream, never attempt the allocation.
        buf[32..40].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(read_snapshot(&buf[..]).is_err());
    }

    #[test]
    fn file_loader_detects_truncation_flips_and_trailing_bytes() {
        // The streaming file loader shares parse/validate logic with the
        // in-memory path but reads through a chunk buffer; exercise its
        // error handling end to end on a real file.
        let dir = std::env::temp_dir().join("uic_graph_snapshot_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.uicg");
        let g = Graph::from_edges(5, &[(0, 1, 0.5), (1, 2, 0.25), (3, 4, 0.75)]);
        save_snapshot(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncated file.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        // Flipped payload byte.
        let mut bad = bytes.clone();
        let at = bad.len() - 5;
        bad[at] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Trailing junk.
        let mut long = bytes.clone();
        long.extend_from_slice(b"junk");
        std::fs::write(&path, &long).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(SnapshotError::Malformed(_))
        ));
        // Pristine file still loads.
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("uic_graph_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.uicg");
        let g = Graph::try_from_arcs(4, &sample_arcs(), WeightSpec::InDegree).unwrap();
        save_snapshot(&g, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_layout_is_padded_and_offset_tabled() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        assert_eq!(&buf[0..8], &MAGIC);
        assert_eq!(&buf[8..12], &2u32.to_le_bytes());
        // n=3, m=2, per-edge: lens [32, 8, 32, 8, 8, 8, 8], each padded
        // to 16 → offsets [0, 32, 48, 80, 96, 112, 128], total 144.
        assert_eq!(buf.len(), HEADER_LEN_V2 + 144);
        let off_at = |i: usize| {
            let at = 96 + i * 8;
            u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
        };
        assert_eq!(
            (0..7).map(off_at).collect::<Vec<_>>(),
            vec![0, 32, 48, 80, 96, 112, 128]
        );
        // Every recorded offset is 8-byte aligned in the file.
        assert!((0..7).all(|i| (HEADER_LEN_V2 as u64 + off_at(i)).is_multiple_of(8)));
    }

    #[test]
    fn v1_files_still_load_through_the_fallback() {
        let arcs = sample_arcs();
        let per_edge = Graph::from_edges(4, &[(0, 1, 0.5), (0, 2, 0.25), (1, 2, 1.0), (2, 0, 0.0)]);
        let wc = Graph::try_from_arcs(4, &arcs, WeightSpec::InDegree).unwrap();
        let cp = Graph::try_from_arcs(4, &arcs, WeightSpec::Constant(0.125)).unwrap();
        let dir = std::env::temp_dir().join("uic_graph_snapshot_v1_compat");
        std::fs::create_dir_all(&dir).unwrap();
        for (i, g) in [&per_edge, &wc, &cp].into_iter().enumerate() {
            let mut buf = Vec::new();
            write_snapshot_v1(g, &mut buf).unwrap();
            assert_eq!(&buf[8..12], &1u32.to_le_bytes());
            // In-memory v1 read.
            assert_eq!(&read_snapshot(&buf[..]).unwrap(), g);
            // Streaming v1 file load through the dispatcher.
            let path = dir.join(format!("g{i}.uicg"));
            std::fs::write(&path, &buf).unwrap();
            let loaded = load_snapshot(&path).unwrap();
            assert_eq!(&loaded, g);
            assert!(!loaded.is_zero_copy(), "v1 loads are owned");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v2_file_load_is_zero_copy_and_bit_identical() {
        let dir = std::env::temp_dir().join("uic_graph_snapshot_v2_zero_copy");
        std::fs::create_dir_all(&dir).unwrap();
        let arcs = sample_arcs();
        let graphs = [
            Graph::from_edges(4, &[(0, 1, 0.5), (0, 2, 0.25), (1, 2, 1.0), (2, 0, 0.0)]),
            Graph::try_from_arcs(4, &arcs, WeightSpec::InDegree).unwrap(),
            Graph::try_from_arcs(4, &arcs, WeightSpec::Constant(0.125)).unwrap(),
            Graph::from_edges(0, &[]),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let path = dir.join(format!("g{i}.uicg"));
            save_snapshot(g, &path).unwrap();
            let zc = load_snapshot(&path).unwrap();
            assert_eq!(&zc, g, "zero-copy load must be exact");
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            assert!(zc.is_zero_copy(), "v2 loads borrow from the buffer");
            let owned = load_snapshot_owned(&path).unwrap();
            assert!(!owned.is_zero_copy());
            assert_eq!(zc, owned, "representations must be equal");
            // The clone of a view-backed graph keeps working after the
            // original is dropped (Arc-shared buffer).
            let c = zc.clone();
            drop(zc);
            assert_eq!(&c, g);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn snapshot_version_peeks_without_loading() {
        let dir = std::env::temp_dir().join("uic_graph_snapshot_version_peek");
        std::fs::create_dir_all(&dir).unwrap();
        let g = Graph::from_edges(2, &[(0, 1, 0.5)]);
        let p2 = dir.join("v2.uicg");
        save_snapshot(&g, &p2).unwrap();
        assert_eq!(snapshot_version(&p2).unwrap(), 2);
        let p1 = dir.join("v1.uicg");
        write_snapshot_v1(&g, std::fs::File::create(&p1).unwrap()).unwrap();
        assert_eq!(snapshot_version(&p1).unwrap(), 1);
        let junk = dir.join("junk.uicg");
        std::fs::write(&junk, b"definitely not a snapshot").unwrap();
        assert!(matches!(
            snapshot_version(&junk),
            Err(SnapshotError::BadMagic)
        ));
        for p in [p1, p2, junk] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn v2_misaligned_offset_table_is_a_typed_error() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        // Shift section 1's recorded offset by 4 bytes: no longer the
        // canonical padded layout → Malformed, never a cast.
        let at = 96 + 8;
        let mut off = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        off += 4;
        buf[at..at + 8].copy_from_slice(&off.to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&buf),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn v1_single_byte_flips_are_detected() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25), (2, 0, 1.0)]);
        let mut buf = Vec::new();
        write_snapshot_v1(&g, &mut buf).unwrap();
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(
                read_snapshot(&bad[..]).is_err(),
                "v1 flip at byte {at} went unnoticed"
            );
        }
    }
}
