//! Plain-text edge-list I/O.
//!
//! Format (one edge per line, `#`-comments allowed):
//! ```text
//! # n <num_nodes>        -- optional header; otherwise n = max id + 1
//! <src> <dst> [prob]
//! ```
//! The optional third column carries an explicit probability; absent
//! columns are only legal when a [`crate::Weighting`] scheme overwrites
//! them — under [`Weighting::AsGiven`] a missing column is a typed
//! [`IoError::Parse`], never a silent zero-probability edge.

use crate::builder::{GraphBuilder, Weighting};
use crate::graph::{Graph, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors surfaced while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse { line: usize, message: String },
    /// Structurally invalid graph (oversized edge count, bad
    /// probability) reported by [`Graph`] construction.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an edge list from any reader and builds a graph under `weighting`.
pub fn read_edge_list<R: Read>(
    reader: R,
    weighting: Weighting,
    seed: u64,
) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut declared_n: Option<u32> = None;
    let mut max_id = 0u32;
    let mut max_id_line = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(nstr) = rest.strip_prefix("n ") {
                declared_n = Some(nstr.trim().parse::<u32>().map_err(|e| IoError::Parse {
                    line: lineno,
                    message: format!("bad node count: {e}"),
                })?);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_id = |tok: Option<&str>, what: &str| -> Result<u32, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse::<u32>()
            .map_err(|e| IoError::Parse {
                line: lineno,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse_id(parts.next(), "source")?;
        let v = parse_id(parts.next(), "target")?;
        let p = match parts.next() {
            Some(tok) => tok.parse::<f32>().map_err(|e| IoError::Parse {
                line: lineno,
                message: format!("bad probability: {e}"),
            })?,
            // Without an overriding scheme a defaulted 0.0 would silently
            // drop the edge from every cascade — reject it instead.
            None if weighting == Weighting::AsGiven => {
                return Err(IoError::Parse {
                    line: lineno,
                    message: "missing probability column (required with Weighting::AsGiven)"
                        .to_string(),
                });
            }
            None => 0.0,
        };
        if u.max(v) > max_id {
            max_id = u.max(v);
            max_id_line = lineno;
        }
        edges.push((u, v, p));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    if !edges.is_empty() && max_id >= n {
        return Err(IoError::Parse {
            line: max_id_line,
            message: format!("node id {max_id} out of range for declared n={n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    b.reserve(edges.len());
    for (u, v, p) in edges {
        b.add_edge(u, v, p);
    }
    Ok(b.try_build(weighting, seed)?)
}

/// Reads an edge-list file from `path`.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    weighting: Weighting,
    seed: u64,
) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, weighting, seed)
}

/// Writes a graph as an edge list (with probabilities and an `# n` header).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n {}", g.num_nodes())?;
    for (u, v, p) in g.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()
}

/// Writes a graph to a file at `path`.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_text() {
        let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Weighting::AsGiven, 0).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn header_controls_node_count() {
        let text = "# n 10\n0 1\n";
        let g = read_edge_list(text.as_bytes(), Weighting::Constant(0.1), 0).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn infers_node_count_without_header() {
        let text = "0 5\n2 3\n";
        let g = read_edge_list(text.as_bytes(), Weighting::Constant(0.1), 0).unwrap();
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n0 1 0.7\n# another\n1 0 0.3\n";
        let g = read_edge_list(text.as_bytes(), Weighting::AsGiven, 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_prob(0, 0), 0.7);
    }

    #[test]
    fn missing_probability_under_as_given_is_an_error() {
        // A defaulted 0.0 would silently drop the edge from every
        // cascade; it must be a typed parse error instead.
        let text = "0 1 0.4\n1 2\n";
        let err = read_edge_list(text.as_bytes(), Weighting::AsGiven, 0).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("missing probability"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Schemes that overwrite the column still accept bare arcs.
        let g = read_edge_list(text.as_bytes(), Weighting::WeightedCascade, 0).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn declared_n_smaller_than_ids_is_an_error() {
        let text = "# n 2\n0 1 0.5\n5 1 0.5\n";
        let err = read_edge_list(text.as_bytes(), Weighting::AsGiven, 0).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn weighting_picks_snapshot_representation() {
        let text = "0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), Weighting::WeightedCascade, 0).unwrap();
        assert_eq!(g.weight_class(), crate::WeightClass::InDegree);
        let g = read_edge_list(text.as_bytes(), Weighting::Constant(0.3), 0).unwrap();
        assert_eq!(g.weight_class(), crate::WeightClass::Constant(0.3));
    }

    #[test]
    fn reports_malformed_line_number() {
        let text = "0 1 0.5\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), Weighting::AsGiven, 0).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_target_is_an_error() {
        let err = read_edge_list("5\n".as_bytes(), Weighting::AsGiven, 0).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes(), Weighting::AsGiven, 0).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("uic_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path, Weighting::AsGiven, 0).unwrap();
        assert_eq!(g2.num_edges(), 1);
        std::fs::remove_file(&path).ok();
    }
}
