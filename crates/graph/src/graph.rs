//! The CSR [`Graph`] type and its compressed weight storage.

use crate::storage::SectionStorage;

/// Node identifier. `u32` keeps adjacency arrays half the size of `usize`
/// and comfortably addresses the multi-million-node stand-in networks.
pub type NodeId = u32;

/// Typed construction failures (see [`Graph::try_from_edges`]).
///
/// The panicking constructors ([`Graph::from_edges`],
/// [`crate::GraphBuilder::build`]) keep their historical assert semantics
/// as thin wrappers; services loading untrusted edge lists go through the
/// `try_*` variants and surface these instead of aborting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint does not fit in the declared node count.
    NodeOutOfRange {
        /// Edge source.
        src: NodeId,
        /// Edge target.
        dst: NodeId,
        /// Declared node count.
        n: u32,
    },
    /// A probability is outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Edge source.
        src: NodeId,
        /// Edge target.
        dst: NodeId,
        /// The offending probability.
        p: f32,
    },
    /// More edges than global `u32` edge ids can address.
    TooManyEdges {
        /// Offered edge count.
        m: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { src, dst, n } => {
                write!(f, "edge ({src},{dst}) out of range for n={n}")
            }
            GraphError::InvalidProbability { src, dst, p } => {
                write!(f, "probability {p} out of [0,1] on edge ({src},{dst})")
            }
            GraphError::TooManyEdges { m } => {
                write!(f, "edge count {m} must fit in u32 ids")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// How edge probabilities are materialized.
///
/// The paper's default weighting is weighted-cascade `p(u,v) = 1/d_in(v)`
/// (§4.3.1.3), and Fig. 9d's ablation uses a constant probability — in
/// both cases every probability is derivable from the CSR structure, so
/// storing two per-edge `f32` arrays (~8 bytes/edge) is pure redundancy.
/// [`crate::GraphBuilder`] picks the compact representation automatically
/// from the [`crate::Weighting`] scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeWeights {
    /// Explicit per-edge probabilities, stored in both orientations
    /// (forward `out_p` parallel to the out-CSR, reverse `in_p` parallel
    /// to the in-CSR) so either side reads without a search.
    PerEdge {
        /// Probabilities parallel to the forward CSR targets.
        out_p: SectionStorage<f32>,
        /// Probabilities parallel to the reverse CSR sources.
        in_p: SectionStorage<f32>,
    },
    /// Weighted cascade: `p(u,v) = 1 / max(d_in(v), 1)`, computed from
    /// the reverse CSR offsets. Zero weight bytes.
    InDegree,
    /// One probability shared by every edge. Zero per-edge weight bytes.
    Constant(f32),
}

/// The structural class of a graph's weight storage — what consumers
/// branch on instead of scanning in-lists for uniformity (the RR-set
/// samplers' geometric-jump fast path, the engine's edge-coin path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightClass {
    /// Arbitrary per-edge probabilities; nothing structural is promised.
    PerEdge,
    /// Weighted cascade: every in-list of a node is uniform at
    /// `1/max(d_in, 1)`.
    InDegree,
    /// Every edge shares this probability.
    Constant(f32),
}

impl WeightClass {
    /// Short token used in stats tables and cache keys.
    pub fn token(self) -> &'static str {
        match self {
            WeightClass::PerEdge => "per-edge",
            WeightClass::InDegree => "in-degree",
            WeightClass::Constant(_) => "constant",
        }
    }
}

/// Weight storage requested at construction time
/// (see [`Graph::try_from_arcs`]).
#[derive(Debug, Clone, Copy)]
pub enum WeightSpec<'a> {
    /// Explicit probabilities, parallel to the arc list.
    PerEdge(&'a [f32]),
    /// Weighted cascade `1/d_in(v)`, derived from structure.
    InDegree,
    /// One shared probability.
    Constant(f32),
}

/// The raw CSR sections of a graph, in snapshot order:
/// `(out_off, out_to, in_off, in_from, in_eid, weights)`.
pub(crate) type RawCsr<'g> = (
    &'g [usize],
    &'g [NodeId],
    &'g [usize],
    &'g [NodeId],
    &'g [u32],
    &'g EdgeWeights,
);

/// Borrowed view of one node's arc probabilities, with the
/// representation branch resolved **once per node** rather than once per
/// edge. Obtained from [`Graph::out_arc_probs`] / [`Graph::in_arc_probs`];
/// `get(i)` is positionally parallel to the node's neighbor slice.
#[derive(Debug, Clone, Copy)]
pub enum ArcProbs<'g> {
    /// Explicit probabilities (the `PerEdge` representation).
    Dense(&'g [f32]),
    /// Every arc in the list shares `p` (in-lists of weighted-cascade
    /// graphs, any list of constant graphs).
    Uniform {
        /// The shared probability.
        p: f32,
        /// Number of arcs in the list.
        len: usize,
    },
    /// Forward lists of weighted-cascade graphs: each arc's probability
    /// is the reciprocal in-degree of its target, read from the reverse
    /// CSR offsets.
    RecipInDegree {
        /// The graph's reverse CSR offsets.
        in_off: &'g [usize],
        /// Targets parallel to the arc list.
        targets: &'g [NodeId],
    },
}

impl<'g> ArcProbs<'g> {
    /// Number of arcs in the list.
    #[inline]
    pub fn len(self) -> usize {
        match self {
            ArcProbs::Dense(p) => p.len(),
            ArcProbs::Uniform { len, .. } => len,
            ArcProbs::RecipInDegree { targets, .. } => targets.len(),
        }
    }

    /// True when the list is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Probability of the `i`-th arc.
    #[inline]
    pub fn get(self, i: usize) -> f32 {
        match self {
            ArcProbs::Dense(p) => p[i],
            ArcProbs::Uniform { p, len } => {
                debug_assert!(i < len, "arc index {i} out of bounds {len}");
                p
            }
            ArcProbs::RecipInDegree { in_off, targets } => {
                let t = targets[i] as usize;
                1.0 / ((in_off[t + 1] - in_off[t]).max(1) as f32)
            }
        }
    }

    /// The shared probability, when the **representation** guarantees
    /// uniformity (`None` for [`ArcProbs::Dense`] even if the stored
    /// values happen to coincide — callers needing that fall back to a
    /// scan, which compact representations never pay).
    #[inline]
    pub fn uniform_prob(self) -> Option<f32> {
        match self {
            ArcProbs::Uniform { p, .. } => Some(p),
            _ => None,
        }
    }

    /// Iterates the probabilities in arc order.
    pub fn iter(self) -> impl Iterator<Item = f32> + 'g {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// Per-section heap usage of a graph, in bytes (see
/// [`Graph::memory_footprint`]). The compact weight representations show
/// up as `weights == 0` (in-degree) or `weights == 4` (constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Forward CSR offsets (`(n+1) × 8`).
    pub out_offsets: usize,
    /// Forward CSR targets (`m × 4`).
    pub out_targets: usize,
    /// Reverse CSR offsets (`(n+1) × 8`).
    pub in_offsets: usize,
    /// Reverse CSR sources (`m × 4`).
    pub in_sources: usize,
    /// Reverse-slot → out-edge-id map (`m × 4`).
    pub in_edge_ids: usize,
    /// Weight storage: `2m × 4` per-edge, `4` constant, `0` in-degree.
    pub weights: usize,
}

impl MemoryFootprint {
    /// Total bytes across all sections.
    pub fn total(&self) -> usize {
        self.out_offsets
            + self.out_targets
            + self.in_offsets
            + self.in_sources
            + self.in_edge_ids
            + self.weights
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total={}B (out_off={} out_to={} in_off={} in_from={} in_eid={} weights={})",
            self.total(),
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_sources,
            self.in_edge_ids,
            self.weights
        )
    }
}

/// A directed influence graph in dual-orientation CSR form.
///
/// Both orientations are materialized once at construction:
/// * forward (`out_*`): cascade simulation walks out-edges;
/// * reverse (`in_*`): RR-set sampling walks in-edges.
///
/// Edge probabilities live behind [`EdgeWeights`]: explicit per-edge
/// arrays only when the weighting scheme demands them; weighted-cascade
/// and constant graphs derive every probability from the CSR structure
/// and allocate **zero** per-edge weight bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: u32,
    // Forward CSR: out-edges of u are targets[out_off[u]..out_off[u+1]].
    // Sections are owned boxes for built graphs, or borrowed views over
    // one shared snapshot buffer for zero-copy loads (see `storage.rs`).
    out_off: SectionStorage<usize>,
    out_to: SectionStorage<NodeId>,
    // Reverse CSR: in-edges of v are sources[in_off[v]..in_off[v+1]].
    in_off: SectionStorage<usize>,
    in_from: SectionStorage<NodeId>,
    // For each reverse slot, the global out-edge id of the same physical
    // edge — lets reverse walks share per-edge coin caches with forward
    // simulations (needed by the RR-CIM baseline's two-pass sampling).
    in_eid: SectionStorage<u32>,
    weights: EdgeWeights,
}

impl Graph {
    /// Builds a graph from raw parallel edge arrays `(src, dst, p)` with
    /// explicit per-edge weight storage.
    ///
    /// Edges may be in any order; duplicates are kept (callers that need
    /// deduplication use [`crate::GraphBuilder`]). Probabilities must lie
    /// in `[0, 1]`. Panics on invalid input — see
    /// [`Graph::try_from_edges`] for the fallible variant.
    pub fn from_edges(n: u32, edges: &[(NodeId, NodeId, f32)]) -> Self {
        match Self::try_from_edges(n, edges) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Graph::from_edges`]: rejects out-of-range endpoints,
    /// probabilities outside `[0, 1]`, and edge counts beyond `u32` ids
    /// with a typed [`GraphError`] instead of panicking.
    pub fn try_from_edges(n: u32, edges: &[(NodeId, NodeId, f32)]) -> Result<Self, GraphError> {
        let arcs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let probs: Vec<f32> = edges.iter().map(|&(_, _, p)| p).collect();
        Self::try_from_arcs(n, &arcs, WeightSpec::PerEdge(&probs))
    }

    /// Builds a graph from an arc list under the requested weight
    /// representation — the single construction entry point behind the
    /// builder, the snapshot loader's validator, and `from_edges`.
    ///
    /// With [`WeightSpec::PerEdge`] the probability slice must be
    /// parallel to `arcs` (enforced by assert: a length mismatch is a
    /// programmer error, not input data).
    pub fn try_from_arcs(
        n: u32,
        arcs: &[(NodeId, NodeId)],
        weights: WeightSpec<'_>,
    ) -> Result<Self, GraphError> {
        let nu = n as usize;
        let m = arcs.len();
        if m >= u32::MAX as usize {
            return Err(GraphError::TooManyEdges { m });
        }
        for &(u, v) in arcs {
            if u >= n || v >= n {
                return Err(GraphError::NodeOutOfRange { src: u, dst: v, n });
            }
        }
        match weights {
            WeightSpec::PerEdge(probs) => {
                assert_eq!(probs.len(), m, "probability slice not parallel to arcs");
                for (&(u, v), &p) in arcs.iter().zip(probs) {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(GraphError::InvalidProbability { src: u, dst: v, p });
                    }
                }
            }
            WeightSpec::Constant(c) => {
                if !(0.0..=1.0).contains(&c) {
                    return Err(GraphError::InvalidProbability {
                        src: 0,
                        dst: 0,
                        p: c,
                    });
                }
            }
            WeightSpec::InDegree => {}
        }

        // Counting sort into forward CSR.
        let mut out_off = vec![0usize; nu + 1];
        for &(u, _) in arcs {
            out_off[u as usize + 1] += 1;
        }
        for i in 0..nu {
            out_off[i + 1] += out_off[i];
        }
        let mut out_to = vec![0 as NodeId; m];
        let mut cursor = out_off.clone();
        // Out-edge id assigned to each input arc (for the reverse map).
        let mut eid_of_input = vec![0u32; m];
        for (idx, &(u, v)) in arcs.iter().enumerate() {
            let slot = cursor[u as usize];
            out_to[slot] = v;
            eid_of_input[idx] = slot as u32;
            cursor[u as usize] += 1;
        }
        // Reverse CSR.
        let mut in_off = vec![0usize; nu + 1];
        for &(_, v) in arcs {
            in_off[v as usize + 1] += 1;
        }
        for i in 0..nu {
            in_off[i + 1] += in_off[i];
        }
        let mut in_from = vec![0 as NodeId; m];
        let mut in_eid = vec![0u32; m];
        let mut cursor = in_off.clone();
        let mut in_slot_of_input = vec![0u32; m];
        for (idx, &(u, v)) in arcs.iter().enumerate() {
            let slot = cursor[v as usize];
            in_from[slot] = u;
            in_eid[slot] = eid_of_input[idx];
            in_slot_of_input[idx] = slot as u32;
            cursor[v as usize] += 1;
        }
        let weights = match weights {
            WeightSpec::PerEdge(probs) => {
                let mut out_p = vec![0f32; m];
                let mut in_p = vec![0f32; m];
                for (idx, &p) in probs.iter().enumerate() {
                    out_p[eid_of_input[idx] as usize] = p;
                    in_p[in_slot_of_input[idx] as usize] = p;
                }
                EdgeWeights::PerEdge {
                    out_p: out_p.into(),
                    in_p: in_p.into(),
                }
            }
            WeightSpec::InDegree => EdgeWeights::InDegree,
            WeightSpec::Constant(c) => EdgeWeights::Constant(c),
        };
        Ok(Graph {
            n,
            out_off: out_off.into(),
            out_to: out_to.into(),
            in_off: in_off.into(),
            in_from: in_from.into(),
            in_eid: in_eid.into(),
            weights,
        })
    }

    /// Assembles a graph directly from pre-built CSR arrays whose
    /// structural invariants the caller has already verified (the
    /// snapshot loader validates them as aggregates fused into its
    /// decode pass — re-scanning hundreds of megabytes here would
    /// double the load's memory traffic). Invariants are still spelled
    /// out as debug assertions.
    pub(crate) fn from_validated_raw_csr(
        n: u32,
        out_off: Vec<usize>,
        out_to: Vec<NodeId>,
        in_off: Vec<usize>,
        in_from: Vec<NodeId>,
        in_eid: Vec<u32>,
        weights: EdgeWeights,
    ) -> Self {
        Self::from_validated_sections(
            n,
            out_off.into(),
            out_to.into(),
            in_off.into(),
            in_from.into(),
            in_eid.into(),
            weights,
        )
    }

    /// [`Graph::from_validated_raw_csr`] over pre-built section storage —
    /// the zero-copy snapshot loader hands in borrowed views over the
    /// mapped buffer here (its fused verify pass has already established
    /// the invariants; they stay spelled out as debug assertions).
    pub(crate) fn from_validated_sections(
        n: u32,
        out_off: SectionStorage<usize>,
        out_to: SectionStorage<NodeId>,
        in_off: SectionStorage<usize>,
        in_from: SectionStorage<NodeId>,
        in_eid: SectionStorage<u32>,
        weights: EdgeWeights,
    ) -> Self {
        let nu = n as usize;
        let m = out_to.len();
        debug_assert_eq!(out_off.len(), nu + 1);
        debug_assert_eq!(in_off.len(), nu + 1);
        debug_assert_eq!(in_from.len(), m);
        debug_assert_eq!(in_eid.len(), m);
        debug_assert!([&out_off, &in_off]
            .iter()
            .all(|w| w[0] == 0 && w[nu] == m && w.windows(2).all(|p| p[0] <= p[1])));
        debug_assert!(!out_to.iter().chain(&in_from[..]).any(|&v| v >= n));
        debug_assert!(!in_eid.iter().any(|&e| e as usize >= m));
        Graph {
            n,
            out_off,
            out_to,
            in_off,
            in_from,
            in_eid,
            weights,
        }
    }

    /// True when every CSR section (and any per-edge weight array) is a
    /// borrowed view into a shared snapshot buffer — i.e. the graph came
    /// through the zero-copy load path.
    pub fn is_zero_copy(&self) -> bool {
        let weights_borrowed = match &self.weights {
            EdgeWeights::PerEdge { out_p, in_p } => out_p.is_borrowed() && in_p.is_borrowed(),
            EdgeWeights::InDegree | EdgeWeights::Constant(_) => true,
        };
        self.out_off.is_borrowed()
            && self.out_to.is_borrowed()
            && self.in_off.is_borrowed()
            && self.in_from.is_borrowed()
            && self.in_eid.is_borrowed()
            && weights_borrowed
    }

    /// The raw CSR sections, in snapshot order (see `snapshot.rs`).
    pub(crate) fn raw_csr(&self) -> RawCsr<'_> {
        (
            &self.out_off[..],
            &self.out_to[..],
            &self.in_off[..],
            &self.in_from[..],
            &self.in_eid[..],
            &self.weights,
        )
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_to.len()
    }

    /// The structural class of the weight storage.
    #[inline]
    pub fn weight_class(&self) -> WeightClass {
        match self.weights {
            EdgeWeights::PerEdge { .. } => WeightClass::PerEdge,
            EdgeWeights::InDegree => WeightClass::InDegree,
            EdgeWeights::Constant(c) => WeightClass::Constant(c),
        }
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_off[u as usize + 1] - self.out_off[u as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_off[v as usize + 1] - self.in_off[v as usize]
    }

    /// Reciprocal in-degree `1/max(d_in(v), 1)` — the weighted-cascade
    /// probability of every edge into `v`.
    #[inline]
    fn recip_in_degree(&self, v: NodeId) -> f32 {
        1.0 / (self.in_degree(v).max(1) as f32)
    }

    /// Out-neighbors of `u` (targets only).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_to[self.out_off[u as usize]..self.out_off[u as usize + 1]]
    }

    /// In-neighbors of `v` (sources only).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.in_from[self.in_off[v as usize]..self.in_off[v as usize + 1]]
    }

    /// Probability of the `i`-th out-edge of `u` (parallel to
    /// [`Self::out_neighbors`]). Computed from the representation: a per-
    /// edge array read, a reciprocal in-degree, or the shared constant.
    /// Hot loops over one node's list should hoist
    /// [`Self::out_arc_probs`] instead.
    #[inline]
    pub fn out_prob(&self, u: NodeId, i: usize) -> f32 {
        self.out_arc_probs(u).get(i)
    }

    /// Probability of the `i`-th in-edge of `v` (parallel to
    /// [`Self::in_neighbors`]): `in_prob(v, i)` is
    /// `p(in_neighbors(v)[i] → v)`.
    #[inline]
    pub fn in_prob(&self, v: NodeId, i: usize) -> f32 {
        self.in_arc_probs(v).get(i)
    }

    /// Probability view over `u`'s out-list, with the representation
    /// branch resolved once per node.
    #[inline]
    pub fn out_arc_probs(&self, u: NodeId) -> ArcProbs<'_> {
        let lo = self.out_off[u as usize];
        let hi = self.out_off[u as usize + 1];
        match &self.weights {
            EdgeWeights::PerEdge { out_p, .. } => ArcProbs::Dense(&out_p[lo..hi]),
            EdgeWeights::InDegree => ArcProbs::RecipInDegree {
                in_off: &self.in_off,
                targets: &self.out_to[lo..hi],
            },
            EdgeWeights::Constant(c) => ArcProbs::Uniform {
                p: *c,
                len: hi - lo,
            },
        }
    }

    /// Probability view over `v`'s in-list. Weighted-cascade graphs
    /// report [`ArcProbs::Uniform`] here — the structural guarantee the
    /// RR samplers' geometric-jump fast path keys on.
    #[inline]
    pub fn in_arc_probs(&self, v: NodeId) -> ArcProbs<'_> {
        let lo = self.in_off[v as usize];
        let hi = self.in_off[v as usize + 1];
        match &self.weights {
            EdgeWeights::PerEdge { in_p, .. } => ArcProbs::Dense(&in_p[lo..hi]),
            EdgeWeights::InDegree => ArcProbs::Uniform {
                p: self.recip_in_degree(v),
                len: hi - lo,
            },
            EdgeWeights::Constant(c) => ArcProbs::Uniform {
                p: *c,
                len: hi - lo,
            },
        }
    }

    /// Global index of the `i`-th out-edge of `u` — a stable edge id usable
    /// for per-world edge-status caches (each edge flipped at most once in
    /// a UIC diffusion, per Fig. 1 of the paper).
    #[inline]
    pub fn out_edge_id(&self, u: NodeId, i: usize) -> usize {
        self.out_off[u as usize] + i
    }

    /// Global out-edge ids parallel to [`Self::in_neighbors`]:
    /// `in_edge_ids(v)[i]` is the id of the physical edge
    /// `in_neighbors(v)[i] → v`. Lets reverse traversals share a per-edge
    /// coin cache with forward simulations of the same world.
    #[inline]
    pub fn in_edge_ids(&self, v: NodeId) -> &[u32] {
        &self.in_eid[self.in_off[v as usize]..self.in_off[v as usize + 1]]
    }

    /// Iterates over all edges as `(src, dst, p)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_neighbors(u)
                .iter()
                .zip(self.out_arc_probs(u).iter())
                .map(move |(&v, p)| (u, v, p))
        })
    }

    /// Sum of in-probabilities of `v` (needed to validate LT instances,
    /// where `Σ p(u,v) ≤ 1` must hold). Accumulated in arc order for all
    /// representations so the value is bit-identical across them.
    pub fn in_prob_sum(&self, v: NodeId) -> f64 {
        self.in_arc_probs(v).iter().map(|p| p as f64).sum()
    }

    /// Per-section heap usage. Weighted-cascade and constant graphs show
    /// `weights` at 0 and 4 bytes respectively — the ~8 bytes/edge the
    /// compact representations save over [`EdgeWeights::PerEdge`].
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::mem::size_of;
        MemoryFootprint {
            out_offsets: self.out_off.len() * size_of::<usize>(),
            out_targets: self.out_to.len() * size_of::<NodeId>(),
            in_offsets: self.in_off.len() * size_of::<usize>(),
            in_sources: self.in_from.len() * size_of::<NodeId>(),
            in_edge_ids: self.in_eid.len() * size_of::<u32>(),
            weights: match &self.weights {
                EdgeWeights::PerEdge { out_p, in_p } => {
                    (out_p.len() + in_p.len()) * size_of::<f32>()
                }
                EdgeWeights::InDegree => 0,
                EdgeWeights::Constant(_) => size_of::<f32>(),
            },
        }
    }

    /// Returns the transposed graph (every edge reversed, weights kept).
    ///
    /// Both orientations are already materialized, so transposition swaps
    /// the forward and reverse CSR arrays wholesale — `O(m)` copies, no
    /// edge collection and no counting sort. Only the reverse edge-id map
    /// needs rebuilding: the transposed graph's out-edge ids are the
    /// original in-CSR slots, so the new `in_eid` is the inverse
    /// permutation of the original one.
    ///
    /// Weight representations: `PerEdge` swaps its arrays, `Constant`
    /// stays constant, and `InDegree` materializes per-edge arrays — the
    /// transposed probabilities are reciprocal **out**-degrees of the new
    /// targets, which has no compact form.
    pub fn transpose(&self) -> Graph {
        // self.in_eid: old-in-slot → old-out-edge-id. Inverting it maps
        // each old out slot (= new in slot) to its old in slot (= new
        // out-edge id).
        let mut in_eid = vec![0u32; self.in_eid.len()];
        for (in_slot, &eid) in self.in_eid.iter().enumerate() {
            in_eid[eid as usize] = in_slot as u32;
        }
        let weights = match &self.weights {
            EdgeWeights::PerEdge { out_p, in_p } => EdgeWeights::PerEdge {
                out_p: in_p.clone(),
                in_p: out_p.clone(),
            },
            EdgeWeights::Constant(c) => EdgeWeights::Constant(*c),
            EdgeWeights::InDegree => {
                // Old edge u→v carries p = 1/d_in_old(v). In the
                // transposed graph the same physical edge sits at old-in
                // slots on the out side (p determined by the segment's
                // node v) and old-out slots on the in side (p determined
                // by the slot's old target).
                let m = self.num_edges();
                let mut out_p = vec![0f32; m];
                for v in 0..self.n {
                    let p = self.recip_in_degree(v);
                    out_p[self.in_off[v as usize]..self.in_off[v as usize + 1]].fill(p);
                }
                let in_p: Vec<f32> = self
                    .out_to
                    .iter()
                    .map(|&v| self.recip_in_degree(v))
                    .collect();
                EdgeWeights::PerEdge {
                    out_p: out_p.into(),
                    in_p: in_p.into(),
                }
            }
        };
        Graph {
            n: self.n,
            out_off: self.in_off.clone(),
            out_to: self.in_from.clone(),
            in_off: self.out_off.clone(),
            in_from: self.out_to.clone(),
            in_eid: in_eid.into(),
            weights,
        }
    }

    /// Replaces every edge probability via `f(src, dst, old) -> new`,
    /// producing per-edge weight storage.
    ///
    /// For the standard schemes prefer [`Graph::reweighted_as`], which
    /// keeps weighted-cascade and constant outputs in their compact
    /// representations.
    pub fn reweighted<F: Fn(NodeId, NodeId, f32) -> f32>(&self, f: F) -> Graph {
        let edges: Vec<(NodeId, NodeId, f32)> = self
            .edges()
            .map(|(u, v, p)| {
                let np = f(u, v, p);
                assert!(
                    (0.0..=1.0).contains(&np),
                    "reweighted prob {np} out of [0,1]"
                );
                (u, v, np)
            })
            .collect();
        Graph::from_edges(self.n, &edges)
    }

    /// Re-derives edge probabilities on the same topology under a
    /// [`crate::Weighting`] scheme, picking the compact representation
    /// where the scheme allows (the Fig. 9d `1/d_in` ↔ constant swap).
    /// `seed` drives the stochastic schemes; self-loops, duplicates and
    /// edge order are preserved exactly.
    pub fn reweighted_as(&self, weighting: crate::Weighting, seed: u64) -> Graph {
        let mut b = crate::GraphBuilder::new(self.n).allow_self_loops(true);
        b.reserve(self.num_edges());
        for (u, v, p) in self.edges() {
            b.add_edge(u, v, p);
        }
        b.build(weighting, seed)
    }

    /// Average out-degree `m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1 (0.5), 0→2 (0.2), 1→2 (1.0), 2→0 (0.3)
    fn diamond() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.2), (1, 2, 1.0), (2, 0, 0.3)])
    }

    /// The same topology under each of the three representations, with
    /// weights that coincide where the representation forces them.
    fn arcs4() -> Vec<(NodeId, NodeId)> {
        vec![(0, 1), (0, 2), (1, 2), (2, 0)]
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.weight_class(), WeightClass::PerEdge);
    }

    #[test]
    fn adjacency_and_probs_are_parallel() {
        let g = diamond();
        let nbrs = g.out_neighbors(0);
        let ps = g.out_arc_probs(0);
        assert_eq!(nbrs.len(), ps.len());
        let pairs: Vec<(u32, f32)> = nbrs.iter().copied().zip(ps.iter()).collect();
        assert!(pairs.contains(&(1, 0.5)));
        assert!(pairs.contains(&(2, 0.2)));
    }

    #[test]
    fn reverse_orientation_matches_forward() {
        let g = diamond();
        let mut fwd: Vec<(u32, u32, f32)> = g.edges().collect();
        let mut rev: Vec<(u32, u32, f32)> = (0..3)
            .flat_map(|v| {
                g.in_neighbors(v)
                    .iter()
                    .zip(g.in_arc_probs(v).iter())
                    .map(move |(&u, p)| (u, v, p))
                    .collect::<Vec<_>>()
            })
            .collect();
        fwd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rev.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(fwd, rev);
    }

    #[test]
    fn in_degree_representation_computes_weighted_cascade() {
        let g = Graph::try_from_arcs(3, &arcs4(), WeightSpec::InDegree).unwrap();
        assert_eq!(g.weight_class(), WeightClass::InDegree);
        for (_, v, p) in g.edges() {
            let expect = 1.0 / g.in_degree(v).max(1) as f32;
            assert_eq!(p, expect);
        }
        // In-lists are structurally uniform; out-lists are not.
        assert_eq!(g.in_arc_probs(2).uniform_prob(), Some(0.5));
        assert_eq!(g.out_arc_probs(0).uniform_prob(), None);
        assert_eq!(g.out_prob(0, 1), 0.5, "edge 0→2 at 1/d_in(2)");
        assert_eq!(g.in_prob(2, 0), 0.5);
    }

    #[test]
    fn constant_representation_shares_one_probability() {
        let g = Graph::try_from_arcs(3, &arcs4(), WeightSpec::Constant(0.25)).unwrap();
        assert_eq!(g.weight_class(), WeightClass::Constant(0.25));
        assert!(g.edges().all(|(_, _, p)| p == 0.25));
        assert_eq!(g.out_arc_probs(0).uniform_prob(), Some(0.25));
        assert_eq!(g.in_arc_probs(2).uniform_prob(), Some(0.25));
    }

    #[test]
    fn compact_representations_allocate_no_per_edge_weight_bytes() {
        let arcs = arcs4();
        let wc = Graph::try_from_arcs(3, &arcs, WeightSpec::InDegree).unwrap();
        assert_eq!(wc.memory_footprint().weights, 0);
        let cp = Graph::try_from_arcs(3, &arcs, WeightSpec::Constant(0.1)).unwrap();
        assert_eq!(cp.memory_footprint().weights, 4);
        let pe = diamond();
        assert_eq!(pe.memory_footprint().weights, 4 * 2 * 4);
        assert_eq!(
            pe.memory_footprint().total() - pe.memory_footprint().weights,
            wc.memory_footprint().total()
        );
    }

    #[test]
    fn per_edge_and_in_degree_probs_coincide_on_wc_weights() {
        // Materialize 1/d_in per-edge and compare bitwise against the
        // compact representation on every accessor.
        let arcs = arcs4();
        let compact = Graph::try_from_arcs(3, &arcs, WeightSpec::InDegree).unwrap();
        let dense = {
            let edges: Vec<(NodeId, NodeId, f32)> = compact.edges().collect();
            Graph::from_edges(3, &edges)
        };
        for u in 0..3u32 {
            assert_eq!(
                compact.out_arc_probs(u).iter().collect::<Vec<_>>(),
                dense.out_arc_probs(u).iter().collect::<Vec<_>>()
            );
            assert_eq!(
                compact.in_arc_probs(u).iter().collect::<Vec<_>>(),
                dense.in_arc_probs(u).iter().collect::<Vec<_>>()
            );
            assert_eq!(compact.in_prob_sum(u), dense.in_prob_sum(u));
        }
    }

    #[test]
    fn try_from_edges_reports_typed_errors() {
        assert_eq!(
            Graph::try_from_edges(2, &[(0, 5, 0.5)]),
            Err(GraphError::NodeOutOfRange {
                src: 0,
                dst: 5,
                n: 2
            })
        );
        assert_eq!(
            Graph::try_from_edges(2, &[(0, 1, 1.5)]),
            Err(GraphError::InvalidProbability {
                src: 0,
                dst: 1,
                p: 1.5
            })
        );
        assert!(Graph::try_from_edges(2, &[(0, 1, f32::NAN)]).is_err());
        assert!(Graph::try_from_arcs(2, &[(0, 1)], WeightSpec::Constant(-0.1)).is_err());
        let e = GraphError::TooManyEdges { m: usize::MAX };
        assert!(e.to_string().contains("fit in u32"));
    }

    #[test]
    fn transpose_is_involution() {
        let g = diamond();
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_degree(0), 1); // only 2→0 reversed: 0→2
        assert_eq!(t.in_degree(0), 2);
        assert!(t.out_neighbors(2).contains(&0));
        assert!(t.out_neighbors(2).contains(&1));
    }

    #[test]
    fn transpose_of_compact_representations_keeps_probabilities() {
        for spec in [WeightSpec::InDegree, WeightSpec::Constant(0.2)] {
            let g = Graph::try_from_arcs(3, &arcs4(), spec).unwrap();
            let t = g.transpose();
            let mut expect: Vec<(u32, u32, f32)> = g.edges().map(|(u, v, p)| (v, u, p)).collect();
            let mut got: Vec<(u32, u32, f32)> = t.edges().collect();
            expect.sort_by(|x, y| x.partial_cmp(y).unwrap());
            got.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(expect, got);
        }
        // Constant stays compact; in-degree must materialize.
        let cp = Graph::try_from_arcs(3, &arcs4(), WeightSpec::Constant(0.2)).unwrap();
        assert_eq!(cp.transpose().weight_class(), WeightClass::Constant(0.2));
        let wc = Graph::try_from_arcs(3, &arcs4(), WeightSpec::InDegree).unwrap();
        assert_eq!(wc.transpose().weight_class(), WeightClass::PerEdge);
    }

    #[test]
    fn transpose_matches_rebuild_from_reversed_edges() {
        // The CSR-swap transpose must agree with the naive
        // collect-and-rebuild construction on every array, including the
        // reverse edge-id map (checked via the same-physical-edge
        // invariant below).
        let g = diamond();
        let t = g.transpose();
        let rebuilt = {
            let edges: Vec<(NodeId, NodeId, f32)> = g.edges().map(|(u, v, p)| (v, u, p)).collect();
            Graph::from_edges(g.num_nodes(), &edges)
        };
        for v in 0..g.num_nodes() {
            let mut a: Vec<(u32, f32)> = t
                .out_neighbors(v)
                .iter()
                .copied()
                .zip(t.out_arc_probs(v).iter())
                .collect();
            let mut b: Vec<(u32, f32)> = rebuilt
                .out_neighbors(v)
                .iter()
                .copied()
                .zip(rebuilt.out_arc_probs(v).iter())
                .collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "out adjacency of {v}");
            assert_eq!(t.in_degree(v), rebuilt.in_degree(v));
        }
        // in_eid consistency: every reverse slot names the physical edge
        // it sits on.
        for v in 0..t.num_nodes() {
            let srcs = t.in_neighbors(v);
            let ids = t.in_edge_ids(v);
            for (&u, &eid) in srcs.iter().zip(ids) {
                let base = t.out_edge_id(u, 0);
                let slot = eid as usize - base;
                assert_eq!(t.out_neighbors(u)[slot], v);
                assert_eq!(
                    t.out_prob(u, slot),
                    t.in_prob(v, ids.iter().position(|&e| e == eid).unwrap())
                );
            }
        }
    }

    #[test]
    fn transpose_handles_parallel_edges_and_isolated_nodes() {
        let g = Graph::from_edges(4, &[(0, 1, 0.1), (0, 1, 0.2), (2, 0, 0.9)]);
        let t = g.transpose();
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.out_degree(1), 2);
        assert_eq!(t.in_degree(1), 0);
        assert_eq!(t.out_degree(3), 0);
        let mut ids: Vec<usize> = (0..t.num_nodes())
            .flat_map(|u| (0..t.out_degree(u)).map(move |i| (u, i)))
            .map(|(u, i)| t.out_edge_id(u, i))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2], "edge ids stay dense");
        // And the involution property survives duplicates.
        let tt = t.transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn in_edge_ids_name_the_same_physical_edge() {
        let g = diamond();
        for v in 0..3u32 {
            let srcs = g.in_neighbors(v);
            let ids = g.in_edge_ids(v);
            assert_eq!(srcs.len(), ids.len());
            for (&u, &eid) in srcs.iter().zip(ids) {
                // The out-edge with that id must be u → v.
                let base = g.out_edge_id(u, 0);
                let slot = eid as usize - base;
                assert_eq!(g.out_neighbors(u)[slot], v);
            }
        }
    }

    #[test]
    fn edge_ids_are_unique_and_dense() {
        let g = diamond();
        let mut ids = Vec::new();
        for u in 0..3u32 {
            for i in 0..g.out_degree(u) {
                ids.push(g.out_edge_id(u, i));
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reweighted_applies_function() {
        let g = diamond().reweighted(|_, _, _| 0.25);
        assert!(g.edges().all(|(_, _, p)| p == 0.25));
        assert_eq!(g.weight_class(), WeightClass::PerEdge);
    }

    #[test]
    fn reweighted_as_picks_compact_representations() {
        use crate::Weighting;
        let g = diamond();
        let wc = g.reweighted_as(Weighting::WeightedCascade, 0);
        assert_eq!(wc.weight_class(), WeightClass::InDegree);
        assert_eq!(
            wc.edges().map(|(u, v, _)| (u, v)).collect::<Vec<_>>(),
            g.edges().map(|(u, v, _)| (u, v)).collect::<Vec<_>>(),
            "topology and order preserved"
        );
        let cp = g.reweighted_as(Weighting::Constant(0.01), 0);
        assert_eq!(cp.weight_class(), WeightClass::Constant(0.01));
        let given = g.reweighted_as(Weighting::AsGiven, 0);
        assert_eq!(
            given.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 0);
        assert!(g.out_neighbors(3).is_empty());
        assert!(g.out_arc_probs(3).is_empty());
        let empty = Graph::from_edges(0, &[]);
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.avg_degree(), 0.0);
        let empty_wc = Graph::try_from_arcs(0, &[], WeightSpec::InDegree).unwrap();
        assert_eq!(empty_wc.num_edges(), 0);
    }

    #[test]
    fn in_prob_sum_accumulates() {
        let g = diamond();
        assert!((g.in_prob_sum(2) - 1.2).abs() < 1e-6);
        let wc = Graph::try_from_arcs(3, &arcs4(), WeightSpec::InDegree).unwrap();
        assert!((wc.in_prob_sum(2) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        Graph::from_edges(2, &[(0, 5, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        Graph::from_edges(2, &[(0, 1, 1.5)]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = Graph::from_edges(2, &[(0, 1, 0.1), (0, 1, 0.2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
    }
}
