//! The CSR [`Graph`] type.

/// Node identifier. `u32` keeps adjacency arrays half the size of `usize`
/// and comfortably addresses the multi-million-node stand-in networks.
pub type NodeId = u32;

/// A directed influence graph in dual-orientation CSR form.
///
/// Both orientations are materialized once at construction:
/// * forward (`out_*`): cascade simulation walks out-edges;
/// * reverse (`in_*`): RR-set sampling walks in-edges.
///
/// Edge probabilities are stored per direction so `prob(u→v)` is available
/// from either side without a search.
#[derive(Debug, Clone)]
pub struct Graph {
    n: u32,
    // Forward CSR: out-edges of u are targets[out_off[u]..out_off[u+1]].
    out_off: Box<[usize]>,
    out_to: Box<[NodeId]>,
    out_p: Box<[f32]>,
    // Reverse CSR: in-edges of v are sources[in_off[v]..in_off[v+1]].
    in_off: Box<[usize]>,
    in_from: Box<[NodeId]>,
    in_p: Box<[f32]>,
    // For each reverse slot, the global out-edge id of the same physical
    // edge — lets reverse walks share per-edge coin caches with forward
    // simulations (needed by the RR-CIM baseline's two-pass sampling).
    in_eid: Box<[u32]>,
}

impl Graph {
    /// Builds a graph from raw parallel edge arrays `(src, dst, p)`.
    ///
    /// Edges may be in any order; duplicates are kept (callers that need
    /// deduplication use [`crate::GraphBuilder`]). Probabilities must lie
    /// in `[0, 1]`.
    pub fn from_edges(n: u32, edges: &[(NodeId, NodeId, f32)]) -> Self {
        let nu = n as usize;
        let m = edges.len();
        for &(u, v, p) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        }
        // Counting sort into forward CSR.
        let mut out_off = vec![0usize; nu + 1];
        for &(u, _, _) in edges {
            out_off[u as usize + 1] += 1;
        }
        for i in 0..nu {
            out_off[i + 1] += out_off[i];
        }
        assert!(m < u32::MAX as usize, "edge count must fit in u32 ids");
        let mut out_to = vec![0 as NodeId; m];
        let mut out_p = vec![0f32; m];
        let mut cursor = out_off.clone();
        // Out-edge id assigned to each input edge (for the reverse map).
        let mut eid_of_input = vec![0u32; m];
        for (idx, &(u, v, p)) in edges.iter().enumerate() {
            let slot = cursor[u as usize];
            out_to[slot] = v;
            out_p[slot] = p;
            eid_of_input[idx] = slot as u32;
            cursor[u as usize] += 1;
        }
        // Reverse CSR.
        let mut in_off = vec![0usize; nu + 1];
        for &(_, v, _) in edges {
            in_off[v as usize + 1] += 1;
        }
        for i in 0..nu {
            in_off[i + 1] += in_off[i];
        }
        let mut in_from = vec![0 as NodeId; m];
        let mut in_p = vec![0f32; m];
        let mut in_eid = vec![0u32; m];
        let mut cursor = in_off.clone();
        for (idx, &(u, v, p)) in edges.iter().enumerate() {
            let slot = cursor[v as usize];
            in_from[slot] = u;
            in_p[slot] = p;
            in_eid[slot] = eid_of_input[idx];
            cursor[v as usize] += 1;
        }
        Graph {
            n,
            out_off: out_off.into_boxed_slice(),
            out_to: out_to.into_boxed_slice(),
            out_p: out_p.into_boxed_slice(),
            in_off: in_off.into_boxed_slice(),
            in_from: in_from.into_boxed_slice(),
            in_p: in_p.into_boxed_slice(),
            in_eid: in_eid.into_boxed_slice(),
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_to.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_off[u as usize + 1] - self.out_off[u as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_off[v as usize + 1] - self.in_off[v as usize]
    }

    /// Out-neighbors of `u` (targets only).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_to[self.out_off[u as usize]..self.out_off[u as usize + 1]]
    }

    /// Probabilities parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_probs(&self, u: NodeId) -> &[f32] {
        &self.out_p[self.out_off[u as usize]..self.out_off[u as usize + 1]]
    }

    /// In-neighbors of `v` (sources only).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.in_from[self.in_off[v as usize]..self.in_off[v as usize + 1]]
    }

    /// Probabilities parallel to [`Self::in_neighbors`]:
    /// `in_probs(v)[i]` is `p(in_neighbors(v)[i] → v)`.
    #[inline]
    pub fn in_probs(&self, v: NodeId) -> &[f32] {
        &self.in_p[self.in_off[v as usize]..self.in_off[v as usize + 1]]
    }

    /// Global index of the `i`-th out-edge of `u` — a stable edge id usable
    /// for per-world edge-status caches (each edge flipped at most once in
    /// a UIC diffusion, per Fig. 1 of the paper).
    #[inline]
    pub fn out_edge_id(&self, u: NodeId, i: usize) -> usize {
        self.out_off[u as usize] + i
    }

    /// Global out-edge ids parallel to [`Self::in_neighbors`]:
    /// `in_edge_ids(v)[i]` is the id of the physical edge
    /// `in_neighbors(v)[i] → v`. Lets reverse traversals share a per-edge
    /// coin cache with forward simulations of the same world.
    #[inline]
    pub fn in_edge_ids(&self, v: NodeId) -> &[u32] {
        &self.in_eid[self.in_off[v as usize]..self.in_off[v as usize + 1]]
    }

    /// Iterates over all edges as `(src, dst, p)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_neighbors(u)
                .iter()
                .zip(self.out_probs(u))
                .map(move |(&v, &p)| (u, v, p))
        })
    }

    /// Sum of in-probabilities of `v` (needed to validate LT instances,
    /// where `Σ p(u,v) ≤ 1` must hold).
    pub fn in_prob_sum(&self, v: NodeId) -> f64 {
        self.in_probs(v).iter().map(|&p| p as f64).sum()
    }

    /// Returns the transposed graph (every edge reversed, weights kept).
    ///
    /// Both orientations are already materialized, so transposition swaps
    /// the forward and reverse CSR arrays wholesale — `O(m)` copies, no
    /// edge collection and no counting sort. Only the reverse edge-id map
    /// needs rebuilding: the transposed graph's out-edge ids are the
    /// original in-CSR slots, so the new `in_eid` is the inverse
    /// permutation of the original one.
    pub fn transpose(&self) -> Graph {
        // self.in_eid: old-in-slot → old-out-edge-id. Inverting it maps
        // each old out slot (= new in slot) to its old in slot (= new
        // out-edge id).
        let mut in_eid = vec![0u32; self.in_eid.len()];
        for (in_slot, &eid) in self.in_eid.iter().enumerate() {
            in_eid[eid as usize] = in_slot as u32;
        }
        Graph {
            n: self.n,
            out_off: self.in_off.clone(),
            out_to: self.in_from.clone(),
            out_p: self.in_p.clone(),
            in_off: self.out_off.clone(),
            in_from: self.out_to.clone(),
            in_p: self.out_p.clone(),
            in_eid: in_eid.into_boxed_slice(),
        }
    }

    /// Replaces every edge probability via `f(src, dst, old) -> new`.
    ///
    /// Used by the scalability experiment (Fig. 9d) to switch between
    /// `1/d_in` and constant `0.01` weights on the same topology.
    pub fn reweighted<F: Fn(NodeId, NodeId, f32) -> f32>(&self, f: F) -> Graph {
        let edges: Vec<(NodeId, NodeId, f32)> = self
            .edges()
            .map(|(u, v, p)| {
                let np = f(u, v, p);
                assert!(
                    (0.0..=1.0).contains(&np),
                    "reweighted prob {np} out of [0,1]"
                );
                (u, v, np)
            })
            .collect();
        Graph::from_edges(self.n, &edges)
    }

    /// Average out-degree `m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1 (0.5), 0→2 (0.2), 1→2 (1.0), 2→0 (0.3)
    fn diamond() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.2), (1, 2, 1.0), (2, 0, 0.3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_and_probs_are_parallel() {
        let g = diamond();
        let nbrs = g.out_neighbors(0);
        let ps = g.out_probs(0);
        assert_eq!(nbrs.len(), ps.len());
        let pairs: Vec<(u32, f32)> = nbrs.iter().copied().zip(ps.iter().copied()).collect();
        assert!(pairs.contains(&(1, 0.5)));
        assert!(pairs.contains(&(2, 0.2)));
    }

    #[test]
    fn reverse_orientation_matches_forward() {
        let g = diamond();
        let mut fwd: Vec<(u32, u32, f32)> = g.edges().collect();
        let mut rev: Vec<(u32, u32, f32)> = (0..3)
            .flat_map(|v| {
                g.in_neighbors(v)
                    .iter()
                    .zip(g.in_probs(v))
                    .map(move |(&u, &p)| (u, v, p))
            })
            .collect();
        fwd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rev.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(fwd, rev);
    }

    #[test]
    fn transpose_is_involution() {
        let g = diamond();
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_degree(0), 1); // only 2→0 reversed: 0→2
        assert_eq!(t.in_degree(0), 2);
        assert!(t.out_neighbors(2).contains(&0));
        assert!(t.out_neighbors(2).contains(&1));
    }

    #[test]
    fn transpose_matches_rebuild_from_reversed_edges() {
        // The CSR-swap transpose must agree with the naive
        // collect-and-rebuild construction on every array, including the
        // reverse edge-id map (checked via the same-physical-edge
        // invariant below).
        let g = diamond();
        let t = g.transpose();
        let rebuilt = {
            let edges: Vec<(NodeId, NodeId, f32)> = g.edges().map(|(u, v, p)| (v, u, p)).collect();
            Graph::from_edges(g.num_nodes(), &edges)
        };
        for v in 0..g.num_nodes() {
            let mut a: Vec<(u32, f32)> = t
                .out_neighbors(v)
                .iter()
                .copied()
                .zip(t.out_probs(v).iter().copied())
                .collect();
            let mut b: Vec<(u32, f32)> = rebuilt
                .out_neighbors(v)
                .iter()
                .copied()
                .zip(rebuilt.out_probs(v).iter().copied())
                .collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "out adjacency of {v}");
            assert_eq!(t.in_degree(v), rebuilt.in_degree(v));
        }
        // in_eid consistency: every reverse slot names the physical edge
        // it sits on.
        for v in 0..t.num_nodes() {
            let srcs = t.in_neighbors(v);
            let ids = t.in_edge_ids(v);
            for (&u, &eid) in srcs.iter().zip(ids) {
                let base = t.out_edge_id(u, 0);
                let slot = eid as usize - base;
                assert_eq!(t.out_neighbors(u)[slot], v);
                assert_eq!(
                    t.out_probs(u)[slot],
                    t.in_probs(v)[ids.iter().position(|&e| e == eid).unwrap()]
                );
            }
        }
    }

    #[test]
    fn transpose_handles_parallel_edges_and_isolated_nodes() {
        let g = Graph::from_edges(4, &[(0, 1, 0.1), (0, 1, 0.2), (2, 0, 0.9)]);
        let t = g.transpose();
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.out_degree(1), 2);
        assert_eq!(t.in_degree(1), 0);
        assert_eq!(t.out_degree(3), 0);
        let mut ids: Vec<usize> = (0..t.num_nodes())
            .flat_map(|u| (0..t.out_degree(u)).map(move |i| (u, i)))
            .map(|(u, i)| t.out_edge_id(u, i))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2], "edge ids stay dense");
        // And the involution property survives duplicates.
        let tt = t.transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn in_edge_ids_name_the_same_physical_edge() {
        let g = diamond();
        for v in 0..3u32 {
            let srcs = g.in_neighbors(v);
            let ids = g.in_edge_ids(v);
            assert_eq!(srcs.len(), ids.len());
            for (&u, &eid) in srcs.iter().zip(ids) {
                // The out-edge with that id must be u → v.
                let base = g.out_edge_id(u, 0);
                let slot = eid as usize - base;
                assert_eq!(g.out_neighbors(u)[slot], v);
            }
        }
    }

    #[test]
    fn edge_ids_are_unique_and_dense() {
        let g = diamond();
        let mut ids = Vec::new();
        for u in 0..3u32 {
            for i in 0..g.out_degree(u) {
                ids.push(g.out_edge_id(u, i));
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reweighted_applies_function() {
        let g = diamond().reweighted(|_, _, _| 0.25);
        assert!(g.edges().all(|(_, _, p)| p == 0.25));
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 0);
        assert!(g.out_neighbors(3).is_empty());
        let empty = Graph::from_edges(0, &[]);
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.avg_degree(), 0.0);
    }

    #[test]
    fn in_prob_sum_accumulates() {
        let g = diamond();
        assert!((g.in_prob_sum(2) - 1.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        Graph::from_edges(2, &[(0, 5, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        Graph::from_edges(2, &[(0, 1, 1.5)]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = Graph::from_edges(2, &[(0, 1, 0.1), (0, 1, 0.2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
    }
}
