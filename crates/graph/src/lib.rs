//! # uic-graph
//!
//! Compact directed influence graphs for the UIC reproduction.
//!
//! A social network `G = (V, E, p)` is stored in **compressed sparse row**
//! (CSR) form with `u32` node ids and `f32` edge probabilities, in both
//! forward (out-neighbor) and reverse (in-neighbor) orientation — forward
//! for cascade simulation, reverse for RR-set sampling. This mirrors the
//! layouts used by production IM codebases and follows the perf-book
//! guidance (small integer ids, contiguous adjacency, no per-node
//! allocations).
//!
//! Edge weights live behind a compact representation
//! ([`EdgeWeights`]): weighted-cascade and constant-probability graphs
//! derive every probability from the CSR structure and allocate **zero**
//! per-edge weight bytes; consumers branch on the structural
//! [`WeightClass`] instead of scanning lists for uniformity.
//!
//! Modules:
//! * [`graph`] — the [`Graph`] type, CSR accessors, and the
//!   [`ArcProbs`] per-node probability views.
//! * [`builder`] — [`GraphBuilder`] plus edge-probability [`Weighting`]
//!   schemes (weighted cascade `1/d_in(v)`, constant, trivalency, uniform).
//! * [`snapshot`] — the versioned binary snapshot format (magic, version,
//!   checksum, bulk little-endian CSR sections) with typed load errors.
//!   Format v2 pads sections to alignment boundaries so files load
//!   **zero-copy**: checksum-verify, then pointer-cast section views
//!   over one mapped (or owned, aligned) buffer.
//! * [`storage`] — [`SectionStorage`], the owned-or-borrowed section
//!   representation behind every CSR array.
//! * [`traversal`] — BFS/DFS reachability, weakly connected components,
//!   Tarjan SCC, and subgraph extraction (used to take the largest SCC of
//!   the Flixster stand-in and BFS prefixes for the scalability test).
//! * [`community`] — node → community labelings ([`CommunityLabels`]),
//!   the graph-side carrier for fairness-aware welfare objectives.
//! * [`io`] — plain-text edge-list reader/writer.
//! * [`stats`] — the degree statistics reported in Table 2.

pub mod builder;
pub mod community;
pub mod graph;
pub mod io;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod traversal;

pub use builder::{GraphBuilder, Weighting};
pub use community::{CommunityError, CommunityLabels};
pub use graph::{
    ArcProbs, EdgeWeights, Graph, GraphError, MemoryFootprint, NodeId, WeightClass, WeightSpec,
};
pub use snapshot::{
    load_snapshot, load_snapshot_owned, read_snapshot, read_snapshot_bytes, save_snapshot,
    snapshot_version, write_snapshot, write_snapshot_v1, SnapshotError,
};
pub use stats::GraphStats;
pub use storage::{SectionElem, SectionStorage};
pub use traversal::{
    bfs_prefix_subgraph, induced_subgraph, largest_scc, reachable_from,
    strongly_connected_components, weakly_connected_components,
};
