//! # uic-graph
//!
//! Compact directed influence graphs for the UIC reproduction.
//!
//! A social network `G = (V, E, p)` is stored in **compressed sparse row**
//! (CSR) form with `u32` node ids and `f32` edge probabilities, in both
//! forward (out-neighbor) and reverse (in-neighbor) orientation — forward
//! for cascade simulation, reverse for RR-set sampling. This mirrors the
//! layouts used by production IM codebases and follows the perf-book
//! guidance (small integer ids, contiguous adjacency, no per-node
//! allocations).
//!
//! Modules:
//! * [`graph`] — the [`Graph`] type and CSR accessors.
//! * [`builder`] — [`GraphBuilder`] plus edge-probability [`Weighting`]
//!   schemes (weighted cascade `1/d_in(v)`, constant, trivalency, uniform).
//! * [`traversal`] — BFS/DFS reachability, weakly connected components,
//!   Tarjan SCC, and subgraph extraction (used to take the largest SCC of
//!   the Flixster stand-in and BFS prefixes for the scalability test).
//! * [`io`] — plain-text edge-list reader/writer.
//! * [`stats`] — the degree statistics reported in Table 2.

pub mod builder;
pub mod graph;
pub mod io;
pub mod stats;
pub mod traversal;

pub use builder::{GraphBuilder, Weighting};
pub use graph::{Graph, NodeId};
pub use stats::GraphStats;
pub use traversal::{
    bfs_prefix_subgraph, induced_subgraph, largest_scc, reachable_from,
    strongly_connected_components, weakly_connected_components,
};
