//! Section storage for CSR arrays: owned heap slices or borrowed views
//! over one shared snapshot buffer.
//!
//! Graphs built in memory own their sections as `Box<[T]>`, exactly as
//! before. Graphs loaded from an aligned (format v2) snapshot instead
//! borrow their sections straight out of the single backing buffer the
//! file was mapped (or read) into — the load performs **zero per-section
//! copies**; every section is a pointer + length into the buffer, kept
//! alive by an [`Arc`]. [`SectionStorage`] is the small-cow abstraction
//! that makes the two representations indistinguishable to every
//! accessor: it derefs to `&[T]`, compares by content, and clones
//! cheaply (an `Arc` bump) in the borrowed case.
//!
//! Only plain-old-data element types can be viewed out of raw bytes;
//! the sealed [`SectionElem`] trait whitelists exactly the four section
//! element types of the snapshot format (`u32`, `u64`, `f32`, and —
//! on 64-bit targets, where it is layout-identical to `u64` — `usize`).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

mod sealed {
    /// Marker for types where every bit pattern is a valid value and the
    /// layout is fixed — the precondition for casting byte buffers into
    /// typed slices.
    pub trait Pod {}
    impl Pod for u32 {}
    impl Pod for u64 {}
    impl Pod for f32 {}
    impl Pod for usize {}
}

/// Element types a [`SectionStorage`] can hold. Sealed: the borrowed
/// representation reinterprets raw snapshot bytes, which is only sound
/// for the fixed set of plain-old-data types the format defines.
pub trait SectionElem: sealed::Pod + Copy + Send + Sync + 'static {}
impl SectionElem for u32 {}
impl SectionElem for u64 {}
impl SectionElem for f32 {}
impl SectionElem for usize {}

/// The single backing buffer of a zero-copy snapshot load: either a
/// private read-only memory mapping of the file or an owned, 8-byte-
/// aligned copy of its bytes (`Vec<u64>`-backed). Immutable after
/// construction; sections alias into it behind an [`Arc`].
pub(crate) struct SnapshotBuf(BufImpl);

enum BufImpl {
    /// 8-byte-aligned owned bytes; `len` is the byte length (the last
    /// word may be partially used).
    Owned { words: Box<[u64]>, len: usize },
    /// A read-only `mmap` of the whole file (page-aligned, so any
    /// section offset that is 8-byte aligned in the file is 8-byte
    /// aligned in memory). Unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *mut u8, len: usize },
}

// SAFETY: the buffer is immutable after construction — `Owned` is plain
// heap memory, `Mapped` is a MAP_PRIVATE read-only mapping no other
// handle mutates — so shared references can cross threads freely.
unsafe impl Send for SnapshotBuf {}
unsafe impl Sync for SnapshotBuf {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    //! Minimal raw bindings for mapping a file read-only (the workspace
    //! links no libc crate; these are the two syscall wrappers every
    //! unix libc exports with this exact ABI).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// Prefault the whole mapping in one syscall instead of taking a
    /// demand page fault per 4 KB during the verify pass (Linux only;
    /// the value is the same on every Linux architecture).
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: c_int = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: c_int = 0;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

impl SnapshotBuf {
    /// Copies `bytes` into a fresh 8-byte-aligned owned buffer.
    pub(crate) fn from_bytes(bytes: &[u8]) -> SnapshotBuf {
        let words = vec![0u64; bytes.len().div_ceil(8)].into_boxed_slice();
        let mut buf = SnapshotBuf(BufImpl::Owned {
            words,
            len: bytes.len(),
        });
        if let BufImpl::Owned { words, .. } = &mut buf.0 {
            // SAFETY: `words` holds ≥ bytes.len() writable bytes.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr(),
                    words.as_mut_ptr().cast::<u8>(),
                    bytes.len(),
                );
            }
        }
        buf
    }

    /// Reads a whole file into an 8-byte-aligned owned buffer.
    pub(crate) fn read_file(file: &mut std::fs::File) -> std::io::Result<SnapshotBuf> {
        use std::io::Read;
        let expect = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
        let mut bytes = Vec::with_capacity(expect.min(1 << 34));
        file.read_to_end(&mut bytes)?;
        Ok(SnapshotBuf::from_bytes(&bytes))
    }

    /// Maps a whole file read-only. Returns `Ok(None)` when the mapping
    /// is not available (empty file, or the kernel refuses) so callers
    /// can fall back to [`SnapshotBuf::read_file`].
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub(crate) fn map_file(file: &std::fs::File) -> std::io::Result<Option<SnapshotBuf>> {
        use std::os::fd::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return Ok(None);
        }
        let len = len as usize;
        // SAFETY: a fresh private read-only mapping of `len` bytes of an
        // open fd; the kernel validates the request and we check for
        // MAP_FAILED. The mapping outlives no access: it is unmapped
        // only in `Drop`.
        let mut ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE | sys::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) && sys::MAP_POPULATE != 0 {
            // Prefaulting can fail under memory pressure where plain
            // demand paging would still succeed — retry without it.
            ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
        }
        if sys::map_failed(ptr) {
            return Ok(None);
        }
        Ok(Some(SnapshotBuf(BufImpl::Mapped {
            ptr: ptr.cast(),
            len,
        })))
    }

    /// The buffer contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.0 {
            BufImpl::Owned { words, len } => {
                // SAFETY: `words` holds ≥ `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(all(unix, target_pointer_width = "64"))]
            BufImpl::Mapped { ptr, len } => {
                // SAFETY: the mapping covers `len` readable bytes and
                // lives until drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// True when the buffer is a file mapping rather than owned memory.
    pub(crate) fn is_mapped(&self) -> bool {
        match self.0 {
            BufImpl::Owned { .. } => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            BufImpl::Mapped { .. } => true,
        }
    }
}

impl Drop for SnapshotBuf {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let BufImpl::Mapped { ptr, len } = self.0 {
            // SAFETY: exactly the pointer/length pair mmap returned.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl fmt::Debug for SnapshotBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotBuf")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// One CSR section: an owned boxed slice or a borrowed view into a
/// shared `SnapshotBuf`. Derefs to `&[T]`; equality and `Debug` go
/// through the slice, so the two representations are observationally
/// identical everywhere except [`SectionStorage::is_borrowed`].
pub struct SectionStorage<T: SectionElem> {
    repr: Repr<T>,
}

enum Repr<T: SectionElem> {
    Owned(Box<[T]>),
    View {
        /// Keeps the backing buffer alive; never read through.
        _buf: Arc<SnapshotBuf>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: `View` aliases an immutable, `Send + Sync` buffer whose
// lifetime the held `Arc` guarantees; `Owned` is an ordinary box. `T`
// itself is `Send + Sync` (supertrait of `SectionElem`).
unsafe impl<T: SectionElem> Send for SectionStorage<T> {}
unsafe impl<T: SectionElem> Sync for SectionStorage<T> {}

impl<T: SectionElem> SectionStorage<T> {
    /// Borrows `len` elements starting `byte_off` bytes into `buf`.
    ///
    /// Panics (programmer error, not input data: the snapshot header
    /// validator has already checked every offset) if the range exceeds
    /// the buffer or the start is not aligned for `T`.
    pub(crate) fn view(buf: &Arc<SnapshotBuf>, byte_off: usize, len: usize) -> SectionStorage<T> {
        let bytes = buf.bytes();
        let size = std::mem::size_of::<T>();
        let end = byte_off
            .checked_add(len.checked_mul(size).expect("section size overflow"))
            .expect("section range overflow");
        assert!(end <= bytes.len(), "section view beyond buffer");
        let ptr = bytes[byte_off..].as_ptr().cast::<T>();
        assert_eq!(
            ptr as usize % std::mem::align_of::<T>(),
            0,
            "section view misaligned"
        );
        SectionStorage {
            repr: Repr::View {
                _buf: Arc::clone(buf),
                ptr,
                len,
            },
        }
    }

    /// True for the borrowed (zero-copy) representation.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }

    /// The section contents.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(b) => b,
            Repr::View { ptr, len, .. } => {
                // SAFETY: `view` checked bounds and alignment against
                // the backing buffer, which `_buf` keeps alive and
                // immutable; `T` is plain old data (sealed), so any bit
                // pattern the buffer holds is a valid value.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }
}

impl<T: SectionElem> Deref for SectionStorage<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: SectionElem> From<Vec<T>> for SectionStorage<T> {
    fn from(v: Vec<T>) -> Self {
        SectionStorage {
            repr: Repr::Owned(v.into_boxed_slice()),
        }
    }
}

impl<T: SectionElem> From<Box<[T]>> for SectionStorage<T> {
    fn from(b: Box<[T]>) -> Self {
        SectionStorage {
            repr: Repr::Owned(b),
        }
    }
}

impl<T: SectionElem> Clone for SectionStorage<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(b) => SectionStorage {
                repr: Repr::Owned(b.clone()),
            },
            Repr::View { _buf, ptr, len } => SectionStorage {
                repr: Repr::View {
                    _buf: Arc::clone(_buf),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

impl<T: SectionElem + PartialEq> PartialEq for SectionStorage<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: SectionElem + fmt::Debug> fmt::Debug for SectionStorage<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_borrowed() {
            write!(f, "view:")?;
        }
        self.as_slice().fmt(f)
    }
}

impl<T: SectionElem> Default for SectionStorage<T> {
    fn default() -> Self {
        SectionStorage {
            repr: Repr::Owned(Box::new([])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_equality() {
        let a: SectionStorage<u32> = vec![1, 2, 3].into();
        let b: SectionStorage<u32> = vec![1u32, 2, 3].into_boxed_slice().into();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_borrowed());
        assert_eq!(a.clone(), a);
        assert_eq!(SectionStorage::<f32>::default().len(), 0);
    }

    #[test]
    fn views_alias_the_buffer_and_compare_by_content() {
        // 16 bytes: four u32 words in native order (the view casts, it
        // does not decode — construction is byte-order-agnostic here).
        let vals = [7u32, 9, u32::MAX, 0];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_ne_bytes());
        }
        let buf = Arc::new(SnapshotBuf::from_bytes(&bytes));
        let s: SectionStorage<u32> = SectionStorage::view(&buf, 0, 4);
        assert!(s.is_borrowed());
        assert_eq!(&s[..], &vals);
        let owned: SectionStorage<u32> = vals.to_vec().into();
        assert_eq!(s, owned, "representation is invisible to equality");
        let tail: SectionStorage<u32> = SectionStorage::view(&buf, 8, 2);
        assert_eq!(&tail[..], &vals[2..]);
        // The clone shares the buffer (drop order exercises the Arc).
        let c = s.clone();
        drop(s);
        assert_eq!(&c[..], &vals);
    }

    #[test]
    #[should_panic(expected = "beyond buffer")]
    fn view_bounds_are_checked() {
        let buf = Arc::new(SnapshotBuf::from_bytes(&[0u8; 8]));
        let _ = SectionStorage::<u64>::view(&buf, 8, 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn view_alignment_is_checked() {
        let buf = Arc::new(SnapshotBuf::from_bytes(&[0u8; 16]));
        let _ = SectionStorage::<u64>::view(&buf, 4, 1);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapped_buffer_reads_file_contents() {
        let dir = std::env::temp_dir().join("uic-storage-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buf.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mapped = SnapshotBuf::map_file(&file).unwrap().expect("mmap works");
        assert!(mapped.is_mapped());
        assert_eq!(mapped.bytes(), &payload[..]);
        drop(mapped); // munmap
        std::fs::remove_file(&path).ok();
    }
}
