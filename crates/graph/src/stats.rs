//! Network statistics as reported in Table 2 of the paper.

use crate::graph::Graph;

/// Summary statistics of a network (the columns of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: u32,
    /// `|E|` (directed arc count; undirected networks count both arcs).
    pub num_edges: usize,
    /// Average out-degree `m/n`. For the undirected networks the paper
    /// reports edge count and average degree over *undirected* edges; we
    /// report arcs, so compare `avg_degree/2` for those.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Fraction of arcs whose reverse arc also exists (1.0 for networks
    /// built as undirected).
    pub reciprocity: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        for v in 0..n {
            max_out = max_out.max(g.out_degree(v));
            max_in = max_in.max(g.in_degree(v));
        }
        // Reciprocity via sorted neighbor probes.
        let mut recip = 0usize;
        let m = g.num_edges();
        if m > 0 {
            for (u, v, _) in g.edges() {
                if g.out_neighbors(v).contains(&u) {
                    recip += 1;
                }
            }
        }
        GraphStats {
            num_nodes: n,
            num_edges: m,
            avg_degree: g.avg_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            reciprocity: if m == 0 { 0.0 } else { recip as f64 / m as f64 },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_out={} max_in={} reciprocity={:.2}",
            self.num_nodes,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.reciprocity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_star() {
        // 0 → {1,2,3}
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.reciprocity, 0.0);
        assert!((s.avg_degree - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reciprocity_of_bidirected_graph_is_one() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.reciprocity, 1.0);
    }

    #[test]
    fn display_contains_fields() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("m=1"));
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(0, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.reciprocity, 0.0);
    }
}
