//! Network statistics as reported in Table 2 of the paper, extended
//! with the storage-level numbers the compressed weight representations
//! are judged by (memory footprint per CSR section, bytes/edge, and a
//! log-binned degree histogram).

use crate::graph::{Graph, MemoryFootprint, WeightClass};

/// Summary statistics of a network (the columns of Table 2, plus the
/// storage breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: u32,
    /// `|E|` (directed arc count; undirected networks count both arcs).
    pub num_edges: usize,
    /// Average out-degree `m/n`. For the undirected networks the paper
    /// reports edge count and average degree over *undirected* edges; we
    /// report arcs, so compare `avg_degree/2` for those.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Fraction of arcs whose reverse arc also exists (1.0 for networks
    /// built as undirected).
    pub reciprocity: f64,
    /// Structural class of the weight storage.
    pub weight_class: WeightClass,
    /// Per-section heap bytes; `footprint.weights` is 0 for
    /// weighted-cascade graphs and 4 for constant graphs.
    pub footprint: MemoryFootprint,
    /// Log-binned **out**-degree histogram: `out_degree_histogram[0]`
    /// counts degree-0 nodes, bin `i ≥ 1` counts degrees in
    /// `[2^(i−1), 2^i)`. Trailing empty bins are trimmed.
    pub out_degree_histogram: Vec<u64>,
    /// Log-binned **in**-degree histogram, same binning.
    pub in_degree_histogram: Vec<u64>,
}

/// Log-bin index of a degree: 0 for degree 0, else `⌊log2 d⌋ + 1`.
fn log_bin(d: usize) -> usize {
    if d == 0 {
        0
    } else {
        (usize::BITS - d.leading_zeros()) as usize
    }
}

fn trim(mut bins: Vec<u64>) -> Vec<u64> {
    while bins.last() == Some(&0) {
        bins.pop();
    }
    bins
}

/// Renders a log-binned histogram as `0:|a| 1:|b| 2-3:|c| …` labels.
pub fn format_log_histogram(bins: &[u64]) -> String {
    let mut parts = Vec::with_capacity(bins.len());
    for (i, &count) in bins.iter().enumerate() {
        let label = match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            _ => {
                let lo = 1usize << (i - 1);
                let hi = (1usize << i) - 1;
                format!("{lo}-{hi}")
            }
        };
        parts.push(format!("{label}:{count}"));
    }
    parts.join(" ")
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut out_hist = vec![0u64; log_bin(g.num_edges()) + 1];
        let mut in_hist = vec![0u64; log_bin(g.num_edges()) + 1];
        for v in 0..n {
            let dout = g.out_degree(v);
            let din = g.in_degree(v);
            max_out = max_out.max(dout);
            max_in = max_in.max(din);
            out_hist[log_bin(dout)] += 1;
            in_hist[log_bin(din)] += 1;
        }
        // Reciprocity via sorted neighbor probes.
        let mut recip = 0usize;
        let m = g.num_edges();
        if m > 0 {
            for (u, v, _) in g.edges() {
                if g.out_neighbors(v).contains(&u) {
                    recip += 1;
                }
            }
        }
        GraphStats {
            num_nodes: n,
            num_edges: m,
            avg_degree: g.avg_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            reciprocity: if m == 0 { 0.0 } else { recip as f64 / m as f64 },
            weight_class: g.weight_class(),
            footprint: g.memory_footprint(),
            out_degree_histogram: trim(out_hist),
            in_degree_histogram: trim(in_hist),
        }
    }

    /// Total heap bytes of the graph.
    pub fn total_bytes(&self) -> usize {
        self.footprint.total()
    }

    /// Heap bytes per directed edge (offset arrays amortized in).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.footprint.total() as f64 / self.num_edges as f64
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_out={} max_in={} reciprocity={:.2} \
             weights={} bytes={} ({:.1}/edge) out_deg_hist=[{}]",
            self.num_nodes,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.reciprocity,
            self.weight_class.token(),
            self.total_bytes(),
            self.bytes_per_edge(),
            format_log_histogram(&self.out_degree_histogram),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightSpec;

    #[test]
    fn stats_on_star() {
        // 0 → {1,2,3}
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.reciprocity, 0.0);
        assert!((s.avg_degree - 0.75).abs() < 1e-12);
        assert_eq!(s.weight_class, WeightClass::PerEdge);
        // Out-degrees: one node at 3 (bin 2), three at 0 (bin 0).
        assert_eq!(s.out_degree_histogram, vec![3, 0, 1]);
        // In-degrees: three nodes at 1 (bin 1), one at 0.
        assert_eq!(s.in_degree_histogram, vec![1, 3]);
    }

    #[test]
    fn reciprocity_of_bidirected_graph_is_one() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.reciprocity, 1.0);
    }

    #[test]
    fn footprint_shows_compression_win() {
        let arcs = vec![(0u32, 1u32), (1, 2), (2, 0), (0, 2)];
        let wc = Graph::try_from_arcs(3, &arcs, WeightSpec::InDegree).unwrap();
        let dense = {
            let edges: Vec<_> = wc.edges().collect();
            Graph::from_edges(3, &edges)
        };
        let s_wc = GraphStats::compute(&wc);
        let s_dense = GraphStats::compute(&dense);
        assert_eq!(s_wc.footprint.weights, 0);
        assert_eq!(s_dense.footprint.weights, 8 * arcs.len());
        assert!(s_wc.bytes_per_edge() < s_dense.bytes_per_edge());
        assert_eq!(
            s_dense.total_bytes() - s_wc.total_bytes(),
            8 * arcs.len(),
            "compact weighted cascade saves exactly 8 bytes/edge"
        );
    }

    #[test]
    fn log_bins_and_formatting() {
        assert_eq!(log_bin(0), 0);
        assert_eq!(log_bin(1), 1);
        assert_eq!(log_bin(2), 2);
        assert_eq!(log_bin(3), 2);
        assert_eq!(log_bin(4), 3);
        assert_eq!(log_bin(7), 3);
        assert_eq!(log_bin(8), 4);
        let text = format_log_histogram(&[2, 1, 0, 5]);
        assert_eq!(text, "0:2 1:1 2-3:0 4-7:5");
    }

    #[test]
    fn display_contains_fields() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("m=1"));
        assert!(text.contains("weights=per-edge"));
        assert!(text.contains("bytes="));
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(0, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.reciprocity, 0.0);
        assert_eq!(s.bytes_per_edge(), 0.0);
        assert!(s.out_degree_histogram.is_empty());
    }
}
