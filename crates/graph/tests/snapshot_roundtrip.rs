//! Property suite for the binary snapshot format: exact round-trips for
//! all three weight representations on random graphs, and typed errors
//! (never panics, never UB) for corrupted, truncated, misaligned, or
//! wrong-version bytes — exercised through both the in-memory reader
//! and the zero-copy (mmap-mode) file loader.

use proptest::prelude::*;
use uic_graph::{
    load_snapshot, load_snapshot_owned, read_snapshot, write_snapshot, write_snapshot_v1, Graph,
    NodeId, SnapshotError, WeightClass, WeightSpec,
};

/// Builds the same random topology under each representation (per-edge
/// probs drawn independently; compact representations derive theirs).
fn graphs(n: u32, raw_edges: &[(u32, u32, f32)], constant: f32) -> [Graph; 3] {
    let edges: Vec<(NodeId, NodeId, f32)> = raw_edges
        .iter()
        .map(|&(u, v, p)| (u % n, v % n, p))
        .collect();
    let arcs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
    [
        Graph::from_edges(n, &edges),
        Graph::try_from_arcs(n, &arcs, WeightSpec::InDegree).expect("valid arcs"),
        Graph::try_from_arcs(n, &arcs, WeightSpec::Constant(constant)).expect("valid constant"),
    ]
}

fn snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(g, &mut buf).expect("write to Vec cannot fail");
    buf
}

fn v1_snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot_v1(g, &mut buf).expect("write to Vec cannot fail");
    buf
}

/// Writes `bytes` to a fresh temp file and loads it through the
/// zero-copy file loader (the mmap path on unix), returning the result
/// and cleaning up. This is the path where a bad cast would be UB — the
/// property suite drives every corruption class through it.
fn load_via_file(bytes: &[u8], tag: &str) -> Result<Graph, SnapshotError> {
    let dir = std::env::temp_dir().join("uic-snapshot-proptest");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!(
        "{tag}-{}-{}.uicg",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    std::fs::write(&path, bytes).expect("write temp snapshot");
    let r = load_snapshot(&path);
    std::fs::remove_file(&path).ok();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// `Graph` → bytes → `Graph` is the identity — offsets, targets,
    /// edge ids, weight representation, and every probability — for all
    /// three representations, through the owned reader and the
    /// zero-copy file loader alike.
    #[test]
    fn roundtrip_is_exact_for_all_representations(
        n in 1u32..24,
        raw_edges in proptest::collection::vec((0u32..64, 0u32..64, 0f32..=1.0), 0..48),
        constant in 0f32..=1.0,
    ) {
        for g in graphs(n, &raw_edges, constant) {
            let back = read_snapshot(&snapshot_bytes(&g)[..]).expect("roundtrip");
            // Graph implements PartialEq over all CSR sections + weights.
            prop_assert_eq!(&back, &g);
            prop_assert_eq!(back.weight_class(), g.weight_class());
            prop_assert_eq!(back.memory_footprint(), g.memory_footprint());
            for v in 0..n {
                prop_assert_eq!(back.in_edge_ids(v), g.in_edge_ids(v));
                let a: Vec<f32> = back.out_arc_probs(v).iter().collect();
                let b: Vec<f32> = g.out_arc_probs(v).iter().collect();
                prop_assert_eq!(a, b);
            }
            let zc = load_via_file(&snapshot_bytes(&g), "rt").expect("zero-copy roundtrip");
            prop_assert_eq!(&zc, &g);
        }
    }

    /// Any single corrupted byte yields a typed error, never a panic and
    /// never a silently different graph — in the owned reader AND in
    /// mmap mode (where an unnoticed corruption could drive a bad cast).
    #[test]
    fn corrupted_bytes_error_out(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 1..24),
        at_raw in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let g = graphs(n, &raw_edges, 0.5)[0].clone();
        let mut buf = snapshot_bytes(&g);
        let at = at_raw % buf.len();
        buf[at] ^= flip;
        match read_snapshot(&buf[..]) {
            Err(_) => {}
            // The word-fold checksum detects all single-byte flips;
            // reaching Ok would mean it no longer covers this byte.
            Ok(_) => prop_assert!(false, "flip at {} of {} went unnoticed", at, buf.len()),
        }
        prop_assert!(
            load_via_file(&buf, "flip").is_err(),
            "mmap-mode flip at {} went unnoticed", at
        );
    }

    /// Every truncation point yields `Truncated`/`BadMagic`, never a
    /// panic or an allocation blow-up — both readers.
    #[test]
    fn truncated_bytes_error_out(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 0..24),
        cut_raw in 0usize..4096,
    ) {
        let g = graphs(n, &raw_edges, 0.5)[1].clone();
        let buf = snapshot_bytes(&g);
        let cut = cut_raw % buf.len();
        match read_snapshot(&buf[..cut]) {
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::BadMagic) => {}
            Err(other) => prop_assert!(false, "unexpected error {}", other),
            Ok(_) => prop_assert!(false, "truncation at {cut} went unnoticed"),
        }
        match load_via_file(&buf[..cut], "cut") {
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::BadMagic) => {}
            Err(other) => prop_assert!(false, "unexpected mmap-mode error {}", other),
            Ok(_) => prop_assert!(false, "mmap-mode truncation at {cut} went unnoticed"),
        }
    }

    /// A corrupted section-offset table — the field a bad pointer cast
    /// would flow from — is a typed `Malformed`/`ChecksumMismatch`,
    /// never UB: the layout is re-derived from the lengths and any
    /// deviation (including misalignment by a non-16 delta) is rejected
    /// before a view is formed.
    #[test]
    fn perturbed_offset_tables_error_out(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 1..24),
        section in 0usize..7,
        delta_idx in 0usize..7,
    ) {
        const DELTAS: [i64; 7] = [1, 4, -4, 8, -8, 16, 1 << 40];
        let delta = DELTAS[delta_idx];
        let g = graphs(n, &raw_edges, 0.5)[0].clone();
        let mut buf = snapshot_bytes(&g);
        let at = 96 + section * 8;
        let off = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let bad = off.wrapping_add(delta as u64);
        buf[at..at + 8].copy_from_slice(&bad.to_le_bytes());
        prop_assert!(read_snapshot(&buf[..]).is_err());
        match load_via_file(&buf, "off") {
            Err(SnapshotError::Malformed(_)) | Err(SnapshotError::ChecksumMismatch { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected mmap-mode error {}", other),
            Ok(_) => prop_assert!(false, "offset perturbation went unnoticed"),
        }
    }

    /// A declared version this reader does not know (1 and 2 are known)
    /// is rejected with `UnsupportedVersion` regardless of payload.
    #[test]
    fn foreign_versions_are_rejected(version in 3u32..1000) {
        let g = graphs(3, &[(0, 1, 0.5)], 0.5)[2].clone();
        let mut buf = snapshot_bytes(&g);
        buf[8..12].copy_from_slice(&version.to_le_bytes());
        match read_snapshot(&buf[..]) {
            Err(SnapshotError::UnsupportedVersion(v)) => prop_assert_eq!(v, version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.is_ok()),
        }
        match load_via_file(&buf, "ver") {
            Err(SnapshotError::UnsupportedVersion(v)) => prop_assert_eq!(v, version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.is_ok()),
        }
    }

    /// Legacy v1 bytes keep their guarantees through the fallback
    /// reader: exact roundtrip, and typed errors on corruption.
    #[test]
    fn v1_fallback_roundtrips_and_rejects_corruption(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 1..24),
        at_raw in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let g = graphs(n, &raw_edges, 0.5)[1].clone();
        let buf = v1_snapshot_bytes(&g);
        prop_assert_eq!(&read_snapshot(&buf[..]).expect("v1 roundtrip"), &g);
        prop_assert_eq!(&load_via_file(&buf, "v1").expect("v1 file roundtrip"), &g);
        let at = at_raw % buf.len();
        let mut bad = buf.clone();
        bad[at] ^= flip;
        prop_assert!(read_snapshot(&bad[..]).is_err(), "v1 flip at {} went unnoticed", at);
        prop_assert!(load_via_file(&bad, "v1flip").is_err());
    }

    /// Owned load and zero-copy load agree bit-for-bit on every section
    /// for random graphs (the cross-representation contract the solver
    /// pins in `tests/graph_storage.rs` build on).
    #[test]
    fn owned_and_zero_copy_loads_agree(
        n in 1u32..24,
        raw_edges in proptest::collection::vec((0u32..64, 0u32..64, 0f32..=1.0), 0..48),
        constant in 0f32..=1.0,
    ) {
        let dir = std::env::temp_dir().join("uic-snapshot-proptest");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("agree-{}.uicg", std::process::id()));
        for g in graphs(n, &raw_edges, constant) {
            std::fs::write(&path, snapshot_bytes(&g)).expect("write");
            let zc = load_snapshot(&path).expect("zero-copy load");
            let owned = load_snapshot_owned(&path).expect("owned load");
            prop_assert!(!owned.is_zero_copy());
            prop_assert_eq!(&zc, &owned);
            prop_assert_eq!(&zc, &g);
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn weight_classes_survive_the_roundtrip() {
    let [pe, wc, cp] = graphs(6, &[(0, 1, 0.25), (1, 2, 0.75), (2, 0, 0.5)], 0.125);
    assert_eq!(
        read_snapshot(&snapshot_bytes(&pe)[..])
            .unwrap()
            .weight_class(),
        WeightClass::PerEdge
    );
    assert_eq!(
        read_snapshot(&snapshot_bytes(&wc)[..])
            .unwrap()
            .weight_class(),
        WeightClass::InDegree
    );
    assert_eq!(
        read_snapshot(&snapshot_bytes(&cp)[..])
            .unwrap()
            .weight_class(),
        WeightClass::Constant(0.125)
    );
}
