//! Property suite for the binary snapshot format: exact round-trips for
//! all three weight representations on random graphs, and typed errors
//! (never panics) for corrupted, truncated, or wrong-version bytes.

use proptest::prelude::*;
use uic_graph::{
    read_snapshot, write_snapshot, Graph, NodeId, SnapshotError, WeightClass, WeightSpec,
};

/// Builds the same random topology under each representation (per-edge
/// probs drawn independently; compact representations derive theirs).
fn graphs(n: u32, raw_edges: &[(u32, u32, f32)], constant: f32) -> [Graph; 3] {
    let edges: Vec<(NodeId, NodeId, f32)> = raw_edges
        .iter()
        .map(|&(u, v, p)| (u % n, v % n, p))
        .collect();
    let arcs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
    [
        Graph::from_edges(n, &edges),
        Graph::try_from_arcs(n, &arcs, WeightSpec::InDegree).expect("valid arcs"),
        Graph::try_from_arcs(n, &arcs, WeightSpec::Constant(constant)).expect("valid constant"),
    ]
}

fn snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(g, &mut buf).expect("write to Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// `Graph` → bytes → `Graph` is the identity — offsets, targets,
    /// edge ids, weight representation, and every probability — for all
    /// three representations.
    #[test]
    fn roundtrip_is_exact_for_all_representations(
        n in 1u32..24,
        raw_edges in proptest::collection::vec((0u32..64, 0u32..64, 0f32..=1.0), 0..48),
        constant in 0f32..=1.0,
    ) {
        for g in graphs(n, &raw_edges, constant) {
            let back = read_snapshot(&snapshot_bytes(&g)[..]).expect("roundtrip");
            // Graph implements PartialEq over all CSR sections + weights.
            prop_assert_eq!(&back, &g);
            prop_assert_eq!(back.weight_class(), g.weight_class());
            prop_assert_eq!(back.memory_footprint(), g.memory_footprint());
            for v in 0..n {
                prop_assert_eq!(back.in_edge_ids(v), g.in_edge_ids(v));
                let a: Vec<f32> = back.out_arc_probs(v).iter().collect();
                let b: Vec<f32> = g.out_arc_probs(v).iter().collect();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Any single corrupted byte yields a typed error, never a panic and
    /// never a silently different graph.
    #[test]
    fn corrupted_bytes_error_out(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 1..24),
        at_raw in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let g = graphs(n, &raw_edges, 0.5)[0].clone();
        let mut buf = snapshot_bytes(&g);
        let at = at_raw % buf.len();
        buf[at] ^= flip;
        match read_snapshot(&buf[..]) {
            Err(_) => {}
            // FNV-1a detects all single-byte flips; reaching Ok would
            // mean the checksum no longer covers this byte.
            Ok(_) => prop_assert!(false, "flip at {} of {} went unnoticed", at, buf.len()),
        }
    }

    /// Every truncation point yields `Truncated`/`BadMagic`, never a
    /// panic or an allocation blow-up.
    #[test]
    fn truncated_bytes_error_out(
        n in 1u32..12,
        raw_edges in proptest::collection::vec((0u32..32, 0u32..32, 0f32..=1.0), 0..24),
        cut_raw in 0usize..4096,
    ) {
        let g = graphs(n, &raw_edges, 0.5)[1].clone();
        let buf = snapshot_bytes(&g);
        let cut = cut_raw % buf.len();
        match read_snapshot(&buf[..cut]) {
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::BadMagic) => {}
            Err(other) => prop_assert!(false, "unexpected error {}", other),
            Ok(_) => prop_assert!(false, "truncation at {cut} went unnoticed"),
        }
    }

    /// A declared version other than the current one is rejected with
    /// `UnsupportedVersion` regardless of payload.
    #[test]
    fn foreign_versions_are_rejected(version in 2u32..1000) {
        let g = graphs(3, &[(0, 1, 0.5)], 0.5)[2].clone();
        let mut buf = snapshot_bytes(&g);
        buf[8..12].copy_from_slice(&version.to_le_bytes());
        match read_snapshot(&buf[..]) {
            Err(SnapshotError::UnsupportedVersion(v)) => prop_assert_eq!(v, version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.is_ok()),
        }
    }
}

#[test]
fn weight_classes_survive_the_roundtrip() {
    let [pe, wc, cp] = graphs(6, &[(0, 1, 0.25), (1, 2, 0.75), (2, 0, 0.5)], 0.125);
    assert_eq!(
        read_snapshot(&snapshot_bytes(&pe)[..])
            .unwrap()
            .weight_class(),
        WeightClass::PerEdge
    );
    assert_eq!(
        read_snapshot(&snapshot_bytes(&wc)[..])
            .unwrap()
            .weight_class(),
        WeightClass::InDegree
    );
    assert_eq!(
        read_snapshot(&snapshot_bytes(&cp)[..])
            .unwrap()
            .weight_class(),
        WeightClass::Constant(0.125)
    );
}
