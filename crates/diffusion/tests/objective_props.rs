//! Property suite for the pluggable welfare objectives (PR 6):
//!
//! 1. With the **utilitarian default** the refactored estimator is
//!    bit-identical to the pre-refactor implementation — re-implemented
//!    here verbatim (64-sample blocks over `split_seed` streams, each
//!    world aggregated by `outcome.welfare(table)`) — on random
//!    instances, through both the shared-table and the noisy path.
//! 2. On small exactly-enumerable instances, **CES approaches the
//!    utilitarian sum as α → 1**, and at the α → 0 end the CES ordering
//!    of full-coverage vs partial-coverage allocations agrees with
//!    **maximin** (everyone-counts beats a larger but exclusive sum).
//! 3. Every shipped objective is **bit-identical across 1/2/8 worker
//!    threads** — the determinism contract of `uic_diffusion::welfare`.

use proptest::prelude::*;
use std::sync::Arc;
use uic_diffusion::{
    exact_welfare_given_noise_for, Allocation, Ces, Maximin, PerCommunity, UicSimulator,
    Utilitarian, WelfareEstimator, WelfareObjective,
};
use uic_graph::{CommunityLabels, Graph};
use uic_items::{NoiseModel, Price, TableValuation, UtilityModel};
use uic_util::{split_seed, OnlineStats, UicRng};

// ---------------------------------------------------------------------
// Reference implementation: the pre-refactor utilitarian estimator.
// ---------------------------------------------------------------------

/// The historical `estimate_stats`: fixed 64-sample blocks accumulated
/// sequentially and merged in block order, each sample drawing from its
/// own `split_seed(seed, s)` stream and aggregating with the hardcoded
/// utilitarian sum `outcome.welfare(table)`.
fn reference_estimate_stats(
    g: &Graph,
    model: &UtilityModel,
    allocation: &Allocation,
    sims: u32,
    seed: u64,
) -> OnlineStats {
    const BLOCK: u32 = 64;
    let shared_table = if model.noise().is_none() {
        Some(model.deterministic_table())
    } else {
        None
    };
    let mut sim = UicSimulator::new(g);
    let mut partials: Vec<OnlineStats> = Vec::new();
    let mut lo = 0u32;
    while lo < sims {
        let hi = (lo + BLOCK).min(sims);
        let mut stats = OnlineStats::new();
        for s in lo..hi {
            let mut rng = UicRng::new(split_seed(seed, s as u64));
            let w = match &shared_table {
                Some(table) => sim.run(g, allocation, table, &mut rng).welfare(table),
                None => {
                    let world = model.sample_noise(&mut rng);
                    let table = model.table_for(&world);
                    sim.run(g, allocation, &table, &mut rng).welfare(&table)
                }
            };
            stats.push(w);
        }
        partials.push(stats);
        lo = hi;
    }
    let mut total = OnlineStats::new();
    for p in &partials {
        total.merge(p);
    }
    total
}

// ---------------------------------------------------------------------
// Instance generators.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RandomInstance {
    n: u32,
    edges: Vec<(u32, u32, f32)>,
    // Two-item valuation table: [0, a, b, c].
    values: [f64; 3],
    prices: [f64; 2],
    noisy: bool,
    assignments: Vec<(u32, u8)>,
    sims: u32,
    seed: u64,
}

impl RandomInstance {
    fn graph(&self) -> Graph {
        let mut dedup: Vec<(u32, u32, f32)> = Vec::new();
        for &(u, v, p) in &self.edges {
            let (u, v) = (u % self.n, v % self.n);
            if u != v && !dedup.iter().any(|&(a, b, _)| (a, b) == (u, v)) {
                dedup.push((u, v, p));
            }
        }
        Graph::from_edges(self.n, &dedup)
    }

    fn model(&self) -> UtilityModel {
        let [a, b, c] = self.values;
        let noise = if self.noisy {
            NoiseModel::iid_gaussian_var(2, 0.5)
        } else {
            NoiseModel::none(2)
        };
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, a, b, c])),
            Price::additive(self.prices.to_vec()),
            noise,
        )
    }

    fn allocation(&self) -> Allocation {
        let mut alloc = Allocation::new();
        for &(v, item) in &self.assignments {
            alloc.assign(v % self.n, (item % 2) as u32);
        }
        alloc
    }
}

fn arb_instance() -> impl Strategy<Value = RandomInstance> {
    // Node indices are drawn from the maximum range and folded into
    // `0..n` inside the accessors, sidestepping dependent generation.
    (
        (
            3u32..10,
            proptest::collection::vec((0u32..10, 0u32..10, 0.1f32..0.9), 0..20),
            (0.5f64..4.0, 0.5f64..4.0, 1.0f64..8.0),
        ),
        (
            (0.2f64..2.0, 0.2f64..2.0),
            0u8..2,
            proptest::collection::vec((0u32..10, 0u8..2), 1..6),
        ),
        (1u32..200, 0u64..u64::MAX),
    )
        .prop_map(
            |((n, edges, (a, b, c)), ((p0, p1), noisy, assignments), (sims, seed))| {
                RandomInstance {
                    n,
                    edges,
                    values: [a, b, c],
                    prices: [p0, p1],
                    noisy: noisy == 1,
                    assignments,
                    sims,
                    seed,
                }
            },
        )
}

// ---------------------------------------------------------------------
// 1. Utilitarian default is bit-identical to the pre-refactor estimator.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn utilitarian_matches_pre_refactor_bit_for_bit(inst in arb_instance()) {
        let g = inst.graph();
        let model = inst.model();
        let alloc = inst.allocation();
        let reference = reference_estimate_stats(&g, &model, &alloc, inst.sims, inst.seed);
        // Default construction (implicit Utilitarian) and an explicit
        // Utilitarian must both reproduce the historical bits.
        let plain = WelfareEstimator::new(&g, &model, inst.sims, inst.seed)
            .with_threads(1)
            .estimate_stats(&alloc);
        let explicit = WelfareEstimator::new(&g, &model, inst.sims, inst.seed)
            .with_threads(1)
            .with_objective(Arc::new(Utilitarian))
            .estimate_stats(&alloc);
        prop_assert_eq!(plain.count(), reference.count());
        prop_assert_eq!(plain.mean().to_bits(), reference.mean().to_bits());
        prop_assert_eq!(
            plain.ci95_halfwidth().to_bits(),
            reference.ci95_halfwidth().to_bits()
        );
        prop_assert_eq!(explicit.mean().to_bits(), reference.mean().to_bits());
    }

    // -----------------------------------------------------------------
    // 3. Thread-count bit-identity for every shipped objective.
    // -----------------------------------------------------------------

    #[test]
    fn all_objectives_are_thread_count_invariant(inst in arb_instance()) {
        let g = inst.graph();
        let model = inst.model();
        let alloc = inst.allocation();
        let labels = Arc::new(CommunityLabels::contiguous(g.num_nodes(), 3));
        let objectives: Vec<Arc<dyn WelfareObjective>> = vec![
            Arc::new(Utilitarian),
            Arc::new(Maximin),
            Arc::new(Ces::new(0.5).unwrap()),
            Arc::new(PerCommunity::new(labels, 0.5).unwrap()),
        ];
        for objective in objectives {
            let key = objective.key();
            let reference = WelfareEstimator::new(&g, &model, inst.sims, inst.seed)
                .with_threads(1)
                .with_objective(objective.clone())
                .estimate_stats(&alloc);
            for threads in [2usize, 8] {
                let got = WelfareEstimator::new(&g, &model, inst.sims, inst.seed)
                    .with_threads(threads)
                    .with_objective(objective.clone())
                    .estimate_stats(&alloc);
                prop_assert_eq!(got.count(), reference.count(), "{} x{}", key, threads);
                prop_assert_eq!(
                    got.mean().to_bits(),
                    reference.mean().to_bits(),
                    "{} x{}",
                    key,
                    threads
                );
                prop_assert_eq!(
                    got.ci95_halfwidth().to_bits(),
                    reference.ci95_halfwidth().to_bits(),
                    "{} x{}",
                    key,
                    threads
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. CES interpolates between utilitarian (α → 1) and maximin-style
//    coverage preference (α → 0), checked on exact instances.
// ---------------------------------------------------------------------

/// Edge-free instance: `full` gives every one of `n` nodes a small
/// single-item utility; `partial` gives `n − 1` nodes the big bundle.
/// The utilitarian sum prefers `partial`, maximin prefers `full`.
fn coverage_instance(
    n: u32,
    small: f64,
    big: f64,
) -> (Graph, UtilityModel, Allocation, Allocation) {
    let g = Graph::from_edges(n, &[]);
    // Utilities with zero prices: U({0}) = small, U({0,1}) = big.
    let model = UtilityModel::new(
        Arc::new(TableValuation::from_table(2, vec![0.0, small, small, big])),
        Price::additive(vec![0.0, 0.0]),
        NoiseModel::none(2),
    );
    let mut full = Allocation::new();
    for v in 0..n {
        full.assign(v, 0);
    }
    let mut partial = Allocation::new();
    for v in 0..n - 1 {
        partial.assign(v, 0);
        partial.assign(v, 1);
    }
    (g, model, full, partial)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ces_approaches_utilitarian_as_alpha_to_one(
        n in 3u32..8,
        small in 0.1f64..1.0,
        big in 2.0f64..10.0,
    ) {
        let (g, model, full, partial) = coverage_instance(n, small, big);
        let table = model.deterministic_table();
        for alloc in [&full, &partial] {
            let util = exact_welfare_given_noise_for(&g, alloc, &table, &Utilitarian);
            let ces = exact_welfare_given_noise_for(
                &g,
                alloc,
                &table,
                &Ces::new(1.0 - 1e-9).unwrap(),
            );
            prop_assert!(
                (ces - util).abs() <= 1e-6 * util.abs().max(1.0),
                "alpha→1: ces {} vs utilitarian {}",
                ces,
                util
            );
        }
    }

    #[test]
    fn small_alpha_ces_orders_like_maximin(
        n in 3u32..8,
        small in 0.1f64..1.0,
        big in 2.0f64..10.0,
    ) {
        let (g, model, full, partial) = coverage_instance(n, small, big);
        let table = model.deterministic_table();
        // Maximin: full coverage wins outright (partial leaves a node at 0).
        let mm_full = exact_welfare_given_noise_for(&g, &full, &table, &Maximin);
        let mm_partial = exact_welfare_given_noise_for(&g, &partial, &table, &Maximin);
        prop_assert!(mm_full > mm_partial, "maximin {} vs {}", mm_full, mm_partial);
        prop_assert_eq!(mm_partial.to_bits(), 0f64.to_bits());
        // The utilitarian sum disagrees: the big-bundle allocation wins.
        let u_full = exact_welfare_given_noise_for(&g, &full, &table, &Utilitarian);
        let u_partial = exact_welfare_given_noise_for(&g, &partial, &table, &Utilitarian);
        prop_assert!(u_partial > u_full, "utilitarian {} vs {}", u_partial, u_full);
        // At the α → 0 end, CES sides with maximin: n·smallᵅ > (n−1)·bigᵅ
        // once α is small enough that per-node presence dominates size.
        let ces = Ces::new(1e-3).unwrap();
        let c_full = exact_welfare_given_noise_for(&g, &full, &table, &ces);
        let c_partial = exact_welfare_given_noise_for(&g, &partial, &table, &ces);
        prop_assert!(
            c_full > c_partial,
            "alpha→0 CES {} vs {} (n={})",
            c_full,
            c_partial,
            n
        );
    }
}
