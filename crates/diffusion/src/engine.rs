//! The dense, epoch-stamped cascade engine shared by every simulator.
//!
//! Per-cascade state handling is *the* hot path of the whole reproduction:
//! the welfare estimator `ρ(𝒮)` (§3.3/§4.1.1) and all baselines it is
//! compared against are Monte-Carlo loops over cascade simulations. The
//! engine therefore keeps every piece of per-cascade state in flat arrays
//! indexed by the graph's dense `u32` node ids and stable global edge ids:
//!
//! * node `(desire, adoption)` state in an [`EpochMap`] — `reset()` is an
//!   epoch bump, so starting a cascade costs `O(1)`, not `O(n)`;
//! * edge-coin memoization in an [`EdgeStatusCache`] — each edge is
//!   flipped at most once per cascade (Fig. 1) and the outcome is
//!   remembered by edge id, not a hash of it;
//! * the frontier double-buffer and touched-node lists in reusable `Vec`s.
//!
//! After warm-up no allocation happens per cascade. How edge liveness is
//! decided is abstracted behind [`EdgeOracle`], unifying lazy coin
//! sampling ([`LazyCoins`]) with deterministic replay of a pre-sampled
//! [`LiveEdgeWorld`] ([`WorldOracle`]) — the two evaluation modes the
//! paper's possible-world semantics require.
//!
//! The [`mod@reference`] module keeps the original hash-map implementation as
//! a correctness oracle: the proptest suite below checks dense-vs-
//! reference equivalence on random instances, and `benches/engine.rs`
//! measures the speedup.

use crate::allocation::Allocation;
use crate::uic::UicOutcome;
use crate::worlds::LiveEdgeWorld;
use uic_graph::{Graph, NodeId};
use uic_items::{AdoptionOracle, ItemSet, UtilityTable};
use uic_util::{EdgeStatusCache, EpochMap, UicRng, VisitTags};

/// Decides edge liveness during a cascade, identified by global edge id.
///
/// Implementations must be *consistent within one cascade*: asking about
/// the same edge twice returns the same answer (the UIC model flips each
/// coin at most once).
pub trait EdgeOracle {
    /// Is the edge with global id `edge_id` (base probability `p`) live?
    fn is_live(&mut self, edge_id: usize, p: f32) -> bool;
}

/// Lazy coin flipping with per-edge memoization — the Monte-Carlo mode.
pub struct LazyCoins<'a> {
    /// Coin source.
    pub rng: &'a mut UicRng,
    /// Memoized outcomes, reset once per cascade by the caller.
    pub coins: &'a mut EdgeStatusCache,
}

impl EdgeOracle for LazyCoins<'_> {
    #[inline]
    fn is_live(&mut self, edge_id: usize, p: f32) -> bool {
        let rng = &mut *self.rng;
        self.coins.get_or_flip(edge_id, || rng.coin(p as f64))
    }
}

/// Deterministic replay of a pre-sampled live-edge world — the
/// enumeration / exact-evaluation mode.
pub struct WorldOracle<'a>(pub &'a LiveEdgeWorld);

impl EdgeOracle for WorldOracle<'_> {
    #[inline]
    fn is_live(&mut self, edge_id: usize, _p: f32) -> bool {
        self.0.is_live_id(edge_id)
    }
}

/// Per-node diffusion state: desire set `R(v)` and adoption set `A(v)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NodeState {
    desire: ItemSet,
    adopted: ItemSet,
}

/// Reusable dense cascade state: owns the per-node `(desire, adoption)`
/// arrays, the per-edge coin cache, and the frontier double-buffer.
///
/// One `CascadeState` serves arbitrarily many cascades on the same graph;
/// all resets are epoch bumps or `Vec::clear`, so a Monte-Carlo loop is
/// allocation-free after its first cascade.
#[derive(Debug)]
pub struct CascadeState {
    node: EpochMap<NodeState>,
    coins: EdgeStatusCache,
    /// Nodes informed this cascade, in first-contact order.
    informed: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next_frontier: Vec<NodeId>,
    /// Dedup tags for nodes whose desire grew in the current step.
    step_tags: VisitTags,
    step_touched: Vec<NodeId>,
    /// Seed pairs sorted by node id — fixes the coin-consumption order
    /// independently of `Allocation`'s hash iteration order.
    seed_buf: Vec<(NodeId, ItemSet)>,
}

impl CascadeState {
    /// State sized for graph `g`.
    pub fn new(g: &Graph) -> CascadeState {
        let n = g.num_nodes() as usize;
        CascadeState {
            node: EpochMap::new(n),
            coins: EdgeStatusCache::new(g.num_edges()),
            informed: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            step_tags: VisitTags::new(n),
            step_touched: Vec::new(),
            seed_buf: Vec::new(),
        }
    }

    /// One UIC cascade with lazy edge sampling.
    pub fn run_lazy(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        rng: &mut UicRng,
    ) -> UicOutcome {
        // Detach the coin cache so the oracle and the node-state loop can
        // borrow disjoint parts of `self` (the swap is pointer-sized).
        let mut coins = std::mem::replace(&mut self.coins, EdgeStatusCache::new(0));
        coins.reset();
        let mut oracle = LazyCoins {
            rng,
            coins: &mut coins,
        };
        let out = self.run_with(g, allocation, table, &mut oracle);
        self.coins = coins;
        out
    }

    /// One UIC cascade in a fixed live-edge world (deterministic).
    pub fn run_world(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        world: &LiveEdgeWorld,
    ) -> UicOutcome {
        self.run_with(g, allocation, table, &mut WorldOracle(world))
    }

    /// One UIC cascade against an arbitrary [`EdgeOracle`].
    ///
    /// Implements Fig. 1 of the paper: seeds desire their allocation and
    /// adopt the utility-maximizing subset; each step, last round's
    /// adopters push their full adoption set over live out-edges; nodes
    /// whose desire grew re-decide `argmax { U(T) | A ⊆ T ⊆ R, U(T) ≥ 0 }`.
    pub fn run_with<O: EdgeOracle>(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        edges: &mut O,
    ) -> UicOutcome {
        let mut oracle = AdoptionOracle::new(table);
        self.node.reset();
        self.informed.clear();
        self.frontier.clear();
        self.next_frontier.clear();

        // t = 1: seed initialization (Fig. 1 preamble), in node-id order.
        self.seed_buf.clear();
        self.seed_buf
            .extend(allocation.seeds().filter(|(_, items)| !items.is_empty()));
        self.seed_buf.sort_unstable_by_key(|&(v, _)| v);
        for si in 0..self.seed_buf.len() {
            let (v, items) = self.seed_buf[si];
            let adopted = oracle.adopt(items, ItemSet::EMPTY);
            self.node.insert(
                v as usize,
                NodeState {
                    desire: items,
                    adopted,
                },
            );
            self.informed.push(v);
            if !adopted.is_empty() {
                self.frontier.push(v);
            }
        }

        let mut steps = 0u32;
        while !self.frontier.is_empty() {
            steps += 1;
            self.step_touched.clear();
            self.step_tags.reset();
            // Step 1–2: propagate adoption sets over (newly tested or
            // already live) out-edges of last round's adopters.
            for fi in 0..self.frontier.len() {
                let u = self.frontier[fi];
                let a_u = self.node.get_or_default(u as usize).adopted;
                debug_assert!(!a_u.is_empty(), "frontier node {u} adopted nothing");
                let nbrs = g.out_neighbors(u);
                let probs = g.out_arc_probs(u);
                let first_eid = g.out_edge_id(u, 0);
                for (i, &v) in nbrs.iter().enumerate() {
                    if !edges.is_live(first_eid + i, probs.get(i)) {
                        continue;
                    }
                    let (st, fresh) = self.node.slot(v as usize);
                    if fresh {
                        self.informed.push(v);
                    }
                    let grown = a_u.minus(st.desire);
                    if !grown.is_empty() {
                        st.desire = st.desire.union(a_u);
                        if self.step_tags.mark(v as usize) {
                            self.step_touched.push(v);
                        }
                    }
                }
            }
            // Step 3: re-evaluate adoption where desire grew.
            self.next_frontier.clear();
            for ti in 0..self.step_touched.len() {
                let v = self.step_touched[ti];
                let st = self
                    .node
                    .get(v as usize)
                    .expect("touched node must have state");
                let new_adopted = oracle.adopt(st.desire, st.adopted);
                if new_adopted != st.adopted {
                    self.node
                        .get_mut(v as usize)
                        .expect("touched node must have state")
                        .adopted = new_adopted;
                    self.next_frontier.push(v);
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        }

        // Dense outcome: sorted (node, itemset) pairs.
        self.informed.sort_unstable();
        let mut desires = Vec::with_capacity(self.informed.len());
        let mut adoptions = Vec::new();
        for &v in &self.informed {
            let st = self.node.get_or_default(v as usize);
            desires.push((v, st.desire));
            if !st.adopted.is_empty() {
                adoptions.push((v, st.adopted));
            }
        }
        UicOutcome {
            adoptions,
            desires,
            steps,
        }
    }
}

/// The original hash-map cascade implementation, kept as a correctness
/// and performance *reference* for the dense engine.
///
/// Used by the proptest equivalence suite in this module and by
/// `benches/engine.rs`; it is not part of the supported simulation API.
#[doc(hidden)]
pub mod reference {
    use super::*;
    use uic_util::FxHashMap;

    /// A faithful port of the pre-engine `UicSimulator`: per-cascade
    /// `FxHashMap`s for node state and edge coins, with the same reused
    /// scratch the original owned (visit tags for step dedup, frontier
    /// double-buffer). Consumes the RNG stream in exactly the same order
    /// as [`CascadeState::run_lazy`](super::CascadeState::run_lazy), so
    /// the two are comparable per seed — and benchmarkable head-to-head
    /// without handicapping the hash-map side.
    pub struct ReferenceSimulator {
        touched_tags: VisitTags,
        touched: Vec<NodeId>,
        frontier: Vec<NodeId>,
        next_frontier: Vec<NodeId>,
    }

    impl ReferenceSimulator {
        /// Scratch sized for graph `g`.
        pub fn new(g: &Graph) -> ReferenceSimulator {
            ReferenceSimulator {
                touched_tags: VisitTags::new(g.num_nodes() as usize),
                touched: Vec::new(),
                frontier: Vec::new(),
                next_frontier: Vec::new(),
            }
        }

        /// One UIC cascade with lazy edge sampling, hash-map state.
        pub fn run(
            &mut self,
            g: &Graph,
            allocation: &Allocation,
            table: &UtilityTable,
            rng: &mut UicRng,
        ) -> UicOutcome {
            let mut oracle = AdoptionOracle::new(table);
            let mut state: FxHashMap<NodeId, (ItemSet, ItemSet)> = FxHashMap::default();
            let mut edge_cache: FxHashMap<usize, bool> = FxHashMap::default();
            self.frontier.clear();
            self.next_frontier.clear();

            let mut seeds: Vec<(NodeId, ItemSet)> = allocation
                .seeds()
                .filter(|(_, items)| !items.is_empty())
                .collect();
            seeds.sort_unstable_by_key(|&(v, _)| v);
            for &(v, items) in &seeds {
                let adopted = oracle.adopt(items, ItemSet::EMPTY);
                state.insert(v, (items, adopted));
                if !adopted.is_empty() {
                    self.frontier.push(v);
                }
            }

            let mut steps = 0u32;
            while !self.frontier.is_empty() {
                steps += 1;
                self.touched.clear();
                self.touched_tags.reset();
                for fi in 0..self.frontier.len() {
                    let u = self.frontier[fi];
                    let a_u = state.get(&u).map(|&(_, a)| a).unwrap_or(ItemSet::EMPTY);
                    let nbrs = g.out_neighbors(u);
                    let probs = g.out_arc_probs(u);
                    for (i, &v) in nbrs.iter().enumerate() {
                        let id = g.out_edge_id(u, i);
                        let live = match edge_cache.get(&id) {
                            Some(&status) => status,
                            None => {
                                let status = rng.coin(probs.get(i) as f64);
                                edge_cache.insert(id, status);
                                status
                            }
                        };
                        if !live {
                            continue;
                        }
                        let entry = state.entry(v).or_insert((ItemSet::EMPTY, ItemSet::EMPTY));
                        let grown = a_u.minus(entry.0);
                        if !grown.is_empty() {
                            entry.0 = entry.0.union(a_u);
                            if self.touched_tags.mark(v as usize) {
                                self.touched.push(v);
                            }
                        }
                    }
                }
                self.next_frontier.clear();
                for ti in 0..self.touched.len() {
                    let v = self.touched[ti];
                    let (desire, adopted) = *state.get(&v).expect("touched node must have state");
                    let new_adopted = oracle.adopt(desire, adopted);
                    if new_adopted != adopted {
                        state.get_mut(&v).unwrap().1 = new_adopted;
                        self.next_frontier.push(v);
                    }
                }
                std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            }

            let mut desires: Vec<(NodeId, ItemSet)> = Vec::with_capacity(state.len());
            let mut adoptions: Vec<(NodeId, ItemSet)> = Vec::new();
            for (&v, &(desire, adopted)) in &state {
                desires.push((v, desire));
                if !adopted.is_empty() {
                    adoptions.push((v, adopted));
                }
            }
            desires.sort_unstable_by_key(|&(v, _)| v);
            adoptions.sort_unstable_by_key(|&(v, _)| v);
            UicOutcome {
                adoptions,
                desires,
                steps,
            }
        }
    }

    /// One-shot convenience wrapper around [`ReferenceSimulator`].
    pub fn simulate(
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        rng: &mut UicRng,
    ) -> UicOutcome {
        ReferenceSimulator::new(g).run(g, allocation, table, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uic_util::split_seed;

    /// Builds a graph from proptest-drawn raw parts: `n` nodes, edges as
    /// `(src_raw, dst_raw, p)` reduced modulo `n`.
    fn build_graph(n: u32, raw_edges: &[(u32, u32, f32)]) -> Graph {
        let edges: Vec<(NodeId, NodeId, f32)> = raw_edges
            .iter()
            .map(|&(u, v, p)| (u % n, v % n, p))
            .collect();
        Graph::from_edges(n, &edges)
    }

    /// Builds an allocation from raw `(node_raw, item_raw)` pairs.
    fn build_allocation(n: u32, num_items: u32, raw: &[(u32, u32)]) -> Allocation {
        let mut a = Allocation::new();
        for &(v, i) in raw {
            a.assign(v % n, i % num_items);
        }
        a
    }

    /// Builds a utility table over `num_items` items from raw values in
    /// `[-1, 2]`; `U(∅)` forced to 0 as the model requires.
    fn build_table(num_items: u32, raw: &[f64]) -> UtilityTable {
        let size = 1usize << num_items;
        let mut values: Vec<f64> = (0..size).map(|s| raw[s % raw.len()]).collect();
        values[0] = 0.0;
        UtilityTable::from_values(num_items, values)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// The dense engine and the hash-map reference produce identical
        /// adoptions, desires, steps, and welfare on every random
        /// instance and seed.
        #[test]
        fn dense_engine_matches_reference(
            n in 1u32..12,
            raw_edges in proptest::collection::vec((0u32..64, 0u32..64, 0f32..=1.0), 0..24),
            num_items in 1u32..4,
            raw_pairs in proptest::collection::vec((0u32..64, 0u32..8), 0..8),
            raw_values in proptest::collection::vec(-1.0f64..2.0, 1..16),
            seed in 0u64..1_000_000,
        ) {
            let g = build_graph(n, &raw_edges);
            let alloc = build_allocation(n, num_items, &raw_pairs);
            let table = build_table(num_items, &raw_values);

            let mut dense_rng = UicRng::new(seed);
            let mut sim = CascadeState::new(&g);
            let dense = sim.run_lazy(&g, &alloc, &table, &mut dense_rng);

            let mut ref_rng = UicRng::new(seed);
            let reference = reference::simulate(&g, &alloc, &table, &mut ref_rng);

            prop_assert_eq!(&dense.adoptions, &reference.adoptions);
            prop_assert_eq!(&dense.desires, &reference.desires);
            prop_assert_eq!(dense.steps, reference.steps);
            let dw = dense.welfare(&table);
            let rw = reference.welfare(&table);
            prop_assert!(
                (dw - rw).abs() < 1e-12,
                "welfare {} vs {}", dw, rw
            );
        }

        /// Reusing one `CascadeState` across cascades never leaks state
        /// between runs: every cascade matches a fresh-state run.
        #[test]
        fn state_reuse_is_stateless(
            n in 1u32..10,
            raw_edges in proptest::collection::vec((0u32..64, 0u32..64, 0f32..=1.0), 0..16),
            raw_pairs in proptest::collection::vec((0u32..64, 0u32..4), 0..6),
            raw_values in proptest::collection::vec(-1.0f64..2.0, 1..8),
            seed in 0u64..1_000_000,
        ) {
            let g = build_graph(n, &raw_edges);
            let alloc = build_allocation(n, 2, &raw_pairs);
            let table = build_table(2, &raw_values);
            let mut reused = CascadeState::new(&g);
            for round in 0..4u64 {
                let s = split_seed(seed, round);
                let a = reused.run_lazy(&g, &alloc, &table, &mut UicRng::new(s));
                let b = CascadeState::new(&g).run_lazy(&g, &alloc, &table, &mut UicRng::new(s));
                prop_assert_eq!(&a.adoptions, &b.adoptions);
                prop_assert_eq!(&a.desires, &b.desires);
                prop_assert_eq!(a.steps, b.steps);
            }
        }
    }

    #[test]
    fn world_and_lazy_agree_on_certain_edges() {
        // With all probabilities at 1.0 there is a single possible world;
        // lazy sampling and world replay must coincide exactly.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let table = UtilityTable::from_values(1, vec![0.0, 0.5]);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        let mut sim = CascadeState::new(&g);
        let lazy = sim.run_lazy(&g, &alloc, &table, &mut UicRng::new(3));
        let world = LiveEdgeWorld::sample(&g, &mut UicRng::new(9));
        let replay = sim.run_world(&g, &alloc, &table, &world);
        assert_eq!(lazy.adoptions, replay.adoptions);
        assert_eq!(lazy.desires, replay.desires);
        assert_eq!(lazy.steps, replay.steps);
    }

    #[test]
    fn outcome_vectors_are_sorted_by_node() {
        let g = Graph::from_edges(5, &[(4, 2, 1.0), (2, 0, 1.0), (0, 3, 1.0)]);
        let table = UtilityTable::from_values(1, vec![0.0, 1.0]);
        let mut alloc = Allocation::new();
        alloc.assign(4, 0);
        let out = CascadeState::new(&g).run_lazy(&g, &alloc, &table, &mut UicRng::new(1));
        let nodes: Vec<NodeId> = out.adoptions.iter().map(|&(v, _)| v).collect();
        assert_eq!(nodes, vec![0, 2, 3, 4]);
        assert!(out.desires.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
