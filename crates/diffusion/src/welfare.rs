//! Social-welfare estimation (§3.3):
//! `ρ(𝒮) = E_{W^N}[ E_{W^E}[ Σ_v U_{W}(A^𝒮_W(v)) ] ]`.
//!
//! The Monte-Carlo estimator samples a fresh noise world *and* edge world
//! per simulation — the outer/inner expectations commute (§4.1.1), so one
//! joint sample per iteration is unbiased. Every algorithm in the
//! experiments is scored by this same estimator for fairness.
//!
//! The per-world aggregation is pluggable: [`WelfareEstimator::with_objective`]
//! swaps the utilitarian sum for any [`WelfareObjective`]
//! (maximin, CES, per-community). The objective is applied to each
//! sampled world and the results are averaged, so every objective is
//! estimated as `E[f(utilities)]` — the expectation of the welfare, not
//! the welfare of the expectation.
//!
//! # Determinism contract
//!
//! An estimate is a *pure function* of `(graph, model, allocation, sims,
//! seed, objective)`:
//!
//! * Sample `s` always draws from its own RNG stream
//!   `split_seed(seed, s)`, independent of which worker runs it.
//! * The reduction accumulates fixed 64-sample blocks sequentially and
//!   merges the blocks in block order; threads only decide *who*
//!   computes a block, never the boundaries or merge order.
//!
//! Consequently the result is **bit-identical across thread counts**
//! (1, 2, 8, or the automatic sizing) and across runs with the same
//! seed. [`WelfareEstimator::with_threads`] changes scheduling, never a
//! bit of the output. This holds for every shipped objective and is
//! asserted by the in-crate tests and the `objective_props` proptest
//! suite.

use crate::allocation::Allocation;
use crate::ic::num_threads;
use crate::objective::{default_objective, WelfareObjective};
use crate::uic::UicSimulator;
use crate::worlds::enumerate_edge_worlds;
use crossbeam::thread;
use std::sync::Arc;
use uic_graph::Graph;
use uic_items::{UtilityModel, UtilityTable};
use uic_util::{split_seed, CachePadded, OnlineStats, UicRng};

/// Parallel Monte-Carlo welfare estimator bound to a graph and a utility
/// model.
pub struct WelfareEstimator<'a> {
    graph: &'a Graph,
    model: &'a UtilityModel,
    sims: u32,
    seed: u64,
    /// Worker-thread override; `None` sizes by hardware and sample count.
    threads: Option<usize>,
    /// Per-world aggregation; the utilitarian sum unless overridden.
    objective: Arc<dyn WelfareObjective>,
}

impl<'a> WelfareEstimator<'a> {
    /// `sims` joint (noise, edge) world samples, derived from `seed`.
    pub fn new(graph: &'a Graph, model: &'a UtilityModel, sims: u32, seed: u64) -> Self {
        assert!(sims > 0, "need at least one simulation");
        WelfareEstimator {
            graph,
            model,
            sims,
            seed,
            threads: None,
            objective: default_objective(),
        }
    }

    /// Swaps the per-world aggregation (default: [`crate::Utilitarian`]).
    ///
    /// The objective must already be validated against this graph
    /// (panics on e.g. a community labeling sized for a different node
    /// count — solvers validate through `WelMaxInstance`).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use uic_diffusion::{Allocation, Ces, WelfareEstimator};
    /// use uic_graph::Graph;
    /// use uic_items::{NoiseModel, Price, TableValuation, UtilityModel};
    ///
    /// let g = Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
    /// let model = UtilityModel::new(
    ///     Arc::new(TableValuation::from_table(1, vec![0.0, 2.0])),
    ///     Price::additive(vec![1.0]),
    ///     NoiseModel::none(1),
    /// );
    /// let mut alloc = Allocation::new();
    /// alloc.assign(0, 0);
    /// let fair = WelfareEstimator::new(&g, &model, 400, 7)
    ///     .with_objective(Arc::new(Ces::new(0.5)?))
    ///     .estimate(&alloc);
    /// assert!(fair.is_finite());
    /// # Ok::<(), uic_diffusion::ObjectiveError>(())
    /// ```
    pub fn with_objective(mut self, objective: Arc<dyn WelfareObjective>) -> Self {
        objective
            .validate_for(self.graph.num_nodes())
            .expect("objective does not fit this graph");
        self.objective = objective;
        self
    }

    /// Pins the worker-thread count (normally sized automatically).
    ///
    /// Because every sample `s` draws from its own stream
    /// `split_seed(seed, s)`, the estimate is a pure function of the
    /// constructor arguments — this knob only changes how work is
    /// chunked, never the result (asserted in the test suite).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }

    /// Estimated expected social welfare `ρ(𝒮)`.
    ///
    /// Solvers score through this estimator automatically; to re-score
    /// an allocation yourself, build the instance with the `WelMax`
    /// builder and point an estimator at its graph and model:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use uic_core::{Allocator, SolveCtx, WelMax};
    /// use uic_diffusion::WelfareEstimator;
    /// use uic_graph::Graph;
    /// use uic_items::{NoiseModel, Price, TableValuation, UtilityModel};
    ///
    /// let g = Graph::from_edges(4, &[(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6)]);
    /// let model = UtilityModel::new(
    ///     Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 4.0, 9.0])),
    ///     Price::additive(vec![3.5, 4.5]),
    ///     NoiseModel::none(2),
    /// );
    /// let inst = WelMax::on(&g).model(model).budgets([1u32, 1]).build()?;
    ///
    /// let solver = <dyn Allocator>::by_name("degree-top").unwrap();
    /// let report = solver.solve(&inst, &SolveCtx::new(42).with_sims(300));
    ///
    /// // Independent re-score of the winning allocation (same estimator
    /// // type the solver used, different seed):
    /// let w = WelfareEstimator::new(inst.graph(), inst.model(), 500, 7)
    ///     .estimate(&report.allocation);
    /// assert!(w >= 0.0);
    /// # Ok::<(), uic_core::InstanceError>(())
    /// ```
    pub fn estimate(&self, allocation: &Allocation) -> f64 {
        self.estimate_stats(allocation).mean()
    }

    /// Sequential estimation to a target precision: doubles the sample
    /// count (starting from this estimator's `sims`) until the 95% CI
    /// half-width drops to `target_halfwidth` or `max_sims` samples have
    /// been spent. Sample `s` is always drawn from stream
    /// `split_seed(seed, s)`, so the result is identical to a one-shot
    /// run with the final count — batching changes nothing but cost.
    pub fn estimate_to_precision(
        &self,
        allocation: &Allocation,
        target_halfwidth: f64,
        max_sims: u32,
    ) -> OnlineStats {
        assert!(target_halfwidth > 0.0, "target half-width must be > 0");
        assert!(max_sims >= self.sims, "max_sims below the initial batch");
        let mut total = OnlineStats::new();
        let mut done = 0u32;
        let mut next = self.sims.min(max_sims);
        loop {
            total.merge(&self.stats_range(allocation, done, next));
            done = next;
            if total.ci95_halfwidth() <= target_halfwidth || done >= max_sims {
                return total;
            }
            next = done.saturating_mul(2).min(max_sims);
        }
    }

    /// Full statistics (mean, stderr, CI) of the welfare samples.
    pub fn estimate_stats(&self, allocation: &Allocation) -> OnlineStats {
        self.stats_range(allocation, 0, self.sims)
    }

    /// Samples per reduction block (see [`Self::stats_range`]).
    const BLOCK: u32 = 64;

    /// Statistics over the sample-index range `[first, last)`.
    ///
    /// The reduction is structured for **thread-count invariance**: the
    /// range is cut into fixed [`Self::BLOCK`]-sample blocks, each block
    /// is accumulated sequentially, and blocks are merged in block order.
    /// Worker threads only decide *who* computes a block, never the block
    /// boundaries or merge order, so the result is bit-identical for any
    /// thread count (asserted in the test suite).
    ///
    /// Blocks are handed out by **static contiguous chunking** — worker
    /// `t` owns blocks `[t·⌈B/T⌉, (t+1)·⌈B/T⌉)` and writes its partials
    /// straight into its cache-line-padded slice of the result array —
    /// so there is no shared counter to contend on and no false sharing
    /// between adjacent workers' partials.
    fn stats_range(&self, allocation: &Allocation, first: u32, last: u32) -> OnlineStats {
        if first >= last {
            return OnlineStats::new();
        }
        // When the noise model is degenerate the utility table is shared
        // across all simulations; otherwise each world rebuilds it (2^n
        // entries — cheap for the paper's ≤ 10 items).
        let shared_table: Option<UtilityTable> = if self.model.noise().is_none() {
            Some(self.model.deterministic_table())
        } else {
            None
        };
        let count = last - first;
        let threads = self.threads.unwrap_or_else(|| num_threads(count));
        let graph = self.graph;
        let model = self.model;
        let seed = self.seed;
        let objective: &dyn WelfareObjective = self.objective.as_ref();
        let num_nodes = graph.num_nodes();
        let run_block = |sim: &mut UicSimulator, lo: u32, hi: u32| -> OnlineStats {
            let mut stats = OnlineStats::new();
            for s in lo..hi {
                let mut rng = UicRng::new(split_seed(seed, s as u64));
                let outcome_welfare = match &shared_table {
                    Some(table) => {
                        let outcome = sim.run(graph, allocation, table, &mut rng);
                        objective.welfare(&outcome, table, num_nodes)
                    }
                    None => {
                        let world = model.sample_noise(&mut rng);
                        let table = model.table_for(&world);
                        let outcome = sim.run(graph, allocation, &table, &mut rng);
                        objective.welfare(&outcome, &table, num_nodes)
                    }
                };
                stats.push(outcome_welfare);
            }
            stats
        };
        let num_blocks = count.div_ceil(Self::BLOCK);
        let block_range = |b: u32| {
            let lo = first + b * Self::BLOCK;
            (lo, (lo + Self::BLOCK).min(last))
        };
        let mut partials: Vec<CachePadded<OnlineStats>> = (0..num_blocks)
            .map(|_| CachePadded::new(OnlineStats::new()))
            .collect();
        if threads <= 1 || num_blocks == 1 {
            let mut sim = UicSimulator::new(graph);
            for (b, slot) in partials.iter_mut().enumerate() {
                let (lo, hi) = block_range(b as u32);
                slot.0 = run_block(&mut sim, lo, hi);
            }
        } else {
            let per = (num_blocks as usize).div_ceil(threads);
            thread::scope(|scope| {
                for (t, chunk) in partials.chunks_mut(per).enumerate() {
                    let first_block = (t * per) as u32;
                    scope.spawn(move |_| {
                        let mut sim = UicSimulator::new(graph);
                        for (i, slot) in chunk.iter_mut().enumerate() {
                            let (lo, hi) = block_range(first_block + i as u32);
                            slot.0 = run_block(&mut sim, lo, hi);
                        }
                    });
                }
            })
            .expect("crossbeam scope failed");
        }
        let mut total = OnlineStats::new();
        for p in &partials {
            total.merge(&p.0);
        }
        total
    }

    /// Estimated expected number of `(node, item)` adoptions — the
    /// "maximizing just the adoption" objective the paper contrasts with
    /// welfare.
    pub fn estimate_adoptions(&self, allocation: &Allocation) -> f64 {
        let shared_table: Option<UtilityTable> = if self.model.noise().is_none() {
            Some(self.model.deterministic_table())
        } else {
            None
        };
        let mut sim = UicSimulator::new(self.graph);
        let mut stats = OnlineStats::new();
        for s in 0..self.sims {
            let mut rng = UicRng::new(split_seed(self.seed, s as u64));
            let total = match &shared_table {
                Some(table) => sim
                    .run(self.graph, allocation, table, &mut rng)
                    .total_adoptions(),
                None => {
                    let world = self.model.sample_noise(&mut rng);
                    let table = self.model.table_for(&world);
                    sim.run(self.graph, allocation, &table, &mut rng)
                        .total_adoptions()
                }
            };
            stats.push(total as f64);
        }
        stats.mean()
    }
}

/// Exact expected welfare **for a fixed noise world** by enumerating all
/// live-edge worlds (`ρ_{W^N}(𝒮)` of §4.2.2; ≤ 20 edges).
pub fn exact_welfare_given_noise(g: &Graph, allocation: &Allocation, table: &UtilityTable) -> f64 {
    exact_welfare_given_noise_for(g, allocation, table, &crate::objective::Utilitarian)
}

/// [`exact_welfare_given_noise`] under an arbitrary objective: the exact
/// expectation `Σ_W P(W) · f(utilities in W)` over all live-edge worlds.
pub fn exact_welfare_given_noise_for(
    g: &Graph,
    allocation: &Allocation,
    table: &UtilityTable,
    objective: &dyn WelfareObjective,
) -> f64 {
    let mut sim = UicSimulator::new(g);
    let n = g.num_nodes();
    enumerate_edge_worlds(g)
        .iter()
        .map(|(world, p)| {
            let outcome = sim.run_in_world(g, allocation, table, world);
            p * objective.welfare(&outcome, table, n)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_items::{NoiseModel, Price, TableValuation};

    fn fig2_model() -> UtilityModel {
        // Deterministic utilities U(i1)=0.1, U(i2)=−0.5, U(both)=0.6
        // encoded as values with zero prices for simplicity.
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.1, 2.5, 6.6])),
            Price::additive(vec![3.0, 3.0]),
            NoiseModel::none(2),
        )
    }

    fn fig2_graph() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5)])
    }

    fn fig2_alloc() -> Allocation {
        let mut a = Allocation::new();
        a.assign(0, 0);
        a.assign(2, 1);
        a
    }

    #[test]
    fn exact_welfare_hand_computed() {
        // Under zero noise, v1 always adopts i1 (welfare 0.1 baseline).
        // v2 adopts i1 iff edge (0,1) live (p=.5) contributing 0.1.
        // v3 desires i2; v3 gets i1 iff (0,2) live or ((0,1) and (1,2))
        // live: p = .5 + .5·.25 = .625... careful: v2 must adopt first:
        // (0,1) live then (1,2) live ⇒ .25; 1−(1−.5)(1−.25) = .625.
        // When v3 gets i1 it adopts {i1,i2} contributing 0.6.
        // ρ = 0.1 + 0.5·0.1 + 0.625·0.6 = 0.525.
        let g = fig2_graph();
        let model = fig2_model();
        let table = model.deterministic_table();
        let got = exact_welfare_given_noise(&g, &fig2_alloc(), &table);
        assert!((got - 0.525).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn mc_estimator_converges_to_exact() {
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 60_000, 42);
        let mc = est.estimate(&fig2_alloc());
        assert!((mc - 0.525).abs() < 0.01, "MC {mc} vs exact 0.525");
    }

    #[test]
    fn estimator_is_deterministic() {
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 2_000, 7);
        assert_eq!(est.estimate(&fig2_alloc()), est.estimate(&fig2_alloc()));
    }

    #[test]
    fn welfare_monotone_in_allocations_mc() {
        // Theorem 1 (monotonicity) through the estimator.
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 20_000, 3);
        let small = fig2_alloc();
        let mut large = small.clone();
        large.assign(1, 0);
        large.assign(1, 1);
        assert!(est.estimate(&large) >= est.estimate(&small) - 0.01);
    }

    #[test]
    fn noisy_model_estimates_run() {
        use uic_items::NoiseDistribution;
        let g = fig2_graph();
        let model = UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.1, 2.5, 6.6])),
            Price::additive(vec![3.0, 3.0]),
            NoiseModel::new(vec![
                NoiseDistribution::gaussian_var(1.0),
                NoiseDistribution::gaussian_var(1.0),
            ]),
        );
        let est = WelfareEstimator::new(&g, &model, 5_000, 11);
        let stats = est.estimate_stats(&fig2_alloc());
        assert_eq!(stats.count(), 5_000);
        // Noise can only help welfare here in expectation ≥ deterministic
        // case minus sampling error? Not a theorem — just sanity-check
        // the estimate is finite and the CI is reported.
        assert!(stats.mean().is_finite());
        assert!(stats.ci95_halfwidth() > 0.0);
    }

    #[test]
    fn adoption_count_estimator() {
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 20_000, 5);
        let adoptions = est.estimate_adoptions(&fig2_alloc());
        // E[#adoptions]: v1 i1 always (1) + v2 i1 (.5) + v3 both (.625·2)
        // = 1 + 0.5 + 1.25 = 2.75.
        assert!((adoptions - 2.75).abs() < 0.05, "got {adoptions}");
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        // Seed-split determinism: sample s always draws from stream
        // split_seed(seed, s), so chunking across 1, 2, or 8 workers must
        // not change a single bit of the result — the engine port cannot
        // silently alter chunking semantics without tripping this.
        use uic_items::NoiseDistribution;
        let g = fig2_graph();
        // A noisy model so per-sample tables differ (the harder path).
        let model = UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.1, 2.5, 6.6])),
            Price::additive(vec![3.0, 3.0]),
            NoiseModel::new(vec![
                NoiseDistribution::gaussian_var(1.0),
                NoiseDistribution::gaussian_var(1.0),
            ]),
        );
        let alloc = fig2_alloc();
        let reference = WelfareEstimator::new(&g, &model, 4_000, 29)
            .with_threads(1)
            .estimate_stats(&alloc);
        for threads in [2usize, 8] {
            let got = WelfareEstimator::new(&g, &model, 4_000, 29)
                .with_threads(threads)
                .estimate_stats(&alloc);
            assert_eq!(got.count(), reference.count(), "{threads} threads");
            assert_eq!(got.mean(), reference.mean(), "{threads} threads");
            assert_eq!(
                got.ci95_halfwidth(),
                reference.ci95_halfwidth(),
                "{threads} threads"
            );
        }
        // The automatic sizing must agree with the pinned runs too.
        let auto = WelfareEstimator::new(&g, &model, 4_000, 29).estimate_stats(&alloc);
        assert_eq!(auto.mean(), reference.mean());
    }

    #[test]
    #[should_panic(expected = "at least one simulation")]
    fn zero_sims_rejected() {
        let g = fig2_graph();
        let model = fig2_model();
        WelfareEstimator::new(&g, &model, 0, 1);
    }

    #[test]
    fn precision_targeted_estimation_reaches_the_target() {
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 200, 13);
        let stats = est.estimate_to_precision(&fig2_alloc(), 0.01, 400_000);
        assert!(
            stats.ci95_halfwidth() <= 0.01,
            "half-width {} above target",
            stats.ci95_halfwidth()
        );
        assert!((stats.mean() - 0.525).abs() < 0.02, "mean {}", stats.mean());
        assert!(stats.count() > 200, "must have escalated beyond the batch");
    }

    #[test]
    fn precision_estimation_respects_the_cap() {
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 100, 17);
        // Impossible target: stops at the cap instead of spinning.
        let stats = est.estimate_to_precision(&fig2_alloc(), 1e-12, 800);
        assert_eq!(stats.count(), 800);
    }

    #[test]
    fn precision_estimation_batching_is_invisible() {
        // Samples are indexed by stream, so the sequential result equals
        // a one-shot run with the same final count.
        let g = fig2_graph();
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 100, 19);
        let sequential = est.estimate_to_precision(&fig2_alloc(), 1e-12, 800);
        let oneshot = WelfareEstimator::new(&g, &model, 800, 19).estimate_stats(&fig2_alloc());
        assert_eq!(sequential.count(), oneshot.count());
        assert!((sequential.mean() - oneshot.mean()).abs() < 1e-12);
    }

    #[test]
    fn precision_estimation_on_deterministic_instance_stops_immediately() {
        // All-certain edges + zero noise ⇒ zero variance ⇒ the first
        // batch already has half-width 0.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let model = fig2_model();
        let est = WelfareEstimator::new(&g, &model, 50, 23);
        let stats = est.estimate_to_precision(&fig2_alloc(), 0.001, 10_000);
        assert_eq!(stats.count(), 50, "no escalation needed");
        assert_eq!(stats.ci95_halfwidth(), 0.0);
    }
}
