//! The general **Triggering model** (Kempe et al.; §5 of the paper: "Our
//! results and techniques carry over unchanged to any triggering
//! propagation model").
//!
//! Each node `v` independently samples a *triggering set*
//! `T_v ⊆ N⁻(v)` from a node-specific distribution; once any node in
//! `T_v` is active, `v` activates in the next step. The two classic
//! diffusion models are instances:
//!
//! * **IC** — every in-neighbor `u` joins `T_v` independently with
//!   probability `p(u, v)`;
//! * **LT** — at most one in-neighbor joins, chosen with probability
//!   proportional to edge weight (requires `Σ_u p(u,v) ≤ 1`).
//!
//! This module provides the abstraction ([`TriggeringSampler`]), both
//! canonical instances plus a third non-IC/non-LT one
//! ([`UniformSubsetTriggering`], demonstrating genuine generality), a
//! forward simulator, and a Monte-Carlo spread estimator. The tests pin
//! the instances to their dedicated simulators — the executable form of
//! the §5 claim that everything upstream of the spread function is
//! model-agnostic.

use uic_graph::{Graph, NodeId};
use uic_util::{split_seed, UicRng, VisitTags};

/// A distribution over triggering sets, sampled per node.
///
/// Implementations fill `out` with *in-edge indices* (positions into
/// `g.in_neighbors(v)`, not node ids) of the chosen triggering set.
pub trait TriggeringSampler {
    /// Samples `T_v` for node `v` into `out` (cleared first).
    fn sample(&self, g: &Graph, v: NodeId, rng: &mut UicRng, out: &mut Vec<usize>);
}

/// IC as a triggering distribution: each in-edge joins independently
/// with its own probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcTriggering;

impl TriggeringSampler for IcTriggering {
    fn sample(&self, g: &Graph, v: NodeId, rng: &mut UicRng, out: &mut Vec<usize>) {
        out.clear();
        for (i, p) in g.in_arc_probs(v).iter().enumerate() {
            if rng.coin(p as f64) {
                out.push(i);
            }
        }
    }
}

/// LT as a triggering distribution: at most one in-edge, chosen with
/// probability equal to its weight (none with the residual mass).
#[derive(Debug, Clone, Copy, Default)]
pub struct LtTriggering;

impl TriggeringSampler for LtTriggering {
    fn sample(&self, g: &Graph, v: NodeId, rng: &mut UicRng, out: &mut Vec<usize>) {
        out.clear();
        let x = rng.next_f64();
        let mut acc = 0.0f64;
        for (i, p) in g.in_arc_probs(v).iter().enumerate() {
            acc += p as f64;
            if x < acc {
                out.push(i);
                break;
            }
        }
    }
}

/// A triggering distribution that is neither IC nor LT: a uniformly
/// random subset of exactly `min(k, d⁻(v))` in-neighbors (edge weights
/// ignored). Models "v copies whichever k contacts it happens to
/// sample" — useful as a stress instance proving the machinery does not
/// secretly assume independence per edge (IC) or mutual exclusion (LT).
#[derive(Debug, Clone, Copy)]
pub struct UniformSubsetTriggering {
    /// Triggering-set size (capped at the in-degree).
    pub k: usize,
}

impl TriggeringSampler for UniformSubsetTriggering {
    fn sample(&self, g: &Graph, v: NodeId, rng: &mut UicRng, out: &mut Vec<usize>) {
        out.clear();
        let d = g.in_degree(v);
        let k = self.k.min(d);
        // Floyd's algorithm for a uniform k-subset of 0..d.
        for j in (d - k)..d {
            let t = rng.next_below(j as u32 + 1) as usize;
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        out.sort_unstable();
    }
}

/// Runs one triggering-model cascade from `seeds`; returns the active
/// nodes in activation order. Each node's triggering set is sampled
/// exactly once, on first contact (the lazy equivalent of fixing the
/// triggering world up front).
pub fn simulate_triggering<S: TriggeringSampler>(
    g: &Graph,
    seeds: &[NodeId],
    sampler: &S,
    rng: &mut UicRng,
) -> Vec<NodeId> {
    let n = g.num_nodes() as usize;
    let mut active = VisitTags::new(n);
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if active.mark(s as usize) {
            queue.push(s);
        }
    }
    // Triggering sets are realized lazily: when u activates we test, for
    // each out-neighbor v, whether u sits in v's (memoized) triggering
    // set. Memoization keys on v, so each T_v is sampled at most once —
    // exactly the possible-world semantics.
    let mut sampled = VisitTags::new(n);
    let mut trigger_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut scratch = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in g.out_neighbors(u) {
            if active.is_marked(v as usize) {
                continue;
            }
            if sampled.mark(v as usize) {
                sampler.sample(g, v, rng, &mut scratch);
                trigger_sets[v as usize] = scratch.clone();
            }
            let srcs = g.in_neighbors(v);
            let triggered = trigger_sets[v as usize]
                .iter()
                .any(|&i| srcs[i] == u && active.is_marked(srcs[i] as usize));
            if triggered && active.mark(v as usize) {
                queue.push(v);
            }
        }
    }
    queue
}

/// Monte-Carlo spread estimate under an arbitrary triggering model, with
/// the same deterministic per-simulation seed splitting as the IC/LT
/// estimators.
///
/// ```
/// use uic_diffusion::{spread_triggering_mc, IcTriggering, UniformSubsetTriggering};
/// use uic_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 2, 0.9), (1, 2, 0.1)]);
/// // IC: node 2 activates with probability 0.9 → σ ≈ 1.9.
/// let ic = spread_triggering_mc(&g, &[0], &IcTriggering, 20_000, 7);
/// assert!((ic - 1.9).abs() < 0.05);
/// // Uniform-1-subset: node 2 copies one random in-neighbor → σ ≈ 1.5.
/// let us = spread_triggering_mc(&g, &[0], &UniformSubsetTriggering { k: 1 }, 20_000, 7);
/// assert!((us - 1.5).abs() < 0.05);
/// ```
pub fn spread_triggering_mc<S: TriggeringSampler>(
    g: &Graph,
    seeds: &[NodeId],
    sampler: &S,
    sims: u32,
    seed: u64,
) -> f64 {
    if sims == 0 {
        return 0.0;
    }
    let mut total = 0usize;
    for s in 0..sims {
        let mut rng = UicRng::new(split_seed(seed, s as u64));
        total += simulate_triggering(g, seeds, sampler, &mut rng).len();
    }
    total as f64 / sims as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::{exact_spread, spread_mc};
    use crate::lt::simulate_lt;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)])
    }

    #[test]
    fn ic_triggering_matches_ic_spread() {
        // σ({0}) = 1.75 exactly on the 0→1→2 path with p = 0.5.
        let g = path3();
        let est = spread_triggering_mc(&g, &[0], &IcTriggering, 200_000, 3);
        let exact = exact_spread(&g, &[0]);
        assert!((est - exact).abs() < 0.02, "triggering {est} vs IC {exact}");
    }

    #[test]
    fn ic_triggering_matches_ic_simulator_on_random_graph() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 0.4),
                (0, 2, 0.7),
                (2, 3, 0.3),
                (1, 3, 0.6),
                (3, 4, 0.9),
            ],
        );
        let a = spread_triggering_mc(&g, &[0], &IcTriggering, 150_000, 5);
        let b = spread_mc(&g, &[0], 150_000, 7);
        assert!((a - b).abs() < 0.03, "triggering {a} vs dedicated IC {b}");
    }

    #[test]
    fn lt_triggering_matches_lt_simulator() {
        // Star into node 1 with in-weights (0.6, 0.4):
        // σ_LT({0}) = 1 + 0.6.
        let g = Graph::from_edges(3, &[(0, 1, 0.6), (2, 1, 0.4)]);
        let est = spread_triggering_mc(&g, &[0], &LtTriggering, 200_000, 9);
        assert!((est - 1.6).abs() < 0.02, "triggering LT {est}");
        // And against the dedicated forward simulator.
        let mut total = 0usize;
        for s in 0..200_000u64 {
            let mut rng = UicRng::new(split_seed(11, s));
            total += simulate_lt(&g, &[0], &mut rng);
        }
        let dedicated = total as f64 / 200_000.0;
        assert!((est - dedicated).abs() < 0.02, "{est} vs {dedicated}");
    }

    #[test]
    fn uniform_subset_triggering_is_its_own_model() {
        // Node 2 has in-neighbors {0, 1}; with k = 1 it is triggered by a
        // uniformly chosen one: σ({0}) = 1 + 1/2 — different from IC with
        // these weights (1 + 0.9) and from LT (1 + 0.9).
        let g = Graph::from_edges(3, &[(0, 2, 0.9), (1, 2, 0.1)]);
        let est = spread_triggering_mc(&g, &[0], &UniformSubsetTriggering { k: 1 }, 200_000, 13);
        assert!((est - 1.5).abs() < 0.02, "uniform-subset {est}");
    }

    #[test]
    fn uniform_subset_with_full_degree_is_deterministic_reachability() {
        // k ≥ d⁻ puts every in-neighbor in every triggering set: the
        // cascade becomes plain BFS reachability.
        let g = path3();
        let est = spread_triggering_mc(&g, &[0], &UniformSubsetTriggering { k: 5 }, 1_000, 17);
        assert_eq!(est, 3.0);
    }

    #[test]
    fn spread_is_monotone_in_seed_set() {
        let g = Graph::from_edges(4, &[(0, 1, 0.5), (2, 3, 0.5)]);
        let small = spread_triggering_mc(&g, &[0], &IcTriggering, 50_000, 19);
        let large = spread_triggering_mc(&g, &[0, 2], &IcTriggering, 50_000, 19);
        assert!(large > small, "adding a seed must add spread");
    }

    #[test]
    fn seeds_always_active_and_deterministic_given_seed() {
        let g = path3();
        let mut rng = UicRng::new(21);
        let active = simulate_triggering(&g, &[0, 2], &IcTriggering, &mut rng);
        assert!(active.contains(&0) && active.contains(&2));
        let a = spread_triggering_mc(&g, &[0], &LtTriggering, 500, 23);
        let b = spread_triggering_mc(&g, &[0], &LtTriggering, 500, 23);
        assert_eq!(a, b);
    }
}
