//! # uic-diffusion
//!
//! Diffusion-model simulation and estimation for the UIC reproduction:
//!
//! * [`allocation`] — seed allocations `𝒮 ⊆ V × I` with per-item budget
//!   validation (§3.2.1).
//! * [`ic`] — the classic single-item Independent Cascade model: forward
//!   simulation, Monte-Carlo spread `σ(S)`, and exact spread by edge-world
//!   enumeration on tiny graphs.
//! * [`lt`] — the Linear Threshold model (needed because §5 notes the
//!   results "carry over unchanged to any triggering model"; the LT RR-set
//!   sampler in `uic-im` shares its live-edge view).
//! * [`triggering`] — the general Triggering model behind that §5 claim:
//!   a [`TriggeringSampler`] abstraction with IC, LT and a uniform-subset
//!   instance, plus forward simulation and MC spread.
//! * [`worlds`] — sampled live-edge worlds `W^E` and their enumeration
//!   with probabilities (the possible-world semantics of §4.1.1).
//! * [`engine`] — the dense, epoch-stamped cascade engine shared by every
//!   simulator: flat per-node state ([`uic_util::EpochMap`]), per-edge
//!   coin cache ([`uic_util::EdgeStatusCache`]), frontier double-buffer,
//!   and the [`engine::EdgeOracle`] trait unifying lazy sampling with
//!   fixed-world replay. Zero allocation per cascade after warm-up.
//! * [`uic`] — the paper's multi-item **utility-driven IC** diffusion
//!   (Fig. 1): desire/adoption sets, one-shot edge tests, per-noise-world
//!   adoption oracle. A thin API layer over [`engine`].
//! * [`objective`] — pluggable [`WelfareObjective`] aggregations
//!   (utilitarian, maximin, CES, per-community) applied per possible
//!   world; the utilitarian default reproduces the paper bit-for-bit.
//! * [`welfare`] — Monte-Carlo social-welfare estimation
//!   `ρ(𝒮) = E_{W^N} E_{W^E} [ Σ_v U(A_v) ]`, parallelized with
//!   deterministic seed splitting; plus exact tiny-instance welfare.
//! * [`comic`] — the Com-IC model of Lu et al. (two items, GAP
//!   parameters + reconsideration), the substrate for the RR-SIM+/RR-CIM
//!   baselines.
//! * [`report`] — [`SolveReport`], the unified result every WelMax
//!   allocator returns: allocation, welfare mean ± CI, timing, RR-set
//!   counters, seed, and budget usage.

pub mod allocation;
pub mod comic;
pub mod engine;
pub mod ic;
pub mod lt;
pub mod objective;
pub mod personalized;
pub mod report;
pub mod triggering;
pub mod uic;
pub mod welfare;
pub mod worlds;

pub use allocation::Allocation;
pub use comic::{ComicOutcome, ComicSimulator};
pub use engine::{CascadeState, EdgeOracle, LazyCoins, WorldOracle};
pub use ic::{exact_spread, simulate_ic, spread_mc};
pub use lt::simulate_lt;
pub use objective::{
    default_objective, Ces, Maximin, ObjectiveError, PerCommunity, Utilitarian, WelfareObjective,
};
pub use personalized::{
    personalized_welfare_mc, simulate_uic_personalized, PersonalizedOutcome, PersonalizedSimulator,
};
pub use report::SolveReport;
pub use triggering::{
    simulate_triggering, spread_triggering_mc, IcTriggering, LtTriggering, TriggeringSampler,
    UniformSubsetTriggering,
};
pub use uic::{simulate_uic, simulate_uic_in_world, UicOutcome, UicSimulator};
pub use welfare::{exact_welfare_given_noise, exact_welfare_given_noise_for, WelfareEstimator};
pub use worlds::{enumerate_edge_worlds, LiveEdgeWorld};
