//! Linear Threshold model (§2.1; §5: "our results and techniques carry
//! over unchanged to any triggering propagation model").
//!
//! Each node `v` draws a threshold `θ_v ∼ U[0,1]`; `v` activates when the
//! sum of weights from its active in-neighbors reaches `θ_v`. The
//! equivalent triggering/live-edge view — each node picks **at most one**
//! in-edge with probability proportional to its weight — is what the LT
//! RR-set sampler in `uic-im` uses; this module provides the forward
//! simulator and the world-equivalence test.

use uic_graph::{Graph, NodeId};
use uic_util::{UicRng, VisitTags};

/// Runs one LT cascade from `seeds` with freshly drawn thresholds;
/// returns the number of active nodes. Requires `Σ_u p(u,v) ≤ 1` for all
/// `v` (checked with a small tolerance in debug builds).
pub fn simulate_lt(g: &Graph, seeds: &[NodeId], rng: &mut UicRng) -> usize {
    let n = g.num_nodes() as usize;
    let mut active = VisitTags::new(n);
    let mut influence = vec![0.0f64; n];
    let mut thresholds = vec![0.0f64; n];
    // Thresholds drawn lazily on first contact to avoid O(n) setup; a
    // value of 0 means "not yet drawn" and is replaced on first use.
    let mut drawn = VisitTags::new(n);
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if active.mark(s as usize) {
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let nbrs = g.out_neighbors(u);
        let probs = g.out_arc_probs(u);
        for (i, &v) in nbrs.iter().enumerate() {
            let vi = v as usize;
            if active.is_marked(vi) {
                continue;
            }
            if drawn.mark(vi) {
                thresholds[vi] = rng.next_f64();
            }
            influence[vi] += probs.get(i) as f64;
            debug_assert!(
                influence[vi] <= 1.0 + 1e-6,
                "LT weights into node {v} exceed 1"
            );
            if influence[vi] >= thresholds[vi] {
                active.mark(vi);
                queue.push(v);
            }
        }
    }
    queue.len()
}

/// Samples the LT *triggering set* world: for each node, at most one
/// in-edge is selected (edge `(u,v)` with probability `p(u,v)`, none with
/// probability `1 − Σ_u p(u,v)`). Returns `chosen[v] = Some(u)` or `None`.
/// LT spread equals reachability through chosen edges (Kempe et al.'s
/// equivalence), which the tests verify against [`simulate_lt`].
pub fn sample_lt_triggering(g: &Graph, rng: &mut UicRng) -> Vec<Option<NodeId>> {
    let n = g.num_nodes() as usize;
    let mut chosen = vec![None; n];
    for v in 0..g.num_nodes() {
        let srcs = g.in_neighbors(v);
        if srcs.is_empty() {
            continue;
        }
        let probs = g.in_arc_probs(v);
        let x = rng.next_f64();
        let mut acc = 0.0f64;
        for (i, &u) in srcs.iter().enumerate() {
            acc += probs.get(i) as f64;
            if x < acc {
                chosen[v as usize] = Some(u);
                break;
            }
        }
    }
    chosen
}

/// Spread in a fixed triggering world: nodes reachable from seeds through
/// the chosen in-edges.
pub fn lt_world_spread(g: &Graph, chosen: &[Option<NodeId>], seeds: &[NodeId]) -> usize {
    let n = g.num_nodes() as usize;
    let mut active = VisitTags::new(n);
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if active.mark(s as usize) {
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        // v activates if its chosen in-edge source is active.
        for &v in g.out_neighbors(u) {
            if !active.is_marked(v as usize) && chosen[v as usize] == Some(u) {
                active.mark(v as usize);
                queue.push(v);
            }
        }
    }
    queue.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_util::split_seed;

    fn lt_graph() -> Graph {
        // In-weights sum to ≤ 1 everywhere.
        Graph::from_edges(4, &[(0, 1, 0.6), (2, 1, 0.4), (1, 3, 0.5), (0, 3, 0.3)])
    }

    #[test]
    fn full_weight_forces_activation() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let mut rng = UicRng::new(1);
        assert_eq!(simulate_lt(&g, &[0], &mut rng), 2);
    }

    #[test]
    fn no_seeds_no_activity() {
        let g = lt_graph();
        let mut rng = UicRng::new(1);
        assert_eq!(simulate_lt(&g, &[], &mut rng), 0);
    }

    #[test]
    fn joint_seeds_activate_deterministic_neighbor() {
        // Seeds {0,2} push 0.6+0.4 = 1.0 ≥ θ onto node 1, always active.
        let g = lt_graph();
        for seed in 0..50u64 {
            let mut rng = UicRng::new(seed);
            let count = simulate_lt(&g, &[0, 2], &mut rng);
            assert!(count >= 3, "node 1 must always activate, got {count}");
        }
    }

    #[test]
    fn triggering_world_equivalence() {
        // E[spread] under forward LT == E[reach] under triggering worlds.
        let g = lt_graph();
        let sims = 60_000u64;
        let mut fwd = 0.0;
        let mut trig = 0.0;
        for s in 0..sims {
            let mut rng = UicRng::new(split_seed(11, s));
            fwd += simulate_lt(&g, &[0], &mut rng) as f64;
            let mut rng = UicRng::new(split_seed(13, s));
            let world = sample_lt_triggering(&g, &mut rng);
            trig += lt_world_spread(&g, &world, &[0]) as f64;
        }
        let (fwd, trig) = (fwd / sims as f64, trig / sims as f64);
        assert!(
            (fwd - trig).abs() < 0.03,
            "forward {fwd} vs triggering {trig}"
        );
    }

    #[test]
    fn triggering_selection_distribution() {
        let g = lt_graph();
        let mut count_from0 = 0u32;
        let mut count_from2 = 0u32;
        let mut count_none = 0u32;
        for s in 0..30_000u64 {
            let mut rng = UicRng::new(split_seed(5, s));
            match sample_lt_triggering(&g, &mut rng)[1] {
                Some(0) => count_from0 += 1,
                Some(2) => count_from2 += 1,
                None => count_none += 1,
                other => panic!("unexpected chooser {other:?}"),
            }
        }
        let total = 30_000f64;
        assert!((count_from0 as f64 / total - 0.6).abs() < 0.02);
        assert!((count_from2 as f64 / total - 0.4).abs() < 0.02);
        assert_eq!(count_none, 0, "weights sum to exactly 1 for node 1");
    }
}
