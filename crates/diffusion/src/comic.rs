//! The Com-IC model of Lu, Chen & Lakshmanan (two items, GAP parameters)
//! — the diffusion substrate of the RR-SIM+ / RR-CIM baselines
//! (§4.3.1.2–4.3.1.3 of the UIC paper).
//!
//! Node-level automaton (NLA) semantics for the mutually complementary
//! case (`q_{A|B} ≥ q_{A|∅}`):
//! * Information of an item travels over live edges (each edge's coin is
//!   flipped once per diffusion and shared by both items, as in Com-IC's
//!   possible-world model).
//! * When item `X`'s information first reaches a node, the node adopts
//!   with probability `q_{X|∅}` (other item not adopted) or `q_{X|Y}`
//!   (other item adopted); otherwise it becomes *suspended* on `X`.
//! * When the node later adopts the other item, a suspended `X` is
//!   **reconsidered** with probability `(q_{X|Y} − q_{X|∅})/(1 − q_{X|∅})`,
//!   which makes the overall adoption probability exactly `q_{X|Y}`.
//! * Only adopters propagate an item's information.
//!
//! Seeds adopt their seeded item outright (Com-IC's convention; the UIC
//! paper highlights as a *difference* that its own seeds are rational
//! utility maximizers).

use uic_graph::{Graph, NodeId};
use uic_items::GapParams;
use uic_util::{FxHashMap, UicRng};

/// Adoption state of one item at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ItemState {
    /// Never informed.
    #[default]
    Idle,
    /// Informed but declined (may be reconsidered).
    Suspended,
    /// Adopted.
    Adopted,
}

/// Outcome of one Com-IC cascade.
#[derive(Debug, Clone, Default)]
pub struct ComicOutcome {
    /// Nodes that adopted item 1 ("A").
    pub adopters_a: Vec<NodeId>,
    /// Nodes that adopted item 2 ("B").
    pub adopters_b: Vec<NodeId>,
}

impl ComicOutcome {
    /// Nodes adopting item A.
    pub fn num_a(&self) -> usize {
        self.adopters_a.len()
    }

    /// Nodes adopting item B.
    pub fn num_b(&self) -> usize {
        self.adopters_b.len()
    }

    /// Total (node, item) adoptions.
    pub fn total(&self) -> usize {
        self.num_a() + self.num_b()
    }
}

/// Reusable Com-IC simulator.
pub struct ComicSimulator<'a> {
    graph: &'a Graph,
    gap: GapParams,
}

impl<'a> ComicSimulator<'a> {
    /// Simulator for graph `g` under GAP parameters `gap` (must be
    /// mutually complementary for the reconsideration rule to be valid).
    pub fn new(graph: &'a Graph, gap: GapParams) -> Self {
        assert!(
            gap.is_mutually_complementary(),
            "Com-IC complementary semantics require q_X|Y ≥ q_X|∅"
        );
        ComicSimulator { graph, gap }
    }

    /// Runs one cascade from per-item seed sets.
    pub fn run(&self, seeds_a: &[NodeId], seeds_b: &[NodeId], rng: &mut UicRng) -> ComicOutcome {
        let g = self.graph;
        let mut states: FxHashMap<NodeId, [ItemState; 2]> = FxHashMap::default();
        let mut edge_cache: FxHashMap<usize, bool> = FxHashMap::default();
        // Frontier of fresh adoptions awaiting propagation: (node, item).
        let mut frontier: Vec<(NodeId, u8)> = Vec::new();

        // Seeds adopt outright.
        for &v in seeds_a {
            let st = states.entry(v).or_default();
            if st[0] != ItemState::Adopted {
                st[0] = ItemState::Adopted;
                frontier.push((v, 0));
            }
        }
        for &v in seeds_b {
            let st = states.entry(v).or_default();
            if st[1] != ItemState::Adopted {
                st[1] = ItemState::Adopted;
                frontier.push((v, 1));
            }
        }

        let mut next: Vec<(NodeId, u8)> = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            for &(u, item) in &frontier {
                let nbrs = g.out_neighbors(u);
                let probs = g.out_probs(u);
                for (i, &v) in nbrs.iter().enumerate() {
                    let eid = g.out_edge_id(u, i);
                    let live = *edge_cache
                        .entry(eid)
                        .or_insert_with(|| rng.coin(probs[i] as f64));
                    if live {
                        self.inform(v, item, &mut states, &mut next, rng);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }

        let mut out = ComicOutcome::default();
        for (&v, st) in &states {
            if st[0] == ItemState::Adopted {
                out.adopters_a.push(v);
            }
            if st[1] == ItemState::Adopted {
                out.adopters_b.push(v);
            }
        }
        out.adopters_a.sort_unstable();
        out.adopters_b.sort_unstable();
        out
    }

    /// Information of `item` arrives at `v`.
    fn inform(
        &self,
        v: NodeId,
        item: u8,
        states: &mut FxHashMap<NodeId, [ItemState; 2]>,
        fresh: &mut Vec<(NodeId, u8)>,
        rng: &mut UicRng,
    ) {
        let st = states.entry(v).or_default();
        if st[item as usize] != ItemState::Idle {
            return; // informed before; decision already made (or adopted)
        }
        let other = 1 - item;
        let other_adopted = st[other as usize] == ItemState::Adopted;
        let q = match (item, other_adopted) {
            (0, false) => self.gap.q1_alone,
            (0, true) => self.gap.q1_given_2,
            (1, false) => self.gap.q2_alone,
            (1, true) => self.gap.q2_given_1,
            _ => unreachable!(),
        };
        if rng.coin(q) {
            st[item as usize] = ItemState::Adopted;
            fresh.push((v, item));
            // Reconsideration of a suspended complement.
            if st[other as usize] == ItemState::Suspended {
                let rho = if other == 0 {
                    self.gap.reconsider_1()
                } else {
                    self.gap.reconsider_2()
                };
                if rng.coin(rho) {
                    st[other as usize] = ItemState::Adopted;
                    fresh.push((v, other));
                }
            }
        } else {
            st[item as usize] = ItemState::Suspended;
        }
    }

    /// Monte-Carlo expected adoption counts `(E[#A], E[#B])`.
    pub fn expected_adoptions(
        &self,
        seeds_a: &[NodeId],
        seeds_b: &[NodeId],
        sims: u32,
        seed: u64,
    ) -> (f64, f64) {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for s in 0..sims {
            let mut rng = UicRng::new(uic_util::split_seed(seed, s as u64));
            let out = self.run(seeds_a, seeds_b, &mut rng);
            sum_a += out.num_a() as f64;
            sum_b += out.num_b() as f64;
        }
        (sum_a / sims as f64, sum_b / sims as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn perfect_adoption_spreads_everywhere() {
        let g = path3();
        let gap = GapParams::new(1.0, 1.0, 1.0, 1.0);
        let sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(1));
        assert_eq!(out.adopters_a, vec![0, 1, 2]);
        assert!(out.adopters_b.is_empty());
    }

    #[test]
    fn seeds_always_adopt() {
        let g = path3();
        // q = 0 for spontaneous adoption — but seeds adopt outright.
        let gap = GapParams::new(0.0, 0.5, 0.0, 0.5);
        let sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[2], &mut UicRng::new(3));
        assert!(out.adopters_a.contains(&0));
        assert!(out.adopters_b.contains(&2));
    }

    #[test]
    fn q_alone_controls_adoption_rate() {
        // Node 1 gets informed of A through a deterministic edge; adoption
        // should happen with probability q_{A|∅} = 0.3.
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(0.3, 0.3, 0.3, 0.3);
        let sim = ComicSimulator::new(&g, gap);
        let (ea, _) = sim.expected_adoptions(&[0], &[], 40_000, 9);
        // E[#A] = 1 (seed) + 0.3.
        assert!((ea - 1.3).abs() < 0.02, "E[#A] = {ea}");
    }

    #[test]
    fn complementary_boost_via_reconsideration() {
        // Both items seeded at node 0, edge to node 1 deterministic.
        // Marginal adoption prob of each item at node 1 must be exactly
        // q_{X|Y'}-mixture; with q_alone = 0.2, q_given = 0.8 the joint
        // dynamics guarantee: P[adopt A] ∈ [q_alone, q_given].
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(0.2, 0.8, 0.2, 0.8);
        let sim = ComicSimulator::new(&g, gap);
        let (ea, eb) = sim.expected_adoptions(&[0], &[0], 60_000, 17);
        let pa = ea - 1.0; // node-1 adoption probability of A
        let pb = eb - 1.0;
        assert!(pa > 0.2 && pa < 0.8, "P[A at node1] = {pa}");
        assert!(pb > 0.2 && pb < 0.8, "P[B at node1] = {pb}");
        // Symmetric parameters ⇒ symmetric adoption.
        assert!((pa - pb).abs() < 0.02);
    }

    #[test]
    fn reconsideration_recovers_exact_conditional() {
        // With A guaranteed (q1 = 1 both ways): B's adoption at node 1
        // should equal q_{B|A} = 0.9 exactly, exercising the
        // reconsideration algebra when B arrives before A adoption is
        // processed in a different order.
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(1.0, 1.0, 0.3, 0.9);
        let sim = ComicSimulator::new(&g, gap);
        let (_, eb) = sim.expected_adoptions(&[0], &[0], 60_000, 23);
        let pb = eb - 1.0;
        assert!((pb - 0.9).abs() < 0.01, "P[B at node1] = {pb}");
    }

    #[test]
    fn no_propagation_without_adoption() {
        // q_{A|∅} = 0: node 1 never adopts, so node 2 is never informed.
        let g = path3();
        let gap = GapParams::new(0.0, 0.0, 0.0, 0.0);
        let sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(5));
        assert_eq!(out.adopters_a, vec![0]);
    }

    #[test]
    fn blocked_edges_stop_information() {
        let g = Graph::from_edges(2, &[(0, 1, 0.0)]);
        let gap = GapParams::new(1.0, 1.0, 1.0, 1.0);
        let sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(5));
        assert_eq!(out.adopters_a, vec![0]);
    }

    #[test]
    #[should_panic(expected = "complementary")]
    fn rejects_competitive_gaps() {
        let g = path3();
        ComicSimulator::new(&g, GapParams::new(0.8, 0.2, 0.5, 0.5));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let g = path3();
        let gap = GapParams::new(0.4, 0.9, 0.4, 0.9);
        let sim = ComicSimulator::new(&g, gap);
        let a = sim.run(&[0], &[2], &mut UicRng::new(77));
        let b = sim.run(&[0], &[2], &mut UicRng::new(77));
        assert_eq!(a.adopters_a, b.adopters_a);
        assert_eq!(a.adopters_b, b.adopters_b);
    }
}
