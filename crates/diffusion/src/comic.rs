//! The Com-IC model of Lu, Chen & Lakshmanan (two items, GAP parameters)
//! — the diffusion substrate of the RR-SIM+ / RR-CIM baselines
//! (§4.3.1.2–4.3.1.3 of the UIC paper).
//!
//! Node-level automaton (NLA) semantics for the mutually complementary
//! case (`q_{A|B} ≥ q_{A|∅}`):
//! * Information of an item travels over live edges (each edge's coin is
//!   flipped once per diffusion and shared by both items, as in Com-IC's
//!   possible-world model).
//! * When item `X`'s information first reaches a node, the node adopts
//!   with probability `q_{X|∅}` (other item not adopted) or `q_{X|Y}`
//!   (other item adopted); otherwise it becomes *suspended* on `X`.
//! * When the node later adopts the other item, a suspended `X` is
//!   **reconsidered** with probability `(q_{X|Y} − q_{X|∅})/(1 − q_{X|∅})`,
//!   which makes the overall adoption probability exactly `q_{X|Y}`.
//! * Only adopters propagate an item's information.
//!
//! Seeds adopt their seeded item outright (Com-IC's convention; the UIC
//! paper highlights as a *difference* that its own seeds are rational
//! utility maximizers).
//!
//! Like the UIC engine, per-cascade state is dense and epoch-stamped:
//! node automata live in an [`EpochMap`], edge coins in an
//! [`EdgeStatusCache`], so the Monte-Carlo estimator never allocates or
//! hashes inside a cascade.

use uic_graph::{Graph, NodeId};
use uic_items::GapParams;
use uic_util::{EdgeStatusCache, EpochMap, UicRng};

/// Adoption state of one item at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ItemState {
    /// Never informed.
    #[default]
    Idle,
    /// Informed but declined (may be reconsidered).
    Suspended,
    /// Adopted.
    Adopted,
}

/// Outcome of one Com-IC cascade.
#[derive(Debug, Clone, Default)]
pub struct ComicOutcome {
    /// Nodes that adopted item 1 ("A").
    pub adopters_a: Vec<NodeId>,
    /// Nodes that adopted item 2 ("B").
    pub adopters_b: Vec<NodeId>,
}

impl ComicOutcome {
    /// Nodes adopting item A.
    pub fn num_a(&self) -> usize {
        self.adopters_a.len()
    }

    /// Nodes adopting item B.
    pub fn num_b(&self) -> usize {
        self.adopters_b.len()
    }

    /// Total (node, item) adoptions.
    pub fn total(&self) -> usize {
        self.num_a() + self.num_b()
    }
}

/// Reusable Com-IC simulator; owns dense per-cascade scratch.
pub struct ComicSimulator<'a> {
    graph: &'a Graph,
    gap: GapParams,
    states: EpochMap<[ItemState; 2]>,
    coins: EdgeStatusCache,
    /// Nodes touched this cascade, in first-contact order.
    touched: Vec<NodeId>,
    frontier: Vec<(NodeId, u8)>,
    next: Vec<(NodeId, u8)>,
}

impl<'a> ComicSimulator<'a> {
    /// Simulator for graph `g` under GAP parameters `gap` (must be
    /// mutually complementary for the reconsideration rule to be valid).
    pub fn new(graph: &'a Graph, gap: GapParams) -> Self {
        assert!(
            gap.is_mutually_complementary(),
            "Com-IC complementary semantics require q_X|Y ≥ q_X|∅"
        );
        ComicSimulator {
            graph,
            gap,
            states: EpochMap::new(graph.num_nodes() as usize),
            coins: EdgeStatusCache::new(graph.num_edges()),
            touched: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Runs one cascade from per-item seed sets.
    pub fn run(
        &mut self,
        seeds_a: &[NodeId],
        seeds_b: &[NodeId],
        rng: &mut UicRng,
    ) -> ComicOutcome {
        let g = self.graph;
        self.states.reset();
        self.coins.reset();
        self.touched.clear();
        self.frontier.clear();
        self.next.clear();

        // Seeds adopt outright.
        for &v in seeds_a {
            let (st, fresh) = self.states.slot(v as usize);
            if st[0] != ItemState::Adopted {
                st[0] = ItemState::Adopted;
                self.frontier.push((v, 0));
            }
            if fresh {
                self.touched.push(v);
            }
        }
        for &v in seeds_b {
            let (st, fresh) = self.states.slot(v as usize);
            if st[1] != ItemState::Adopted {
                st[1] = ItemState::Adopted;
                self.frontier.push((v, 1));
            }
            if fresh {
                self.touched.push(v);
            }
        }

        while !self.frontier.is_empty() {
            self.next.clear();
            for fi in 0..self.frontier.len() {
                let (u, item) = self.frontier[fi];
                let nbrs = g.out_neighbors(u);
                let probs = g.out_arc_probs(u);
                let first_eid = g.out_edge_id(u, 0);
                for (i, &v) in nbrs.iter().enumerate() {
                    let live = self
                        .coins
                        .get_or_flip(first_eid + i, || rng.coin(probs.get(i) as f64));
                    if live {
                        Self::inform(
                            self.gap,
                            v,
                            item,
                            &mut self.states,
                            &mut self.touched,
                            &mut self.next,
                            rng,
                        );
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }

        let mut out = ComicOutcome::default();
        for &v in &self.touched {
            let st = self.states.get_or_default(v as usize);
            if st[0] == ItemState::Adopted {
                out.adopters_a.push(v);
            }
            if st[1] == ItemState::Adopted {
                out.adopters_b.push(v);
            }
        }
        out.adopters_a.sort_unstable();
        out.adopters_b.sort_unstable();
        out
    }

    /// Information of `item` arrives at `v`.
    #[allow(clippy::too_many_arguments)]
    fn inform(
        gap: GapParams,
        v: NodeId,
        item: u8,
        states: &mut EpochMap<[ItemState; 2]>,
        touched: &mut Vec<NodeId>,
        fresh_adopters: &mut Vec<(NodeId, u8)>,
        rng: &mut UicRng,
    ) {
        let (st, fresh) = states.slot(v as usize);
        if fresh {
            touched.push(v);
        }
        if st[item as usize] != ItemState::Idle {
            return; // informed before; decision already made (or adopted)
        }
        let other = 1 - item;
        let other_adopted = st[other as usize] == ItemState::Adopted;
        let q = match (item, other_adopted) {
            (0, false) => gap.q1_alone,
            (0, true) => gap.q1_given_2,
            (1, false) => gap.q2_alone,
            (1, true) => gap.q2_given_1,
            _ => unreachable!(),
        };
        if rng.coin(q) {
            st[item as usize] = ItemState::Adopted;
            fresh_adopters.push((v, item));
            // Reconsideration of a suspended complement.
            if st[other as usize] == ItemState::Suspended {
                let rho = if other == 0 {
                    gap.reconsider_1()
                } else {
                    gap.reconsider_2()
                };
                if rng.coin(rho) {
                    st[other as usize] = ItemState::Adopted;
                    fresh_adopters.push((v, other));
                }
            }
        } else {
            st[item as usize] = ItemState::Suspended;
        }
    }

    /// Monte-Carlo expected adoption counts `(E[#A], E[#B])`.
    pub fn expected_adoptions(
        &mut self,
        seeds_a: &[NodeId],
        seeds_b: &[NodeId],
        sims: u32,
        seed: u64,
    ) -> (f64, f64) {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for s in 0..sims {
            let mut rng = UicRng::new(uic_util::split_seed(seed, s as u64));
            let out = self.run(seeds_a, seeds_b, &mut rng);
            sum_a += out.num_a() as f64;
            sum_b += out.num_b() as f64;
        }
        (sum_a / sims as f64, sum_b / sims as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn perfect_adoption_spreads_everywhere() {
        let g = path3();
        let gap = GapParams::new(1.0, 1.0, 1.0, 1.0);
        let mut sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(1));
        assert_eq!(out.adopters_a, vec![0, 1, 2]);
        assert!(out.adopters_b.is_empty());
    }

    #[test]
    fn seeds_always_adopt() {
        let g = path3();
        // q = 0 for spontaneous adoption — but seeds adopt outright.
        let gap = GapParams::new(0.0, 0.5, 0.0, 0.5);
        let mut sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[2], &mut UicRng::new(3));
        assert!(out.adopters_a.contains(&0));
        assert!(out.adopters_b.contains(&2));
    }

    #[test]
    fn q_alone_controls_adoption_rate() {
        // Node 1 gets informed of A through a deterministic edge; adoption
        // should happen with probability q_{A|∅} = 0.3.
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(0.3, 0.3, 0.3, 0.3);
        let mut sim = ComicSimulator::new(&g, gap);
        let (ea, _) = sim.expected_adoptions(&[0], &[], 40_000, 9);
        // E[#A] = 1 (seed) + 0.3.
        assert!((ea - 1.3).abs() < 0.02, "E[#A] = {ea}");
    }

    #[test]
    fn complementary_boost_via_reconsideration() {
        // Both items seeded at node 0, edge to node 1 deterministic.
        // Marginal adoption prob of each item at node 1 must be exactly
        // q_{X|Y'}-mixture; with q_alone = 0.2, q_given = 0.8 the joint
        // dynamics guarantee: P[adopt A] ∈ [q_alone, q_given].
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(0.2, 0.8, 0.2, 0.8);
        let mut sim = ComicSimulator::new(&g, gap);
        let (ea, eb) = sim.expected_adoptions(&[0], &[0], 60_000, 17);
        let pa = ea - 1.0; // node-1 adoption probability of A
        let pb = eb - 1.0;
        assert!(pa > 0.2 && pa < 0.8, "P[A at node1] = {pa}");
        assert!(pb > 0.2 && pb < 0.8, "P[B at node1] = {pb}");
        // Symmetric parameters ⇒ symmetric adoption.
        assert!((pa - pb).abs() < 0.02);
    }

    #[test]
    fn reconsideration_recovers_exact_conditional() {
        // With A guaranteed (q1 = 1 both ways): B's adoption at node 1
        // should equal q_{B|A} = 0.9 exactly, exercising the
        // reconsideration algebra when B arrives before A adoption is
        // processed in a different order.
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let gap = GapParams::new(1.0, 1.0, 0.3, 0.9);
        let mut sim = ComicSimulator::new(&g, gap);
        let (_, eb) = sim.expected_adoptions(&[0], &[0], 60_000, 23);
        let pb = eb - 1.0;
        assert!((pb - 0.9).abs() < 0.01, "P[B at node1] = {pb}");
    }

    #[test]
    fn no_propagation_without_adoption() {
        // q_{A|∅} = 0: node 1 never adopts, so node 2 is never informed.
        let g = path3();
        let gap = GapParams::new(0.0, 0.0, 0.0, 0.0);
        let mut sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(5));
        assert_eq!(out.adopters_a, vec![0]);
    }

    #[test]
    fn blocked_edges_stop_information() {
        let g = Graph::from_edges(2, &[(0, 1, 0.0)]);
        let gap = GapParams::new(1.0, 1.0, 1.0, 1.0);
        let mut sim = ComicSimulator::new(&g, gap);
        let out = sim.run(&[0], &[], &mut UicRng::new(5));
        assert_eq!(out.adopters_a, vec![0]);
    }

    #[test]
    #[should_panic(expected = "complementary")]
    fn rejects_competitive_gaps() {
        let g = path3();
        ComicSimulator::new(&g, GapParams::new(0.8, 0.2, 0.5, 0.5));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let g = path3();
        let gap = GapParams::new(0.4, 0.9, 0.4, 0.9);
        let mut sim = ComicSimulator::new(&g, gap);
        let a = sim.run(&[0], &[2], &mut UicRng::new(77));
        let b = sim.run(&[0], &[2], &mut UicRng::new(77));
        assert_eq!(a.adopters_a, b.adopters_a);
        assert_eq!(a.adopters_b, b.adopters_b);
    }

    #[test]
    fn simulator_reuse_matches_fresh_runs() {
        let g = path3();
        let gap = GapParams::new(0.4, 0.9, 0.4, 0.9);
        let mut reused = ComicSimulator::new(&g, gap);
        for seed in 0..30u64 {
            let a = reused.run(&[0], &[2], &mut UicRng::new(seed));
            let b = ComicSimulator::new(&g, gap).run(&[0], &[2], &mut UicRng::new(seed));
            assert_eq!(a.adopters_a, b.adopters_a, "seed {seed}");
            assert_eq!(a.adopters_b, b.adopters_b, "seed {seed}");
        }
    }
}
