//! The unified result of a WelMax solver run.
//!
//! Every allocation algorithm in the workspace — bundleGRD, the six
//! baselines of §4.3.1.2, and the reference heuristics — reports its
//! output through one [`SolveReport`]: the produced [`Allocation`], the
//! RR-set cost counters (Table 6 / Fig. 6 metrics), wall-clock time
//! (Fig. 5/8 metric), and, once scored, the Monte-Carlo welfare
//! statistics (mean ± 95% CI) from
//! [`WelfareEstimator::estimate_stats`](crate::WelfareEstimator::estimate_stats).
//!
//! The report is produced in two stages: the algorithm fills the
//! allocation, counters, and timing; the `Allocator::solve` entry point
//! in `uic-core` then stamps the RNG seed, the per-item budget usage, and
//! the welfare statistics. `elapsed` always measures the *algorithm*
//! alone — welfare scoring is measurement, not solver cost.

use crate::allocation::Allocation;
use std::time::{Duration, Instant};
use uic_util::OnlineStats;

/// Unified output of one allocator run on a WelMax instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Registry key of the algorithm that produced this report
    /// (e.g. `"bundle-grd"`).
    pub algorithm: &'static str,
    /// The produced seed allocation `𝒮`.
    pub allocation: Allocation,
    /// Welfare sample statistics (mean, stderr, 95% CI); `None` until the
    /// report has been scored.
    pub welfare: Option<OnlineStats>,
    /// Wall-clock time of the algorithm itself (excludes welfare scoring).
    pub elapsed: Duration,
    /// RNG seed the run derived every stochastic choice from.
    pub seed: u64,
    /// Seeds actually spent per item (`|S_i^𝒮|`, indexed by item).
    pub budgets_used: Vec<u32>,
    /// RR sets held at the final node selection(s), summed over calls.
    pub rr_sets_final: usize,
    /// RR sets generated in total, including discarded phase-1 sets.
    pub rr_sets_total: u64,
}

impl SolveReport {
    /// A fresh, unscored report carrying only the allocation.
    pub fn new(algorithm: &'static str, allocation: Allocation) -> SolveReport {
        SolveReport {
            algorithm,
            allocation,
            welfare: None,
            elapsed: Duration::ZERO,
            seed: 0,
            budgets_used: Vec::new(),
            rr_sets_final: 0,
            rr_sets_total: 0,
        }
    }

    /// Attaches RR-set cost counters.
    pub fn with_rr_sets(mut self, rr_final: usize, rr_total: u64) -> SolveReport {
        self.rr_sets_final = rr_final;
        self.rr_sets_total = rr_total;
        self
    }

    /// Stamps `elapsed` with the time since `start`.
    pub fn with_elapsed_since(mut self, start: Instant) -> SolveReport {
        self.elapsed = start.elapsed();
        self
    }

    /// True once welfare statistics have been attached.
    pub fn is_scored(&self) -> bool {
        self.welfare.is_some()
    }

    /// The welfare sample statistics.
    ///
    /// # Panics
    /// When the report has not been scored (the raw algorithm wrappers
    /// return unscored reports; `Allocator::solve` scores them).
    pub fn welfare_stats(&self) -> &OnlineStats {
        self.welfare
            .as_ref()
            .expect("report is unscored: run it through Allocator::solve")
    }

    /// Estimated expected welfare `ρ̂(𝒮)` (the sample mean).
    pub fn welfare_mean(&self) -> f64 {
        self.welfare_stats().mean()
    }

    /// Half-width of the 95% confidence interval on the welfare mean.
    pub fn welfare_ci95(&self) -> f64 {
        self.welfare_stats().ci95_halfwidth()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let welfare = match &self.welfare {
            Some(s) => format!("{:.2} ± {:.2}", s.mean(), s.ci95_halfwidth()),
            None => "unscored".to_string(),
        };
        format!(
            "{}: welfare {}, {} seed nodes, {} RR sets, {:.1} ms",
            self.algorithm,
            welfare,
            self.allocation.num_seed_nodes(),
            self.rr_sets_final,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocation {
        Allocation::from_item_seeds(&[vec![1, 2], vec![2]])
    }

    #[test]
    fn builder_stages() {
        let start = Instant::now();
        let r = SolveReport::new("bundle-grd", alloc())
            .with_rr_sets(10, 25)
            .with_elapsed_since(start);
        assert_eq!(r.algorithm, "bundle-grd");
        assert_eq!(r.rr_sets_final, 10);
        assert_eq!(r.rr_sets_total, 25);
        assert!(!r.is_scored());
        assert_eq!(r.allocation.num_pairs(), 3);
    }

    #[test]
    fn scored_accessors() {
        let mut r = SolveReport::new("degree-top", alloc());
        let mut stats = OnlineStats::new();
        stats.push(1.0);
        stats.push(3.0);
        r.welfare = Some(stats);
        assert!(r.is_scored());
        assert_eq!(r.welfare_mean(), 2.0);
        assert!(r.welfare_ci95() > 0.0);
        assert!(r.summary().contains("degree-top"));
    }

    #[test]
    #[should_panic(expected = "unscored")]
    fn unscored_welfare_panics() {
        SolveReport::new("degree-top", alloc()).welfare_mean();
    }

    #[test]
    fn unscored_summary_reads_unscored() {
        let r = SolveReport::new("item-disj", alloc());
        assert!(r.summary().contains("unscored"));
    }
}
