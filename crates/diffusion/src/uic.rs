//! The **Utility-driven Independent Cascade** diffusion (Fig. 1 of the
//! paper).
//!
//! Semantics implemented literally:
//! 1. Noise is sampled once per diffusion (callers pass the resulting
//!    [`UtilityTable`]); utilities are then deterministic.
//! 2. At `t = 1` seeds desire their allocated itemsets and adopt the
//!    utility-maximizing subset (ties → larger sets).
//! 3. Each later step, every node that adopted something new tests its
//!    untested out-edges once (live w.p. `p(u,v)`, status remembered);
//!    live edges copy the *full* adoption set of the source into the
//!    target's desire set; targets then re-adopt
//!    `argmax { U(T) | A ⊆ T ⊆ R, U(T) ≥ 0 }`.
//! 4. The process is progressive — desire and adoption sets only grow —
//!    and stops when no adoption set changes.
//!
//! The actual cascade loop lives in [`crate::engine`]; this module keeps
//! the UIC-facing API ([`UicSimulator`], [`UicOutcome`], the one-shot
//! helpers) on top of it.

use crate::allocation::Allocation;
use crate::engine::CascadeState;
use crate::worlds::LiveEdgeWorld;
use uic_graph::{Graph, NodeId};
use uic_items::{ItemSet, UtilityTable};
use uic_util::UicRng;

/// Result of one UIC diffusion, in dense sorted-vector form.
///
/// Both vectors are sorted by node id, so point lookups are binary
/// searches and whole-outcome scans are cache-linear — the hash-map
/// representation this replaced was the dominant cost of small-cascade
/// Monte-Carlo loops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UicOutcome {
    /// Final adoption set `A^𝒮(v)` for every node that adopted something,
    /// sorted by node id.
    pub adoptions: Vec<(NodeId, ItemSet)>,
    /// Final desire set `R^𝒮(v)` for every node that was ever informed,
    /// sorted by node id.
    pub desires: Vec<(NodeId, ItemSet)>,
    /// Number of diffusion steps until quiescence.
    pub steps: u32,
}

impl UicOutcome {
    /// Social welfare of this world: `Σ_v U(A(v))` (Fig. 1 §3.3).
    pub fn welfare(&self, table: &UtilityTable) -> f64 {
        self.adoptions.iter().map(|&(_, a)| table.utility(a)).sum()
    }

    /// Number of nodes that adopted item `i`.
    pub fn adopters_of(&self, item: u32) -> usize {
        self.adoptions
            .iter()
            .filter(|(_, a)| a.contains(item))
            .count()
    }

    /// Total `(node, item)` adoption count (the multi-item "spread").
    pub fn total_adoptions(&self) -> usize {
        self.adoptions.iter().map(|&(_, a)| a.len() as usize).sum()
    }

    /// Number of nodes that adopted anything.
    pub fn num_adopters(&self) -> usize {
        self.adoptions.len()
    }

    /// Final adoption set of `v` (empty if `v` adopted nothing).
    pub fn adoption_of(&self, v: NodeId) -> ItemSet {
        match self.adoptions.binary_search_by_key(&v, |&(u, _)| u) {
            Ok(idx) => self.adoptions[idx].1,
            Err(_) => ItemSet::EMPTY,
        }
    }

    /// Final desire set of `v`, or `None` if `v` was never informed.
    pub fn desire_of(&self, v: NodeId) -> Option<ItemSet> {
        self.desires
            .binary_search_by_key(&v, |&(u, _)| u)
            .ok()
            .map(|idx| self.desires[idx].1)
    }

    /// Iterates the final adoption sets (of adopting nodes only).
    pub fn adoption_sets(&self) -> impl Iterator<Item = ItemSet> + '_ {
        self.adoptions.iter().map(|&(_, a)| a)
    }
}

/// Reusable simulator: owns the dense scratch state so Monte-Carlo loops
/// do not allocate per cascade (see [`crate::engine`]).
pub struct UicSimulator {
    state: CascadeState,
}

impl UicSimulator {
    /// Scratch sized for graph `g`.
    pub fn new(g: &Graph) -> UicSimulator {
        UicSimulator {
            state: CascadeState::new(g),
        }
    }

    /// Runs one diffusion with lazy edge sampling.
    pub fn run(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        rng: &mut UicRng,
    ) -> UicOutcome {
        self.state.run_lazy(g, allocation, table, rng)
    }

    /// Runs one diffusion in a fixed live-edge world (deterministic).
    pub fn run_in_world(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        table: &UtilityTable,
        world: &LiveEdgeWorld,
    ) -> UicOutcome {
        self.state.run_world(g, allocation, table, world)
    }
}

/// One-shot UIC diffusion with lazy edge sampling.
pub fn simulate_uic(
    g: &Graph,
    allocation: &Allocation,
    table: &UtilityTable,
    rng: &mut UicRng,
) -> UicOutcome {
    UicSimulator::new(g).run(g, allocation, table, rng)
}

/// One-shot UIC diffusion in a fixed live-edge world.
pub fn simulate_uic_in_world(
    g: &Graph,
    allocation: &Allocation,
    table: &UtilityTable,
    world: &LiveEdgeWorld,
) -> UicOutcome {
    UicSimulator::new(g).run_in_world(g, allocation, table, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::enumerate_edge_worlds;

    /// The Fig. 2 scenario: three nodes, edges v1→v2, v1→v3, v2→v3.
    /// Items: U(i1) > 0, U(i2) < 0, U({i1,i2}) > U(i1).
    fn fig2_graph() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5)])
    }

    fn fig2_table() -> UtilityTable {
        UtilityTable::from_values(2, vec![0.0, 0.1, -0.5, 0.6])
    }

    fn fig2_allocation() -> Allocation {
        let mut a = Allocation::new();
        a.assign(0, 0); // v1 seeded with i1
        a.assign(2, 1); // v3 seeded with i2
        a
    }

    #[test]
    fn figure2_walkthrough_exact_world() {
        // Replicate the exact world of Fig. 2: (v1,v2) live, (v1,v3)
        // blocked, (v2,v3) live. Edge ids by source: v1's edges are 0,1
        // in neighbor order (1 then 2), v2's edge is 2.
        let g = fig2_graph();
        let table = fig2_table();
        // edge 0 = (0→1) live, edge 1 = (0→2) blocked, edge 2 = (1→2) live
        let world = LiveEdgeWorld::from_mask(&g, 0b101);
        let out = simulate_uic_in_world(&g, &fig2_allocation(), &table, &world);
        assert_eq!(out.adoption_of(0), ItemSet::singleton(0), "v1 adopts i1");
        assert_eq!(out.adoption_of(1), ItemSet::singleton(0), "v2 adopts i1");
        assert_eq!(
            out.adoption_of(2),
            ItemSet::full(2),
            "v3 adopts {{i1,i2}} (desired i2 from seeding, i1 via v2)"
        );
        // Welfare: 0.1 + 0.1 + 0.6 = 0.8.
        assert!((out.welfare(&table) - 0.8).abs() < 1e-12);
        assert_eq!(out.adopters_of(0), 3);
        assert_eq!(out.adopters_of(1), 1);
        assert_eq!(out.num_adopters(), 3);
    }

    #[test]
    fn seed_does_not_adopt_negative_item_but_keeps_desire() {
        let g = fig2_graph();
        let table = fig2_table();
        let world = LiveEdgeWorld::from_mask(&g, 0b000); // nothing live
        let out = simulate_uic_in_world(&g, &fig2_allocation(), &table, &world);
        assert_eq!(out.adoption_of(2), ItemSet::EMPTY);
        assert_eq!(out.desire_of(2), Some(ItemSet::singleton(1)));
        assert_eq!(out.desire_of(1), None, "v2 was never informed");
        assert!((out.welfare(&table) - 0.1).abs() < 1e-12, "only v1's i1");
    }

    #[test]
    fn seed_adopts_profitable_subset_of_allocation() {
        // A seed given both items adopts the pair (supermodular boost).
        let g = Graph::from_edges(1, &[]);
        let table = fig2_table();
        let mut a = Allocation::new();
        a.assign(0, 0);
        a.assign(0, 1);
        let mut rng = UicRng::new(1);
        let out = simulate_uic(&g, &a, &table, &mut rng);
        assert_eq!(out.adoption_of(0), ItemSet::full(2));
    }

    #[test]
    fn seed_adopts_only_profitable_item_when_pair_is_bad() {
        // U(i1)=1, U(i2)=−2, U(both)=−0.5: adopt {i1} only.
        let table = UtilityTable::from_values(2, vec![0.0, 1.0, -2.0, -0.5]);
        let g = Graph::from_edges(1, &[]);
        let mut a = Allocation::new();
        a.assign(0, 0);
        a.assign(0, 1);
        let mut rng = UicRng::new(1);
        let out = simulate_uic(&g, &a, &table, &mut rng);
        assert_eq!(out.adoption_of(0), ItemSet::singleton(0));
    }

    #[test]
    fn reachability_lemma_holds_in_every_world() {
        // Lemma 3: if u adopts i in world W, every node reachable from u
        // in W adopts i. Check on all worlds of the Fig. 2 instance.
        let g = fig2_graph();
        let table = fig2_table();
        let alloc = fig2_allocation();
        for (world, _) in enumerate_edge_worlds(&g) {
            let out = simulate_uic_in_world(&g, &alloc, &table, &world);
            for &(u, a_u) in &out.adoptions {
                for v in world.reachable(&g, &[u]) {
                    let a_v = out.adoption_of(v);
                    assert!(
                        a_u.is_subset_of(a_v),
                        "node {v} reachable from {u} misses items {:?}",
                        a_u.minus(a_v)
                    );
                }
            }
        }
    }

    #[test]
    fn welfare_is_monotone_per_world() {
        // Theorem 1's per-world monotonicity: adding allocation pairs
        // never decreases welfare in any fixed world.
        let g = fig2_graph();
        let table = fig2_table();
        let small = fig2_allocation();
        let mut large = small.clone();
        large.assign(1, 1); // extra pair (v2, i2)
        for (world, _) in enumerate_edge_worlds(&g) {
            let w_small = simulate_uic_in_world(&g, &small, &table, &world).welfare(&table);
            let w_large = simulate_uic_in_world(&g, &large, &table, &world).welfare(&table);
            assert!(
                w_large >= w_small - 1e-12,
                "welfare dropped {w_small} → {w_large}"
            );
        }
    }

    #[test]
    fn adoption_sets_are_local_maxima_everywhere() {
        // Lemma 2 at the end of diffusion.
        let g = fig2_graph();
        let table = fig2_table();
        let alloc = fig2_allocation();
        for (world, _) in enumerate_edge_worlds(&g) {
            let out = simulate_uic_in_world(&g, &alloc, &table, &world);
            for &(v, a) in &out.adoptions {
                assert!(table.is_local_maximum(a), "node {v}: {a} not local max");
            }
        }
    }

    #[test]
    fn lazy_simulation_is_deterministic_per_seed() {
        let g = fig2_graph();
        let table = fig2_table();
        let alloc = fig2_allocation();
        let w1 = simulate_uic(&g, &alloc, &table, &mut UicRng::new(5)).welfare(&table);
        let w2 = simulate_uic(&g, &alloc, &table, &mut UicRng::new(5)).welfare(&table);
        assert_eq!(w1, w2);
    }

    #[test]
    fn empty_allocation_produces_zero_welfare() {
        let g = fig2_graph();
        let table = fig2_table();
        let mut rng = UicRng::new(1);
        let out = simulate_uic(&g, &Allocation::new(), &table, &mut rng);
        assert_eq!(out.welfare(&table), 0.0);
        assert_eq!(out.total_adoptions(), 0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn simulator_reuse_matches_fresh_runs() {
        let g = fig2_graph();
        let table = fig2_table();
        let alloc = fig2_allocation();
        let mut sim = UicSimulator::new(&g);
        for seed in 0..20u64 {
            let mut r1 = UicRng::new(seed);
            let mut r2 = UicRng::new(seed);
            let reused = sim.run(&g, &alloc, &table, &mut r1);
            let fresh = simulate_uic(&g, &alloc, &table, &mut r2);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn multi_hop_bundle_completion() {
        // Chain 0→1→2 (p=1). Seed 0 with i1, seed 2 with i2 where i2
        // needs i1 to be profitable. i1 flows down and completes the
        // bundle at node 2.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let table = UtilityTable::from_values(2, vec![0.0, 0.5, -0.2, 1.5]);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(2, 1);
        let mut rng = UicRng::new(3);
        let out = simulate_uic(&g, &alloc, &table, &mut rng);
        assert_eq!(out.adoption_of(0), ItemSet::singleton(0));
        assert_eq!(out.adoption_of(1), ItemSet::singleton(0));
        assert_eq!(out.adoption_of(2), ItemSet::full(2));
    }
}
