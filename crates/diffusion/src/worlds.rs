//! Live-edge possible worlds `W^E` (§4.1.1).
//!
//! A live-edge world fixes the outcome of every edge coin: edge `(u,v)` is
//! *live* with probability `p(u,v)`, *blocked* otherwise. Diffusion in a
//! fixed world is deterministic; the IC spread is the expected number of
//! nodes reachable from the seeds over the world distribution (the
//! live-edge characterization used throughout the paper's proofs).

use uic_graph::{Graph, NodeId};
use uic_util::{BitSet, UicRng, VisitTags};

/// A sampled (or enumerated) live-edge world: one bit per edge, indexed by
/// the graph's global out-edge id.
#[derive(Debug, Clone)]
pub struct LiveEdgeWorld {
    live: BitSet,
}

impl LiveEdgeWorld {
    /// Samples a world by flipping every edge coin.
    pub fn sample(g: &Graph, rng: &mut UicRng) -> LiveEdgeWorld {
        let mut live = BitSet::new(g.num_edges());
        for u in 0..g.num_nodes() {
            let probs = g.out_arc_probs(u);
            for (i, p) in probs.iter().enumerate() {
                if rng.coin(p as f64) {
                    live.insert(g.out_edge_id(u, i));
                }
            }
        }
        LiveEdgeWorld { live }
    }

    /// Builds a world from an explicit edge-liveness mask (enumeration).
    pub fn from_mask(g: &Graph, mask: u64) -> LiveEdgeWorld {
        assert!(g.num_edges() <= 64, "mask enumeration limited to 64 edges");
        let mut live = BitSet::new(g.num_edges());
        for e in 0..g.num_edges() {
            if mask >> e & 1 == 1 {
                live.insert(e);
            }
        }
        LiveEdgeWorld { live }
    }

    /// Is the `i`-th out-edge of `u` live?
    #[inline]
    pub fn is_live(&self, g: &Graph, u: NodeId, i: usize) -> bool {
        self.live.contains(g.out_edge_id(u, i))
    }

    /// Is the edge with global id `edge_id` live? Reverse traversals pair
    /// this with [`Graph::in_edge_ids`], which exposes exactly these ids.
    #[inline]
    pub fn is_live_id(&self, edge_id: usize) -> bool {
        self.live.contains(edge_id)
    }

    /// Number of live edges.
    pub fn num_live(&self) -> usize {
        self.live.count()
    }

    /// Deterministic forward reachability from `sources` along live edges
    /// (`Γ(S, W^E)` in the paper's notation). Returns the reached nodes.
    pub fn reachable(&self, g: &Graph, sources: &[NodeId]) -> Vec<NodeId> {
        let mut tags = VisitTags::new(g.num_nodes() as usize);
        let mut queue: Vec<NodeId> = Vec::new();
        for &s in sources {
            if tags.mark(s as usize) {
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for (i, &v) in g.out_neighbors(u).iter().enumerate() {
                if self.is_live(g, u, i) && tags.mark(v as usize) {
                    queue.push(v);
                }
            }
        }
        queue
    }
}

/// Enumerates **all** `2^m` live-edge worlds of a tiny graph together with
/// their probabilities (Π live `p` · Π blocked `(1−p)`). Panics if the
/// graph has more than 20 edges. Powers the exact spread/welfare used to
/// validate the Monte-Carlo estimators and the paper's lemmas.
pub fn enumerate_edge_worlds(g: &Graph) -> Vec<(LiveEdgeWorld, f64)> {
    let m = g.num_edges();
    assert!(m <= 20, "exact enumeration limited to 20 edges, got {m}");
    let edge_probs: Vec<f64> = {
        let mut ps = vec![0.0f64; m];
        for u in 0..g.num_nodes() {
            for (i, p) in g.out_arc_probs(u).iter().enumerate() {
                ps[g.out_edge_id(u, i)] = p as f64;
            }
        }
        ps
    };
    let mut out = Vec::with_capacity(1 << m);
    for mask in 0..(1u64 << m) {
        let mut prob = 1.0f64;
        for (e, &p) in edge_probs.iter().enumerate() {
            prob *= if mask >> e & 1 == 1 { p } else { 1.0 - p };
        }
        if prob > 0.0 {
            out.push((LiveEdgeWorld::from_mask(g, mask), prob));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)])
    }

    #[test]
    fn sampled_world_respects_determinism() {
        let g = path3();
        let a = LiveEdgeWorld::sample(&g, &mut UicRng::new(7));
        let b = LiveEdgeWorld::sample(&g, &mut UicRng::new(7));
        assert_eq!(a.num_live(), b.num_live());
        for u in 0..3u32 {
            for i in 0..g.out_degree(u) {
                assert_eq!(a.is_live(&g, u, i), b.is_live(&g, u, i));
            }
        }
    }

    #[test]
    fn all_or_nothing_probabilities() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let w = LiveEdgeWorld::sample(&g, &mut UicRng::new(1));
        assert!(w.is_live(&g, 0, 0));
        let g0 = Graph::from_edges(2, &[(0, 1, 0.0)]);
        let w0 = LiveEdgeWorld::sample(&g0, &mut UicRng::new(1));
        assert!(!w0.is_live(&g0, 0, 0));
    }

    #[test]
    fn reachability_in_fixed_world() {
        let g = path3();
        // world with only edge 0→1 live (edge ids: 0 for (0,1), 1 for (1,2))
        let w = LiveEdgeWorld::from_mask(&g, 0b01);
        let r = w.reachable(&g, &[0]);
        assert_eq!(r, vec![0, 1]);
        let w_all = LiveEdgeWorld::from_mask(&g, 0b11);
        assert_eq!(w_all.reachable(&g, &[0]).len(), 3);
        let w_none = LiveEdgeWorld::from_mask(&g, 0b00);
        assert_eq!(w_none.reachable(&g, &[0]), vec![0]);
    }

    #[test]
    fn enumeration_probabilities_sum_to_one() {
        let g = path3();
        let worlds = enumerate_edge_worlds(&g);
        assert_eq!(worlds.len(), 4);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_drops_impossible_worlds() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        let worlds = enumerate_edge_worlds(&g);
        assert_eq!(worlds.len(), 1, "blocked world has probability 0");
        assert!(worlds[0].0.is_live(&g, 0, 0));
    }

    #[test]
    fn expected_reach_matches_hand_computation() {
        // σ({0}) on 0→1→2 with p=0.5 each: 1 + 0.5 + 0.25 = 1.75.
        let g = path3();
        let sigma: f64 = enumerate_edge_worlds(&g)
            .iter()
            .map(|(w, p)| p * w.reachable(&g, &[0]).len() as f64)
            .sum();
        assert!((sigma - 1.75).abs() < 1e-12);
    }
}
