//! Seed allocations `𝒮 ⊆ V × I` (§3.2.1 of the paper).
//!
//! An allocation maps seed nodes to the itemsets they are seeded with,
//! subject to per-item budgets: item `i` may be assigned to at most `b_i`
//! nodes. [`Allocation`] stores the node→itemset view (what the UIC
//! simulator consumes) and offers the item→nodes view (what seed-selection
//! algorithms produce).

use uic_graph::NodeId;
use uic_items::ItemSet;
use uic_util::FxHashMap;

/// A seed allocation: a set of `(node, item)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Allocation {
    per_node: FxHashMap<NodeId, ItemSet>,
}

impl Allocation {
    /// The empty allocation.
    pub fn new() -> Allocation {
        Allocation::default()
    }

    /// Builds from per-item seed lists: `item_seeds[i]` are the seed nodes
    /// of item `i` (the output shape of bundleGRD and all baselines).
    pub fn from_item_seeds(item_seeds: &[Vec<NodeId>]) -> Allocation {
        let mut a = Allocation::new();
        for (i, seeds) in item_seeds.iter().enumerate() {
            for &v in seeds {
                a.assign(v, i as u32);
            }
        }
        a
    }

    /// Adds the pair `(v, item)`.
    pub fn assign(&mut self, v: NodeId, item: u32) {
        let entry = self.per_node.entry(v).or_insert(ItemSet::EMPTY);
        *entry = entry.with(item);
    }

    /// Adds `(v, i)` for every `i ∈ items`.
    pub fn assign_set(&mut self, v: NodeId, items: ItemSet) {
        if items.is_empty() {
            return;
        }
        let entry = self.per_node.entry(v).or_insert(ItemSet::EMPTY);
        *entry = entry.union(items);
    }

    /// Itemset allocated to `v` (`I_v^𝒮`); empty if `v` is not a seed.
    pub fn items_of(&self, v: NodeId) -> ItemSet {
        self.per_node.get(&v).copied().unwrap_or(ItemSet::EMPTY)
    }

    /// All seed nodes `S^𝒮` with their itemsets, in unspecified order.
    pub fn seeds(&self) -> impl Iterator<Item = (NodeId, ItemSet)> + '_ {
        self.per_node.iter().map(|(&v, &s)| (v, s))
    }

    /// Seed nodes of a specific item (`S_i^𝒮`), sorted by node id.
    pub fn seeds_of_item(&self, item: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .per_node
            .iter()
            .filter(|(_, s)| s.contains(item))
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct seed nodes.
    pub fn num_seed_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Total number of `(node, item)` pairs.
    pub fn num_pairs(&self) -> usize {
        self.per_node.values().map(|s| s.len() as usize).sum()
    }

    /// Count of seeds per item, sized by `num_items`.
    pub fn budgets_used(&self, num_items: u32) -> Vec<u32> {
        let mut used = vec![0u32; num_items as usize];
        for s in self.per_node.values() {
            for i in s.iter() {
                used[i as usize] += 1;
            }
        }
        used
    }

    /// Checks the budget constraint `|S_i^𝒮| ≤ b_i` for every item.
    pub fn respects_budgets(&self, budgets: &[u32]) -> bool {
        let used = self.budgets_used(budgets.len() as u32);
        used.iter().zip(budgets).all(|(&u, &b)| u <= b)
    }

    /// Union of this allocation with another (used to form `𝒮 ∪ {(v,i)}`
    /// style composites in tests of monotonicity).
    pub fn union(&self, other: &Allocation) -> Allocation {
        let mut out = self.clone();
        for (v, s) in other.seeds() {
            out.assign_set(v, s);
        }
        out
    }

    /// True when no pairs are allocated.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut a = Allocation::new();
        a.assign(5, 0);
        a.assign(5, 2);
        a.assign(9, 0);
        assert_eq!(a.items_of(5), ItemSet::from_items(&[0, 2]));
        assert_eq!(a.items_of(9), ItemSet::singleton(0));
        assert_eq!(a.items_of(1), ItemSet::EMPTY);
        assert_eq!(a.num_seed_nodes(), 2);
        assert_eq!(a.num_pairs(), 3);
    }

    #[test]
    fn from_item_seeds_inverts_to_seeds_of_item() {
        let a = Allocation::from_item_seeds(&[vec![1, 2, 3], vec![2, 4]]);
        assert_eq!(a.seeds_of_item(0), vec![1, 2, 3]);
        assert_eq!(a.seeds_of_item(1), vec![2, 4]);
        assert_eq!(a.items_of(2), ItemSet::from_items(&[0, 1]));
    }

    #[test]
    fn budgets_used_and_validation() {
        let a = Allocation::from_item_seeds(&[vec![1, 2], vec![3]]);
        assert_eq!(a.budgets_used(2), vec![2, 1]);
        assert!(a.respects_budgets(&[2, 1]));
        assert!(a.respects_budgets(&[5, 5]));
        assert!(!a.respects_budgets(&[1, 1]));
    }

    #[test]
    fn duplicate_assignment_is_idempotent() {
        let mut a = Allocation::new();
        a.assign(1, 0);
        a.assign(1, 0);
        assert_eq!(a.num_pairs(), 1);
        assert_eq!(a.budgets_used(1), vec![1]);
    }

    #[test]
    fn union_merges() {
        let a = Allocation::from_item_seeds(&[vec![1], vec![]]);
        let b = Allocation::from_item_seeds(&[vec![2], vec![1]]);
        let u = a.union(&b);
        assert_eq!(u.items_of(1), ItemSet::from_items(&[0, 1]));
        assert_eq!(u.items_of(2), ItemSet::singleton(0));
        assert_eq!(u.num_pairs(), 3);
    }

    #[test]
    fn assign_empty_set_is_noop() {
        let mut a = Allocation::new();
        a.assign_set(3, ItemSet::EMPTY);
        assert!(a.is_empty());
    }
}
