//! UIC with **personalized noise** — the §5 extension ("Orthogonally, we
//! can study the UIC model under personalized noise terms").
//!
//! In the base model a single noise world is sampled per diffusion and
//! shared by the whole population (§3.2.3), which perfectly correlates
//! adoption decisions across users. Here every user draws her *own*
//! noise vector on first contact, modeling individual (not population)
//! uncertainty. The paper notes the `(1 − 1/e − ε)` bound is **not**
//! claimed in this regime; the simulator exists so the conjecture can be
//! studied empirically (see the ablation experiment).
//!
//! Implementation notes: per-node noise is derived deterministically from
//! `(diffusion seed, node id)`, so simulations remain replayable; since
//! there is no shared utility table, adoption decisions evaluate
//! `V(T) − P(T) + N_v(T)` directly over the (small) candidate subsets,
//! memoized per `(node, desire, adopted)`.

use crate::allocation::Allocation;
use uic_graph::{Graph, NodeId};
use uic_items::{ItemSet, UtilityModel};
use uic_util::{split_seed, FxHashMap, OnlineStats, UicRng};

/// Outcome of one personalized-noise UIC diffusion.
#[derive(Debug, Clone, Default)]
pub struct PersonalizedOutcome {
    /// Final adoption set per adopting node.
    pub adoptions: FxHashMap<NodeId, ItemSet>,
    /// Realized utility earned at each adopting node (its own noise).
    pub node_welfare: FxHashMap<NodeId, f64>,
}

impl PersonalizedOutcome {
    /// Social welfare of this run: `Σ_v U_v(A(v))`.
    pub fn welfare(&self) -> f64 {
        self.node_welfare.values().sum()
    }

    /// Total `(node, item)` adoptions.
    pub fn total_adoptions(&self) -> usize {
        self.adoptions.values().map(|a| a.len() as usize).sum()
    }
}

/// Per-node state during a personalized diffusion.
struct NodeState {
    desire: ItemSet,
    adopted: ItemSet,
    /// This node's realized noise per item.
    noise: Vec<f64>,
}

/// Runs one UIC diffusion where every node samples its own noise vector
/// on first contact. `noise_seed` controls all per-node draws; `rng`
/// drives the edge coins (mirroring the base simulator's split between
/// noise world and edge world).
pub fn simulate_uic_personalized(
    g: &Graph,
    allocation: &Allocation,
    model: &UtilityModel,
    noise_seed: u64,
    rng: &mut UicRng,
) -> PersonalizedOutcome {
    let num_items = model.num_items() as usize;
    let mut states: FxHashMap<NodeId, NodeState> = FxHashMap::default();
    let mut edge_cache: FxHashMap<usize, bool> = FxHashMap::default();
    let mut decision_memo: FxHashMap<(NodeId, u32, u32), ItemSet> = FxHashMap::default();

    let fresh_state = |v: NodeId| -> NodeState {
        let mut node_rng = UicRng::new(split_seed(noise_seed, v as u64));
        let noise: Vec<f64> = (0..num_items)
            .map(|i| model.noise().dist(i as u32).sample(&mut node_rng))
            .collect();
        NodeState {
            desire: ItemSet::EMPTY,
            adopted: ItemSet::EMPTY,
            noise,
        }
    };

    // The personalized adoption decision: enumerate supersets of
    // `adopted` inside `desire`, maximizing V − P + N_v with the
    // larger-cardinality (union) tie-break.
    let decide = |state: &NodeState,
                  v: NodeId,
                  memo: &mut FxHashMap<(NodeId, u32, u32), ItemSet>|
     -> ItemSet {
        let key = (v, state.desire.mask(), state.adopted.mask());
        if let Some(&t) = memo.get(&key) {
            return t;
        }
        let util = |s: ItemSet| -> f64 {
            model.deterministic_utility(s) + s.iter().map(|i| state.noise[i as usize]).sum::<f64>()
        };
        let free = state.desire.minus(state.adopted);
        let mut best = f64::NEG_INFINITY;
        let mut best_union = ItemSet::EMPTY;
        for x in free.subsets() {
            let t = state.adopted.union(x);
            let u = util(t);
            if u > best + 1e-9 {
                best = u;
                best_union = t;
            } else if (u - best).abs() <= 1e-9 {
                best_union = best_union.union(t);
            }
        }
        let result = if best < 0.0 {
            state.adopted
        } else {
            best_union
        };
        memo.insert(key, result);
        result
    };

    let mut frontier: Vec<NodeId> = Vec::new();
    for (v, items) in allocation.seeds() {
        if items.is_empty() {
            continue;
        }
        let mut st = fresh_state(v);
        st.desire = items;
        st.adopted = decide(&st, v, &mut decision_memo);
        let adopted_something = !st.adopted.is_empty();
        states.insert(v, st);
        if adopted_something {
            frontier.push(v);
        }
    }

    let mut next: Vec<NodeId> = Vec::new();
    let mut touched: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        touched.clear();
        for &u in &frontier {
            let a_u = states.get(&u).map(|s| s.adopted).unwrap_or(ItemSet::EMPTY);
            let nbrs = g.out_neighbors(u);
            let probs = g.out_probs(u);
            for (i, &v) in nbrs.iter().enumerate() {
                let eid = g.out_edge_id(u, i);
                let live = *edge_cache
                    .entry(eid)
                    .or_insert_with(|| rng.coin(probs[i] as f64));
                if !live {
                    continue;
                }
                let st = states.entry(v).or_insert_with(|| fresh_state(v));
                let grown = a_u.minus(st.desire);
                if !grown.is_empty() {
                    st.desire = st.desire.union(a_u);
                    touched.push(v);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        next.clear();
        for &v in &touched {
            let (desire, adopted, decision) = {
                let st = states.get(&v).expect("touched node has state");
                (st.desire, st.adopted, decide(st, v, &mut decision_memo))
            };
            let _ = desire;
            if decision != adopted {
                states.get_mut(&v).unwrap().adopted = decision;
                next.push(v);
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }

    let mut out = PersonalizedOutcome::default();
    for (&v, st) in &states {
        if st.adopted.is_empty() {
            continue;
        }
        let u = model.deterministic_utility(st.adopted)
            + st.adopted.iter().map(|i| st.noise[i as usize]).sum::<f64>();
        out.adoptions.insert(v, st.adopted);
        out.node_welfare.insert(v, u);
    }
    out
}

/// Monte-Carlo expected welfare under personalized noise.
pub fn personalized_welfare_mc(
    g: &Graph,
    allocation: &Allocation,
    model: &UtilityModel,
    sims: u32,
    seed: u64,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for s in 0..sims {
        let world_seed = split_seed(seed, s as u64);
        let mut rng = UicRng::new(split_seed(world_seed, u64::MAX));
        let out = simulate_uic_personalized(g, allocation, model, world_seed, &mut rng);
        stats.push(out.welfare());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_items::{NoiseDistribution, NoiseModel, Price, TableValuation};

    fn chain2() -> Graph {
        Graph::from_edges(2, &[(0, 1, 1.0)])
    }

    fn model(noise_var: f64) -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
            Price::additive(vec![3.0, 4.0]),
            NoiseModel::new(vec![
                NoiseDistribution::gaussian_var(noise_var),
                NoiseDistribution::gaussian_var(noise_var),
            ]),
        )
    }

    #[test]
    fn zero_noise_matches_base_simulator() {
        let g = chain2();
        let m = model(0.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let table = m.deterministic_table();
        for seed in 0..20u64 {
            let mut r1 = UicRng::new(seed);
            let mut r2 = UicRng::new(seed);
            let base = crate::uic::simulate_uic(&g, &alloc, &table, &mut r1);
            let pers = simulate_uic_personalized(&g, &alloc, &m, 99, &mut r2);
            assert_eq!(
                base.total_adoptions(),
                pers.total_adoptions(),
                "seed {seed}"
            );
            assert!((base.welfare(&table) - pers.welfare()).abs() < 1e-9);
        }
    }

    #[test]
    fn personalized_noise_decorrelates_adoptions() {
        // Two-node chain, deterministic edge, single item with
        // E[U] = 0 and N(0,1) noise: population noise gives downstream
        // adoption rate q = 0.5 (perfect correlation with the seed);
        // personalized noise gives q² = 0.25.
        let g = chain2();
        let m = UtilityModel::new(
            Arc::new(TableValuation::from_table(1, vec![0.0, 3.0])),
            Price::additive(vec![3.0]),
            NoiseModel::new(vec![NoiseDistribution::gaussian_var(1.0)]),
        );
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        let sims = 30_000u32;
        let mut downstream = 0u32;
        for s in 0..sims {
            let world_seed = split_seed(7, s as u64);
            let mut rng = UicRng::new(split_seed(world_seed, u64::MAX));
            let out = simulate_uic_personalized(&g, &alloc, &m, world_seed, &mut rng);
            if out.adoptions.contains_key(&1) {
                downstream += 1;
            }
        }
        let rate = downstream as f64 / sims as f64;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "personalized downstream rate {rate}, expected ≈ 0.25"
        );
    }

    #[test]
    fn per_node_noise_is_deterministic_per_seed() {
        let g = chain2();
        let m = model(1.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let run = |seed: u64| {
            let mut rng = UicRng::new(123);
            simulate_uic_personalized(&g, &alloc, &m, seed, &mut rng).welfare()
        };
        assert_eq!(run(5), run(5));
        // Different noise seeds generally differ.
        let all_same = (0..10u64).map(run).all(|w| (w - run(0)).abs() < 1e-12);
        assert!(!all_same, "noise seed should matter");
    }

    #[test]
    fn welfare_mc_is_finite_and_seeded() {
        let g = chain2();
        let m = model(1.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let a = personalized_welfare_mc(&g, &alloc, &m, 500, 3);
        let b = personalized_welfare_mc(&g, &alloc, &m, 500, 3);
        assert_eq!(a.mean(), b.mean());
        assert!(a.mean().is_finite());
        assert_eq!(a.count(), 500);
    }

    #[test]
    fn seeds_with_nothing_allocated_do_not_panic() {
        let g = chain2();
        let m = model(1.0);
        let out = simulate_uic_personalized(&g, &Allocation::new(), &m, 1, &mut UicRng::new(1));
        assert_eq!(out.welfare(), 0.0);
    }
}
