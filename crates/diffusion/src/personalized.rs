//! UIC with **personalized noise** — the §5 extension ("Orthogonally, we
//! can study the UIC model under personalized noise terms").
//!
//! In the base model a single noise world is sampled per diffusion and
//! shared by the whole population (§3.2.3), which perfectly correlates
//! adoption decisions across users. Here every user draws her *own*
//! noise vector on first contact, modeling individual (not population)
//! uncertainty. The paper notes the `(1 − 1/e − ε)` bound is **not**
//! claimed in this regime; the simulator exists so the conjecture can be
//! studied empirically (see the ablation experiment).
//!
//! Implementation notes: per-node noise is derived deterministically from
//! `(diffusion seed, node id)`, so simulations remain replayable; since
//! there is no shared utility table, adoption decisions evaluate
//! `V(T) − P(T) + N_v(T)` directly over the (small) candidate subsets.
//! Per-cascade state is dense and epoch-stamped like the base engine:
//! `(desire, adopted)` pairs in an [`EpochMap`], realized noise in a flat
//! `n × |I|` array, and edge coins in an [`EdgeStatusCache`] — no hashing
//! or allocation inside the cascade loop.

use crate::allocation::Allocation;
use uic_graph::{Graph, NodeId};
use uic_items::{ItemSet, UtilityModel};
use uic_util::{split_seed, EdgeStatusCache, EpochMap, OnlineStats, UicRng, VisitTags};

/// Outcome of one personalized-noise UIC diffusion, sorted by node id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersonalizedOutcome {
    /// Final adoption set per adopting node, sorted by node id.
    pub adoptions: Vec<(NodeId, ItemSet)>,
    /// Realized utility earned at each adopting node (its own noise),
    /// parallel to `adoptions`.
    pub node_welfare: Vec<(NodeId, f64)>,
}

impl PersonalizedOutcome {
    /// Social welfare of this run: `Σ_v U_v(A(v))`.
    pub fn welfare(&self) -> f64 {
        self.node_welfare.iter().map(|&(_, w)| w).sum()
    }

    /// Total `(node, item)` adoptions.
    pub fn total_adoptions(&self) -> usize {
        self.adoptions.iter().map(|&(_, a)| a.len() as usize).sum()
    }

    /// Final adoption set of `v` (empty if `v` adopted nothing).
    pub fn adoption_of(&self, v: NodeId) -> ItemSet {
        match self.adoptions.binary_search_by_key(&v, |&(u, _)| u) {
            Ok(idx) => self.adoptions[idx].1,
            Err(_) => ItemSet::EMPTY,
        }
    }
}

/// Per-node diffusion state (noise lives in the simulator's flat array).
#[derive(Debug, Clone, Copy, Default)]
struct PersNodeState {
    desire: ItemSet,
    adopted: ItemSet,
}

/// Reusable personalized-noise simulator: dense per-cascade scratch for
/// one `(graph, item-universe)` pair.
pub struct PersonalizedSimulator {
    num_items: usize,
    state: EpochMap<PersNodeState>,
    /// Realized noise per `(node, item)`, row-major; valid only for nodes
    /// stamped in `state` this cascade.
    noise: Box<[f64]>,
    coins: EdgeStatusCache,
    /// Nodes informed this cascade, in first-contact order.
    informed: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next_frontier: Vec<NodeId>,
    step_tags: VisitTags,
    step_touched: Vec<NodeId>,
    seed_buf: Vec<(NodeId, ItemSet)>,
}

impl PersonalizedSimulator {
    /// Scratch sized for graph `g` and `num_items` items.
    pub fn new(g: &Graph, num_items: u32) -> PersonalizedSimulator {
        let n = g.num_nodes() as usize;
        PersonalizedSimulator {
            num_items: num_items as usize,
            state: EpochMap::new(n),
            noise: vec![0.0; n * num_items as usize].into_boxed_slice(),
            coins: EdgeStatusCache::new(g.num_edges()),
            informed: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            step_tags: VisitTags::new(n),
            step_touched: Vec::new(),
            seed_buf: Vec::new(),
        }
    }

    /// First contact: draw this node's personal noise vector from its own
    /// deterministic stream (independent of contact order).
    fn sample_noise(noise: &mut [f64], model: &UtilityModel, noise_seed: u64, v: NodeId) {
        let mut node_rng = UicRng::new(split_seed(noise_seed, v as u64));
        for (i, slot) in noise.iter_mut().enumerate() {
            *slot = model.noise().dist(i as u32).sample(&mut node_rng);
        }
    }

    /// The personalized adoption decision: enumerate supersets of
    /// `adopted` inside `desire`, maximizing `V − P + N_v` with the
    /// larger-cardinality (union) tie-break.
    fn decide(model: &UtilityModel, noise: &[f64], desire: ItemSet, adopted: ItemSet) -> ItemSet {
        let util = |s: ItemSet| -> f64 {
            model.deterministic_utility(s) + s.iter().map(|i| noise[i as usize]).sum::<f64>()
        };
        let free = desire.minus(adopted);
        let mut best = f64::NEG_INFINITY;
        let mut best_union = ItemSet::EMPTY;
        for x in free.subsets() {
            let t = adopted.union(x);
            let u = util(t);
            if u > best + 1e-9 {
                best = u;
                best_union = t;
            } else if (u - best).abs() <= 1e-9 {
                best_union = best_union.union(t);
            }
        }
        if best < 0.0 {
            adopted
        } else {
            best_union
        }
    }

    /// Runs one diffusion where every node samples its own noise vector
    /// on first contact. `noise_seed` controls all per-node draws; `rng`
    /// drives the edge coins (mirroring the base simulator's split
    /// between noise world and edge world).
    pub fn run(
        &mut self,
        g: &Graph,
        allocation: &Allocation,
        model: &UtilityModel,
        noise_seed: u64,
        rng: &mut UicRng,
    ) -> PersonalizedOutcome {
        let k = self.num_items;
        debug_assert_eq!(k, model.num_items() as usize, "item universe mismatch");
        self.state.reset();
        self.coins.reset();
        self.informed.clear();
        self.frontier.clear();
        self.next_frontier.clear();

        self.seed_buf.clear();
        self.seed_buf
            .extend(allocation.seeds().filter(|(_, items)| !items.is_empty()));
        self.seed_buf.sort_unstable_by_key(|&(v, _)| v);
        for si in 0..self.seed_buf.len() {
            let (v, items) = self.seed_buf[si];
            let row = &mut self.noise[v as usize * k..(v as usize + 1) * k];
            Self::sample_noise(row, model, noise_seed, v);
            let adopted = Self::decide(model, row, items, ItemSet::EMPTY);
            self.state.insert(
                v as usize,
                PersNodeState {
                    desire: items,
                    adopted,
                },
            );
            self.informed.push(v);
            if !adopted.is_empty() {
                self.frontier.push(v);
            }
        }

        while !self.frontier.is_empty() {
            self.step_touched.clear();
            self.step_tags.reset();
            for fi in 0..self.frontier.len() {
                let u = self.frontier[fi];
                let a_u = self.state.get_or_default(u as usize).adopted;
                let nbrs = g.out_neighbors(u);
                let probs = g.out_arc_probs(u);
                let first_eid = g.out_edge_id(u, 0);
                for (i, &v) in nbrs.iter().enumerate() {
                    let rng_ref = &mut *rng;
                    let live = self
                        .coins
                        .get_or_flip(first_eid + i, || rng_ref.coin(probs.get(i) as f64));
                    if !live {
                        continue;
                    }
                    let (_, fresh) = self.state.slot(v as usize);
                    if fresh {
                        self.informed.push(v);
                        let row = &mut self.noise[v as usize * k..(v as usize + 1) * k];
                        Self::sample_noise(row, model, noise_seed, v);
                    }
                    let st = self.state.get_mut(v as usize).expect("just stamped");
                    let grown = a_u.minus(st.desire);
                    if !grown.is_empty() {
                        st.desire = st.desire.union(a_u);
                        if self.step_tags.mark(v as usize) {
                            self.step_touched.push(v);
                        }
                    }
                }
            }
            self.next_frontier.clear();
            for ti in 0..self.step_touched.len() {
                let v = self.step_touched[ti];
                let st = self
                    .state
                    .get(v as usize)
                    .expect("touched node must have state");
                let row = &self.noise[v as usize * k..(v as usize + 1) * k];
                let decision = Self::decide(model, row, st.desire, st.adopted);
                if decision != st.adopted {
                    self.state.get_mut(v as usize).unwrap().adopted = decision;
                    self.next_frontier.push(v);
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
        }

        self.informed.sort_unstable();
        let mut out = PersonalizedOutcome::default();
        for &v in &self.informed {
            let st = self.state.get_or_default(v as usize);
            if st.adopted.is_empty() {
                continue;
            }
            let row = &self.noise[v as usize * k..(v as usize + 1) * k];
            let u = model.deterministic_utility(st.adopted)
                + st.adopted.iter().map(|i| row[i as usize]).sum::<f64>();
            out.adoptions.push((v, st.adopted));
            out.node_welfare.push((v, u));
        }
        out
    }
}

/// One-shot personalized-noise UIC diffusion (convenience wrapper; reuse
/// a [`PersonalizedSimulator`] in Monte-Carlo loops).
pub fn simulate_uic_personalized(
    g: &Graph,
    allocation: &Allocation,
    model: &UtilityModel,
    noise_seed: u64,
    rng: &mut UicRng,
) -> PersonalizedOutcome {
    PersonalizedSimulator::new(g, model.num_items()).run(g, allocation, model, noise_seed, rng)
}

/// Monte-Carlo expected welfare under personalized noise.
pub fn personalized_welfare_mc(
    g: &Graph,
    allocation: &Allocation,
    model: &UtilityModel,
    sims: u32,
    seed: u64,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    let mut sim = PersonalizedSimulator::new(g, model.num_items());
    for s in 0..sims {
        let world_seed = split_seed(seed, s as u64);
        let mut rng = UicRng::new(split_seed(world_seed, u64::MAX));
        let out = sim.run(g, allocation, model, world_seed, &mut rng);
        stats.push(out.welfare());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uic_items::{NoiseDistribution, NoiseModel, Price, TableValuation};

    fn chain2() -> Graph {
        Graph::from_edges(2, &[(0, 1, 1.0)])
    }

    fn model(noise_var: f64) -> UtilityModel {
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 3.0, 3.0, 8.0])),
            Price::additive(vec![3.0, 4.0]),
            NoiseModel::new(vec![
                NoiseDistribution::gaussian_var(noise_var),
                NoiseDistribution::gaussian_var(noise_var),
            ]),
        )
    }

    #[test]
    fn zero_noise_matches_base_simulator() {
        let g = chain2();
        let m = model(0.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let table = m.deterministic_table();
        for seed in 0..20u64 {
            let mut r1 = UicRng::new(seed);
            let mut r2 = UicRng::new(seed);
            let base = crate::uic::simulate_uic(&g, &alloc, &table, &mut r1);
            let pers = simulate_uic_personalized(&g, &alloc, &m, 99, &mut r2);
            assert_eq!(
                base.total_adoptions(),
                pers.total_adoptions(),
                "seed {seed}"
            );
            assert!((base.welfare(&table) - pers.welfare()).abs() < 1e-9);
        }
    }

    #[test]
    fn personalized_noise_decorrelates_adoptions() {
        // Two-node chain, deterministic edge, single item with
        // E[U] = 0 and N(0,1) noise: population noise gives downstream
        // adoption rate q = 0.5 (perfect correlation with the seed);
        // personalized noise gives q² = 0.25.
        let g = chain2();
        let m = UtilityModel::new(
            Arc::new(TableValuation::from_table(1, vec![0.0, 3.0])),
            Price::additive(vec![3.0]),
            NoiseModel::new(vec![NoiseDistribution::gaussian_var(1.0)]),
        );
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        let sims = 30_000u32;
        let mut downstream = 0u32;
        let mut sim = PersonalizedSimulator::new(&g, 1);
        for s in 0..sims {
            let world_seed = split_seed(7, s as u64);
            let mut rng = UicRng::new(split_seed(world_seed, u64::MAX));
            let out = sim.run(&g, &alloc, &m, world_seed, &mut rng);
            if !out.adoption_of(1).is_empty() {
                downstream += 1;
            }
        }
        let rate = downstream as f64 / sims as f64;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "personalized downstream rate {rate}, expected ≈ 0.25"
        );
    }

    #[test]
    fn per_node_noise_is_deterministic_per_seed() {
        let g = chain2();
        let m = model(1.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let run = |seed: u64| {
            let mut rng = UicRng::new(123);
            simulate_uic_personalized(&g, &alloc, &m, seed, &mut rng).welfare()
        };
        assert_eq!(run(5), run(5));
        // Different noise seeds generally differ.
        let all_same = (0..10u64).map(run).all(|w| (w - run(0)).abs() < 1e-12);
        assert!(!all_same, "noise seed should matter");
    }

    #[test]
    fn simulator_reuse_matches_fresh_runs() {
        let g = chain2();
        let m = model(1.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let mut reused = PersonalizedSimulator::new(&g, 2);
        for seed in 0..20u64 {
            let mut r1 = UicRng::new(seed);
            let mut r2 = UicRng::new(seed);
            let a = reused.run(&g, &alloc, &m, seed, &mut r1);
            let b = simulate_uic_personalized(&g, &alloc, &m, seed, &mut r2);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn welfare_mc_is_finite_and_seeded() {
        let g = chain2();
        let m = model(1.0);
        let mut alloc = Allocation::new();
        alloc.assign(0, 0);
        alloc.assign(0, 1);
        let a = personalized_welfare_mc(&g, &alloc, &m, 500, 3);
        let b = personalized_welfare_mc(&g, &alloc, &m, 500, 3);
        assert_eq!(a.mean(), b.mean());
        assert!(a.mean().is_finite());
        assert_eq!(a.count(), 500);
    }

    #[test]
    fn seeds_with_nothing_allocated_do_not_panic() {
        let g = chain2();
        let m = model(1.0);
        let out = simulate_uic_personalized(&g, &Allocation::new(), &m, 1, &mut UicRng::new(1));
        assert_eq!(out.welfare(), 0.0);
    }
}
