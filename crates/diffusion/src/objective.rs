//! Pluggable welfare objectives.
//!
//! The paper optimizes one objective — the **sum** of user utilities
//! (§3.3) — and that choice used to be hard-coded in every layer that
//! touched welfare. [`WelfareObjective`] makes the aggregation a
//! first-class parameter: an objective maps one diffusion outcome (one
//! possible world) to a scalar welfare, and the Monte-Carlo estimator
//! averages those per-world scalars, i.e. every objective is evaluated
//! as **E[f(utilities)]**, never `f(E[utilities])`.
//!
//! Four objectives ship:
//!
//! * [`Utilitarian`] — `Σ_v U(A(v))`, the paper's objective and the
//!   default everywhere. Delegates to [`UicOutcome::welfare`] so the
//!   refactored pipeline is bit-identical to the pre-refactor one.
//! * [`Maximin`] — `min_v U(A(v))` over **all** nodes (a node that
//!   adopted nothing has utility 0), Rawls' egalitarian floor.
//! * [`Ces`] — `Σ_v U(A(v))^α` for `α ∈ (0, 1]`, the isoelastic /
//!   constant-elasticity family of Rahmattalabi et al. ("Fair Influence
//!   Maximization: A Welfare Optimization Approach"): `α = 1` is
//!   utilitarian, `α → 0` orders allocations like the Nash
//!   (proportional-fairness) product.
//! * [`PerCommunity`] — `Σ_c n_c · mean_{v ∈ c}(U(A(v)))^α` over a
//!   [`CommunityLabels`] partition: inequality aversion applied
//!   *between* groups while staying utilitarian *within* each group.
//!
//! Only the utilitarian sum decomposes over nodes, which is what RR-set
//! coverage counting and the bundleGRD guarantee rely on; solvers that
//! need that structure check [`WelfareObjective::is_additive`] and
//! refuse non-additive objectives with a typed error instead of
//! returning silently wrong answers.

use crate::uic::UicOutcome;
use std::fmt;
use std::sync::Arc;
use uic_graph::CommunityLabels;
use uic_items::UtilityTable;

/// Why an objective could not be built or applied.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ObjectiveError {
    /// A CES exponent outside `(0, 1]` (or NaN).
    InvalidAlpha {
        /// The offending exponent.
        alpha: f64,
    },
    /// A community labeling that does not cover the instance's node set.
    LabelingMismatch {
        /// Nodes the labeling covers.
        labeled: u32,
        /// Nodes the instance has.
        nodes: u32,
    },
    /// An algorithm that needs a sum-decomposable objective was handed a
    /// non-additive one.
    NonAdditive {
        /// The objective's registry key.
        objective: String,
        /// What required additivity.
        algorithm: String,
    },
}

impl fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveError::InvalidAlpha { alpha } => {
                write!(f, "CES exponent alpha={alpha} must lie in (0, 1]")
            }
            ObjectiveError::LabelingMismatch { labeled, nodes } => write!(
                f,
                "community labeling covers {labeled} nodes but the instance has {nodes}"
            ),
            ObjectiveError::NonAdditive {
                objective,
                algorithm,
            } => write!(
                f,
                "{algorithm} requires an additive (sum-decomposable) objective, \
                 but `{objective}` is not; use objective=utilitarian or a \
                 simulation-based solver (mc-greedy, bdhs, degree-top, pagerank-top)"
            ),
        }
    }
}

impl std::error::Error for ObjectiveError {}

/// Aggregates one diffusion outcome into a scalar welfare.
///
/// Implementations must be pure functions of the outcome (no interior
/// state, no randomness): the estimator calls [`Self::welfare`] once per
/// Monte-Carlo sample from many threads and requires bit-identical
/// results regardless of evaluation order.
pub trait WelfareObjective: Send + Sync {
    /// Registry key (`"utilitarian"`, `"maximin"`, `"ces"`,
    /// `"per-community"`) used in `SolverSpec` text and reports.
    fn key(&self) -> &'static str;

    /// Welfare of one realized world. `num_nodes` is the instance's node
    /// count — needed because nodes that adopted nothing do not appear
    /// in `outcome.adoptions` yet still count (with utility 0) for
    /// non-additive aggregations.
    fn welfare(&self, outcome: &UicOutcome, table: &UtilityTable, num_nodes: u32) -> f64;

    /// Whether the objective decomposes as a sum of per-node terms.
    ///
    /// RR-set coverage counting ([`node_selection`](https://docs.rs) /
    /// PRIMA) and the bundleGRD approximation guarantee are only sound
    /// for additive objectives; solvers gate on this.
    fn is_additive(&self) -> bool {
        false
    }

    /// Greedy gain of moving from welfare `before` to welfare `after`.
    /// The default difference is correct for every objective evaluated
    /// via simulation; it exists as a hook so future smoothed objectives
    /// can reshape gains without touching the solvers.
    fn marginal_gain(&self, before: f64, after: f64) -> f64 {
        after - before
    }

    /// Checks the objective against an instance's node count (the
    /// per-community labeling must cover every node). Additive scalar
    /// objectives accept any size.
    fn validate_for(&self, num_nodes: u32) -> Result<(), ObjectiveError> {
        let _ = num_nodes;
        Ok(())
    }
}

/// The default objective everywhere an objective is not given.
pub fn default_objective() -> Arc<dyn WelfareObjective> {
    Arc::new(Utilitarian)
}

/// `Σ_v U(A(v))` — the paper's objective (§3.3) and the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Utilitarian;

impl WelfareObjective for Utilitarian {
    fn key(&self) -> &'static str {
        "utilitarian"
    }

    fn welfare(&self, outcome: &UicOutcome, table: &UtilityTable, _num_nodes: u32) -> f64 {
        // Delegate to the pre-refactor sum so the default path is
        // bit-identical, not merely equal (pinned in the test suites).
        outcome.welfare(table)
    }

    fn is_additive(&self) -> bool {
        true
    }
}

/// `min_v U(A(v))` over all nodes — the egalitarian floor.
///
/// Under the UIC adoption rule (`U(T) ≥ 0` is required to adopt) every
/// adopter's utility is non-negative, so the minimum is 0 whenever any
/// node adopts nothing; the objective only discriminates between
/// allocations once coverage is (near-)total, which is exactly its role
/// in the price-of-fairness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Maximin;

impl WelfareObjective for Maximin {
    fn key(&self) -> &'static str {
        "maximin"
    }

    fn welfare(&self, outcome: &UicOutcome, table: &UtilityTable, num_nodes: u32) -> f64 {
        if num_nodes == 0 {
            return 0.0;
        }
        let mut min = if (outcome.adoptions.len() as u32) < num_nodes {
            // Some node adopted nothing: its utility is 0.
            0.0
        } else {
            f64::INFINITY
        };
        for &(_, a) in &outcome.adoptions {
            let u = table.utility(a);
            if u < min {
                min = u;
            }
        }
        min
    }
}

/// `Σ_v U(A(v))^α`, `α ∈ (0, 1]` — the isoelastic (CES) family.
///
/// `α = 1` recovers the utilitarian sum (up to `powf` rounding; the
/// bit-exact default is [`Utilitarian`]); smaller `α` is more
/// inequality-averse, and as `α → 0` the induced *ordering* approaches
/// the Nash product's. Non-adopters contribute `0^α = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ces {
    alpha: f64,
}

impl Ces {
    /// A CES objective with exponent `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Result<Ces, ObjectiveError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ObjectiveError::InvalidAlpha { alpha });
        }
        Ok(Ces { alpha })
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl WelfareObjective for Ces {
    fn key(&self) -> &'static str {
        "ces"
    }

    fn welfare(&self, outcome: &UicOutcome, table: &UtilityTable, _num_nodes: u32) -> f64 {
        outcome
            .adoptions
            .iter()
            // Adoption requires U(T) ≥ 0; the clamp guards powf against
            // NaN if a future valuation relaxes that invariant.
            .map(|&(_, a)| table.utility(a).max(0.0).powf(self.alpha))
            .sum()
    }
}

/// `Σ_c n_c · (mean utility in community c)^α` — group-level CES.
///
/// Utilitarian within each community (the mean), inequality-averse
/// across communities (the `α`-power weighted by group size). With one
/// community and `α = 1` this equals the utilitarian sum.
#[derive(Debug, Clone)]
pub struct PerCommunity {
    labels: Arc<CommunityLabels>,
    alpha: f64,
}

impl PerCommunity {
    /// Group-CES over `labels` with exponent `alpha ∈ (0, 1]`.
    pub fn new(labels: Arc<CommunityLabels>, alpha: f64) -> Result<PerCommunity, ObjectiveError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ObjectiveError::InvalidAlpha { alpha });
        }
        Ok(PerCommunity { labels, alpha })
    }

    /// The node → community assignment.
    pub fn labels(&self) -> &CommunityLabels {
        &self.labels
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl WelfareObjective for PerCommunity {
    fn key(&self) -> &'static str {
        "per-community"
    }

    fn welfare(&self, outcome: &UicOutcome, table: &UtilityTable, num_nodes: u32) -> f64 {
        debug_assert_eq!(self.labels.num_nodes(), num_nodes, "unvalidated labeling");
        let k = self.labels.num_communities() as usize;
        let mut sums = vec![0.0f64; k];
        for &(v, a) in &outcome.adoptions {
            sums[self.labels.label_of(v) as usize] += table.utility(a).max(0.0);
        }
        let sizes = self.labels.sizes();
        let mut total = 0.0;
        for (c, &sum) in sums.iter().enumerate() {
            let n_c = sizes[c] as f64;
            if n_c > 0.0 {
                total += n_c * (sum / n_c).powf(self.alpha);
            }
        }
        total
    }

    fn validate_for(&self, num_nodes: u32) -> Result<(), ObjectiveError> {
        if self.labels.num_nodes() != num_nodes {
            return Err(ObjectiveError::LabelingMismatch {
                labeled: self.labels.num_nodes(),
                nodes: num_nodes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_items::ItemSet;
    use uic_items::{NoiseModel, Price, TableValuation, UtilityModel};

    fn table() -> UtilityTable {
        // U({}) = 0, U({0}) = 1, U({1}) = 2, U({0,1}) = 6.
        UtilityModel::new(
            Arc::new(TableValuation::from_table(2, vec![0.0, 1.0, 2.0, 6.0])),
            Price::additive(vec![0.0, 0.0]),
            NoiseModel::none(2),
        )
        .deterministic_table()
    }

    fn outcome(adoptions: &[(u32, ItemSet)]) -> UicOutcome {
        UicOutcome {
            adoptions: adoptions.to_vec(),
            desires: Vec::new(),
            steps: 1,
        }
    }

    fn both() -> ItemSet {
        ItemSet::singleton(0).with(1)
    }

    #[test]
    fn utilitarian_matches_outcome_welfare_bitwise() {
        let t = table();
        let o = outcome(&[(0, ItemSet::singleton(0)), (2, both())]);
        assert_eq!(Utilitarian.welfare(&o, &t, 5), o.welfare(&t));
        assert_eq!(Utilitarian.welfare(&o, &t, 5), 7.0);
        assert!(Utilitarian.is_additive());
    }

    #[test]
    fn maximin_is_zero_with_any_non_adopter_and_min_otherwise() {
        let t = table();
        let partial = outcome(&[(0, both())]);
        assert_eq!(Maximin.welfare(&partial, &t, 3), 0.0);
        let full = outcome(&[
            (0, ItemSet::singleton(0)),
            (1, ItemSet::singleton(1)),
            (2, both()),
        ]);
        assert_eq!(Maximin.welfare(&full, &t, 3), 1.0);
        assert_eq!(Maximin.welfare(&outcome(&[]), &t, 0), 0.0);
        assert!(!Maximin.is_additive());
    }

    #[test]
    fn ces_validates_alpha_and_sums_powers() {
        assert!(matches!(
            Ces::new(0.0),
            Err(ObjectiveError::InvalidAlpha { .. })
        ));
        assert!(Ces::new(1.5).is_err());
        assert!(Ces::new(f64::NAN).is_err());
        let half = Ces::new(0.5).unwrap();
        let t = table();
        let o = outcome(&[(0, ItemSet::singleton(1)), (1, both())]);
        // sqrt(2) + sqrt(6)
        let want = 2f64.sqrt() + 6f64.sqrt();
        assert!((half.welfare(&o, &t, 4) - want).abs() < 1e-12);
        let one = Ces::new(1.0).unwrap();
        assert!((one.welfare(&o, &t, 4) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn per_community_aggregates_group_means() {
        let labels = Arc::new(CommunityLabels::new(vec![0, 0, 1, 1]));
        let obj = PerCommunity::new(labels, 0.5).unwrap();
        let t = table();
        // Community 0: utilities {1, 0} → mean 0.5; community 1: {6, 2}
        // → mean 4. Welfare = 2·sqrt(0.5) + 2·sqrt(4).
        let o = outcome(&[
            (0, ItemSet::singleton(0)),
            (2, both()),
            (3, ItemSet::singleton(1)),
        ]);
        let want = 2.0 * 0.5f64.sqrt() + 2.0 * 4f64.sqrt();
        assert!((obj.welfare(&o, &t, 4) - want).abs() < 1e-12);
        // α = 1 and one community collapses to the utilitarian sum.
        let whole = PerCommunity::new(Arc::new(CommunityLabels::contiguous(4, 1)), 1.0).unwrap();
        assert!((whole.welfare(&o, &t, 4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn per_community_validation_catches_mismatch() {
        let obj = PerCommunity::new(Arc::new(CommunityLabels::contiguous(4, 2)), 0.5).unwrap();
        assert!(obj.validate_for(4).is_ok());
        assert_eq!(
            obj.validate_for(6),
            Err(ObjectiveError::LabelingMismatch {
                labeled: 4,
                nodes: 6
            })
        );
        assert!(Utilitarian.validate_for(1_000_000).is_ok());
    }

    #[test]
    fn errors_display_and_implement_error() {
        let e: Box<dyn std::error::Error> = Box::new(ObjectiveError::NonAdditive {
            objective: "maximin".into(),
            algorithm: "bundle-grd".into(),
        });
        assert!(e.to_string().contains("additive"));
        assert!(ObjectiveError::InvalidAlpha { alpha: 2.0 }
            .to_string()
            .contains("(0, 1]"));
    }
}
