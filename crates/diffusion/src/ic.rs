//! Single-item Independent Cascade (§2.1).
//!
//! Provides the forward simulator, a parallel Monte-Carlo estimator of the
//! influence spread `σ(S)`, and an exact estimator via possible-world
//! enumeration on tiny graphs (for validating RR-set machinery and the
//! prefix-preserving property against brute force).

use crate::worlds::enumerate_edge_worlds;
use crossbeam::thread;
use uic_graph::{Graph, NodeId};
use uic_util::{split_seed, OnlineStats, UicRng, VisitTags};

/// Runs one IC cascade from `seeds`; returns the number of activated
/// nodes (including seeds). Edge coins are flipped lazily — an edge is
/// only tested when its source activates, which is equivalent to the
/// live-edge view by deferred decisions.
pub fn simulate_ic(g: &Graph, seeds: &[NodeId], rng: &mut UicRng) -> usize {
    let mut tags = VisitTags::new(g.num_nodes() as usize);
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if tags.mark(s as usize) {
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let nbrs = g.out_neighbors(u);
        let probs = g.out_arc_probs(u);
        for (i, &v) in nbrs.iter().enumerate() {
            if !tags.is_marked(v as usize) && rng.coin(probs.get(i) as f64) {
                tags.mark(v as usize);
                queue.push(v);
            }
        }
    }
    queue.len()
}

/// Monte-Carlo estimate of `σ(S)` over `sims` cascades, parallelized
/// across available cores with deterministic per-simulation seed
/// splitting (thread count does not change the result).
pub fn spread_mc(g: &Graph, seeds: &[NodeId], sims: u32, seed: u64) -> f64 {
    spread_mc_stats(g, seeds, sims, seed).mean()
}

/// Like [`spread_mc`] but returns the full accumulator (mean, variance,
/// CI) for convergence diagnostics.
pub fn spread_mc_stats(g: &Graph, seeds: &[NodeId], sims: u32, seed: u64) -> OnlineStats {
    if sims == 0 || g.num_nodes() == 0 {
        return OnlineStats::new();
    }
    let threads = num_threads(sims);
    if threads <= 1 {
        let mut stats = OnlineStats::new();
        for s in 0..sims {
            let mut rng = UicRng::new(split_seed(seed, s as u64));
            stats.push(simulate_ic(g, seeds, &mut rng) as f64);
        }
        return stats;
    }
    let chunks: Vec<(u32, u32)> = chunk_ranges(sims, threads);
    let partials = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move |_| {
                    let mut stats = OnlineStats::new();
                    for s in lo..hi {
                        let mut rng = UicRng::new(split_seed(seed, s as u64));
                        stats.push(simulate_ic(g, seeds, &mut rng) as f64);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("spread worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope failed");
    let mut total = OnlineStats::new();
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Exact `σ(S)` by enumerating all live-edge worlds (≤ 20 edges).
pub fn exact_spread(g: &Graph, seeds: &[NodeId]) -> f64 {
    enumerate_edge_worlds(g)
        .iter()
        .map(|(w, p)| p * w.reachable(g, seeds).len() as f64)
        .sum()
}

/// Number of worker threads for `work` independent simulations
/// (the shared [`uic_util::parallelism`] heuristic at the Monte-Carlo
/// grain of 64 cascades per worker).
pub(crate) fn num_threads(work: u32) -> usize {
    uic_util::parallelism(work as usize, 64)
}

/// Splits `[0, total)` into `parts` contiguous ranges.
pub(crate) fn chunk_ranges(total: u32, parts: usize) -> Vec<(u32, u32)> {
    let parts = parts.max(1) as u32;
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + if i < extra { 1 } else { 0 };
        if len > 0 {
            out.push((lo, lo + len));
        }
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)])
    }

    #[test]
    fn deterministic_edges_activate_everything() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let mut rng = UicRng::new(1);
        assert_eq!(simulate_ic(&g, &[0], &mut rng), 4);
    }

    #[test]
    fn zero_probability_edges_stop_cascade() {
        let g = Graph::from_edges(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
        let mut rng = UicRng::new(1);
        assert_eq!(simulate_ic(&g, &[0], &mut rng), 1);
    }

    #[test]
    fn seeds_count_once() {
        let g = path3();
        let mut rng = UicRng::new(1);
        let n = simulate_ic(&g, &[0, 0, 1], &mut rng);
        assert!(n >= 2, "both distinct seeds active");
    }

    #[test]
    fn mc_estimate_matches_exact_on_path() {
        let g = path3();
        let exact = exact_spread(&g, &[0]); // 1.75
        let mc = spread_mc(&g, &[0], 40_000, 99);
        assert!(
            (mc - exact).abs() < 0.03,
            "MC {mc} vs exact {exact} (should agree within MC error)"
        );
    }

    #[test]
    fn mc_is_thread_count_invariant() {
        // The per-simulation seed split makes the estimate a pure function
        // of (graph, seeds, sims, seed).
        let g = path3();
        let a = spread_mc(&g, &[0], 5_000, 7);
        let b = spread_mc(&g, &[0], 5_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_cases() {
        let g = path3();
        assert_eq!(spread_mc(&g, &[0], 0, 1), 0.0);
        let mut rng = UicRng::new(1);
        assert_eq!(simulate_ic(&g, &[], &mut rng), 0);
    }

    #[test]
    fn exact_spread_on_diamond() {
        // 0→1, 0→2, 1→3, 2→3, all p=0.5.
        // σ({0}) = 1 + 0.5 + 0.5 + Pr[3 reached].
        // Pr[3] = Pr[(e01,e13) or (e02,e23)] = 2(0.25) − 0.0625 = 0.4375.
        let g = Graph::from_edges(4, &[(0, 1, 0.5), (0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]);
        let sigma = exact_spread(&g, &[0]);
        assert!((sigma - 2.4375).abs() < 1e-12, "{sigma}");
    }

    #[test]
    fn spread_is_monotone_in_seeds_exact() {
        let g = path3();
        let s1 = exact_spread(&g, &[2]);
        let s2 = exact_spread(&g, &[0, 2]);
        assert!(s2 >= s1);
        assert!((s1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0u32, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = chunk_ranges(total, parts);
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn stats_variant_reports_counts() {
        let g = path3();
        let stats = spread_mc_stats(&g, &[0], 1000, 3);
        assert_eq!(stats.count(), 1000);
        assert!(stats.mean() >= 1.0 && stats.mean() <= 3.0);
    }
}
