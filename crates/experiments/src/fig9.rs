//! **Figure 9**: (a–c) propagation vs network externality — bundleGRD's
//! budget fraction needed to match the BDHS benchmarks; (d) scalability
//! of bundleGRD with network size.

use crate::common::{fmt, network, run_algo, Algo, ExpOptions};
use uic_baselines::{bdhs_concave_welfare, bdhs_step_welfare_exact};
use uic_datasets::{real_param_model, NamedNetwork};
use uic_graph::{bfs_prefix_subgraph, Weighting};
use uic_util::Table;

/// Networks of the Fig. 9(a–c) panels.
pub const BDHS_NETWORKS: [NamedNetwork; 3] = [
    NamedNetwork::Orkut,
    NamedNetwork::DoubanBook,
    NamedNetwork::DoubanMovie,
];

/// One Fig. 9(a–c) panel: bundleGRD welfare as a function of the budget
/// fraction (percent of `n` given to **every** item), against the BDHS
/// benchmarks computed per the §4.3.4.4 conversion. The BDHS columns are
/// horizontal lines (their model has no budget: every node is assigned
/// the bundle directly).
pub fn fig9_panel(which: NamedNetwork, opts: &ExpOptions) -> Table {
    let g = network(which, opts);
    let n = g.num_nodes();
    let model = real_param_model();
    let step_bench = bdhs_step_welfare_exact(&g, &model);
    // The concave variant needs the uniform-p restriction of UIC.
    let p_uniform = 0.01f64;
    let g_uniform = g.reweighted_as(Weighting::Constant(p_uniform as f32), 0);
    let concave_bench = bdhs_concave_welfare(&g_uniform, &model, p_uniform);
    let mut t = Table::new(
        format!(
            "Figure 9: bundleGRD vs BDHS benchmarks, {} (BDHS-Step {}, BDHS-Concave {})",
            which.name(),
            fmt(step_bench),
            fmt(concave_bench)
        ),
        &[
            "budget %",
            "bundleGRD welfare",
            "BDHS-Step",
            "BDHS-Concave",
            "≥Step?",
        ],
    );
    for pct in [5u32, 10, 20, 35, 50, 75, 100] {
        let per_item = ((n as u64 * pct as u64) / 100).max(1) as u32;
        let budgets = vec![per_item.min(n); model.num_items() as usize];
        let r = run_algo(Algo::BundleGrd, &g, &budgets, &model, opts);
        let w = r.welfare_mean();
        t.push_row(vec![
            pct.to_string(),
            fmt(w),
            fmt(step_bench),
            fmt(concave_bench),
            if w >= step_bench { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// All three BDHS panels.
pub fn fig9abc(opts: &ExpOptions) -> Vec<Table> {
    BDHS_NETWORKS.iter().map(|&w| fig9_panel(w, opts)).collect()
}

/// **Fig. 9(d)**: scalability — BFS prefixes of the Orkut stand-in at
/// 20–100% of the nodes, with the two edge-weight schemes of the paper
/// (`1/d_in` and constant 0.01). Paper shape: roughly linear running
/// time, sublinear welfare growth.
pub fn fig9d(opts: &ExpOptions) -> Table {
    let full = network(NamedNetwork::Orkut, opts);
    let model = real_param_model();
    let mut t = Table::new(
        "Figure 9(d): scalability on the Orkut stand-in (budget 50/item)",
        &[
            "network %",
            "nodes",
            "welfare (1/din)",
            "time ms (1/din)",
            "welfare (p=0.01)",
            "time ms (p=0.01)",
        ],
    );
    for pct in [20u32, 40, 60, 80, 100] {
        let (sub, _) = bfs_prefix_subgraph(&full, 0, pct as f64 / 100.0);
        let n = sub.num_nodes();
        let budgets = vec![50u32.min(n.max(2) / 2).max(1); model.num_items() as usize];
        let mut row = vec![pct.to_string(), n.to_string()];
        // Weighted-cascade variant (the subgraph extraction keeps the
        // parent probabilities; recompute 1/din on the subgraph).
        let wc = sub.reweighted_as(Weighting::WeightedCascade, 0);
        let r = run_algo(Algo::BundleGrd, &wc, &budgets, &model, opts);
        row.push(fmt(r.welfare_mean()));
        row.push(format!("{:.1}", r.elapsed.as_secs_f64() * 1e3));
        // Constant-probability variant.
        let cp = sub.reweighted_as(Weighting::Constant(0.01), 0);
        let r = run_algo(Algo::BundleGrd, &cp, &budgets, &model, opts);
        row.push(fmt(r.welfare_mean()));
        row.push(format!("{:.1}", r.elapsed.as_secs_f64() * 1e3));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            scale: 0.003, // 300-node orkut stand-in
            sims: 50,
            ..Default::default()
        }
    }

    #[test]
    fn fig9_panel_reaches_step_benchmark_with_partial_budget() {
        let t = fig9_panel(NamedNetwork::Orkut, &tiny());
        assert_eq!(t.len(), 7);
        let reached: Vec<&str> = (0..t.len()).map(|r| t.cell(r, "≥Step?").unwrap()).collect();
        assert!(
            reached.contains(&"yes"),
            "bundleGRD should match the BDHS-Step benchmark at some budget: {reached:?}"
        );
        // Welfare must be non-decreasing in budget (up to MC noise).
        let w = t.column_f64("bundleGRD welfare").unwrap();
        assert!(
            w.last().unwrap() >= &(w[0] * 0.9),
            "welfare should grow with budget: {w:?}"
        );
    }

    #[test]
    fn fig9d_scales_monotonically() {
        let t = fig9d(&tiny());
        assert_eq!(t.len(), 5);
        let nodes = t.column_f64("nodes").unwrap();
        assert!(nodes.windows(2).all(|w| w[1] >= w[0]));
        let w = t.column_f64("welfare (1/din)").unwrap();
        assert!(w.iter().all(|x| x.is_finite()));
    }
}
