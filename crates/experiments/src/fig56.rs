//! **Figures 5 and 6**: running time and RR-set counts of the five
//! algorithms under Configuration 1 on four networks (Flixster,
//! Douban-Book, Douban-Movie, Twitter stand-ins).
//!
//! One run produces both figures (time and memory are read off the same
//! executions). Paper shapes: bundleGRD ≡ bundle-disj in Config 1 and
//! both are fastest; the TIM-based Com-IC algorithms are orders of
//! magnitude slower (the paper's 6-hour timeout on Twitter) and generate
//! far more RR sets; item-disj sits in between (one IMM call at the
//! summed budget).

use crate::common::{network, run_algo_unscored, Algo, ExpOptions};
use uic_datasets::{NamedNetwork, TwoItemConfig};
use uic_util::Table;

/// The four networks of Fig. 5/6 in panel order.
pub const NETWORKS: [NamedNetwork; 4] = [
    NamedNetwork::Flixster,
    NamedNetwork::DoubanBook,
    NamedNetwork::DoubanMovie,
    NamedNetwork::Twitter,
];

/// Output of one Fig. 5/6 panel: `(running-time table, rr-set table)`.
pub fn fig56_network(which: NamedNetwork, opts: &ExpOptions) -> (Table, Table) {
    let g = network(which, opts);
    let cfg = TwoItemConfig::new(1);
    let model = cfg.model();
    let mut headers: Vec<&str> = vec!["budget(both)"];
    headers.extend(Algo::TWO_ITEM.iter().map(|a| a.name()));
    let mut time_t = Table::new(
        format!("Figure 5: running time (ms), Config 1, {}", which.name()),
        &headers,
    );
    let mut rr_t = Table::new(
        format!("Figure 6: #RR sets, Config 1, {}", which.name()),
        &headers,
    );
    let n = g.num_nodes();
    for k in cfg.sweep() {
        let budgets = [k.min(n), k.min(n)];
        let mut time_row = vec![k.to_string()];
        let mut rr_row = vec![k.to_string()];
        for algo in Algo::TWO_ITEM {
            let r = run_algo_unscored(algo, &g, &budgets, &model, opts);
            time_row.push(format!("{:.1}", r.elapsed.as_secs_f64() * 1e3));
            rr_row.push(r.rr_sets_final.to_string());
        }
        time_t.push_row(time_row);
        rr_t.push_row(rr_row);
    }
    (time_t, rr_t)
}

/// All four panels of Fig. 5 and Fig. 6.
pub fn fig56(opts: &ExpOptions) -> Vec<(Table, Table)> {
    NETWORKS
        .iter()
        .map(|&which| fig56_network(which, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comic_algorithms_cost_more_than_bundlegrd() {
        let opts = ExpOptions {
            scale: 0.01,
            sims: 10,
            ..Default::default()
        };
        let (time_t, rr_t) = fig56_network(NamedNetwork::Flixster, &opts);
        assert_eq!(time_t.len(), 5);
        let bg_rr = rr_t.column_f64("bundleGRD").unwrap();
        let cim_rr = rr_t.column_f64("RR-CIM").unwrap();
        let sim_rr = rr_t.column_f64("RR-SIM+").unwrap();
        for i in 0..rr_t.len() {
            assert!(
                cim_rr[i] > bg_rr[i],
                "row {i}: RR-CIM sets {} ≤ bundleGRD {}",
                cim_rr[i],
                bg_rr[i]
            );
            assert!(
                sim_rr[i] > bg_rr[i],
                "row {i}: RR-SIM+ sets {} ≤ bundleGRD {}",
                sim_rr[i],
                bg_rr[i]
            );
        }
        // Time: Com-IC total should exceed bundleGRD total.
        let bg_t: f64 = time_t.column_f64("bundleGRD").unwrap().iter().sum();
        let cim_t: f64 = time_t.column_f64("RR-CIM").unwrap().iter().sum();
        assert!(cim_t > bg_t, "RR-CIM {cim_t}ms vs bundleGRD {bg_t}ms");
    }
}
