//! `uic-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! uic-exp <artifact> [--scale F] [--sims N] [--eps F] [--ell F]
//!                    [--seed N] [--csv DIR]
//!
//! artifacts: table2 table3 table4 table5 table6
//!            fig4 fig5 fig6 fig7 fig8a fig8bc fig8d fig9abc fig9d
//!            fairness all
//! ```
//!
//! Every run is deterministic given `--seed`. `--csv DIR` additionally
//! writes one CSV per table for plotting.

use std::io::Write;
use uic_experiments::{common::ExpOptions, fairness, fig4, fig56, fig7, fig8, fig9, tables};
use uic_util::Table;

struct Args {
    artifact: String,
    opts: ExpOptions,
    csv_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let artifact = argv.next().ok_or_else(usage)?;
    let mut opts = ExpOptions::default();
    let mut csv_dir = None;
    while let Some(flag) = argv.next() {
        let mut take = |what: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{flag} needs a {what} argument"))
        };
        match flag.as_str() {
            "--scale" => opts.scale = take("float")?.parse().map_err(|e| format!("{e}"))?,
            "--sims" => opts.sims = take("integer")?.parse().map_err(|e| format!("{e}"))?,
            "--eps" => opts.eps = take("float")?.parse().map_err(|e| format!("{e}"))?,
            "--ell" => opts.ell = take("float")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = take("integer")?.parse().map_err(|e| format!("{e}"))?,
            "--csv" => csv_dir = Some(take("directory")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        artifact,
        opts,
        csv_dir,
    })
}

fn usage() -> String {
    "usage: uic-exp <table2|table3|table4|table5|table6|fig4|fig5|fig6|fig7|fig8a|fig8bc|fig8d|fig9abc|fig9d|fairness|ablations|all> \
     [--scale F] [--sims N] [--eps F] [--ell F] [--seed N] [--csv DIR]"
        .to_string()
}

fn emit(tables: &[Table], csv_dir: &Option<String>) {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for t in tables {
        writeln!(lock, "{t}").expect("stdout write failed");
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("cannot create csv dir");
            let slug: String = t
                .title
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect::<String>()
                .to_lowercase();
            let trimmed: String = slug.chars().take(60).collect();
            let path = format!("{dir}/{trimmed}.csv");
            std::fs::write(&path, t.to_csv()).expect("cannot write csv");
        }
    }
}

fn run(artifact: &str, opts: &ExpOptions, csv_dir: &Option<String>) -> Result<(), String> {
    let started = std::time::Instant::now();
    match artifact {
        "table2" => emit(&[tables::table2(opts)], csv_dir),
        "table3" => emit(&[tables::table3()], csv_dir),
        "table4" => emit(&[tables::table4()], csv_dir),
        "table5" => emit(&tables::table5(opts), csv_dir),
        "table6" => emit(&[tables::table6(opts)], csv_dir),
        "fig4" => emit(&fig4::fig4(opts), csv_dir),
        "fig5" | "fig6" => {
            let both = fig56::fig56(opts);
            let pick: Vec<Table> = both
                .into_iter()
                .map(|(time_t, rr_t)| if artifact == "fig5" { time_t } else { rr_t })
                .collect();
            emit(&pick, csv_dir);
        }
        "fig56" => {
            let both = fig56::fig56(opts);
            let flat: Vec<Table> = both.into_iter().flat_map(|(a, b)| [a, b]).collect();
            emit(&flat, csv_dir);
        }
        "fig7" => emit(&fig7::fig7(opts), csv_dir),
        "fig8a" => emit(&[fig8::fig8a(opts)], csv_dir),
        "fig8bc" => {
            let (w, t) = fig8::fig8bc(opts);
            emit(&[w, t], csv_dir);
        }
        "fig8d" => emit(&[fig8::fig8d(opts)], csv_dir),
        "fig9abc" => emit(&fig9::fig9abc(opts), csv_dir),
        "fig9d" => emit(&[fig9::fig9d(opts)], csv_dir),
        "fairness" => emit(&fairness::fairness(opts), csv_dir),
        "ablations" => emit(&uic_experiments::ablations::ablations(opts), csv_dir),
        "all" => {
            for a in [
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig4",
                "fig56",
                "fig7",
                "fig8a",
                "fig8bc",
                "fig8d",
                "fig9abc",
                "fig9d",
                "fairness",
                "ablations",
            ] {
                eprintln!(">>> {a}");
                run(a, opts, csv_dir)?;
            }
        }
        other => return Err(format!("unknown artifact {other}\n{}", usage())),
    }
    eprintln!(
        "[{artifact} done in {:.1}s]",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "uic-exp {} (scale {}, sims {}, eps {}, ell {}, seed {})",
        args.artifact,
        args.opts.scale,
        args.opts.sims,
        args.opts.eps,
        args.opts.ell,
        args.opts.seed
    );
    if let Err(e) = run(&args.artifact, &args.opts, &args.csv_dir) {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
