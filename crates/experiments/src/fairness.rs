//! **Price of fairness** (new in PR 6, beyond the paper's figures):
//! what does optimizing a fairness-leaning CES objective cost in total
//! (utilitarian) welfare, and what does it buy in CES welfare?
//!
//! For each network and each CES exponent α the experiment produces two
//! allocations —
//!
//! * the *utilitarian optimum* proxy: bundleGRD on the plain instance
//!   (the paper's algorithm, guarantee intact), and
//! * the *CES optimum* proxy: MC pair-greedy on the same instance with
//!   `objective=ces alpha=α` (the RIS solvers refuse non-additive
//!   objectives, so the direct greedy is the honest reference optimizer
//!   here),
//!
//! — then scores **both allocations under both objectives** with the
//! shared estimator stream. The *price of fairness* is the relative
//! utilitarian welfare given up by the CES-optimal allocation,
//! `PoF = 1 − W_util(ces-opt) / W_util(util-opt)`, and the *CES gain*
//! column shows what that price purchased,
//! `W_ces(ces-opt) / W_ces(util-opt)`. As α → 1 CES approaches the
//! utilitarian sum, so both ratios drift toward 1.

use crate::common::{fmt, network, ExpOptions};
use uic_core::{ObjectiveSpec, WelMax};
use uic_datasets::{NamedNetwork, SpecMap, TwoItemConfig};
use uic_diffusion::{Allocation, WelfareEstimator, WelfareObjective};
use uic_graph::Graph;
use uic_items::UtilityModel;
use uic_util::Table;

/// CES exponents swept per network (α = 1 is the sanity anchor where
/// CES coincides with the utilitarian sum up to the `x^1` rounding).
pub const ALPHAS: [f64; 3] = [0.25, 0.5, 1.0];

/// Per-item budget of both allocations.
const BUDGET: u32 = 3;

/// The two Table-2 stand-ins the curves are reported on.
pub const NETWORKS: [NamedNetwork; 2] = [NamedNetwork::Flixster, NamedNetwork::DoubanBook];

fn score_under(
    g: &Graph,
    model: &UtilityModel,
    allocation: &Allocation,
    objective: std::sync::Arc<dyn WelfareObjective>,
    opts: &ExpOptions,
) -> f64 {
    let ctx = opts.solve_ctx();
    let mut est =
        WelfareEstimator::new(g, model, ctx.sims, ctx.welfare_seed).with_objective(objective);
    if let Some(t) = ctx.threads {
        est = est.with_threads(t);
    }
    est.estimate(allocation)
}

/// The price-of-fairness table for one network.
pub fn fairness_for(which: NamedNetwork, opts: &ExpOptions) -> Table {
    let g = network(which, opts);
    let model = TwoItemConfig::new(1).model();
    let budgets = [BUDGET, BUDGET];
    let ctx = opts.solve_ctx();

    // Utilitarian-optimal proxy: the paper's bundleGRD, default objective.
    let plain = WelMax::on(&g)
        .model(model.clone())
        .budgets(budgets)
        .build()
        .expect("fairness WelMax instance");
    let util_opt = uic_core::registry()
        .iter()
        .find(|e| e.name == "bundle-grd")
        .expect("bundle-grd is registered")
        .build(&opts.solver_params())
        .expect("ExpOptions produce valid solver params")
        .solve(&plain, &ctx.with_sims(0))
        .allocation;

    // The greedy re-evaluates welfare per candidate pair; keep its inner
    // sims below the scoring budget so the sweep stays tractable.
    let greedy_params = SpecMap::new()
        .with("sims", (opts.sims / 2).max(30))
        .with("pool", 128u32);
    let mc_greedy = uic_core::registry()
        .iter()
        .find(|e| e.name == "mc-greedy")
        .expect("mc-greedy is registered");

    let mut t = Table::new(
        format!(
            "Price of fairness — {} (b = [{BUDGET}, {BUDGET}])",
            which.name()
        ),
        &[
            "alpha",
            "W_util(util-opt)",
            "W_util(ces-opt)",
            "W_ces(util-opt)",
            "W_ces(ces-opt)",
            "PoF",
            "CES gain",
        ],
    );
    for alpha in ALPHAS {
        let spec = ObjectiveSpec::Ces { alpha };
        let ces = spec.resolve(&g).expect("alpha is in (0, 1]");
        let inst = WelMax::on(&g)
            .model(model.clone())
            .budgets(budgets)
            .objective_spec(spec)
            .build()
            .expect("fairness WelMax instance");
        let ces_opt = mc_greedy
            .build(&greedy_params)
            .expect("greedy params are valid")
            .solve(&inst, &ctx.with_sims(0))
            .allocation;

        let util_of_util = score_under(
            &g,
            &model,
            &util_opt,
            uic_diffusion::default_objective(),
            opts,
        );
        let util_of_ces = score_under(
            &g,
            &model,
            &ces_opt,
            uic_diffusion::default_objective(),
            opts,
        );
        let ces_of_util = score_under(&g, &model, &util_opt, ces.clone(), opts);
        let ces_of_ces = score_under(&g, &model, &ces_opt, ces, opts);
        let pof = if util_of_util > 0.0 {
            1.0 - util_of_ces / util_of_util
        } else {
            0.0
        };
        let gain = if ces_of_util > 0.0 {
            ces_of_ces / ces_of_util
        } else {
            1.0
        };
        t.push_row(vec![
            format!("{alpha}"),
            fmt(util_of_util),
            fmt(util_of_ces),
            fmt(ces_of_util),
            fmt(ces_of_ces),
            fmt(pof),
            fmt(gain),
        ]);
    }
    t
}

/// Price-of-fairness curves on the two smallest Table-2 stand-ins.
pub fn fairness(opts: &ExpOptions) -> Vec<Table> {
    NETWORKS.iter().map(|&w| fairness_for(w, opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_table_shape_and_sanity() {
        let opts = ExpOptions::smoke();
        let t = fairness_for(NamedNetwork::Flixster, &opts);
        assert_eq!(t.len(), ALPHAS.len());
        let pof = t.column_f64("PoF").unwrap();
        let gain = t.column_f64("CES gain").unwrap();
        for (p, g) in pof.iter().zip(&gain) {
            assert!(p.is_finite() && g.is_finite());
            // PoF is a relative sacrifice: bounded by 1 above; tiny
            // negatives happen when greedy noses ahead of bundleGRD.
            assert!(*p <= 1.0 + 1e-9, "PoF {p}");
            assert!(*g >= 0.0, "gain {g}");
        }
        // α = 1: CES coincides with the utilitarian sum, so scoring any
        // fixed allocation under either objective agrees closely.
        let w_util = t.column_f64("W_util(util-opt)").unwrap();
        let w_ces = t.column_f64("W_ces(util-opt)").unwrap();
        let last = ALPHAS.len() - 1;
        assert!(
            (w_util[last] - w_ces[last]).abs() <= 1e-6 * w_util[last].abs().max(1.0),
            "α=1 mismatch: {} vs {}",
            w_util[last],
            w_ces[last]
        );
    }
}
