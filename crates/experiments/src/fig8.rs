//! **Figure 8**: (a) running time vs number of items; (b, c) welfare and
//! running time under the real Param; (d) the budget-skew study.

use crate::common::{fmt, network, run_algo, run_algo_unscored, Algo, ExpOptions};
use uic_datasets::{budget_splits, real_param_model, Config, NamedNetwork};
use uic_util::Table;

/// **Fig. 8(a)**: running time of the three multi-item algorithms as the
/// number of items grows 1–10 (Configuration 5, budget 50 per item).
/// Paper shape: bundleGRD flat (one PRIMA at b = 50 regardless of the
/// item count); item-disj grows (one IMM at `50·s`); bundle-disj grows
/// fastest (`s` IMM invocations).
pub fn fig8a(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Twitter, opts);
    let n = g.num_nodes();
    let per_item = 50u32.min(n / 2).max(1);
    let mut headers: Vec<&str> = vec!["items"];
    headers.extend(Algo::MULTI_ITEM.iter().map(|a| a.name()));
    let mut t = Table::new(
        format!("Figure 8(a): running time (ms) vs #items (budget {per_item}/item)"),
        &headers,
    );
    for s in 1..=10u32 {
        let model = Config::Additive.build(s, opts.seed);
        let budgets = vec![per_item; s as usize];
        let mut row = vec![s.to_string()];
        for algo in Algo::MULTI_ITEM {
            let r = run_algo_unscored(algo, &g, &budgets, &model, opts);
            row.push(format!("{:.1}", r.elapsed.as_secs_f64() * 1e3));
        }
        t.push_row(row);
    }
    t
}

/// **Fig. 8(b, c)**: welfare and running time under the real Param
/// (PS4 bundle), total budget 100–500 split 30/30/20/10/10.
/// item-disj is omitted as in the paper (every individual item has
/// negative utility, so its welfare is identically 0 — we show it once
/// in the smoke tests instead).
pub fn fig8bc(opts: &ExpOptions) -> (Table, Table) {
    let g = network(NamedNetwork::Twitter, opts);
    let n = g.num_nodes();
    let model = real_param_model();
    let algos = [Algo::BundleGrd, Algo::BundleDisj];
    let mut headers: Vec<&str> = vec!["total budget"];
    headers.extend(algos.iter().map(|a| a.name()));
    let mut welfare_t = Table::new("Figure 8(b): welfare, real Param", &headers);
    let mut time_t = Table::new("Figure 8(c): running time (ms), real Param", &headers);
    for total in [100u32, 200, 300, 400, 500] {
        let budgets: Vec<u32> = budget_splits::real_params(total)
            .into_iter()
            .map(|b| b.min(n))
            .collect();
        let mut wrow = vec![total.to_string()];
        let mut trow = vec![total.to_string()];
        for algo in algos {
            let r = run_algo(algo, &g, &budgets, &model, opts);
            wrow.push(fmt(r.welfare_mean()));
            trow.push(format!("{:.1}", r.elapsed.as_secs_f64() * 1e3));
        }
        welfare_t.push_row(wrow);
        time_t.push_row(trow);
    }
    (welfare_t, time_t)
}

/// **Fig. 8(d)**: bundleGRD welfare and running time under the three
/// budget distributions of a fixed total (500): Uniform, Large skew,
/// Moderate skew. Paper shape: welfare Uniform > Moderate > Large;
/// running time reversed (the skewed max budget forces more seeds).
pub fn fig8d(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Twitter, opts);
    let n = g.num_nodes();
    let model = real_param_model();
    let mut t = Table::new(
        "Figure 8(d): budget-skew effect (bundleGRD, total 500, real Param)",
        &["distribution", "welfare", "time (ms)"],
    );
    let distros: [(&str, Vec<u32>); 3] = [
        ("Uniform", budget_splits::uniform(500, 5)),
        ("Large skew", budget_splits::large_skew(500, 5)),
        ("Moderate skew", budget_splits::moderate_skew()),
    ];
    for (name, budgets) in distros {
        let budgets: Vec<u32> = budgets.into_iter().map(|b| b.min(n)).collect();
        let r = run_algo(Algo::BundleGrd, &g, &budgets, &model, opts);
        let w = r.welfare_mean();
        t.push_row(vec![
            name.to_string(),
            fmt(w),
            format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            scale: 0.008,
            sims: 50,
            ..Default::default()
        }
    }

    #[test]
    fn fig8a_bundlegrd_time_is_flat_in_items() {
        let t = fig8a(&tiny());
        assert_eq!(t.len(), 10);
        let bg = t.column_f64("bundleGRD").unwrap();
        // Flatness: time at 10 items within 4× of time at 1 item, while
        // bundle-disj grows by at least the item count's trend.
        assert!(
            bg[9] < bg[0] * 4.0 + 50.0,
            "bundleGRD time grew with items: {bg:?}"
        );
        let bd = t.column_f64("bundle-disj").unwrap();
        assert!(
            bd[9] > bd[0] * 1.5,
            "bundle-disj should grow with items: {bd:?}"
        );
    }

    #[test]
    fn fig8bc_bundlegrd_dominates_real_param() {
        let (welfare_t, time_t) = fig8bc(&tiny());
        assert_eq!(welfare_t.len(), 5);
        assert_eq!(time_t.len(), 5);
        let bg = welfare_t.column_f64("bundleGRD").unwrap();
        let bd = welfare_t.column_f64("bundle-disj").unwrap();
        let bg_sum: f64 = bg.iter().sum();
        let bd_sum: f64 = bd.iter().sum();
        assert!(
            bg_sum >= bd_sum * 0.9,
            "bundleGRD {bg_sum} vs bundle-disj {bd_sum}"
        );
        assert!(bg.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn fig8d_has_three_rows() {
        let t = fig8d(&tiny());
        assert_eq!(t.len(), 3);
        let w: Vec<f64> = t.column_f64("welfare").unwrap();
        assert!(w.iter().all(|x| x.is_finite()));
    }
}
