//! # uic-experiments
//!
//! The harness that regenerates **every table and figure** of the
//! paper's evaluation (§4.3) on the stand-in networks. One module per
//! artifact; each returns [`uic_util::Table`]s that the `uic-exp` binary
//! prints and optionally dumps as CSV. EXPERIMENTS.md records paper-vs-
//! measured shapes.
//!
//! All experiments accept [`ExpOptions`] so the same code path serves
//! quick smoke runs (`scale ≈ 0.01`), the default laptop reproduction,
//! and the criterion benches in `uic-bench`.
//!
//! Beyond the paper's artifacts, [`fairness`] reports price-of-fairness
//! curves for the pluggable welfare objectives (utilitarian-optimal vs
//! CES-optimal allocations, each scored under both objectives).

pub mod ablations;
pub mod common;
pub mod fairness;
pub mod fig4;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tables;

pub use common::ExpOptions;
