//! **Figure 4**: expected social welfare of the five algorithms in the
//! four two-item configurations on the Douban-Movie stand-in.
//!
//! Paper shapes to reproduce: bundleGRD dominates; RR-SIM+/RR-CIM land
//! near bundleGRD (they effectively copy seeds in these configurations);
//! item-disj trails by up to ~5× in the configurations with a
//! negative-utility item (3/4), where bundle-disj ≡ bundleGRD; in
//! configurations 1/2, bundle-disj ≡ item-disj.

use crate::common::{fmt, network, run_algo, Algo, ExpOptions};
use uic_datasets::{NamedNetwork, TwoItemConfig};
use uic_util::Table;

/// Runs the Fig. 4 sweep for one configuration.
pub fn fig4_config(cfg: TwoItemConfig, opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::DoubanMovie, opts);
    let model = cfg.model();
    let mut headers: Vec<&str> = vec![if cfg.uniform_budgets() {
        "budget(both)"
    } else {
        "budget(i2)"
    }];
    headers.extend(Algo::TWO_ITEM.iter().map(|a| a.name()));
    let mut t = Table::new(
        format!(
            "Figure 4({}): welfare, Configuration {} (Douban-Movie stand-in)",
            (b'a' + cfg.id - 1) as char,
            cfg.id
        ),
        &headers,
    );
    let n = g.num_nodes();
    for sweep in cfg.sweep() {
        let budgets_arr = cfg.budgets(sweep);
        let budgets: Vec<u32> = budgets_arr.iter().map(|&b| b.min(n)).collect();
        let mut row = vec![sweep.to_string()];
        for algo in Algo::TWO_ITEM {
            let r = run_algo(algo, &g, &budgets, &model, opts);
            row.push(fmt(r.welfare_mean()));
        }
        t.push_row(row);
    }
    t
}

/// All four configuration panels.
pub fn fig4(opts: &ExpOptions) -> Vec<Table> {
    TwoItemConfig::all()
        .into_iter()
        .map(|cfg| fig4_config(cfg, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions {
            scale: 0.01,
            sims: 80,
            ..Default::default()
        }
    }

    #[test]
    fn config1_bundlegrd_dominates_and_matches_comic() {
        let opts = tiny_opts();
        let t = fig4_config(TwoItemConfig::new(1), &opts);
        assert_eq!(t.len(), 5);
        let bg = t.column_f64("bundleGRD").unwrap();
        let id = t.column_f64("item-disj").unwrap();
        let bd = t.column_f64("bundle-disj").unwrap();
        let sim = t.column_f64("RR-SIM+").unwrap();
        for i in 0..t.len() {
            // bundleGRD ≥ item-disj (within MC noise).
            assert!(
                bg[i] >= id[i] * 0.9,
                "row {i}: bundleGRD {} vs item-disj {}",
                bg[i],
                id[i]
            );
            // RR-SIM+ lands in bundleGRD's ballpark in Config 1.
            assert!(
                sim[i] >= bg[i] * 0.5,
                "row {i}: RR-SIM+ {} far below bundleGRD {}",
                sim[i],
                bg[i]
            );
            // Config 1: both items individually profitable ⇒ bundle-disj
            // and item-disj coincide by construction.
            assert!(
                (bd[i] - id[i]).abs() <= 0.25 * id[i].max(1.0),
                "row {i}: bundle-disj {} should track item-disj {}",
                bd[i],
                id[i]
            );
        }
        // Welfare grows with budget.
        assert!(bg.last().unwrap() > bg.first().unwrap());
    }

    #[test]
    fn config3_bundling_beats_item_disj_clearly() {
        let opts = tiny_opts();
        let t = fig4_config(TwoItemConfig::new(3), &opts);
        let bg = t.column_f64("bundleGRD").unwrap();
        let id = t.column_f64("item-disj").unwrap();
        // The paper's headline gap: with a negative-utility item,
        // bundleGRD's co-allocation multiplies welfare over item-disj.
        let bg_total: f64 = bg.iter().sum();
        let id_total: f64 = id.iter().sum();
        assert!(
            bg_total > 1.3 * id_total,
            "bundleGRD {bg_total} should clearly beat item-disj {id_total}"
        );
    }
}
