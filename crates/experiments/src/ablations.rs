//! Ablation and extension experiments beyond the paper's figures,
//! exercising the §5 discussion points:
//!
//! * **Triggering-model generality** — bundleGRD under LT vs IC
//!   ("our results and techniques carry over unchanged to any triggering
//!   propagation model").
//! * **Submodular prices** — volume discounts keep utility supermodular
//!   and "further favor item bundling": welfare must not decrease.
//! * **Personalized noise** — the open-question regime; we measure how
//!   the same allocation scores when noise decorrelates across users.
//! * **Competition (submodular valuation)** — perfect substitutes under
//!   UIC: adopters take exactly one item, and splitting seeds beats
//!   bundling.
//! * **PRIMA vs per-budget IMM** — the oracle's cost advantage.
//! * **Prefix preservation** (Definition 1) — PRIMA and SKIM orderings vs
//!   naively reusing an IMM prefix, scored per budget against dedicated
//!   per-budget IMM runs.
//! * **The IM algorithm zoo** — IMM / TIM⁺ / SSA / OPIM-C / SKIM /
//!   high-degree / PageRank head-to-head at one budget.
//! * **bundleGRD vs direct pair-greedy** — the naive greedy on ρ itself.

// The ablations deliberately drive the raw engine functions (custom
// diffusion models, candidate pools, per-budget orderings) below the
// registry facade.
#![allow(deprecated)]

use crate::common::{fmt, network, score_welfare, ExpOptions};
use std::sync::Arc;
use uic_core::bundle_grd;
use uic_datasets::{NamedNetwork, TwoItemConfig};
use uic_diffusion::{personalized_welfare_mc, Allocation, WelfareEstimator};
use uic_im::{imm, opim_c, prima, skim, ssa, tim_plus, DiffusionModel, RrCollection, SkimOptions};
use uic_items::{CoverageValuation, NoiseModel, Price, UtilityModel};
use uic_util::Table;

/// bundleGRD under IC vs LT on the Flixster stand-in (Config 1 model).
pub fn ablation_triggering_model(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let cfg = TwoItemConfig::new(1);
    let model = cfg.model();
    let mut t = Table::new(
        "Ablation: bundleGRD under IC vs LT (Config 1, Flixster stand-in)",
        &[
            "budget",
            "welfare (IC seeds)",
            "welfare (LT seeds)",
            "|seed overlap|",
        ],
    );
    for k in [10u32, 30, 50] {
        let k = k.min(n);
        let budgets = [k, k];
        let ic = bundle_grd(
            &g,
            &budgets,
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        );
        let lt = bundle_grd(
            &g,
            &budgets,
            opts.eps,
            opts.ell,
            DiffusionModel::LT,
            opts.seed,
        );
        // Score both allocations under the same (IC-based) UIC welfare.
        let w_ic = score_welfare(&g, &model, &ic.allocation, opts);
        let w_lt = score_welfare(&g, &model, &lt.allocation, opts);
        let overlap = ic.order.iter().filter(|v| lt.order.contains(v)).count();
        t.push_row(vec![
            k.to_string(),
            fmt(w_ic),
            fmt(w_lt),
            overlap.to_string(),
        ]);
    }
    t
}

/// Additive vs volume-discounted prices: discounts only help welfare.
pub fn ablation_submodular_prices(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let cfg = TwoItemConfig::new(3);
    let base = cfg.model();
    let mut t = Table::new(
        "Ablation: additive vs submodular (discounted) prices (Config 3)",
        &[
            "budget",
            "welfare (additive P)",
            "welfare (10% bundle discount)",
        ],
    );
    let discounted = UtilityModel::new(
        // Same valuation/noise; prices discounted for bundles.
        {
            // Rebuild the Config 3 valuation (table 0,3,3,8).
            Arc::new(uic_items::TableValuation::from_table(
                2,
                vec![0.0, 3.0, 3.0, 8.0],
            ))
        },
        Price::with_bundle_discount(vec![3.0, 4.0], 0.10),
        base.noise().clone(),
    );
    for k in [10u32, 30, 50] {
        let k = k.min(n);
        let r = bundle_grd(
            &g,
            &[k, k],
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        );
        let w_add = score_welfare(&g, &base, &r.allocation, opts);
        let w_disc = score_welfare(&g, &discounted, &r.allocation, opts);
        t.push_row(vec![k.to_string(), fmt(w_add), fmt(w_disc)]);
    }
    t
}

/// Population vs personalized noise on the same allocation.
pub fn ablation_personalized_noise(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let cfg = TwoItemConfig::new(1);
    let model = cfg.model();
    let mut t = Table::new(
        "Ablation: population vs personalized noise (Config 1)",
        &["budget", "welfare (population)", "welfare (personalized)"],
    );
    for k in [10u32, 30, 50] {
        let k = k.min(n);
        let r = bundle_grd(
            &g,
            &[k, k],
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        );
        let pop = WelfareEstimator::new(&g, &model, opts.sims, opts.seed).estimate(&r.allocation);
        let pers = personalized_welfare_mc(&g, &r.allocation, &model, opts.sims, opts.seed).mean();
        t.push_row(vec![k.to_string(), fmt(pop), fmt(pers)]);
    }
    t
}

/// Competition (perfect substitutes): bundling loses its advantage and
/// disjoint seeding wins — the mirror image of the complementary story.
pub fn ablation_competition(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    // Two perfect substitutes worth 3 each, price 1, no noise: a user
    // gains from at most one item.
    let model = UtilityModel::new(
        Arc::new(CoverageValuation::substitutes(2, 3.0)),
        Price::additive(vec![1.0, 1.0]),
        NoiseModel::none(2),
    );
    let mut t = Table::new(
        "Ablation: perfect substitutes (submodular valuation)",
        &["budget", "welfare bundled seeds", "welfare disjoint seeds"],
    );
    for k in [10u32, 30] {
        let k = k.min(n / 2);
        let bundled = bundle_grd(
            &g,
            &[k, k],
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        );
        let disj = uic_baselines::item_disj(
            &g,
            &[k, k],
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        );
        let w_bundled = score_welfare(&g, &model, &bundled.allocation, opts);
        let w_disj = score_welfare(&g, &model, &disj.allocation, opts);
        t.push_row(vec![k.to_string(), fmt(w_bundled), fmt(w_disj)]);
    }
    t
}

/// PRIMA once vs IMM per budget: cost and prefix quality.
pub fn ablation_prima_vs_imm(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::DoubanBook, opts);
    let n = g.num_nodes();
    let budgets: Vec<u32> = [50u32, 30, 20, 10, 5].iter().map(|&b| b.min(n)).collect();
    let start = std::time::Instant::now();
    let p = prima(
        &g,
        &budgets,
        opts.eps,
        opts.ell,
        DiffusionModel::IC,
        opts.seed,
    );
    let prima_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = std::time::Instant::now();
    let mut imm_sets = 0usize;
    for &k in &budgets {
        imm_sets += imm(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed).rr_sets_final;
    }
    let imm_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut t = Table::new(
        "Ablation: PRIMA once vs IMM per budget (5 budgets)",
        &["method", "RR sets", "time (ms)"],
    );
    t.push_row(vec![
        "PRIMA(once)".into(),
        p.rr_sets_final.to_string(),
        format!("{prima_ms:.1}"),
    ]);
    t.push_row(vec![
        "IMM × 5".into(),
        imm_sets.to_string(),
        format!("{imm_ms:.1}"),
    ]);
    t
}

/// Welfare vs raw adoption count: maximizing adoptions is NOT maximizing
/// welfare (the paper's motivating objective distinction).
pub fn ablation_welfare_vs_adoption(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let cfg = TwoItemConfig::new(3);
    let model = cfg.model();
    let k = 20u32.min(n);
    let r = bundle_grd(
        &g,
        &[k, k],
        opts.eps,
        opts.ell,
        DiffusionModel::IC,
        opts.seed,
    );
    let est = WelfareEstimator::new(&g, &model, opts.sims, opts.seed);
    let welfare = est.estimate(&r.allocation);
    let adoptions = est.estimate_adoptions(&r.allocation);
    // A bad-welfare allocation can still have adoption volume: seed only
    // the cheap positive item everywhere.
    let single: Allocation = Allocation::from_item_seeds(&[r.order.clone(), vec![]]);
    let w_single = est.estimate(&single);
    let a_single = est.estimate_adoptions(&single);
    let mut t = Table::new(
        "Ablation: welfare vs adoption count (Config 3)",
        &[
            "allocation",
            "E[welfare]",
            "E[#adoptions]",
            "welfare/adoption",
        ],
    );
    t.push_row(vec![
        "bundleGRD (both items)".into(),
        fmt(welfare),
        fmt(adoptions),
        fmt(welfare / adoptions.max(1e-9)),
    ]);
    t.push_row(vec![
        "i1-only on same seeds".into(),
        fmt(w_single),
        fmt(a_single),
        fmt(w_single / a_single.max(1e-9)),
    ]);
    t
}

/// Prefix preservation (Definition 1) across a budget vector: PRIMA's
/// and SKIM's single orderings vs naively reusing the prefix of one IMM
/// run at the max budget, all scored by a neutral RR judge against
/// dedicated per-budget IMM runs (the "pay-per-budget" reference).
pub fn ablation_prefix_preservation(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let budgets: Vec<u32> = [50u32, 30, 10].iter().map(|&b| b.min(n)).collect();
    let b_max = budgets[0];
    let p = prima(
        &g,
        &budgets,
        opts.eps,
        opts.ell,
        DiffusionModel::IC,
        opts.seed,
    );
    let s = skim(&g, b_max, &SkimOptions::default(), opts.seed);
    let imm_max = imm(&g, b_max, opts.eps, opts.ell, DiffusionModel::IC, opts.seed);
    // Neutral judge: a fresh RR collection none of the contestants saw.
    let mut judge = RrCollection::new(&g, DiffusionModel::IC, opts.seed ^ 0x1D6E);
    judge.extend_to(&g, 40_000);
    let mut t = Table::new(
        "Ablation: prefix preservation (spread per budget, one ordering each)",
        &[
            "budget",
            "PRIMA prefix",
            "SKIM prefix",
            "IMM@bmax prefix",
            "IMM per budget (reference)",
        ],
    );
    for &k in &budgets {
        let reference = imm(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed).seeds;
        t.push_row(vec![
            k.to_string(),
            fmt(judge.estimate_spread(p.seeds_for_budget(k))),
            fmt(judge.estimate_spread(s.prefix(k as usize))),
            fmt(judge.estimate_spread(&imm_max.seeds[..k as usize])),
            fmt(judge.estimate_spread(&reference)),
        ]);
    }
    t
}

/// The single-item IM algorithm zoo at one budget: quality (neutral RR
/// judge), sampling cost, and wall-clock time in one table.
pub fn ablation_im_algorithms(opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Flixster, opts);
    let n = g.num_nodes();
    let k = 20u32.min(n);
    let mut judge = RrCollection::new(&g, DiffusionModel::IC, opts.seed ^ 0x2A11);
    judge.extend_to(&g, 40_000);
    let mut t = Table::new(
        "Ablation: IM algorithm zoo (single item, one budget)",
        &[
            "algorithm",
            "spread (judge)",
            "cost (RR sets / instances)",
            "time (ms)",
        ],
    );
    let mut push = |name: &str, seeds: &[u32], cost: u64, ms: f64| {
        t.push_row(vec![
            name.into(),
            fmt(judge.estimate_spread(seeds)),
            cost.to_string(),
            format!("{ms:.1}"),
        ]);
    };
    let clock = std::time::Instant::now();
    let r = imm(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed);
    push(
        "IMM",
        &r.seeds,
        r.rr_sets_total,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = tim_plus(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed);
    push(
        "TIM+",
        &r.seeds,
        r.rr_sets_total,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = ssa(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed);
    push(
        "SSA",
        &r.seeds,
        (r.rr_sets_selection + r.rr_sets_validation) as u64,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = opim_c(&g, k, opts.eps, opts.ell, DiffusionModel::IC, opts.seed);
    push(
        "OPIM-C",
        &r.seeds,
        r.rr_sets_total,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = skim(&g, k, &SkimOptions::default(), opts.seed);
    push(
        "SKIM",
        &r.seeds,
        SkimOptions::default().num_instances as u64,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = uic_baselines::degree_top(&g, &[k]);
    push(
        "high-degree",
        &r.allocation.seeds_of_item(0),
        0,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    let clock = std::time::Instant::now();
    let r = uic_baselines::pagerank_top(&g, &[k], 0.85, 50);
    push(
        "PageRank",
        &r.allocation.seeds_of_item(0),
        0,
        clock.elapsed().as_secs_f64() * 1e3,
    );
    t
}

/// bundleGRD vs the direct Monte-Carlo pair-greedy on ρ: same welfare
/// target, wildly different cost — and no guarantee for the pair-greedy
/// (ρ is neither submodular nor supermodular).
pub fn ablation_pair_greedy(opts: &ExpOptions) -> Table {
    let g = network(
        NamedNetwork::Flixster,
        &ExpOptions {
            scale: (opts.scale * 0.25).max(0.002),
            ..*opts
        },
    );
    let n = g.num_nodes();
    let cfg = TwoItemConfig::new(3);
    let model = cfg.model();
    let k = 5u32.min(n);
    let budgets = [k, k];
    let clock = std::time::Instant::now();
    let bg = bundle_grd(
        &g,
        &budgets,
        opts.eps,
        opts.ell,
        DiffusionModel::IC,
        opts.seed,
    );
    let bg_ms = clock.elapsed().as_secs_f64() * 1e3;
    // Pair-greedy over a degree-preselected candidate pool (the full
    // pool is quadratic; this is already orders of magnitude slower).
    let pool: Vec<u32> = {
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        order.truncate((4 * k as usize).max(20).min(n as usize));
        order
    };
    let clock = std::time::Instant::now();
    let pg =
        uic_baselines::mc_greedy_welfare(&g, &model, &budgets, &pool, opts.sims / 4, opts.seed);
    let pg_ms = clock.elapsed().as_secs_f64() * 1e3;
    let mut t = Table::new(
        "Ablation: bundleGRD vs direct pair-greedy on welfare (Config 3)",
        &["method", "E[welfare]", "time (ms)"],
    );
    t.push_row(vec![
        "bundleGRD".into(),
        fmt(score_welfare(&g, &model, &bg.allocation, opts)),
        format!("{bg_ms:.1}"),
    ]);
    t.push_row(vec![
        "pair-greedy (MC)".into(),
        fmt(score_welfare(&g, &model, &pg.allocation, opts)),
        format!("{pg_ms:.1}"),
    ]);
    t
}

/// Runs the whole ablation suite.
pub fn ablations(opts: &ExpOptions) -> Vec<Table> {
    vec![
        ablation_triggering_model(opts),
        ablation_submodular_prices(opts),
        ablation_personalized_noise(opts),
        ablation_competition(opts),
        ablation_prima_vs_imm(opts),
        ablation_welfare_vs_adoption(opts),
        ablation_prefix_preservation(opts),
        ablation_im_algorithms(opts),
        ablation_pair_greedy(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            scale: 0.02,
            sims: 60,
            ..Default::default()
        }
    }

    #[test]
    fn submodular_prices_never_hurt() {
        let t = ablation_submodular_prices(&tiny());
        let add = t.column_f64("welfare (additive P)").unwrap();
        let disc = t.column_f64("welfare (10% bundle discount)").unwrap();
        for i in 0..t.len() {
            assert!(
                disc[i] >= add[i] - 1e-9,
                "row {i}: discount lowered welfare {} → {}",
                add[i],
                disc[i]
            );
        }
    }

    #[test]
    fn lt_and_ic_orders_agree_on_quality() {
        let t = ablation_triggering_model(&tiny());
        let ic = t.column_f64("welfare (IC seeds)").unwrap();
        let lt = t.column_f64("welfare (LT seeds)").unwrap();
        for i in 0..t.len() {
            assert!(ic[i].is_finite() && lt[i].is_finite());
            assert!(lt[i] > 0.0);
        }
    }

    #[test]
    fn personalized_noise_is_reported() {
        let t = ablation_personalized_noise(&tiny());
        assert_eq!(t.len(), 3);
        for col in ["welfare (population)", "welfare (personalized)"] {
            assert!(t.column_f64(col).unwrap().iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn substitutes_favor_disjoint_seeds() {
        let t = ablation_competition(&tiny());
        let bundled = t.column_f64("welfare bundled seeds").unwrap();
        let disj = t.column_f64("welfare disjoint seeds").unwrap();
        // Disjoint seeding reaches at least as many users; with perfect
        // substitutes that translates to ≥ welfare (within MC noise).
        let b_total: f64 = bundled.iter().sum();
        let d_total: f64 = disj.iter().sum();
        assert!(
            d_total >= b_total * 0.95,
            "disjoint {d_total} should be ≥ bundled {b_total}"
        );
    }

    #[test]
    fn welfare_vs_adoption_distinction_shows() {
        let t = ablation_welfare_vs_adoption(&tiny());
        assert_eq!(t.len(), 2);
        let w = t.column_f64("E[welfare]").unwrap();
        // bundleGRD's welfare strictly exceeds the i1-only allocation.
        assert!(w[0] > w[1], "bundled welfare {} vs single {}", w[0], w[1]);
    }

    #[test]
    fn prefix_preserving_orderings_track_the_per_budget_reference() {
        let t = ablation_prefix_preservation(&tiny());
        let prima_col = t.column_f64("PRIMA prefix").unwrap();
        let skim_col = t.column_f64("SKIM prefix").unwrap();
        let reference = t.column_f64("IMM per budget (reference)").unwrap();
        for i in 0..t.len() {
            assert!(
                prima_col[i] >= 0.8 * reference[i],
                "row {i}: PRIMA {} vs reference {}",
                prima_col[i],
                reference[i]
            );
            assert!(
                skim_col[i] >= 0.8 * reference[i],
                "row {i}: SKIM {} vs reference {}",
                skim_col[i],
                reference[i]
            );
        }
    }

    #[test]
    fn im_zoo_guaranteed_algorithms_cluster_in_quality() {
        let t = ablation_im_algorithms(&tiny());
        assert_eq!(t.len(), 7);
        let spreads = t.column_f64("spread (judge)").unwrap();
        let best = spreads.iter().cloned().fold(f64::MIN, f64::max);
        // The five guaranteed algorithms (rows 0–4) must be within 15% of
        // the best; the structural heuristics may trail.
        for (i, &s) in spreads.iter().take(5).enumerate() {
            assert!(s >= 0.85 * best, "row {i}: spread {s} vs best {best}");
        }
    }

    #[test]
    fn pair_greedy_is_slower_and_not_better() {
        let t = ablation_pair_greedy(&tiny());
        let w = t.column_f64("E[welfare]").unwrap();
        assert!(w[0].is_finite() && w[1].is_finite());
        assert!(
            w[0] >= 0.7 * w[1],
            "bundleGRD {} should not be dominated by pair-greedy {}",
            w[0],
            w[1]
        );
    }
}
