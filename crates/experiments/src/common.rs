//! Shared experiment plumbing: options, algorithm dispatch, welfare
//! scoring.

use uic_baselines::BaselineResult;
use uic_core::bundle_grd;
use uic_diffusion::{Allocation, WelfareEstimator};
use uic_graph::Graph;
use uic_im::DiffusionModel;
use uic_items::{GapParams, UtilityModel};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Network scale factor (1.0 = the DESIGN.md default sizes).
    pub scale: f64,
    /// Monte-Carlo simulations per welfare estimate.
    pub sims: u32,
    /// IMM/PRIMA approximation parameter ε (paper default 0.5).
    pub eps: f64,
    /// IMM/PRIMA failure exponent ℓ (paper default 1).
    pub ell: f64,
    /// Master seed — every stochastic component derives from it.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.05,
            sims: 300,
            eps: 0.5,
            ell: 1.0,
            seed: 20190630, // SIGMOD'19 opening day
        }
    }
}

impl ExpOptions {
    /// A tiny configuration for smoke tests and benches.
    pub fn smoke() -> Self {
        ExpOptions {
            scale: 0.01,
            sims: 60,
            ..Default::default()
        }
    }
}

/// The seed-selection algorithms compared in Figs. 4–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's bundleGRD (Algorithm 1).
    BundleGrd,
    /// RR-SIM+ (Com-IC, self-influence).
    RrSimPlus,
    /// RR-CIM (Com-IC, complement-aware).
    RrCim,
    /// item-disj.
    ItemDisj,
    /// bundle-disj.
    BundleDisj,
}

impl Algo {
    /// The two-item comparison set of Fig. 4/5/6.
    pub const TWO_ITEM: [Algo; 5] = [
        Algo::BundleGrd,
        Algo::RrSimPlus,
        Algo::RrCim,
        Algo::ItemDisj,
        Algo::BundleDisj,
    ];

    /// The multi-item comparison set of Fig. 7 (Com-IC algorithms cannot
    /// go beyond two items).
    pub const MULTI_ITEM: [Algo; 3] = [Algo::BundleGrd, Algo::ItemDisj, Algo::BundleDisj];

    /// Display name as used in the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::BundleGrd => "bundleGRD",
            Algo::RrSimPlus => "RR-SIM+",
            Algo::RrCim => "RR-CIM",
            Algo::ItemDisj => "item-disj",
            Algo::BundleDisj => "bundle-disj",
        }
    }
}

/// Runs one algorithm on a WelMax input and returns its allocation plus
/// cost counters. `gap` is required by the Com-IC algorithms (two items
/// only); `model` by bundle-disj (deterministic utilities).
pub fn run_algo(
    algo: Algo,
    g: &Graph,
    budgets: &[u32],
    model: &UtilityModel,
    gap: Option<GapParams>,
    opts: &ExpOptions,
) -> BaselineResult {
    match algo {
        Algo::BundleGrd => {
            let r = bundle_grd(
                g,
                budgets,
                opts.eps,
                opts.ell,
                DiffusionModel::IC,
                opts.seed,
            );
            BaselineResult {
                allocation: r.allocation,
                rr_sets_final: r.rr_sets_final,
                rr_sets_total: r.rr_sets_total,
                elapsed: r.elapsed,
            }
        }
        Algo::ItemDisj => uic_baselines::item_disj(
            g,
            budgets,
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        ),
        Algo::BundleDisj => uic_baselines::bundle_disj(
            g,
            budgets,
            model,
            opts.eps,
            opts.ell,
            DiffusionModel::IC,
            opts.seed,
        ),
        Algo::RrSimPlus => {
            let gap = gap.expect("RR-SIM+ needs GAP parameters");
            assert_eq!(budgets.len(), 2, "RR-SIM+ handles exactly two items");
            uic_baselines::rr_sim_plus(
                g, gap, budgets[0], budgets[1], opts.eps, opts.ell, opts.seed,
            )
        }
        Algo::RrCim => {
            let gap = gap.expect("RR-CIM needs GAP parameters");
            assert_eq!(budgets.len(), 2, "RR-CIM handles exactly two items");
            uic_baselines::rr_cim(
                g, gap, budgets[0], budgets[1], opts.eps, opts.ell, opts.seed,
            )
        }
    }
}

/// Scores an allocation with the shared UIC welfare estimator.
pub fn score_welfare(
    g: &Graph,
    model: &UtilityModel,
    allocation: &Allocation,
    opts: &ExpOptions,
) -> f64 {
    WelfareEstimator::new(g, model, opts.sims, opts.seed ^ 0xEF_AE).estimate(allocation)
}

/// Formats a welfare/number cell consistently.
pub fn fmt(x: f64) -> String {
    uic_util::table::fmt_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_datasets::TwoItemConfig;
    use uic_datasets::{named_network, NamedNetwork};

    #[test]
    fn all_two_item_algorithms_run_end_to_end() {
        let opts = ExpOptions::smoke();
        let g = named_network(NamedNetwork::Flixster, opts.scale, opts.seed);
        let cfg = TwoItemConfig::new(1);
        let model = cfg.model();
        let gap = Some(cfg.gap());
        for algo in Algo::TWO_ITEM {
            let r = run_algo(algo, &g, &[3, 3], &model, gap, &opts);
            assert!(
                r.allocation.respects_budgets(&[3, 3]),
                "{} violated budgets",
                algo.name()
            );
            let w = score_welfare(&g, &model, &r.allocation, &opts);
            assert!(w.is_finite(), "{} welfare NaN", algo.name());
        }
    }

    #[test]
    fn algo_names_match_paper_legends() {
        assert_eq!(Algo::BundleGrd.name(), "bundleGRD");
        assert_eq!(Algo::TWO_ITEM.len(), 5);
        assert_eq!(Algo::MULTI_ITEM.len(), 3);
    }

    #[test]
    fn default_options_sane() {
        let o = ExpOptions::default();
        assert!(o.scale > 0.0 && o.sims > 0 && o.eps > 0.0);
    }
}
