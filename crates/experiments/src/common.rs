//! Shared experiment plumbing: options, registry-backed algorithm
//! dispatch, welfare scoring.

use uic_core::{SolveCtx, SolveReport, WelMax};
use uic_datasets::{named_network, NamedNetwork, SpecMap};
use uic_diffusion::{Allocation, WelfareEstimator};
use uic_graph::Graph;
use uic_items::UtilityModel;

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Network scale factor (1.0 = the DESIGN.md default sizes).
    pub scale: f64,
    /// Monte-Carlo simulations per welfare estimate.
    pub sims: u32,
    /// IMM/PRIMA approximation parameter ε (paper default 0.5).
    pub eps: f64,
    /// IMM/PRIMA failure exponent ℓ (paper default 1).
    pub ell: f64,
    /// Master seed — every stochastic component derives from it.
    pub seed: u64,
    /// Welfare-estimator worker threads; `None` sizes automatically.
    /// Either way the estimate is bit-identical (the PR 2 block reducer).
    pub threads: Option<usize>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.05,
            sims: 300,
            eps: 0.5,
            ell: 1.0,
            seed: 20190630, // SIGMOD'19 opening day
            threads: None,
        }
    }
}

impl ExpOptions {
    /// A tiny configuration for smoke tests and benches.
    pub fn smoke() -> Self {
        ExpOptions {
            scale: 0.01,
            sims: 60,
            ..Default::default()
        }
    }

    /// The solver run context these options induce. `SolveCtx::new`
    /// already decouples the welfare stream from the algorithm seed with
    /// the derivation the historical experiment code used, so regenerated
    /// figures match earlier revisions bit-for-bit.
    pub fn solve_ctx(&self) -> SolveCtx {
        SolveCtx::new(self.seed)
            .with_sims(self.sims)
            .with_threads(self.threads)
    }

    /// Parameter overrides every registry entry reads what it needs from.
    pub fn solver_params(&self) -> SpecMap {
        SpecMap::new().with("eps", self.eps).with("ell", self.ell)
    }
}

/// The named stand-in network every experiment builds its input from.
///
/// [`named_network`] is snapshot-cache aware: when the
/// `UIC_SNAPSHOT_CACHE` environment variable names a directory, the
/// graph is built once and then loaded from its binary snapshot in
/// milliseconds on every later run — and regenerated directly
/// otherwise. Either path yields the identical graph (asserted in the
/// cache's test suite), so figures never depend on whether the cache
/// was warm. An explicit [`uic_datasets::SnapshotCache`] can also be
/// driven directly for non-experiment callers.
pub fn network(which: NamedNetwork, opts: &ExpOptions) -> Graph {
    named_network(which, opts.scale, opts.seed)
}

/// The seed-selection algorithms compared in Figs. 4–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's bundleGRD (Algorithm 1).
    BundleGrd,
    /// RR-SIM+ (Com-IC, self-influence).
    RrSimPlus,
    /// RR-CIM (Com-IC, complement-aware).
    RrCim,
    /// item-disj.
    ItemDisj,
    /// bundle-disj.
    BundleDisj,
}

impl Algo {
    /// The two-item comparison set of Fig. 4/5/6.
    pub const TWO_ITEM: [Algo; 5] = [
        Algo::BundleGrd,
        Algo::RrSimPlus,
        Algo::RrCim,
        Algo::ItemDisj,
        Algo::BundleDisj,
    ];

    /// The multi-item comparison set of Fig. 7 (Com-IC algorithms cannot
    /// go beyond two items).
    pub const MULTI_ITEM: [Algo; 3] = [Algo::BundleGrd, Algo::ItemDisj, Algo::BundleDisj];

    /// Display name as used in the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::BundleGrd => "bundleGRD",
            Algo::RrSimPlus => "RR-SIM+",
            Algo::RrCim => "RR-CIM",
            Algo::ItemDisj => "item-disj",
            Algo::BundleDisj => "bundle-disj",
        }
    }

    /// The solver-registry key this legend entry dispatches to.
    pub fn key(self) -> &'static str {
        match self {
            Algo::BundleGrd => "bundle-grd",
            Algo::RrSimPlus => "rr-sim+",
            Algo::RrCim => "rr-cim",
            Algo::ItemDisj => "item-disj",
            Algo::BundleDisj => "bundle-disj",
        }
    }
}

fn run_algo_with_ctx(
    algo: Algo,
    g: &Graph,
    budgets: &[u32],
    model: &UtilityModel,
    opts: &ExpOptions,
    ctx: &SolveCtx,
) -> SolveReport {
    // Budget sweeps keep item identity even when a swept budget crosses
    // a fixed one (Fig. 4 configs 2/4), so the canonical ordering is
    // explicitly waived.
    let inst = WelMax::on(g)
        .model(model.clone())
        .budgets(budgets)
        .any_item_order()
        .build()
        .expect("experiment WelMax instance");
    let solver = uic_core::registry()
        .iter()
        .find(|e| e.name == algo.key())
        .expect("every Algo key is registered")
        .build(&opts.solver_params())
        .expect("ExpOptions produce valid solver params");
    solver.solve(&inst, ctx)
}

/// Runs one algorithm on a WelMax input through the solver registry and
/// returns its scored [`SolveReport`] (welfare mean ± CI attached). The
/// Com-IC algorithms derive their GAP parameters from `model`; bundle-disj
/// reads its deterministic utilities from it.
pub fn run_algo(
    algo: Algo,
    g: &Graph,
    budgets: &[u32],
    model: &UtilityModel,
    opts: &ExpOptions,
) -> SolveReport {
    run_algo_with_ctx(algo, g, budgets, model, opts, &opts.solve_ctx())
}

/// [`run_algo`] without welfare scoring — for the running-time and
/// RR-set-count figures, where scoring would only burn cycles.
pub fn run_algo_unscored(
    algo: Algo,
    g: &Graph,
    budgets: &[u32],
    model: &UtilityModel,
    opts: &ExpOptions,
) -> SolveReport {
    run_algo_with_ctx(
        algo,
        g,
        budgets,
        model,
        opts,
        &opts.solve_ctx().with_sims(0),
    )
}

/// Scores a standalone allocation with the shared UIC welfare estimator
/// (same stream as [`run_algo`]'s attached statistics).
pub fn score_welfare(
    g: &Graph,
    model: &UtilityModel,
    allocation: &Allocation,
    opts: &ExpOptions,
) -> f64 {
    let ctx = opts.solve_ctx();
    let mut est = WelfareEstimator::new(g, model, ctx.sims, ctx.welfare_seed);
    if let Some(t) = ctx.threads {
        est = est.with_threads(t);
    }
    est.estimate(allocation)
}

/// Formats a welfare/number cell consistently.
pub fn fmt(x: f64) -> String {
    uic_util::table::fmt_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uic_datasets::TwoItemConfig;
    use uic_datasets::{named_network, NamedNetwork};

    #[test]
    fn all_two_item_algorithms_run_end_to_end() {
        let opts = ExpOptions::smoke();
        let g = named_network(NamedNetwork::Flixster, opts.scale, opts.seed);
        let cfg = TwoItemConfig::new(1);
        let model = cfg.model();
        for algo in Algo::TWO_ITEM {
            let r = run_algo(algo, &g, &[3, 3], &model, &opts);
            assert_eq!(r.algorithm, algo.key());
            assert!(
                r.allocation.respects_budgets(&[3, 3]),
                "{} violated budgets",
                algo.name()
            );
            assert!(r.welfare_mean().is_finite(), "{} welfare NaN", algo.name());
            // The attached statistics equal a standalone scoring pass —
            // one estimator stream serves the whole experiment suite.
            assert_eq!(
                r.welfare_mean(),
                score_welfare(&g, &model, &r.allocation, &opts),
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn unscored_runs_skip_the_estimator() {
        let opts = ExpOptions::smoke();
        let g = named_network(NamedNetwork::Flixster, opts.scale, opts.seed);
        let model = TwoItemConfig::new(1).model();
        let r = run_algo_unscored(Algo::BundleGrd, &g, &[3, 3], &model, &opts);
        assert!(!r.is_scored());
        assert!(r.elapsed.as_nanos() > 0);
    }

    #[test]
    fn threads_knob_reaches_the_estimator_unchanged() {
        // PR 2's reducer is thread-count invariant; the knob must only
        // change scheduling, never a figure's numbers.
        let opts = ExpOptions::smoke();
        let pinned = ExpOptions {
            threads: Some(2),
            ..opts
        };
        let g = named_network(NamedNetwork::Flixster, opts.scale, opts.seed);
        let model = TwoItemConfig::new(1).model();
        let auto = run_algo(Algo::BundleGrd, &g, &[3, 3], &model, &opts);
        let two = run_algo(Algo::BundleGrd, &g, &[3, 3], &model, &pinned);
        assert_eq!(auto.welfare_mean(), two.welfare_mean());
        assert_eq!(
            score_welfare(&g, &model, &auto.allocation, &opts),
            score_welfare(&g, &model, &auto.allocation, &pinned),
        );
    }

    #[test]
    fn algo_names_match_paper_legends() {
        assert_eq!(Algo::BundleGrd.name(), "bundleGRD");
        assert_eq!(Algo::TWO_ITEM.len(), 5);
        assert_eq!(Algo::MULTI_ITEM.len(), 3);
    }

    #[test]
    fn every_algo_key_is_registered() {
        for algo in Algo::TWO_ITEM {
            assert!(
                uic_core::registry().iter().any(|e| e.name == algo.key()),
                "{} missing from the registry",
                algo.key()
            );
        }
    }

    #[test]
    fn default_options_sane() {
        let o = ExpOptions::default();
        assert!(o.scale > 0.0 && o.sims > 0 && o.eps > 0.0);
        assert!(o.threads.is_none());
    }
}
