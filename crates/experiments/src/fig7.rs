//! **Figure 7**: multi-item welfare (Configurations 5–8) on the Twitter
//! stand-in, sweeping the total seed budget 100–500.
//!
//! Paper shapes: bundleGRD ≥ both baselines everywhere, up to ~4×; in
//! Configuration 5 (additive, uniform) and 7 the allocations of
//! bundleGRD and bundle-disj coincide by design, so their welfares tie.

use crate::common::{fmt, network, run_algo, Algo, ExpOptions};
use uic_datasets::{budget_splits, Config, NamedNetwork};
use uic_util::Table;

/// Items used for the uniform-budget configurations (5, 8).
pub const UNIFORM_ITEMS: u32 = 5;
/// Items used for the non-uniform (cone) configurations (6, 7) — the
/// max-min split needs enough middles.
pub const NONUNIFORM_ITEMS: u32 = 8;

/// Budget vector for a configuration at a given total (sorted
/// non-increasing, capped at `n`).
pub fn budgets_for(cfg: Config, total: u32, n: u32) -> Vec<u32> {
    let raw = if cfg.uniform_budgets() {
        budget_splits::uniform(total, UNIFORM_ITEMS)
    } else {
        budget_splits::max_min(total, NONUNIFORM_ITEMS)
    };
    raw.into_iter().map(|b| b.min(n)).collect()
}

/// One Fig. 7 panel.
pub fn fig7_config(cfg: Config, opts: &ExpOptions) -> Table {
    let g = network(NamedNetwork::Twitter, opts);
    let n = g.num_nodes();
    let num_items = if cfg.uniform_budgets() {
        UNIFORM_ITEMS
    } else {
        NONUNIFORM_ITEMS
    };
    let model = cfg.build(num_items, opts.seed ^ cfg.id() as u64);
    let mut headers: Vec<&str> = vec!["total seeds"];
    headers.extend(Algo::MULTI_ITEM.iter().map(|a| a.name()));
    let mut t = Table::new(
        format!(
            "Figure 7({}): welfare, Configuration {} (Twitter stand-in)",
            (b'a' + cfg.id() - 5) as char,
            cfg.id()
        ),
        &headers,
    );
    for total in [100u32, 200, 300, 400, 500] {
        let budgets = budgets_for(cfg, total, n);
        let mut row = vec![total.to_string()];
        for algo in Algo::MULTI_ITEM {
            let r = run_algo(algo, &g, &budgets, &model, opts);
            row.push(fmt(r.welfare_mean()));
        }
        t.push_row(row);
    }
    t
}

/// All four panels.
pub fn fig7(opts: &ExpOptions) -> Vec<Table> {
    Config::ALL
        .into_iter()
        .map(|cfg| fig7_config(cfg, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_shapes() {
        let u = budgets_for(Config::Additive, 500, 10_000);
        assert_eq!(u, vec![100; 5]);
        let nu = budgets_for(Config::ConeMax, 1000, 10_000);
        assert_eq!(nu.len(), NONUNIFORM_ITEMS as usize);
        assert!(nu.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn cone_config_bundlegrd_dominates() {
        let opts = ExpOptions {
            scale: 0.01, // ~417-node twitter stand-in
            sims: 60,
            ..Default::default()
        };
        let t = fig7_config(Config::ConeMax, &opts);
        assert_eq!(t.len(), 5);
        let bg = t.column_f64("bundleGRD").unwrap();
        let id = t.column_f64("item-disj").unwrap();
        let bg_total: f64 = bg.iter().sum();
        let id_total: f64 = id.iter().sum();
        assert!(
            bg_total >= id_total * 0.95,
            "bundleGRD {bg_total} vs item-disj {id_total}"
        );
    }

    #[test]
    fn additive_config_runs_and_ties_bundle_disj() {
        let opts = ExpOptions {
            scale: 0.01,
            sims: 60,
            ..Default::default()
        };
        let t = fig7_config(Config::Additive, &opts);
        let bg = t.column_f64("bundleGRD").unwrap();
        let bd = t.column_f64("bundle-disj").unwrap();
        for i in 0..t.len() {
            assert!(bg[i] > 0.0 && bd[i] > 0.0);
        }
    }
}
