//! Special functions used by sample-size bounds and the GAP conversion.
//!
//! * [`ln_gamma`] / [`log_choose`]: the IMM/PRIMA thresholds (Eqs. 7–8 of
//!   the paper) need `ln C(n, k)` for `n` up to millions — computed via the
//!   Lanczos approximation of `ln Γ`.
//! * [`normal_cdf`] / [`normal_quantile`]: converting UIC utilities to
//!   Com-IC GAP parameters (Eq. 12) requires `Pr[N(0,σ²) ≥ x]`.

/// Lanczos coefficients (g = 7, n = 9), double-precision accurate.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_9,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Relative error below 1e-13 across the tested range; exact enough for
/// sample-size thresholds where the argument enters inside a `sqrt`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` — log binomial coefficient, numerically stable for huge `n`.
///
/// Returns `-inf` when `k > n`; `0` when `k == 0` or `k == n`.
pub fn log_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    let (n, k) = (n as f64, k as f64);
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Error function `erf(x)` via the Abramowitz–Stegun 7.1.26 rational
/// approximation refined with one Newton-style correction term; absolute
/// error < 3e-7, sufficient for GAP probabilities quoted to two decimals.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`
/// (Acklam's rational approximation + one Halley refinement step).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_24,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the accurate CDF sharpens the tail.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..=15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let got = ln_gamma(n as f64);
            assert!(
                (got - fact.ln()).abs() < 1e-10,
                "ln_gamma({n}) = {got}, want {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
    }

    #[test]
    fn log_choose_small_cases_exact() {
        assert_eq!(log_choose(5, 0), 0.0);
        assert_eq!(log_choose(5, 5), 0.0);
        assert!((log_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((log_choose(10, 3) - 120f64.ln()).abs() < 1e-10);
        assert_eq!(log_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn log_choose_large_is_finite_and_monotone_to_middle() {
        let n = 10_000_000u64;
        let a = log_choose(n, 10);
        let b = log_choose(n, 100);
        let c = log_choose(n, n / 2);
        assert!(a.is_finite() && b.is_finite() && c.is_finite());
        assert!(a < b && b < c);
    }

    #[test]
    fn erf_reference_points() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.841_344_75).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!(
                (normal_cdf(z) - p).abs() < 1e-7,
                "p={p}: cdf(quantile)={}",
                normal_cdf(z)
            );
        }
    }

    #[test]
    fn gap_example_from_paper() {
        // Configuration 1 of Table 3: V(i1)=3, P(i1)=3, N~N(0,1)
        // ⇒ q_{i1|∅} = Pr[N ≥ 0] = 0.5.
        let q = 1.0 - normal_cdf((3.0 - 3.0) / 1.0);
        assert!((q - 0.5).abs() < 1e-9);
        // q_{i2|i1} = Pr[N(i2) ≥ P(i2) − (V({i1,i2}) − V(i1))]
        //           = Pr[N ≥ 4 − (8−3)] = Pr[N ≥ −1] ≈ 0.8413 ≈ paper's 0.84.
        let q = 1.0 - normal_cdf(4.0 - (8.0 - 3.0));
        assert!((q - 0.8413).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
