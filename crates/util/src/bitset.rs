//! Dense bitsets and timestamped visit tags for graph traversal.
//!
//! [`BitSet`] is a plain `u64`-word bitset. [`VisitTags`] avoids the
//! `O(n)` clear between traversals that dominates RR-set sampling: each
//! traversal bumps an epoch counter and a slot counts as "visited" only if
//! its stored stamp equals the current epoch.

/// A fixed-capacity dense bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset addresses zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`; returns whether it was previously unset.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Clears bit `i`; returns whether it was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Clears the set and re-sizes it to `len` bits, reusing the word
    /// buffer whenever its capacity allows — the scratch-reuse path of
    /// per-query selection state (no allocation once the buffer has
    /// grown to the working-set size).
    pub fn reset_to(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// In-place union with `other` (must have the same length).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (must have the same length).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut bs = BitSet::new(len);
        for i in items {
            bs.insert(i);
        }
        bs
    }
}

/// Timestamped visit marks: `O(1)` reset between traversals.
///
/// A slot is considered marked iff its stored stamp equals the current
/// epoch; `reset()` merely increments the epoch. The stamp array is only
/// rewritten on the (effectively impossible) `u32` epoch wraparound.
#[derive(Debug, Clone)]
pub struct VisitTags {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitTags {
    /// Creates tags for `n` slots, all unmarked.
    pub fn new(n: usize) -> Self {
        VisitTags {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True if there are no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Unmarks every slot in `O(1)`.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: physically clear once every 2^32 resets.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks slot `i`; returns whether it was previously unmarked.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let fresh = self.stamp[i] != self.epoch;
        self.stamp[i] = self.epoch;
        fresh
    }

    /// Tests whether slot `i` is marked in the current epoch.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = BitSet::new(130);
        assert!(bs.insert(0));
        assert!(bs.insert(64));
        assert!(bs.insert(129));
        assert!(!bs.insert(64));
        assert!(bs.contains(0) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1));
        assert_eq!(bs.count(), 3);
        assert!(bs.remove(64));
        assert!(!bs.remove(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut bs = BitSet::new(200);
        for &i in &[5usize, 63, 64, 65, 199] {
            bs.insert(i);
        }
        let got: Vec<usize> = bs.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let a: BitSet = [1usize, 3, 5].into_iter().collect();
        let mut a = {
            let mut big = BitSet::new(10);
            for i in a.iter() {
                big.insert(i);
            }
            big
        };
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(4);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut bs = BitSet::new(100);
        bs.insert(99);
        bs.clear();
        assert_eq!(bs.count(), 0);
    }

    #[test]
    fn reset_to_reuses_capacity_and_clears() {
        let mut bs = BitSet::new(512);
        bs.insert(511);
        let buf = bs.words.as_ptr();
        bs.reset_to(100);
        assert_eq!(bs.len(), 100);
        assert_eq!(bs.count(), 0);
        assert!(bs.insert(99));
        bs.reset_to(512);
        assert_eq!(bs.len(), 512);
        assert_eq!(bs.count(), 0, "stale bits must not leak through resize");
        assert_eq!(bs.words.as_ptr(), buf, "shrink+regrow reuses the buffer");
        bs.reset_to(0);
        assert!(bs.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let bs: BitSet = [2usize, 9].into_iter().collect();
        assert_eq!(bs.len(), 10);
        assert!(bs.contains(9));
    }

    #[test]
    fn visit_tags_reset_is_logical() {
        let mut vt = VisitTags::new(5);
        assert!(vt.mark(2));
        assert!(!vt.mark(2));
        assert!(vt.is_marked(2));
        vt.reset();
        assert!(!vt.is_marked(2));
        assert!(vt.mark(2));
    }

    #[test]
    fn visit_tags_survive_many_resets() {
        let mut vt = VisitTags::new(3);
        for _ in 0..10_000 {
            vt.reset();
            assert!(vt.mark(1));
            assert!(vt.is_marked(1));
            assert!(!vt.is_marked(0));
        }
    }

    #[test]
    fn empty_sets() {
        let bs = BitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.iter().count(), 0);
        let vt = VisitTags::new(0);
        assert!(vt.is_empty());
    }
}
