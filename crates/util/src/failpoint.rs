//! Deterministic fault injection: named failpoints for chaos testing.
//!
//! A *failpoint* is a named hook compiled into a code path — frame
//! reads, arena top-up, snapshot loads, worker dispatch — that does
//! nothing in a normal build and, in a chaos build, consults a global
//! registry to decide whether this particular execution should be
//! perturbed (fail, stall, or panic). The point is to make failure
//! modes *testable*: "the 3rd top-up fails" or "every other frame read
//! stalls 50 ms" become reproducible test inputs instead of things that
//! only happen in production at 3 a.m.
//!
//! ## Zero cost by default
//!
//! Everything here is gated behind the `failpoints` cargo feature.
//! Without it, [`fail_point!`](crate::fail_point) expands to an empty
//! block — no registry, no atomics, no branch — so production builds
//! pay nothing (the serving benchmark is the regression gate). Crates
//! that *place* failpoints declare their own `failpoints` feature
//! forwarding to `uic-util/failpoints`, because the `cfg` inside the
//! macro resolves in the calling crate.
//!
//! ## Configuration
//!
//! Each failpoint is configured by a rule string:
//!
//! ```text
//! rule    := action [ '(' arg ')' ] [ '%' prob ] [ '*' count ]
//! action  := "off" | "return" | "delay" | "panic"
//! ```
//!
//! * `return` — trigger the failure arm of the call site (typed error).
//! * `delay(ms)` — sleep `ms` milliseconds, then proceed normally.
//! * `panic` — panic (exercises `catch_unwind` isolation).
//! * `%p` — fire with probability `p ∈ [0,1]`, decided by a counter
//!   hash seeded from [`set_seed`] — *deterministic*: the same seed and
//!   hit sequence fires on the same hits, every run.
//! * `*n` — fire at most `n` times, then the rule disarms.
//!
//! Rules come from the `UIC_FAILPOINTS` environment variable
//! (`name=rule;name=rule;…`, read once on first use) or from
//! [`configure`] / [`remove`] / [`clear`] in tests. Hit and trigger
//! counts per failpoint are queryable ([`hits`], [`triggers`]) so tests
//! can assert a fault actually happened.
#![cfg(feature = "failpoints")]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable holding `name=rule;…` activations, read once.
pub const FAILPOINTS_ENV_VAR: &str = "UIC_FAILPOINTS";

/// What a fired failpoint does to its call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Trigger the call site's failure arm.
    Return,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Panic with a recognizable message.
    Panic,
}

#[derive(Debug)]
struct Rule {
    action: Action,
    /// Fire probability in 2^-64 units (`u64::MAX` ≈ always).
    prob_bits: u64,
    /// Remaining firings before the rule disarms (`u64::MAX` = ∞).
    budget: AtomicU64,
    hits: AtomicU64,
    triggers: AtomicU64,
}

#[derive(Default)]
struct Registry {
    rules: HashMap<String, Rule>,
    seed: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var(FAILPOINTS_ENV_VAR) {
            for part in spec.split(';') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                if let Some((name, rule)) = part.split_once('=') {
                    if let Ok(r) = parse_rule(rule.trim()) {
                        reg.rules.insert(name.trim().to_string(), r);
                    } else {
                        eprintln!("uic-util: ignoring malformed failpoint rule `{part}`");
                    }
                }
            }
        }
        Mutex::new(reg)
    })
}

fn parse_rule(s: &str) -> Result<Rule, String> {
    // Split `action(arg)` / `%prob` / `*count` from the right.
    let (s, budget) = match s.rsplit_once('*') {
        Some((head, n)) if !head.is_empty() => {
            let n: u64 = n.trim().parse().map_err(|_| format!("bad count `{n}`"))?;
            (head.trim(), n)
        }
        _ => (s, u64::MAX),
    };
    let (s, prob_bits) = match s.rsplit_once('%') {
        Some((head, p)) if !head.is_empty() => {
            let p: f64 = p
                .trim()
                .parse()
                .map_err(|_| format!("bad probability `{p}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} outside [0,1]"));
            }
            (head.trim(), (p * u64::MAX as f64) as u64)
        }
        _ => (s, u64::MAX),
    };
    let (name, arg) = match s.split_once('(') {
        Some((n, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed argument in `{s}`"))?;
            (n.trim(), Some(arg.trim()))
        }
        None => (s.trim(), None),
    };
    let action = match (name, arg) {
        ("off", _) => {
            return Ok(Rule {
                action: Action::Return,
                prob_bits: 0,
                budget: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                triggers: AtomicU64::new(0),
            })
        }
        ("return", _) => Action::Return,
        ("panic", _) => Action::Panic,
        ("delay", Some(ms)) => {
            let ms: u64 = ms.parse().map_err(|_| format!("bad delay `{ms}`"))?;
            Action::Delay(Duration::from_millis(ms))
        }
        ("delay", None) => return Err("delay needs (ms)".to_string()),
        (other, _) => return Err(format!("unknown action `{other}`")),
    };
    Ok(Rule {
        action,
        prob_bits,
        budget: AtomicU64::new(budget),
        hits: AtomicU64::new(0),
        triggers: AtomicU64::new(0),
    })
}

/// SplitMix64 finalizer: the per-hit coin. Deterministic in
/// `(seed, name, hit index)` — thread scheduling can reorder *which*
/// logical operation observes which hit index, but a fixed single-query
/// sequence replays exactly.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a, good enough to separate failpoint streams by name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sets the seed that drives probabilistic (`%p`) rules. Call before
/// the failpoints under test first fire; existing hit counters keep
/// counting.
pub fn set_seed(seed: u64) {
    registry().lock().expect("failpoint registry").seed = seed;
}

/// Installs (or replaces) the rule for `name`. Errors on a malformed
/// rule string.
pub fn configure(name: &str, rule: &str) -> Result<(), String> {
    let parsed = parse_rule(rule)?;
    registry()
        .lock()
        .expect("failpoint registry")
        .rules
        .insert(name.to_string(), parsed);
    Ok(())
}

/// Removes the rule for `name` (the failpoint reverts to a no-op).
pub fn remove(name: &str) {
    registry()
        .lock()
        .expect("failpoint registry")
        .rules
        .remove(name);
}

/// Removes every rule.
pub fn clear() {
    registry().lock().expect("failpoint registry").rules.clear();
}

/// Times the rule for `name` has been evaluated.
pub fn hits(name: &str) -> u64 {
    let reg = registry().lock().expect("failpoint registry");
    reg.rules
        .get(name)
        .map(|r| r.hits.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Times the rule for `name` actually fired (returned/delayed/panicked).
pub fn triggers(name: &str) -> u64 {
    let reg = registry().lock().expect("failpoint registry");
    reg.rules
        .get(name)
        .map(|r| r.triggers.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Evaluates the failpoint `name`. Returns `true` when the call site's
/// failure arm should trigger (a `return` rule fired); `delay` rules
/// sleep here and return `false`; `panic` rules panic here.
///
/// This is the runtime behind [`fail_point!`](crate::fail_point) — call
/// sites should use the macro, which compiles away without the
/// `failpoints` feature.
pub fn eval(name: &str) -> bool {
    let (action, seed, hit) = {
        let reg = registry().lock().expect("failpoint registry");
        let Some(rule) = reg.rules.get(name) else {
            return false;
        };
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed);
        // Probability coin: deterministic in (seed, name, hit index).
        if rule.prob_bits != u64::MAX {
            let coin = mix(reg.seed ^ name_hash(name) ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if coin > rule.prob_bits {
                return false;
            }
        }
        // Firing budget: decrement-if-positive without underflow.
        let mut left = rule.budget.load(Ordering::Relaxed);
        loop {
            if left == 0 {
                return false;
            }
            if left == u64::MAX {
                break; // unbounded
            }
            match rule.budget.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => left = now,
            }
        }
        rule.triggers.fetch_add(1, Ordering::Relaxed);
        (rule.action, reg.seed, hit)
    };
    let _ = (seed, hit);
    match action {
        Action::Return => true,
        Action::Delay(d) => {
            std::thread::sleep(d);
            false
        }
        Action::Panic => panic!("failpoint `{name}` panicked by injection"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests use distinct names.

    #[test]
    fn unconfigured_failpoints_are_silent() {
        assert!(!eval("test.nothing"));
        assert_eq!(hits("test.nothing"), 0);
    }

    #[test]
    fn return_rule_fires_and_counts() {
        configure("test.ret", "return").unwrap();
        assert!(eval("test.ret"));
        assert!(eval("test.ret"));
        assert_eq!(hits("test.ret"), 2);
        assert_eq!(triggers("test.ret"), 2);
        remove("test.ret");
        assert!(!eval("test.ret"));
    }

    #[test]
    fn count_budget_disarms() {
        configure("test.budget", "return*2").unwrap();
        assert!(eval("test.budget"));
        assert!(eval("test.budget"));
        assert!(!eval("test.budget"), "budget exhausted");
        assert_eq!(triggers("test.budget"), 2);
    }

    #[test]
    fn probability_is_deterministic_in_the_seed() {
        set_seed(42);
        configure("test.prob", "return%0.5").unwrap();
        let first: Vec<bool> = (0..64).map(|_| eval("test.prob")).collect();
        // Re-arm and replay: identical firing pattern requires resetting
        // the hit counter, i.e. re-configuring.
        configure("test.prob", "return%0.5").unwrap();
        let second: Vec<bool> = (0..64).map(|_| eval("test.prob")).collect();
        assert_eq!(first, second, "same seed ⇒ same firing pattern");
        let fired = first.iter().filter(|&&b| b).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 hits fired {fired} times"
        );
        remove("test.prob");
    }

    #[test]
    fn delay_rule_sleeps_then_proceeds() {
        configure("test.delay", "delay(20)*1").unwrap();
        let t0 = std::time::Instant::now();
        assert!(!eval("test.delay"), "delay proceeds, not fails");
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(!eval("test.delay"), "budget spent: no more sleeping");
        remove("test.delay");
    }

    #[test]
    fn off_rule_never_fires() {
        configure("test.off", "off").unwrap();
        assert!(!eval("test.off"));
        remove("test.off");
    }

    #[test]
    #[should_panic(expected = "failpoint `test.panic` panicked")]
    fn panic_rule_panics() {
        configure("test.panic", "panic").unwrap();
        eval("test.panic");
    }

    #[test]
    fn malformed_rules_are_errors() {
        for bad in ["frobnicate", "delay", "delay(x)", "return%2.0", "return*x"] {
            assert!(parse_rule(bad).is_err(), "{bad}");
        }
    }
}
