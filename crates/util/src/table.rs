//! Aligned-table and CSV rendering for the experiment harness.
//!
//! Every experiment in `uic-experiments` produces a [`Table`]; the CLI
//! prints it aligned for eyeballing and can dump CSV for plotting, so the
//! paper's tables/figures are regenerated as machine-readable series.

use std::fmt;

/// A simple rectangular table: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable caption (e.g. `"Figure 4(a): welfare, Configuration 1"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have exactly `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {} in table '{}'",
            cells.len(),
            self.headers.len(),
            self.title
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push_display_row<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row index and header name.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a column of `f64`s by header name.
    pub fn column_f64(&self, header: &str) -> Option<Vec<f64>> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows
            .iter()
            .map(|r| r[col].parse::<f64>().ok())
            .collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly: integers without decimals, otherwise 4
/// significant-looking digits — matches how the paper reports values.
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 1000.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["k", "welfare"]);
        t.push_row(vec!["10".into(), "123.4".into()]);
        t.push_row(vec!["20".into(), "200".into()]);
        t
    }

    #[test]
    fn display_is_aligned() {
        let s = sample().to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("k   welfare"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv, "k,welfare\n10,123.4\n20,200\n");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["hello, \"world\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn cell_and_column_lookup() {
        let t = sample();
        assert_eq!(t.cell(0, "welfare"), Some("123.4"));
        assert_eq!(t.cell(5, "welfare"), None);
        assert_eq!(t.column_f64("welfare"), Some(vec![123.4, 200.0]));
        assert_eq!(t.column_f64("nope"), None);
    }

    #[test]
    fn fmt_f64_styles() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(1234.56), "1234.6");
        assert_eq!(fmt_f64(0.12345), "0.1235");
    }
}
