//! Streaming statistics for Monte-Carlo estimators.

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for the millions of welfare/spread samples produced
/// by the Monte-Carlo estimators; mergeable so per-thread accumulators can
/// be combined deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    pub fn ci95_halfwidth(&self) -> f64 {
        1.959_963_985 * self.stderr()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Arithmetic mean of a slice (`0` for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // two-pass unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut x = 0.13f64;
        for i in 0..10_000 {
            x = (x * 37.7).fract();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci95_halfwidth() < small.ci95_halfwidth());
    }

    #[test]
    fn slice_mean() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
