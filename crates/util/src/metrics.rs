//! Lock-free service metrics primitives: monotonically increasing
//! [`Counter`]s and a fixed-size [`LatencyRing`] for percentile
//! estimates — the instrumentation substrate of the `uic-serve`
//! request path.
//!
//! Both types are updated with relaxed atomics on the hot path (one
//! `fetch_add` per event) and read by an infrequent snapshot path, so
//! contention never serializes request handling. The ring keeps the last
//! `capacity` samples (overwriting the oldest), which bounds memory and
//! weighs the percentile estimate toward recent behavior — exactly what
//! a "p99 right now" operational dump wants.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level metric (resident bytes, queue depth): unlike a
/// [`Counter`] it can go down. `add`/`sub` are relaxed atomics, `set`
/// overwrites — the reader only ever wants "the level right now".
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n` (saturating at 0 — a transient under-run
    /// from racing updates must not wrap to 2^64).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-capacity ring of `u64` samples (e.g. request latencies in
/// microseconds) with percentile snapshots over the retained window.
#[derive(Debug)]
pub struct LatencyRing {
    slots: Box<[AtomicU64]>,
    /// Total samples ever recorded; `min(total, capacity)` slots hold
    /// valid data, and `total % capacity` is the next write position.
    total: AtomicUsize,
}

impl LatencyRing {
    /// A ring retaining the last `capacity` samples (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> LatencyRing {
        assert!(capacity >= 1, "ring needs at least one slot");
        LatencyRing {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicUsize::new(0),
        }
    }

    /// Records one sample, overwriting the oldest once full.
    ///
    /// Claims a slot with one `fetch_add`; concurrent writers therefore
    /// never claim the same slot (modulo a full wrap of the ring between
    /// a claim and its store, which only ever loses one stale sample).
    pub fn record(&self, value: u64) {
        let at = self.total.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[at].store(value, Ordering::Relaxed);
    }

    /// Total samples ever recorded (not capped at capacity).
    pub fn count(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// The retained samples, unordered.
    pub fn snapshot(&self) -> Vec<u64> {
        let held = self.count().min(self.slots.len());
        self.slots[..held]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Percentile estimates over the retained window: for each `q` in
    /// `quantiles` (e.g. `[0.5, 0.99]`), the smallest retained sample ≥
    /// a `q` fraction of the window (nearest-rank). Empty when no
    /// samples have been recorded.
    pub fn percentiles(&self, quantiles: &[f64]) -> Vec<u64> {
        let mut samples = self.snapshot();
        if samples.is_empty() {
            return Vec::new();
        }
        samples.sort_unstable();
        quantiles
            .iter()
            .map(|&q| {
                let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize)
                    .clamp(1, samples.len());
                samples[rank - 1]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_levels_move_both_ways_and_saturate() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "saturates instead of wrapping");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn ring_percentiles_nearest_rank() {
        let ring = LatencyRing::new(100);
        for v in 1..=100u64 {
            ring.record(v);
        }
        let p = ring.percentiles(&[0.5, 0.99, 1.0]);
        assert_eq!(p, vec![50, 99, 100]);
        assert_eq!(ring.count(), 100);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = LatencyRing::new(4);
        for v in [10u64, 20, 30, 40, 50, 60] {
            ring.record(v);
        }
        let mut s = ring.snapshot();
        s.sort_unstable();
        assert_eq!(s, vec![30, 40, 50, 60], "first two samples evicted");
        assert_eq!(ring.count(), 6);
    }

    #[test]
    fn empty_ring_has_no_percentiles() {
        let ring = LatencyRing::new(8);
        assert!(ring.percentiles(&[0.5]).is_empty());
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing_at_scale() {
        use std::sync::Arc;
        let ring = Arc::new(LatencyRing::new(1 << 12));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        ring.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.count(), 4 * 256);
        assert_eq!(ring.snapshot().len(), 4 * 256);
    }
}
