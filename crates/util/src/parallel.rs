//! Worker-count sizing shared by every fork-join loop in the workspace.
//!
//! Both the RR-set generator and the welfare estimator need the same
//! decision: how many scoped threads are worth spawning for `work_items`
//! independent tasks? Spawning is only profitable when each worker gets a
//! minimum useful chunk (the `grain`), so the answer is
//! `min(hardware, ⌈work_items / grain⌉)`, never less than one.
//!
//! The hardware width is resolved **once per process** (see
//! [`hardware_parallelism`]): `available_parallelism()` takes a syscall
//! on some platforms, and several hot loops size themselves per call.
//! The `UIC_THREADS` environment variable overrides the detected width
//! globally, so benches and CI can pin every fork-join loop to a fixed
//! width without touching individual `with_threads` call sites.

use std::sync::OnceLock;

/// Environment variable that pins the process-wide worker width (any
/// positive integer). Read once, at the first sizing decision.
pub const THREADS_ENV_VAR: &str = "UIC_THREADS";

/// Pure resolution logic behind [`hardware_parallelism`], separated so
/// the override parsing is unit-testable without mutating the process
/// environment: a parseable positive `UIC_THREADS` wins, anything else
/// falls back to the detected width.
fn resolve_width(env: Option<&str>, detected: usize) -> usize {
    env.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(detected)
        .max(1)
}

/// The process-wide worker width every fork-join loop sizes against:
/// `available_parallelism()` (queried **once**, then cached — hot loops
/// re-size on every call) unless the `UIC_THREADS` environment variable
/// pins a different width.
pub fn hardware_parallelism() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        let detected = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let env = std::env::var(THREADS_ENV_VAR).ok();
        resolve_width(env.as_deref(), detected)
    })
}

/// Number of worker threads for `work_items` independent tasks of
/// roughly uniform cost, given the minimum useful chunk `grain` (items
/// per worker below which spawn overhead dominates).
///
/// Returns at least 1 and never exceeds [`hardware_parallelism`], so the
/// result can be fed straight into a scoped-thread spawn loop. A `grain`
/// of 0 is treated as 1.
///
/// ```
/// // One item can never use two workers…
/// assert_eq!(uic_util::parallelism(1, 256), 1);
/// // …and a zero-item loop still gets a (degenerate) single worker.
/// assert_eq!(uic_util::parallelism(0, 64), 1);
/// ```
pub fn parallelism(work_items: usize, grain: usize) -> usize {
    hardware_parallelism()
        .min(work_items.div_ceil(grain.max(1)))
        .max(1)
}

/// Pads (and aligns) `T` to a 64-byte cache line, so adjacent per-worker
/// accumulators in one array never share a line — concurrent writes stay
/// free of false sharing. Deref-transparent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workloads_stay_sequential() {
        assert_eq!(parallelism(0, 256), 1);
        assert_eq!(parallelism(1, 256), 1);
        assert_eq!(parallelism(256, 256), 1);
    }

    #[test]
    fn worker_count_is_bounded_by_work_and_hardware() {
        // `hardware_parallelism` (not raw available_parallelism): the
        // suite must hold under a `UIC_THREADS` pin too (the 2-thread CI
        // job runs with it set).
        let hw = hardware_parallelism();
        // Enough work for every core: capped by hardware only.
        assert_eq!(parallelism(hw * 1000, 1), hw);
        // Work for exactly three grains: at most three workers.
        assert_eq!(parallelism(300, 100), hw.min(3));
    }

    #[test]
    fn zero_grain_is_treated_as_one() {
        let hw = hardware_parallelism();
        assert_eq!(parallelism(4, 0), hw.min(4));
    }

    #[test]
    fn width_is_cached_and_stable() {
        let a = hardware_parallelism();
        let b = hardware_parallelism();
        assert_eq!(a, b);
        assert!(a >= 1);
    }

    #[test]
    fn env_override_resolution() {
        assert_eq!(resolve_width(None, 8), 8);
        assert_eq!(resolve_width(Some("2"), 8), 2);
        assert_eq!(resolve_width(Some(" 16 "), 1), 16);
        // Unparseable, empty, and zero values fall back to detection.
        assert_eq!(resolve_width(Some("many"), 8), 8);
        assert_eq!(resolve_width(Some(""), 8), 8);
        assert_eq!(resolve_width(Some("0"), 8), 8);
        // Detection of 0 (cannot happen, but) still yields a worker.
        assert_eq!(resolve_width(None, 0), 1);
    }

    #[test]
    fn cache_padding_separates_lines() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
        assert!(std::mem::size_of::<[CachePadded<u64>; 2]>() >= 128);
        let mut p = CachePadded::new(3u64);
        *p += 1;
        assert_eq!(*p, 4);
        assert_eq!(p.into_inner(), 4);
    }
}
