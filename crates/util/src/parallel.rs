//! Worker-count sizing shared by every fork-join loop in the workspace.
//!
//! Both the RR-set generator and the welfare estimator need the same
//! decision: how many scoped threads are worth spawning for `work_items`
//! independent tasks? Spawning is only profitable when each worker gets a
//! minimum useful chunk (the `grain`), so the answer is
//! `min(hardware, ⌈work_items / grain⌉)`, never less than one.

/// Number of worker threads for `work_items` independent tasks of
/// roughly uniform cost, given the minimum useful chunk `grain` (items
/// per worker below which spawn overhead dominates).
///
/// Returns at least 1 and never exceeds the hardware parallelism, so the
/// result can be fed straight into a scoped-thread spawn loop. A `grain`
/// of 0 is treated as 1.
///
/// ```
/// // One item can never use two workers…
/// assert_eq!(uic_util::parallelism(1, 256), 1);
/// // …and a zero-item loop still gets a (degenerate) single worker.
/// assert_eq!(uic_util::parallelism(0, 64), 1);
/// ```
pub fn parallelism(work_items: usize, grain: usize) -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(work_items.div_ceil(grain.max(1)))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workloads_stay_sequential() {
        assert_eq!(parallelism(0, 256), 1);
        assert_eq!(parallelism(1, 256), 1);
        assert_eq!(parallelism(256, 256), 1);
    }

    #[test]
    fn worker_count_is_bounded_by_work_and_hardware() {
        let hw = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        // Enough work for every core: capped by hardware only.
        assert_eq!(parallelism(hw * 1000, 1), hw);
        // Work for exactly three grains: at most three workers.
        assert_eq!(parallelism(300, 100), hw.min(3));
    }

    #[test]
    fn zero_grain_is_treated_as_one() {
        let hw = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        assert_eq!(parallelism(4, 0), hw.min(4));
    }
}
