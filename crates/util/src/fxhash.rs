//! FxHash: the fast, non-cryptographic hash function used by rustc.
//!
//! The workloads in this workspace hash small integer keys (node ids,
//! itemset bitmasks) millions of times per experiment; SipHash's HashDoS
//! resistance buys nothing here and costs 2–5×. This is a dependency-free
//! reimplementation of the well-known Fx algorithm (multiply–rotate–xor).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier: `2^64 / φ` rounded to odd (the golden-ratio
/// multiplicative constant, same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A [`Hasher`] implementing the Fx algorithm.
///
/// State is a single `u64`; each word is folded in with
/// `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement with Fx hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement with Fx hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("hello"), hash_one("hello"));
        assert_eq!(hash_one((3u32, 7u32)), hash_one((3u32, 7u32)));
    }

    #[test]
    fn distinct_small_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(hash_one(i));
        }
        // All 10k hashes distinct (Fx is a bijection on u64 for single-word
        // input, so this is exact, not probabilistic).
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_padding() {
        // Writing 8 bytes little-endian must equal one u64 write.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn partial_chunk_hashes() {
        let mut h = FxHasher::default();
        h.write(b"abc");
        let h1 = h.finish();
        let mut h = FxHasher::default();
        h.write(b"abd");
        assert_ne!(h1, h.finish());
    }

    #[test]
    fn u128_mixes_both_halves() {
        let a = hash_one(1u128 << 90);
        let b = hash_one(1u128 << 20);
        assert_ne!(a, b);
    }
}
