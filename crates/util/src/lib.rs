//! # uic-util
//!
//! Shared low-level utilities for the UIC workspace:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (FxHash) plus `HashMap`/
//!   `HashSet` aliases tuned for small integer keys, per the Rust perf-book
//!   guidance for hashing-heavy database workloads.
//! * [`bitset`] — dense bitsets and a timestamped visit-tag array that makes
//!   repeated graph traversals O(1) to "clear".
//! * [`epoch`] — epoch-stamped dense maps ([`EpochMap`], [`EdgeStatusCache`])
//!   generalizing the visit-tag trick to arbitrary per-slot values; the
//!   zero-allocation-per-cascade state substrate of the diffusion engine.
//! * [`parallel`] — the shared worker-count heuristic
//!   ([`parallelism`]) used by every fork-join loop (RR-set generation,
//!   welfare estimation) so sizing policy lives in exactly one place,
//!   with a process-wide cached hardware width overridable via the
//!   `UIC_THREADS` environment variable, plus [`CachePadded`] for
//!   false-sharing-free per-worker accumulators.
//! * [`rng`] — deterministic, splittable random number generation
//!   (SplitMix64 seeding + xoshiro256++ streams) so that every experiment in
//!   the reproduction is replayable from a single `u64` seed, independent of
//!   thread count.
//! * [`special`] — special functions (`ln_gamma`, `log_choose`, `normal_cdf`)
//!   needed by the IMM/PRIMA sample-size bounds (Eqs. 7–8 of the paper) and
//!   the GAP-parameter conversion (Eq. 12).
//! * [`stats`] — streaming mean/variance and confidence intervals for
//!   Monte-Carlo estimators.
//! * [`table`] — a tiny aligned-table / CSV renderer used by the experiment
//!   harness to print the paper's tables and figure series.
//! * [`json`] — a deterministic, serde-free compact JSON writer
//!   ([`JsonWriter`]) used by the `uic-serve` response path.
//! * [`metrics`] — lock-free service instrumentation: monotone
//!   [`Counter`]s and a fixed-window [`LatencyRing`] for p50/p99
//!   snapshots.
//! * `failpoint` — deterministic fault injection
//!   ([`fail_point!`](crate::fail_point)) for chaos testing the serving
//!   stack; compiled to empty blocks unless the `failpoints` cargo
//!   feature is enabled.

pub mod bitset;
pub mod epoch;
pub mod failpoint;
pub mod fxhash;
pub mod json;
pub mod metrics;
pub mod parallel;
pub mod rng;
pub mod special;
pub mod stats;
pub mod table;

pub use bitset::{BitSet, VisitTags};
pub use epoch::{EdgeStatusCache, EpochMap};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::JsonWriter;
pub use metrics::{Counter, Gauge, LatencyRing};
pub use parallel::{hardware_parallelism, parallelism, CachePadded, THREADS_ENV_VAR};
pub use rng::{split_seed, UicRng};
pub use special::{ln_gamma, log_choose, normal_cdf, normal_quantile};
pub use stats::{mean, OnlineStats};
pub use table::Table;

/// Injects a named failpoint. With the `failpoints` cargo feature *of
/// the calling crate* enabled (which must forward to
/// `uic-util/failpoints`), the point consults the
/// `failpoint` registry; otherwise the macro expands to an empty
/// block — zero code, zero cost.
///
/// Two forms:
///
/// ```ignore
/// // Side-effect only: `delay(ms)` sleeps, `panic` panics, `return`
/// // rules are evaluated but ignored (no failure arm here).
/// uic_util::fail_point!("serve.dispatch");
///
/// // With a failure arm: a fired `return` rule early-returns the
/// // closure's value from the enclosing function.
/// uic_util::fail_point!("serve.topup", || Err(ServeError::new(..)));
/// ```
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            let _ = $crate::failpoint::eval($name);
        }
    }};
    ($name:expr, $on_trigger:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            if $crate::failpoint::eval($name) {
                #[allow(clippy::redundant_closure_call)]
                return ($on_trigger)();
            }
        }
    }};
}
