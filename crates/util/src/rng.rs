//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace (edge worlds, noise worlds,
//! RR-set sampling, network generators) takes an explicit `u64` seed. Seeds
//! are *split* — never shared — across parallel workers with
//! [`split_seed`], which applies the SplitMix64 output function to
//! `(seed, stream)` pairs. The generator itself is xoshiro256++, a small,
//! fast, statistically strong PRNG; we implement it here (plus the
//! [`rand::RngCore`] plumbing) instead of pulling in `rand_xoshiro`.

use rand::{Error, RngCore, SeedableRng};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from a parent seed and a stream index.
///
/// Used to give each Monte-Carlo world / RR batch / thread its own
/// deterministic stream: results do not depend on scheduling or thread
/// count.
#[inline]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// xoshiro256++ PRNG with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct UicRng {
    s: [u64; 4],
}

impl UicRng {
    /// Creates a generator from a single `u64` seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        UicRng { s }
    }

    /// Creates the `stream`-th independent child generator of `seed`.
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        Self::new(split_seed(seed, stream))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` using the top 24 bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_raw() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (with rejection to remove modulo bias). `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_raw() as u32;
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound {
                return (m >> 32) as u32;
            }
            // Rejection zone: accept unless lo < 2^32 mod bound.
            let t = bound.wrapping_neg() % bound;
            if lo >= t {
                return (m >> 32) as u32;
            }
        }
    }

    /// Standard normal sample (Marsaglia polar method).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl RngCore for UicRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for UicRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        UicRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        UicRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = UicRng::new(42);
        let mut b = UicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = UicRng::new(1);
        let mut b = UicRng::new(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn split_seed_is_deterministic_and_spread() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000u64 {
            seen.insert(split_seed(99, stream));
        }
        assert_eq!(seen.len(), 1000, "child seeds must not collide");
    }

    #[test]
    fn f64_is_in_unit_interval_with_sane_mean() {
        let mut rng = UicRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = UicRng::new(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = UicRng::new(17);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_gaussian();
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn coin_matches_probability() {
        let mut rng = UicRng::new(23);
        let hits = (0..100_000).filter(|_| rng.coin(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainder() {
        let mut rng = UicRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_from_u64() {
        let mut a = UicRng::seed_from_u64(123);
        let mut b = UicRng::new(123);
        assert_eq!(a.next_raw(), b.next_raw());
    }
}
